// The offline protocol-invariant checker (analysis/trace_check.h):
//   * a clean trace from a real fault-scheduled protocol run passes;
//   * every invariant has a minimal synthetic fixture that violates it
//     exactly where the fixture says it does;
//   * ring-evicted traces skip the prefix-dependent invariants instead of
//     reporting nonsense;
//   * the JSONL form round-trips, and the strict reader rejects malformed
//     input naming the line.

#include "analysis/trace_check.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/params.h"
#include "netsim/simulation.h"
#include "netsim/trace.h"
#include "protocol/protocol_engine.h"
#include "support/rng.h"

namespace {

using namespace sgl;
using netsim::trace_kind;
using netsim::trace_record;

trace_record rec(double t, trace_kind kind, std::uint32_t node, std::uint32_t peer = 0,
                 std::int32_t detail = 0, std::int64_t a = 0, std::int64_t b = 0) {
  return {.time = t, .kind = kind, .node = node, .peer = peer, .detail = detail,
          .a = a, .b = b};
}

analysis::trace_metadata small_meta() {
  analysis::trace_metadata meta;
  meta.num_nodes = 4;
  meta.num_options = 3;
  meta.max_retries = 1;
  meta.rounds = 2;
  meta.seed = 5;
  return meta;
}

/// A post of all 3 options for round `r` (so adoptions have a legal range).
trace_record post(double t, std::int64_t round) {
  return rec(t, trace_kind::post, 0, 0, 3, round, 0b111);
}

// --- a real recorded run is clean -------------------------------------------

TEST(trace_check, clean_fault_scheduled_protocol_run_passes) {
  protocol::engine_config config;
  config.dynamics = core::theorem_params(2, 0.65);
  config.record_trace = true;
  netsim::fault_action cut;
  cut.which = netsim::fault_action::kind::partition;
  cut.at = 5.0;
  cut.until = 12.0;
  for (netsim::node_id id = 0; id < 25; ++id) cut.targets.push_back(id);
  config.faults.actions.push_back(cut);
  netsim::fault_action wave;
  wave.which = netsim::fault_action::kind::crash_wave;
  wave.at = 14.0;
  wave.fraction = 0.3;
  config.faults.actions.push_back(wave);

  protocol::protocol_engine engine{config, 50};
  rng reward_gen = rng::from_stream(3, 0);
  rng process_gen = rng::from_stream(3, 1);
  std::vector<std::uint8_t> rewards(2);
  const std::uint64_t rounds = 20;
  for (std::uint64_t t = 1; t <= rounds; ++t) {
    rewards[0] = reward_gen.next_bernoulli(0.85) ? 1 : 0;
    rewards[1] = reward_gen.next_bernoulli(0.35) ? 1 : 0;
    engine.step(rewards, process_gen);
  }
  ASSERT_NE(engine.recorder(), nullptr);

  analysis::trace_metadata meta;
  meta.num_nodes = 50;
  meta.num_options = 2;
  meta.max_retries = config.max_retries;
  meta.round_interval = config.round_interval;
  meta.rounds = rounds;
  meta.seed = 3;
  meta.evicted = engine.recorder()->evicted();

  const auto records = engine.recorder()->snapshot();
  ASSERT_GT(records.size(), 0U);
  const analysis::trace_check_result result = analysis::check_trace(meta, records);
  EXPECT_TRUE(result.ok()) << (result.violations.empty()
                                   ? ""
                                   : result.violations.front().invariant + ": " +
                                         result.violations.front().detail);
  EXPECT_EQ(result.records_checked, records.size());
  EXPECT_TRUE(result.skipped.empty());
}

// --- one fixture per invariant ----------------------------------------------

TEST(trace_check, flags_delivery_to_a_crashed_node) {
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(0.1, trace_kind::send, 0, 1, 1),
      rec(0.2, trace_kind::crash, 1),
      rec(0.3, trace_kind::deliver, 1, 0, 1),
  };
  const auto result = analysis::check_trace(small_meta(), records);
  ASSERT_EQ(result.violations.size(), 1U);
  EXPECT_EQ(result.violations[0].invariant, "deliver_to_crashed");
  EXPECT_EQ(result.violations[0].node, 1U);
  EXPECT_EQ(result.violations[0].record_index, 3U);
  EXPECT_DOUBLE_EQ(result.violations[0].time, 0.3);
}

TEST(trace_check, flags_a_delivery_across_the_cut) {
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(0.1, trace_kind::send, 0, 1, 1),
      rec(0.2, trace_kind::partition, 0),  // side A = {0}
      rec(0.3, trace_kind::deliver, 1, 0, 1),
      rec(0.4, trace_kind::heal, 0),
  };
  const auto result = analysis::check_trace(small_meta(), records);
  ASSERT_EQ(result.violations.size(), 1U);
  EXPECT_EQ(result.violations[0].invariant, "cross_partition_deliver");
  EXPECT_EQ(result.violations[0].record_index, 3U);
}

TEST(trace_check, allows_intra_side_delivery_and_post_heal_delivery) {
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(0.1, trace_kind::send, 0, 1, 1),
      rec(0.15, trace_kind::send, 2, 3, 1),
      rec(0.2, trace_kind::partition, 0),
      rec(0.21, trace_kind::partition, 1),  // side A = {0, 1}
      rec(0.3, trace_kind::deliver, 1, 0, 1),  // within side A
      rec(0.4, trace_kind::heal, 0),
      rec(0.5, trace_kind::deliver, 3, 2, 1),  // after the heal
  };
  EXPECT_TRUE(analysis::check_trace(small_meta(), records).ok());
}

TEST(trace_check, flags_adoption_before_any_post_and_outside_the_range) {
  const std::vector<trace_record> early{
      rec(0.5, trace_kind::adopt, 2, 0, 0, /*option*/ 1, /*round*/ 1),
  };
  auto result = analysis::check_trace(small_meta(), early);
  ASSERT_EQ(result.violations.size(), 1U);
  EXPECT_EQ(result.violations[0].invariant, "adopt_posted");

  const std::vector<trace_record> outside{
      post(0.0, 1),
      rec(0.5, trace_kind::adopt, 2, 0, 0, /*option*/ 5, /*round*/ 1),
  };
  result = analysis::check_trace(small_meta(), outside);
  ASSERT_EQ(result.violations.size(), 1U);
  EXPECT_EQ(result.violations[0].invariant, "adopt_posted");
  EXPECT_EQ(result.violations[0].record_index, 1U);
}

TEST(trace_check, flags_a_commit_round_going_backwards) {
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(1.0, trace_kind::commit, 2, 0, 0, 0, /*round*/ 5),
      rec(2.0, trace_kind::adopt, 2, 0, 0, 1, /*round*/ 3),
  };
  const auto result = analysis::check_trace(small_meta(), records);
  ASSERT_EQ(result.violations.size(), 1U);
  EXPECT_EQ(result.violations[0].invariant, "commit_monotone");
  EXPECT_EQ(result.violations[0].node, 2U);
  EXPECT_EQ(result.violations[0].record_index, 2U);
}

TEST(trace_check, crash_resets_the_commit_baseline) {
  // A restart rejoins uncommitted, so an earlier round after a crash is
  // legitimate — the §2.1 state is one integer and it was wiped.
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(1.0, trace_kind::commit, 2, 0, 0, 0, 5),
      rec(2.0, trace_kind::crash, 2),
      rec(3.0, trace_kind::restart, 2),
      rec(4.0, trace_kind::commit, 2, 0, 0, 1, 1),
  };
  EXPECT_TRUE(analysis::check_trace(small_meta(), records).ok());
}

TEST(trace_check, flags_a_blown_retry_budget) {
  // meta: rounds = 2, max_retries = 1, no restarts — budget is
  // (2 + 1) * (1 + 1) = 6 sample requests per node.
  std::vector<trace_record> records{post(0.0, 1)};
  for (int i = 0; i < 7; ++i) {
    records.push_back(rec(0.1 * (i + 1), trace_kind::send, 0, 1,
                          analysis::k_sample_request_kind));
  }
  const auto result = analysis::check_trace(small_meta(), records);
  ASSERT_EQ(result.violations.size(), 1U);
  EXPECT_EQ(result.violations[0].invariant, "retry_budget");
  EXPECT_EQ(result.violations[0].node, 0U);

  // One fewer request fits the budget.
  records.pop_back();
  EXPECT_TRUE(analysis::check_trace(small_meta(), records).ok());
}

TEST(trace_check, restarts_widen_the_retry_budget) {
  std::vector<trace_record> records{post(0.0, 1),
                                    rec(0.05, trace_kind::crash, 0),
                                    rec(0.06, trace_kind::restart, 0)};
  for (int i = 0; i < 7; ++i) {
    records.push_back(rec(0.1 * (i + 1), trace_kind::send, 0, 1,
                          analysis::k_sample_request_kind));
  }
  // 7 requests blow the no-restart budget (6) but fit the one-restart
  // budget ((2 + 1 + 1) * 2 = 8).
  EXPECT_TRUE(analysis::check_trace(small_meta(), records).ok());
}

TEST(trace_check, flags_more_deliveries_than_sends) {
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(0.1, trace_kind::send, 0, 1, 1),
      rec(0.2, trace_kind::deliver, 1, 0, 1),
      rec(0.3, trace_kind::deliver, 1, 0, 1),  // duplicated delivery
  };
  const auto result = analysis::check_trace(small_meta(), records);
  // Both the global ledger and the 0 -> 1 link report it.
  ASSERT_EQ(result.violations.size(), 2U);
  EXPECT_EQ(result.violations[0].invariant, "conservation");
  EXPECT_EQ(result.violations[1].invariant, "conservation");
}

TEST(trace_check, in_flight_messages_are_not_a_conservation_violation) {
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(0.1, trace_kind::send, 0, 1, 1),  // never delivered: in flight
  };
  EXPECT_TRUE(analysis::check_trace(small_meta(), records).ok());
}

TEST(trace_check, ring_evicted_traces_skip_prefix_dependent_invariants) {
  analysis::trace_metadata meta = small_meta();
  meta.evicted = 10;
  // Would violate adopt_posted on a full trace; on an evicted one the post
  // may simply have been lost.
  const std::vector<trace_record> records{
      rec(0.5, trace_kind::adopt, 2, 0, 0, 1, 1),
      rec(0.6, trace_kind::deliver, 1, 0, 1),  // sent before the ring window
  };
  const auto result = analysis::check_trace(meta, records);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.skipped,
            (std::vector<std::string>{"adopt_posted", "retry_budget", "conservation"}));

  // The stateful invariants still run: a crash inside the window is seen.
  const std::vector<trace_record> crashed{
      rec(0.1, trace_kind::crash, 1),
      rec(0.2, trace_kind::deliver, 1, 0, 1),
  };
  const auto still = analysis::check_trace(meta, crashed);
  ASSERT_EQ(still.violations.size(), 1U);
  EXPECT_EQ(still.violations[0].invariant, "deliver_to_crashed");
}

// --- JSONL round-trip and the strict reader ----------------------------------

TEST(trace_io, jsonl_round_trips_metadata_and_records) {
  analysis::trace_metadata meta = small_meta();
  meta.round_interval = 0.25;
  meta.evicted = 3;
  const std::vector<trace_record> records{
      post(0.0, 1),
      rec(0.05171118056444312, trace_kind::send, 156, 85, 1, -2, 7),
      rec(1.5, trace_kind::drop, 1, 0, 0, /*reason*/ 2),
      rec(2.0, trace_kind::adopt, 3, 0, 0, 1, 2),
  };
  std::stringstream stream;
  analysis::write_trace(stream, meta, records);

  const analysis::parsed_trace parsed = analysis::read_trace(stream);
  EXPECT_EQ(parsed.meta, meta);
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed.records[i], records[i]) << "record " << i;
  }
}

TEST(trace_io, reader_rejects_malformed_input_naming_the_line) {
  const auto expect_error = [](const std::string& text, const char* needle) {
    std::istringstream stream{text};
    try {
      (void)analysis::read_trace(stream);
      FAIL() << "expected rejection of: " << text;
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string{error.what()}.find(needle), std::string::npos)
          << "for input: " << text << "\n  raised: " << error.what();
    }
  };
  const std::string header =
      R"({"sociolearn_trace":1,"num_nodes":4,"num_options":3,"max_retries":1,)"
      R"("round_interval":1,"rounds":2,"seed":5,"evicted":0})";

  expect_error("", "empty input");
  expect_error(R"({"num_nodes":4})", "sociolearn_trace");
  expect_error(header + "\n" + R"({"t":0,"kind":"warp","node":0})", "unknown record kind");
  expect_error(header + "\n" + R"({"t":0,"kind":"send","bogus":1})", "unknown record key");
  expect_error(header + "\n" + R"({"t":"zero","kind":"send"})", "unexpected string");
  expect_error(header + "\n" + R"({"t":x,"kind":"send"})", "non-numeric");
  expect_error(header + "\n" + R"({"t":0,"kind":"send"} trailing)", "line 2");
}

TEST(trace_io, stdout_trace_conflict_fires_only_for_dash_plus_check) {
  // `--trace-out -` and `--check-trace` both write stdout; the CLI must
  // refuse the combination instead of interleaving the two documents.
  const std::string conflict = analysis::stdout_trace_conflict("-", true);
  ASSERT_FALSE(conflict.empty());
  EXPECT_NE(conflict.find("stdout"), std::string::npos);
  EXPECT_NE(conflict.find("interleave"), std::string::npos);

  // Every working spelling stays allowed.
  EXPECT_TRUE(analysis::stdout_trace_conflict("-", false).empty());
  EXPECT_TRUE(analysis::stdout_trace_conflict("trace.jsonl", true).empty());
  EXPECT_TRUE(analysis::stdout_trace_conflict("trace.jsonl", false).empty());
  EXPECT_TRUE(analysis::stdout_trace_conflict("", true).empty())
      << "--check-trace alone records to no file and reports to stdout";
}

}  // namespace
