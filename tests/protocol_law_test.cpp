// Statistical law-equivalence between the gossip protocol and the paper's
// §2.1 dynamics.  Labelled `statistical`, NOT `tier1`: a plain `ctest`
// still runs it (it is fully seeded, so reproducible), but the blocking
// CI gate (`ctest -L tier1`) does not — only the dedicated non-blocking
// statistical job and local full runs execute this file.
//
// In the degenerate synchronous configuration — zero latency, zero drops,
// lockstep replies (every SAMPLE_REPLY carries the choice latched at the
// round boundary), fully mixed, deep retry budget — one protocol round
// realizes exactly the two-stage update of §2.1:
//
//   stage 1: with prob. μ consider a uniform option, otherwise copy the
//            choice of a uniformly random committed *other* node of the
//            previous round (retrying past uncommitted nodes up to
//            max_retries, then uniform — with all nodes uncommitted this
//            degenerates to uniform, matching the engine's
//            uniform-after-empty-step law);
//   stage 2: commit with prob. β (good signal) / α (bad), else sit out.
//
// Two checks pin it down, mirroring tests/network_dynamics_test.cpp:
//   1. an EXACT one-round adoption law from the all-uncommitted start,
//      verified by a pooled chi-square test (support/gof) against the
//      closed-form category probabilities;
//   2. a multi-round statistical comparison of the protocol against
//      finite_dynamics (the agent-based engine, fully mixed) on final
//      best-option popularity and adopter counts, within 4.5σ of the
//      difference of means.  Residual model gap: the protocol samples
//      among the OTHER N-1 nodes (no self-copy) and falls back to uniform
//      after max_retries uncommitted replies — both O(1/N)-small here.
//
// Everything is seeded, so the test is deterministic; the tolerances are
// chosen to be CI-stable (several σ of slack at these replication counts).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "protocol/protocol_engine.h"
#include "support/gof.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

protocol::engine_config degenerate_sync(std::size_t m, double mu, double beta,
                                        double alpha) {
  protocol::engine_config config;
  config.dynamics.num_options = m;
  config.dynamics.mu = mu;
  config.dynamics.beta = beta;
  config.dynamics.alpha = alpha;
  config.base_latency = 0.0;
  config.jitter_mean = 0.0;
  config.drop_probability = 0.0;
  config.lockstep = true;
  config.max_retries = 16;
  return config;
}

TEST(protocol_law, one_round_adoption_matches_exact_law_chi_square) {
  // From the all-uncommitted start every stage-1 consideration is uniform
  // (the μ path and the retry-exhausted copy path coincide), so with the
  // fixed signal vector R = (1, 0, 1) each node independently lands in
  // category j with probability (1/m)·(β if R_j else α), and sits out with
  // the complementary mass.  Nodes and replications are independent, so
  // the pooled counts are multinomial — exactly what the chi-square test
  // assumes.
  constexpr std::size_t m = 3;
  constexpr std::size_t num_nodes = 200;
  constexpr int replications = 300;
  constexpr double mu = 0.1;
  constexpr double beta = 0.7;
  constexpr double alpha = 0.3;
  const std::vector<std::uint8_t> rewards{1, 0, 1};

  const protocol::engine_config config = degenerate_sync(m, mu, beta, alpha);
  std::vector<std::uint64_t> observed(m + 1, 0);  // categories + sit-out
  for (int r = 0; r < replications; ++r) {
    protocol::protocol_engine engine{config, num_nodes};
    rng gen = rng::from_stream(314, static_cast<std::uint64_t>(r));
    engine.step(rewards, gen);
    const auto counts = engine.adopter_counts();
    std::uint64_t committed = 0;
    for (std::size_t j = 0; j < m; ++j) {
      observed[j] += counts[j];
      committed += counts[j];
    }
    observed[m] += num_nodes - committed;
  }

  std::vector<double> expected(m + 1, 0.0);
  double commit_mass = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    expected[j] = (rewards[j] != 0 ? beta : alpha) / static_cast<double>(m);
    commit_mass += expected[j];
  }
  expected[m] = 1.0 - commit_mass;

  const gof_result result = chi_square_test(observed, expected);
  EXPECT_GT(result.p_value, 1e-3)
      << "chi-square statistic " << result.statistic
      << " over n = " << num_nodes * replications << " pooled draws";
}

TEST(protocol_law, multi_round_adoption_matches_finite_dynamics) {
  constexpr std::size_t m = 2;
  constexpr std::size_t num_nodes = 250;
  constexpr int replications = 250;
  constexpr int horizon = 25;
  constexpr double mu = 0.08;
  constexpr double beta = 0.7;
  constexpr double alpha = 0.3;
  const std::vector<double> etas{0.8, 0.3};

  const protocol::engine_config config = degenerate_sync(m, mu, beta, alpha);
  core::dynamics_params params = config.dynamics;

  running_stats protocol_pop, protocol_adopt, reference_pop, reference_adopt;
  std::vector<std::uint8_t> rewards(m);

  for (int r = 0; r < replications; ++r) {
    protocol::protocol_engine gossip{config, num_nodes};
    core::finite_dynamics reference{params, num_nodes};
    // Independent process streams and independent (identically distributed)
    // reward streams per engine: the comparison is distributional.
    rng gossip_gen = rng::from_stream(21, static_cast<std::uint64_t>(r));
    rng reference_gen = rng::from_stream(22, static_cast<std::uint64_t>(r));
    rng gossip_env = rng::from_stream(23, static_cast<std::uint64_t>(r));
    rng reference_env = rng::from_stream(24, static_cast<std::uint64_t>(r));
    for (int t = 0; t < horizon; ++t) {
      for (std::size_t j = 0; j < m; ++j) {
        rewards[j] = gossip_env.next_bernoulli(etas[j]) ? 1 : 0;
      }
      gossip.step(rewards, gossip_gen);
      for (std::size_t j = 0; j < m; ++j) {
        rewards[j] = reference_env.next_bernoulli(etas[j]) ? 1 : 0;
      }
      reference.step(rewards, reference_gen);
    }
    const auto gossip_counts = gossip.adopter_counts();
    const auto reference_counts = reference.adopter_counts();
    protocol_pop.add(gossip.popularity()[0]);
    protocol_adopt.add(static_cast<double>(std::accumulate(
        gossip_counts.begin(), gossip_counts.end(), std::uint64_t{0})));
    reference_pop.add(reference.popularity()[0]);
    reference_adopt.add(static_cast<double>(std::accumulate(
        reference_counts.begin(), reference_counts.end(), std::uint64_t{0})));
  }

  const double pop_tolerance =
      4.5 * std::sqrt((protocol_pop.variance() + reference_pop.variance()) /
                      replications);
  const double adopt_tolerance =
      4.5 * std::sqrt((protocol_adopt.variance() + reference_adopt.variance()) /
                      replications);
  EXPECT_NEAR(protocol_pop.mean(), reference_pop.mean(), pop_tolerance);
  EXPECT_NEAR(protocol_adopt.mean(), reference_adopt.mean(), adopt_tolerance);
}

TEST(protocol_law, empty_round_reverts_popularity_to_uniform) {
  // The degenerate analogue of the uniform-after-empty-step law: with
  // α = β = 0 nobody ever commits, every round is empty, and popularity
  // stays uniform — the same pinned semantics as every other engine.
  protocol::engine_config config = degenerate_sync(2, 0.1, 0.0, 0.0);
  protocol::protocol_engine engine{config, 50};
  rng gen{9};
  const std::vector<std::uint8_t> rewards{1, 1};
  for (int t = 1; t <= 15; ++t) {
    engine.step(rewards, gen);
    EXPECT_EQ(engine.empty_steps(), static_cast<std::uint64_t>(t));
    for (const double q : engine.popularity()) EXPECT_DOUBLE_EQ(q, 0.5);
  }
}

}  // namespace
