#include "netsim/simulation.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/graph.h"

namespace sgl::netsim {
namespace {

/// Test node that logs everything it sees and can be scripted.
class probe : public node {
 public:
  void on_start(context& ctx) override {
    ++starts;
    if (timer_on_start > 0.0) ctx.set_timer(timer_on_start, 1);
    if (peer_to_ping != static_cast<node_id>(-1)) {
      message m;
      m.kind = 42;
      m.a = payload;
      ctx.send(peer_to_ping, m);
    }
  }
  void on_message(context& ctx, const message& msg) override {
    received.push_back(msg);
    receive_times.push_back(ctx.now());
    if (echo && msg.kind == 42) {
      message m;
      m.kind = 43;
      m.a = msg.a + 1;
      ctx.send(msg.src, m);
    }
  }
  void on_timer(context& ctx, std::int32_t timer_id) override {
    timer_log.push_back({ctx.now(), timer_id});
    if (rearm && timer_id == 1) ctx.set_timer(timer_on_start, 1);
  }

  int starts = 0;
  double timer_on_start = 0.0;
  bool rearm = false;
  bool echo = false;
  node_id peer_to_ping = static_cast<node_id>(-1);
  std::int64_t payload = 0;
  std::vector<message> received;
  std::vector<double> receive_times;
  std::vector<std::pair<double, std::int32_t>> timer_log;
};

TEST(link_model, validation) {
  link_model links;
  EXPECT_NO_THROW(links.validate());
  links.drop_probability = 1.5;
  EXPECT_THROW(links.validate(), std::invalid_argument);
  links = link_model{};
  links.base_latency = -1.0;
  EXPECT_THROW(links.validate(), std::invalid_argument);
}

TEST(simulation, message_round_trip_with_fixed_latency) {
  simulation sim{1};
  auto a = std::make_unique<probe>();
  auto b = std::make_unique<probe>();
  probe* pa = a.get();
  probe* pb = b.get();
  pa->peer_to_ping = 1;
  pa->payload = 10;
  pb->echo = true;
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  link_model links;
  links.base_latency = 2.0;
  sim.set_link_model(links);
  sim.start();
  sim.run_until(10.0);

  ASSERT_EQ(pb->received.size(), 1U);
  EXPECT_EQ(pb->received[0].kind, 42);
  EXPECT_EQ(pb->received[0].a, 10);
  EXPECT_EQ(pb->received[0].src, 0U);
  EXPECT_DOUBLE_EQ(pb->receive_times[0], 2.0);

  ASSERT_EQ(pa->received.size(), 1U);
  EXPECT_EQ(pa->received[0].kind, 43);
  EXPECT_EQ(pa->received[0].a, 11);
  EXPECT_DOUBLE_EQ(pa->receive_times[0], 4.0);

  EXPECT_EQ(sim.stats().messages_sent, 2U);
  EXPECT_EQ(sim.stats().messages_delivered, 2U);
  EXPECT_EQ(sim.stats().messages_dropped, 0U);
  EXPECT_EQ(sim.stats().bytes_sent(), 2U * message::wire_bytes);
}

TEST(simulation, timers_fire_in_order_and_rearm) {
  simulation sim{2};
  auto n = std::make_unique<probe>();
  probe* p = n.get();
  p->timer_on_start = 1.5;
  p->rearm = true;
  sim.add_node(std::move(n));
  sim.start();
  sim.run_until(7.0);
  ASSERT_EQ(p->timer_log.size(), 4U);  // 1.5, 3.0, 4.5, 6.0
  EXPECT_DOUBLE_EQ(p->timer_log[0].first, 1.5);
  EXPECT_DOUBLE_EQ(p->timer_log[3].first, 6.0);
  EXPECT_EQ(sim.stats().timers_fired, 4U);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);  // clock advanced to the horizon
}

TEST(simulation, full_drop_delivers_nothing) {
  simulation sim{3};
  auto a = std::make_unique<probe>();
  auto b = std::make_unique<probe>();
  a->peer_to_ping = 1;
  probe* pb = b.get();
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  link_model links;
  links.drop_probability = 1.0;
  sim.set_link_model(links);
  sim.start();
  sim.run_until(10.0);
  EXPECT_TRUE(pb->received.empty());
  EXPECT_EQ(sim.stats().messages_sent, 1U);
  EXPECT_EQ(sim.stats().messages_dropped, 1U);
  EXPECT_EQ(sim.stats().messages_delivered, 0U);
}

TEST(simulation, crash_drops_messages_and_timers) {
  simulation sim{4};
  auto a = std::make_unique<probe>();
  auto b = std::make_unique<probe>();
  a->peer_to_ping = 1;
  b->timer_on_start = 5.0;
  probe* pb = b.get();
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  link_model links;
  links.base_latency = 2.0;
  sim.set_link_model(links);
  sim.start();
  sim.crash_node(1);  // before the message at t=2 and the timer at t=5
  sim.run_until(10.0);
  EXPECT_TRUE(pb->received.empty());
  EXPECT_TRUE(pb->timer_log.empty());
  EXPECT_EQ(sim.stats().messages_dropped, 1U);
  EXPECT_FALSE(sim.is_alive(1));
}

TEST(simulation, restart_reruns_on_start_and_invalidates_old_timers) {
  simulation sim{5};
  auto n = std::make_unique<probe>();
  probe* p = n.get();
  p->timer_on_start = 3.0;
  sim.add_node(std::move(n));
  sim.start();
  EXPECT_EQ(p->starts, 1);
  sim.crash_node(0);
  sim.restart_node(0);
  EXPECT_EQ(p->starts, 2);
  sim.run_until(10.0);
  // The pre-crash timer (epoch 0) is stale; only the restart timer fires.
  ASSERT_EQ(p->timer_log.size(), 1U);
  EXPECT_DOUBLE_EQ(p->timer_log[0].first, 3.0);
}

TEST(simulation, topology_restricts_sends) {
  // Path 0-1-2: node 0 pinging node 2 is not allowed; the send throws out
  // of on_start (and hence out of start()).
  const graph::graph path{3, std::vector<graph::graph::edge>{{0, 1}, {1, 2}}};
  simulation sim{6};
  auto a = std::make_unique<probe>();
  a->peer_to_ping = 2;
  sim.add_node(std::move(a));
  sim.add_node(std::make_unique<probe>());
  sim.add_node(std::make_unique<probe>());
  sim.set_topology(&path);
  EXPECT_THROW(sim.start(), std::logic_error);

  // Neighbouring send is fine.
  simulation ok{6};
  auto x = std::make_unique<probe>();
  x->peer_to_ping = 1;
  auto y = std::make_unique<probe>();
  probe* py = y.get();
  ok.add_node(std::move(x));
  ok.add_node(std::move(y));
  ok.add_node(std::make_unique<probe>());
  ok.set_topology(&path);
  ok.start();
  ok.run_until(10.0);
  EXPECT_EQ(py->received.size(), 1U);
}

TEST(simulation, topology_neighbor_lists_are_exposed) {
  const graph::graph star = graph::graph::star(4);
  simulation sim{66};
  class checker : public node {
   public:
    void on_start(context& ctx) override {
      neighbor_count = ctx.neighbors().size();
    }
    void on_message(context&, const message&) override {}
    void on_timer(context&, std::int32_t) override {}
    std::size_t neighbor_count = 0;
  };
  auto hub = std::make_unique<checker>();
  checker* ph = hub.get();
  auto leaf = std::make_unique<checker>();
  checker* pl = leaf.get();
  sim.add_node(std::move(hub));
  sim.add_node(std::move(leaf));
  sim.add_node(std::make_unique<checker>());
  sim.add_node(std::make_unique<checker>());
  sim.set_topology(&star);
  sim.start();
  EXPECT_EQ(ph->neighbor_count, 3U);
  EXPECT_EQ(pl->neighbor_count, 1U);
}

TEST(simulation, topology_node_count_mismatch_throws) {
  const graph::graph ring = graph::graph::ring(5);
  simulation sim{67};
  sim.add_node(std::make_unique<probe>());
  sim.set_topology(&ring);
  EXPECT_THROW(sim.start(), std::invalid_argument);
}

TEST(simulation, neighbors_without_topology_are_all_others) {
  simulation sim{7};
  class checker : public node {
   public:
    void on_start(context& ctx) override {
      neighbor_count = ctx.neighbors().size();
      total = ctx.num_nodes();
    }
    void on_message(context&, const message&) override {}
    void on_timer(context&, std::int32_t) override {}
    std::size_t neighbor_count = 0;
    std::size_t total = 0;
  };
  auto n = std::make_unique<checker>();
  checker* p = n.get();
  sim.add_node(std::move(n));
  for (int i = 0; i < 4; ++i) sim.add_node(std::make_unique<checker>());
  sim.start();
  EXPECT_EQ(p->neighbor_count, 4U);
  EXPECT_EQ(p->total, 5U);
}

TEST(simulation, deterministic_with_same_seed) {
  const auto run = [](std::uint64_t seed) {
    simulation sim{seed};
    auto a = std::make_unique<probe>();
    a->peer_to_ping = 1;
    auto b = std::make_unique<probe>();
    b->echo = true;
    probe* pa = a.get();
    sim.add_node(std::move(a));
    sim.add_node(std::move(b));
    link_model links;
    links.base_latency = 0.5;
    links.jitter_mean = 1.0;
    sim.set_link_model(links);
    sim.start();
    sim.run_until(50.0);
    return std::make_pair(pa->receive_times, sim.trace_hash());
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
  // The trace hash alone distinguishes the runs, too.
  EXPECT_NE(run(11).second, run(12).second);
}

TEST(simulation, lifecycle_errors) {
  simulation sim{8};
  EXPECT_THROW(sim.start(), std::logic_error);  // no nodes
  sim.add_node(std::make_unique<probe>());
  EXPECT_THROW(sim.run_until(1.0), std::logic_error);  // not started
  sim.start();
  EXPECT_THROW(sim.add_node(std::make_unique<probe>()), std::logic_error);
  EXPECT_THROW(sim.run_until(-1.0), std::invalid_argument);
  EXPECT_THROW(sim.crash_node(9), std::out_of_range);
  EXPECT_THROW((void)sim.is_alive(9), std::out_of_range);
  EXPECT_THROW((void)sim.get_node(9), std::out_of_range);
}

TEST(simulation, partition_blocks_cross_cut_messages) {
  simulation sim{60};
  auto a = std::make_unique<probe>();
  a->peer_to_ping = 1;
  auto b = std::make_unique<probe>();
  b->echo = true;
  probe* pb = b.get();
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  link_model links;
  links.base_latency = 1.0;
  sim.set_link_model(links);
  sim.start();

  // Partition before the in-flight message (sent at t=0) is delivered.
  const std::vector<node_id> side{0};
  sim.partition(side);
  EXPECT_TRUE(sim.is_partitioned());
  sim.run_until(5.0);
  EXPECT_TRUE(pb->received.empty());
  EXPECT_EQ(sim.stats().messages_dropped, 1U);
}

TEST(simulation, heal_partition_restores_delivery) {
  simulation sim{61};
  auto a = std::make_unique<probe>();
  auto b = std::make_unique<probe>();
  b->echo = true;
  probe* pa = a.get();
  probe* pb = b.get();
  // a pings on a timer so we can heal before it fires.
  a->timer_on_start = 2.0;
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  link_model links;
  links.base_latency = 0.5;
  sim.set_link_model(links);
  sim.start();
  sim.partition(std::vector<node_id>{0});
  sim.heal_partition();
  EXPECT_FALSE(sim.is_partitioned());
  // Manually drive a send after healing via the probe's echo path.
  (void)pa;
  (void)pb;
  sim.run_until(10.0);
  EXPECT_EQ(sim.stats().messages_dropped, 0U);
}

TEST(simulation, intra_side_traffic_survives_partition) {
  simulation sim{62};
  auto a = std::make_unique<probe>();
  a->peer_to_ping = 1;  // same side
  auto b = std::make_unique<probe>();
  probe* pb = b.get();
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  sim.add_node(std::make_unique<probe>());  // the other side
  sim.start();
  sim.partition(std::vector<node_id>{0, 1});
  sim.run_until(10.0);
  EXPECT_EQ(pb->received.size(), 1U);
}

TEST(simulation, partition_validates_ids) {
  simulation sim{63};
  sim.add_node(std::make_unique<probe>());
  EXPECT_THROW(sim.partition(std::vector<node_id>{5}), std::out_of_range);
}

TEST(simulation, partition_while_partitioned_throws) {
  simulation sim{64};
  sim.add_node(std::make_unique<probe>());
  sim.add_node(std::make_unique<probe>());
  sim.start();
  sim.partition(std::vector<node_id>{0});
  // Overlapping cuts would silently overwrite the side assignment; the
  // caller must heal first.
  EXPECT_THROW(sim.partition(std::vector<node_id>{1}), std::logic_error);
  sim.heal_partition();
  EXPECT_NO_THROW(sim.partition(std::vector<node_id>{1}));
}

TEST(simulation, heal_without_partition_is_a_noop) {
  simulation sim{65};
  sim.add_node(std::make_unique<probe>());
  sim.start();
  EXPECT_NO_THROW(sim.heal_partition());
  EXPECT_FALSE(sim.is_partitioned());
}

TEST(simulation, crash_of_crashed_node_is_a_noop) {
  simulation sim{68};
  auto n = std::make_unique<probe>();
  probe* p = n.get();
  p->timer_on_start = 3.0;
  sim.add_node(std::move(n));
  sim.start();
  sim.crash_node(0);
  // Second crash must not bump the epoch again: the restart below re-arms
  // one timer, and exactly that one timer must fire.
  sim.crash_node(0);
  sim.restart_node(0);
  EXPECT_EQ(p->starts, 2);
  sim.run_until(10.0);
  ASSERT_EQ(p->timer_log.size(), 1U);
  EXPECT_DOUBLE_EQ(p->timer_log[0].first, 3.0);
}

TEST(simulation, restart_of_alive_node_is_a_noop) {
  simulation sim{69};
  auto n = std::make_unique<probe>();
  probe* p = n.get();
  p->timer_on_start = 3.0;
  sim.add_node(std::move(n));
  sim.start();
  EXPECT_EQ(p->starts, 1);
  // on_start must not run twice for an alive node, and the original timer
  // stays valid (no epoch bump).
  sim.restart_node(0);
  EXPECT_EQ(p->starts, 1);
  sim.run_until(10.0);
  ASSERT_EQ(p->timer_log.size(), 1U);
}

TEST(simulation, step_one_processes_single_event) {
  simulation sim{9};
  auto n = std::make_unique<probe>();
  probe* p = n.get();
  p->timer_on_start = 1.0;
  p->rearm = true;
  sim.add_node(std::move(n));
  sim.start();
  EXPECT_TRUE(sim.step_one());
  EXPECT_EQ(p->timer_log.size(), 1U);
  EXPECT_TRUE(sim.step_one());
  EXPECT_EQ(p->timer_log.size(), 2U);
}

TEST(simulation, exponential_jitter_delays_messages) {
  simulation sim{10};
  auto a = std::make_unique<probe>();
  a->peer_to_ping = 1;
  auto b = std::make_unique<probe>();
  probe* pb = b.get();
  sim.add_node(std::move(a));
  sim.add_node(std::move(b));
  link_model links;
  links.base_latency = 1.0;
  links.jitter_mean = 2.0;
  sim.set_link_model(links);
  sim.start();
  sim.run_until(1000.0);
  ASSERT_EQ(pb->receive_times.size(), 1U);
  EXPECT_GT(pb->receive_times[0], 1.0);  // jitter strictly positive a.s.
}

}  // namespace
}  // namespace sgl::netsim
