// Schedule-invariance of the amortized Monte-Carlo harness (PR 4).
//
// Three laws are pinned here:
//   1. Registry-wide golden run — every named scenario (shrunk to
//      unit-test size), 2 replications, must hash to the values captured
//      from the PRE-PR-4 harness, for threads 1 and 4 and with engine
//      reuse on and off.  This is the proof that the persistent pool, the
//      context reuse and the sweep scheduler changed wall clock only.
//   2. The reset()-reuse law — for every engine kind, a fresh engine and a
//      used-then-reset() engine produce identical trajectories from the
//      same stream, and engines report reusable() exactly when that holds.
//   3. The flattened sweep scheduler returns, per grid point, bit-identical
//      probes to running each point alone through run_probes — again for
//      any thread count and reuse setting — and shares built topologies
//      across points via the keyed cache.
//
// Regenerating the golden table (ONLY when an intentional
// bit-compatibility break ships): run every registry scenario through
// shrink() + run_probes with golden_config(1, true) below, hash
// dump_reports() with fnv1a(), and replace the table — ideally with a
// binary built from the commit *before* the behavioural change, so the
// table keeps pinning the old outputs unless the break is deliberate.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/experiment.h"
#include "core/finite_dynamics.h"
#include "core/grouped_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/params.h"
#include "core/probe.h"
#include "graph/graph.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "scenario/sweep.h"
#include "support/rng.h"

namespace {

using namespace sgl;

// --- canonical probe-report dump + hash (must match the capture tool) -------

scenario::scenario_spec shrink(scenario::scenario_spec spec) {
  if (spec.num_agents > 2000) spec.num_agents = 2000;
  // The golden hashes pin the scalar v2 stream derivation; kernel = auto
  // would pick the v3 SIMD kernel (a different trajectory) on hosts with a
  // vector ISA.  v3's own laws are tested in kernel_property_test /
  // kernel_law_test.
  spec.engine_kernel = core::kernel_kind::scalar;
  return spec;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

std::string dump_reports(const core::probe_list& probes) {
  std::string out;
  for (const auto& probe : probes) {
    const core::probe_report report = probe->report();
    out += report.probe;
    out += '\n';
    for (const auto& scalar : report.scalars) {
      out += scalar.key;
      out += '=';
      append_double(out, scalar.value);
      if (scalar.has_ci) {
        out += "+-";
        append_double(out, scalar.half_width);
      }
      out += '\n';
    }
    for (const auto& series : report.series) {
      out += series.key;
      out += "=[";
      for (std::size_t i = 0; i < series.values.size(); ++i) {
        if (i != 0) out += ',';
        append_double(out, series.values[i]);
      }
      out += "]\n";
    }
  }
  return out;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Captured from the harness as of PR 3 (horizon 40, 2 replications,
// seed 7, each scenario's default probes, num_agents capped at 2000).
// Any change here is a break in bit-compatibility with every experiment
// recorded before PR 4.
const std::map<std::string, std::uint64_t>& golden_hashes() {
  static const std::map<std::string, std::uint64_t> golden{
      {"quickstart", 0xc3608dc104f28a7aULL},
      {"theorem-infinite", 0x551e80674b435a39ULL},
      {"theorem-finite", 0x6fb83e153d3361a3ULL},
      {"nonuniform-start", 0xb19fb10090b612b9ULL},
      {"ef-exclusive", 0xd7acf835755c47bbULL},
      {"switching-stocks", 0x9fa0f457cc2a5afcULL},
      {"drifting-crossover", 0x066502c44bdda652ULL},
      {"ring", 0x737109d56b618d57ULL},
      {"small-world", 0x7fed3ab830745098ULL},
      {"two-cliques", 0x9911e150972b1389ULL},
      {"torus", 0xa813d762f4d0e746ULL},
      {"network_ring_1e5", 0x4eafe1226b9d8fd1ULL},
      {"network_ba_1e6", 0xd0ad9d6c92dd9b1fULL},
      {"network_smallworld_1e6", 0x6aa90ffc580faf9aULL},
      // Protocol scenarios (captured at their introduction, same recipe;
      // pinned for threads 1/4 x reuse on/off like every other entry).
      {"gossip_sensor_1e4", 0x9da69ff016826b51ULL},
      {"gossip_lossy_sweep", 0xb11ed27a37aa3254ULL},
      {"gossip_crash_recovery", 0xb685e7730fef8668ULL},
      {"gossip_ring_300", 0xfe7534e2f5d77a62ULL},
      {"gossip_sync_ideal", 0x45ff2dc5d0f3003aULL},
      // Nemesis scenarios (faults.* schedules; captured at their
      // introduction).  Scheduled faults are first-class (time, seq) events
      // and fractional waves draw from a dedicated stream, so these hashes
      // pin the fault timeline as well as the dynamics.
      {"gossip_partition_heal", 0x032e6b7e8b740ab3ULL},
      {"gossip_crash_waves", 0xadbe1edec65331d3ULL},
      {"gossip_degraded_links", 0xc08c536a76a814d6ULL},
      {"mixed_baseline", 0x6fb83e153d3361a3ULL},
      {"switching_recovery", 0x4f7edc6c417486e9ULL},
      {"two_cliques_consensus", 0x8f5a35a4ee114aa2ULL},
      {"drift_tracking_1e5", 0x42f49b5ffa3a4f71ULL},
      {"mixture-discernment", 0x1111f9065abc8130ULL},
  };
  return golden;
}

core::run_config golden_config(unsigned threads, bool reuse) {
  core::run_config config;
  config.horizon = 40;
  config.replications = 2;
  config.seed = 7;
  config.threads = threads;
  config.reuse = reuse;
  return config;
}

TEST(harness_golden, registry_bit_identical_across_threads_and_reuse) {
  const auto& golden = golden_hashes();
  std::size_t covered = 0;
  for (const auto& spec : scenario::all_scenarios()) {
    const auto it = golden.find(spec.name);
    ASSERT_NE(it, golden.end())
        << "scenario '" << spec.name
        << "' has no golden hash; regenerate the table (see the capture "
           "recipe in this file's header)";
    ++covered;
    const scenario::scenario_spec small = shrink(spec);
    for (const unsigned threads : {1U, 4U}) {
      for (const bool reuse : {true, false}) {
        const core::probe_list merged =
            scenario::run_probes(small, golden_config(threads, reuse));
        EXPECT_EQ(fnv1a(dump_reports(merged)), it->second)
            << "scenario '" << spec.name << "' diverged from the pre-PR-4 "
            << "harness with threads=" << threads << " reuse=" << reuse;
      }
    }
  }
  // The table must shrink when scenarios are retired, too.
  EXPECT_EQ(covered, golden.size());
}

// --- the reset()-reuse law ---------------------------------------------------

core::dynamics_params test_params(std::size_t m) {
  core::dynamics_params params;
  params.num_options = m;
  params.beta = 0.65;
  params.mu = 0.05;
  return params;
}

/// Drives `engine` for `horizon` steps from fixed streams and returns the
/// flattened popularity trajectory plus the counters.
std::vector<double> trajectory_of(core::dynamics_engine& engine, std::uint64_t horizon,
                                  std::uint64_t seed) {
  rng reward_gen = rng::from_stream(seed, 0);
  rng process_gen = rng::from_stream(seed, 1);
  std::vector<std::uint8_t> rewards(engine.num_options());
  std::vector<double> out;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    for (auto& r : rewards) r = reward_gen.next_bernoulli(0.6) ? 1 : 0;
    engine.step(rewards, process_gen);
    for (const double q : engine.popularity()) out.push_back(q);
  }
  out.push_back(static_cast<double>(engine.empty_steps()));
  out.push_back(static_cast<double>(engine.steps()));
  return out;
}

/// The law itself: run a fresh engine; run the same engine again after
/// reset(); both trajectories must match a second fresh engine bit for bit.
template <typename MakeEngine>
void expect_reset_reuse_law(MakeEngine make_engine, std::uint64_t horizon = 60) {
  auto reused = make_engine();
  ASSERT_TRUE(reused->reusable());
  const std::vector<double> first = trajectory_of(*reused, horizon, 11);
  reused->reset();
  const std::vector<double> again = trajectory_of(*reused, horizon, 11);
  auto fresh = make_engine();
  const std::vector<double> reference = trajectory_of(*fresh, horizon, 11);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(again, reference);
}

TEST(reset_reuse_law, aggregate) {
  expect_reset_reuse_law(
      [] { return std::make_unique<core::aggregate_dynamics>(test_params(4), 500); });
}

TEST(reset_reuse_law, infinite) {
  expect_reset_reuse_law(
      [] { return std::make_unique<core::infinite_dynamics>(test_params(4)); });
}

TEST(reset_reuse_law, grouped) {
  expect_reset_reuse_law([] {
    return std::make_unique<core::grouped_dynamics>(
        test_params(3),
        std::vector<core::rule_group>{{200, {0.1, 0.9}}, {300, {0.35, 0.65}}});
  });
}

TEST(reset_reuse_law, finite_mixed_homogeneous) {
  expect_reset_reuse_law(
      [] { return std::make_unique<core::finite_dynamics>(test_params(4), 400); });
}

TEST(reset_reuse_law, finite_per_agent_rules) {
  expect_reset_reuse_law([] {
    auto engine = std::make_unique<core::finite_dynamics>(test_params(3), 120);
    std::vector<core::adoption_rule> rules(120);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      rules[i] = i % 2 == 0 ? core::adoption_rule{0.1, 0.9} : core::adoption_rule{0.3, 0.7};
    }
    engine->set_agent_rules(std::move(rules));
    return engine;
  });
}

TEST(reset_reuse_law, finite_network_sparse_and_dense) {
  static const graph::graph ring = graph::graph::ring(300);
  expect_reset_reuse_law([] {
    auto engine = std::make_unique<core::finite_dynamics>(test_params(2), 300);
    engine->set_topology(&ring);
    return engine;
  });
  static const graph::graph cliques = graph::graph::two_cliques(150, 2);
  expect_reset_reuse_law([] {
    auto engine = std::make_unique<core::finite_dynamics>(test_params(2), 300);
    engine->set_topology(&cliques);
    return engine;
  });
}

TEST(reset_reuse_law, custom_starts_disable_reuse) {
  core::infinite_dynamics infinite{test_params(4)};
  EXPECT_TRUE(infinite.reusable());
  const std::vector<double> start{0.7, 0.1, 0.1, 0.1};
  infinite.reset(std::span<const double>{start});
  EXPECT_FALSE(infinite.reusable()) << "reset() returns to uniform, not to `start`";

  core::aggregate_dynamics aggregate{test_params(4), 100};
  EXPECT_TRUE(aggregate.reusable());
  const std::vector<std::uint64_t> counts{40, 30, 20, 10};
  aggregate.reset(std::span<const std::uint64_t>{counts});
  EXPECT_FALSE(aggregate.reusable());
}

// --- the sweep scheduler -----------------------------------------------------

TEST(run_sweep, bit_identical_to_sequential_run_probes) {
  const scenario::scenario_spec base = scenario::get_scenario("mixed_baseline");
  std::vector<scenario::sweep_axis> axes;
  axes.push_back(scenario::parse_sweep_axis("params.beta=0.6,0.65"));
  axes.push_back(scenario::parse_sweep_axis("num_agents=500,1000"));
  const auto grid = scenario::expand_sweep(axes);
  ASSERT_EQ(grid.size(), 4U);
  const std::vector<std::string> probes{"regret", "final_histogram"};

  core::run_config config;
  config.horizon = 60;
  config.replications = 5;
  config.seed = 3;

  // The reference: each point alone, single-threaded, through run_probes.
  std::vector<std::string> reference;
  for (const auto& assignments : grid) {
    scenario::scenario_spec point = base;
    for (const auto& [key, value] : assignments) {
      scenario::apply_override(point, key, value);
    }
    config.threads = 1;
    reference.push_back(dump_reports(scenario::run_probes(point, config, probes)));
  }

  for (const unsigned threads : {1U, 4U}) {
    for (const bool reuse : {true, false}) {
      config.threads = threads;
      config.reuse = reuse;
      const auto results = scenario::run_sweep(base, grid, config, probes);
      ASSERT_EQ(results.size(), grid.size());
      for (std::size_t p = 0; p < results.size(); ++p) {
        EXPECT_EQ(results[p].assignments, grid[p]);
        EXPECT_EQ(dump_reports(results[p].probes), reference[p])
            << "point " << p << " threads=" << threads << " reuse=" << reuse;
      }
    }
  }
}

TEST(run_sweep, empty_grid_is_one_point_and_matches_run_probes) {
  const scenario::scenario_spec base = scenario::get_scenario("theorem-finite");
  core::run_config config;
  config.horizon = 50;
  config.replications = 4;
  config.seed = 5;
  config.threads = 1;
  const auto results = scenario::run_sweep(base, {}, config);
  ASSERT_EQ(results.size(), 1U);
  EXPECT_TRUE(results[0].assignments.empty());
  EXPECT_EQ(dump_reports(results[0].probes),
            dump_reports(scenario::run_probes(base, config)));
}

TEST(run_sweep, empty_trailing_shards_still_match_run_probes) {
  // 65 replications: reduce_layout gives 64 shards of chunk 2, so shards
  // 33..63 cover no replications.  Their accumulators must still merge
  // (as run_with_probes merges its empty shards) without ever borrowing
  // an engine, and the result must stay bit-identical.
  const scenario::scenario_spec base = scenario::get_scenario("theorem-finite");
  core::run_config config;
  config.horizon = 10;
  config.replications = 65;
  config.seed = 13;
  config.threads = 1;
  const std::string reference = dump_reports(scenario::run_probes(base, config));
  for (const unsigned threads : {1U, 4U}) {
    config.threads = threads;
    const auto results = scenario::run_sweep(base, {}, config);
    ASSERT_EQ(results.size(), 1U);
    EXPECT_EQ(dump_reports(results[0].probes), reference) << "threads=" << threads;
  }
}

TEST(run_sweep, validates_every_point_before_running) {
  const scenario::scenario_spec base = scenario::get_scenario("mixed_baseline");
  std::vector<std::vector<std::pair<std::string, std::string>>> grid;
  grid.push_back({{"params.beta", "0.6"}});
  grid.push_back({{"params.beta", "1.5"}});  // invalid: beta must be < 1
  core::run_config config;
  config.horizon = 10;
  config.replications = 2;
  EXPECT_THROW((void)scenario::run_sweep(base, grid, config), std::invalid_argument);
}

TEST(run_sweep, topology_cache_shares_graphs_across_points) {
  const scenario::scenario_spec base = scenario::get_scenario("small-world");
  std::vector<scenario::sweep_axis> axes;
  axes.push_back(scenario::parse_sweep_axis("params.beta=0.6,0.62,0.64,0.66"));
  const auto grid = scenario::expand_sweep(axes);
  core::run_config config;
  config.horizon = 10;
  config.replications = 2;
  config.seed = 2;

  const scenario::topology_cache_stats before = scenario::shared_topology_stats();
  (void)scenario::run_sweep(base, grid, config);
  const scenario::topology_cache_stats after = scenario::shared_topology_stats();
  // Four points, one topology key: at most one build, at least three hits.
  EXPECT_LE(after.misses - before.misses, 1U);
  EXPECT_GE(after.hits - before.hits, 3U);
}

// --- the harness reuses contexts, not streams --------------------------------

TEST(run_config_reuse, off_matches_on_bit_for_bit) {
  const scenario::scenario_spec spec = scenario::get_scenario("ring");
  core::run_config config;
  config.horizon = 80;
  config.replications = 6;
  config.seed = 9;
  config.reuse = true;
  const std::string with_reuse = dump_reports(scenario::run_probes(spec, config));
  config.reuse = false;
  const std::string without_reuse = dump_reports(scenario::run_probes(spec, config));
  EXPECT_EQ(with_reuse, without_reuse);
}

}  // namespace
