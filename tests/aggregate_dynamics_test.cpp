#include "core/aggregate_dynamics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "support/gof.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::core {
namespace {

dynamics_params make_params(std::size_t m, double mu, double beta, double alpha = -1.0) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

TEST(aggregate_dynamics, initial_state) {
  const aggregate_dynamics dyn{make_params(4, 0.1, 0.6), 1000};
  EXPECT_EQ(dyn.num_agents(), 1000U);
  EXPECT_EQ(dyn.adopters(), 0U);
  for (const double q : dyn.popularity()) EXPECT_DOUBLE_EQ(q, 0.25);
}

TEST(aggregate_dynamics, invariants_hold_across_steps) {
  aggregate_dynamics dyn{make_params(3, 0.08, 0.62), 5000};
  rng gen{1};
  rng env_gen{2};
  std::vector<std::uint8_t> r(3);
  for (int t = 0; t < 500; ++t) {
    for (auto& x : r) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
    dyn.step(r, gen);
    const auto s = dyn.stage_counts();
    EXPECT_EQ(std::accumulate(s.begin(), s.end(), std::uint64_t{0}), 5000U);
    const auto d = dyn.adopter_counts();
    std::uint64_t adopters = 0;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_LE(d[j], s[j]);
      adopters += d[j];
    }
    EXPECT_EQ(adopters, dyn.adopters());
    double total = 0.0;
    for (const double q : dyn.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(aggregate_dynamics, pure_copy_never_empty) {
  aggregate_dynamics dyn{make_params(2, 0.3, 1.0, 1.0), 100};
  rng gen{3};
  for (int t = 0; t < 200; ++t) {
    dyn.step(std::vector<std::uint8_t>{0, 0}, gen);
    EXPECT_EQ(dyn.adopters(), 100U);
  }
  EXPECT_EQ(dyn.empty_steps(), 0U);
}

TEST(aggregate_dynamics, empty_population_rule) {
  aggregate_dynamics dyn{make_params(2, 0.5, 1.0, 0.0), 40};
  rng gen{4};
  dyn.step(std::vector<std::uint8_t>{0, 0}, gen);
  EXPECT_EQ(dyn.adopters(), 0U);
  EXPECT_EQ(dyn.empty_steps(), 1U);
  EXPECT_DOUBLE_EQ(dyn.popularity()[0], 0.5);
}

TEST(aggregate_dynamics, reset_from_counts) {
  aggregate_dynamics dyn{make_params(3, 0.1, 0.6), 100};
  const std::vector<std::uint64_t> counts{10, 30, 20};
  dyn.reset(counts);
  EXPECT_EQ(dyn.adopters(), 60U);
  EXPECT_DOUBLE_EQ(dyn.popularity()[1], 0.5);
  EXPECT_EQ(dyn.steps(), 0U);

  EXPECT_THROW(dyn.reset(std::vector<std::uint64_t>{200, 0, 0}), std::invalid_argument);
  EXPECT_THROW(dyn.reset(std::vector<std::uint64_t>{1, 2}), std::invalid_argument);
}

TEST(aggregate_dynamics, reset_from_zero_counts_is_uniform) {
  aggregate_dynamics dyn{make_params(2, 0.1, 0.6), 100};
  dyn.reset(std::vector<std::uint64_t>{0, 0});
  EXPECT_DOUBLE_EQ(dyn.popularity()[0], 0.5);
  EXPECT_EQ(dyn.adopters(), 0U);
}

TEST(aggregate_dynamics, converges_to_best_option) {
  const dynamics_params params = theorem_params(5, 0.62);
  aggregate_dynamics dyn{params, 20000};
  rng gen{5};
  rng env_gen{6};
  const std::vector<double> etas{0.9, 0.3, 0.3, 0.3, 0.3};
  std::vector<std::uint8_t> r(5);
  running_stats late;
  for (int t = 0; t < 1200; ++t) {
    for (std::size_t j = 0; j < 5; ++j) r[j] = env_gen.next_bernoulli(etas[j]) ? 1 : 0;
    dyn.step(r, gen);
    if (t >= 600) late.add(dyn.popularity()[0]);
  }
  EXPECT_GT(late.mean(), 0.8);
}

TEST(aggregate_dynamics, rejects_bad_construction) {
  EXPECT_THROW((aggregate_dynamics{make_params(2, 0.1, 0.6), 0}), std::invalid_argument);
  aggregate_dynamics dyn{make_params(2, 0.1, 0.6), 10};
  rng gen{7};
  EXPECT_THROW(dyn.step(std::vector<std::uint8_t>{1, 0, 1}, gen), std::invalid_argument);
}

// --- distributional equality with the agent-based engine -------------------------

/// Two-sample chi-square homogeneity test over categorical outcomes.
gof_result two_sample_chi_square(const std::map<std::uint64_t, std::uint64_t>& a,
                                 const std::map<std::uint64_t, std::uint64_t>& b) {
  std::map<std::uint64_t, std::pair<double, double>> joint;
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [k, c] : a) {
    joint[k].first += static_cast<double>(c);
    na += static_cast<double>(c);
  }
  for (const auto& [k, c] : b) {
    joint[k].second += static_cast<double>(c);
    nb += static_cast<double>(c);
  }
  double stat = 0.0;
  double dof = -1.0;
  for (const auto& [k, counts] : joint) {
    const double total = counts.first + counts.second;
    if (total < 10.0) continue;  // skip sparse cells
    const double ea = total * na / (na + nb);
    const double eb = total * nb / (na + nb);
    stat += (counts.first - ea) * (counts.first - ea) / ea +
            (counts.second - eb) * (counts.second - eb) / eb;
    dof += 1.0;
  }
  if (dof < 1.0) return {.statistic = 0.0, .p_value = 1.0};
  return {.statistic = stat, .p_value = 1.0 - chi_square_cdf(stat, dof)};
}

TEST(aggregate_dynamics, same_law_as_agent_based_one_step) {
  // Encode the full one-step outcome (D_0, D_1) after a fixed signal vector
  // and compare the two engines' outcome distributions.
  const dynamics_params params = make_params(2, 0.2, 0.7);
  constexpr std::uint64_t n = 8;
  constexpr int reps = 30000;
  const std::vector<std::uint8_t> r{1, 0};

  std::map<std::uint64_t, std::uint64_t> agent_hist;
  std::map<std::uint64_t, std::uint64_t> aggregate_hist;
  for (int rep = 0; rep < reps; ++rep) {
    rng g1 = rng::from_stream(100, static_cast<std::uint64_t>(rep));
    finite_dynamics agent{params, n};
    agent.step(r, g1);
    const std::uint64_t key_a = agent.adopter_counts()[0] * 16 + agent.adopter_counts()[1];
    ++agent_hist[key_a];

    rng g2 = rng::from_stream(200, static_cast<std::uint64_t>(rep));
    aggregate_dynamics agg{params, n};
    agg.step(r, g2);
    const std::uint64_t key_b = agg.adopter_counts()[0] * 16 + agg.adopter_counts()[1];
    ++aggregate_hist[key_b];
  }
  const gof_result res = two_sample_chi_square(agent_hist, aggregate_hist);
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

TEST(aggregate_dynamics, same_law_as_agent_based_three_steps) {
  // After three steps with a fixed signal schedule the joint outcome is the
  // popularity-count vector; the two engines must still agree in law.
  const dynamics_params params = make_params(3, 0.15, 0.65);
  constexpr std::uint64_t n = 6;
  constexpr int reps = 20000;
  const std::vector<std::vector<std::uint8_t>> schedule{{1, 0, 0}, {0, 1, 0}, {1, 0, 1}};

  std::map<std::uint64_t, std::uint64_t> agent_hist;
  std::map<std::uint64_t, std::uint64_t> aggregate_hist;
  for (int rep = 0; rep < reps; ++rep) {
    rng g1 = rng::from_stream(300, static_cast<std::uint64_t>(rep));
    finite_dynamics agent{params, n};
    for (const auto& r : schedule) agent.step(r, g1);
    const auto da = agent.adopter_counts();
    ++agent_hist[(da[0] * 8 + da[1]) * 8 + da[2]];

    rng g2 = rng::from_stream(400, static_cast<std::uint64_t>(rep));
    aggregate_dynamics agg{params, n};
    for (const auto& r : schedule) agg.step(r, g2);
    const auto db = agg.adopter_counts();
    ++aggregate_hist[(db[0] * 8 + db[1]) * 8 + db[2]];
  }
  const gof_result res = two_sample_chi_square(agent_hist, aggregate_hist);
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

TEST(aggregate_dynamics, matches_agent_based_mean_trajectory) {
  // Larger population, stochastic environment: the mean popularity of the
  // best option after 30 steps must agree across engines.
  const dynamics_params params = theorem_params(3, 0.65);
  constexpr std::uint64_t n = 400;
  constexpr int reps = 300;
  const std::vector<double> etas{0.8, 0.4, 0.4};

  running_stats agent_mass;
  running_stats aggregate_mass;
  for (int rep = 0; rep < reps; ++rep) {
    rng env1 = rng::from_stream(500, static_cast<std::uint64_t>(rep));
    rng g1 = rng::from_stream(600, static_cast<std::uint64_t>(rep));
    finite_dynamics agent{params, n};
    std::vector<std::uint8_t> r(3);
    for (int t = 0; t < 30; ++t) {
      for (std::size_t j = 0; j < 3; ++j) r[j] = env1.next_bernoulli(etas[j]) ? 1 : 0;
      agent.step(r, g1);
    }
    agent_mass.add(agent.popularity()[0]);

    rng env2 = rng::from_stream(500, static_cast<std::uint64_t>(rep));  // same rewards
    rng g2 = rng::from_stream(700, static_cast<std::uint64_t>(rep));
    aggregate_dynamics agg{params, n};
    for (int t = 0; t < 30; ++t) {
      for (std::size_t j = 0; j < 3; ++j) r[j] = env2.next_bernoulli(etas[j]) ? 1 : 0;
      agg.step(r, g2);
    }
    aggregate_mass.add(agg.popularity()[0]);
  }
  const double se = std::sqrt(agent_mass.variance() / reps +
                              aggregate_mass.variance() / reps);
  EXPECT_NEAR(agent_mass.mean(), aggregate_mass.mean(), 4.0 * se + 0.01);
}

}  // namespace
}  // namespace sgl::core
