// Tests for the extension modules: the Markov regime-switching environment,
// the EXP3 bandit baseline, and the deterministic mean-field limit map.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/exp3.h"
#include "core/infinite_dynamics.h"
#include "core/mean_field.h"
#include "core/params.h"
#include "env/markov_rewards.h"
#include "env/reward_model.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl {
namespace {

// --- markov_rewards -----------------------------------------------------------

env::markov_rewards make_two_regime(std::uint64_t horizon, std::uint64_t seed,
                                    double stay = 0.95) {
  // Bull: option 0 good; bear: option 1 good.
  return env::markov_rewards{{{0.85, 0.3}, {0.3, 0.85}},
                             {{stay, 1.0 - stay}, {1.0 - stay, stay}},
                             horizon,
                             seed};
}

TEST(markov_rewards, path_is_deterministic_given_seed) {
  const auto a = make_two_regime(500, 42);
  const auto b = make_two_regime(500, 42);
  for (std::uint64_t t = 1; t <= 500; ++t) {
    ASSERT_EQ(a.regime_at(t), b.regime_at(t));
  }
  const auto c = make_two_regime(500, 43);
  std::uint64_t diffs = 0;
  for (std::uint64_t t = 1; t <= 500; ++t) {
    if (a.regime_at(t) != c.regime_at(t)) ++diffs;
  }
  EXPECT_GT(diffs, 0U);
}

TEST(markov_rewards, starts_in_regime_zero_and_switches) {
  const auto model = make_two_regime(2000, 7);
  EXPECT_EQ(model.regime_at(1), 0U);
  // With stay = 0.95 over 2000 steps we expect ~100 switches.
  EXPECT_GT(model.num_switches(), 40U);
  EXPECT_LT(model.num_switches(), 250U);
}

TEST(markov_rewards, means_follow_the_regime_path) {
  const auto model = make_two_regime(300, 11);
  for (std::uint64_t t = 1; t <= 300; ++t) {
    const double expected0 = model.regime_at(t) == 0 ? 0.85 : 0.3;
    ASSERT_DOUBLE_EQ(model.mean(t, 0), expected0);
    // Best option flips with the regime.
    ASSERT_EQ(model.best_option(t), model.regime_at(t));
  }
  EXPECT_FALSE(model.is_stationary());
}

TEST(markov_rewards, sampling_matches_current_regime) {
  auto model = make_two_regime(100, 13, /*stay=*/1.0);  // never leaves regime 0
  rng gen{3};
  std::vector<std::uint8_t> r(2);
  running_stats first;
  for (std::uint64_t t = 1; t <= 20000; ++t) {
    model.sample(1 + (t % 100), gen, r);
    first.add(r[0]);
  }
  EXPECT_NEAR(first.mean(), 0.85, 0.01);
}

TEST(markov_rewards, steps_beyond_horizon_hold_last_regime) {
  const auto model = make_two_regime(50, 17);
  EXPECT_EQ(model.regime_at(10000), model.regime_at(50));
}

TEST(markov_rewards, validates_construction) {
  EXPECT_THROW((env::markov_rewards{{}, {}, 10, 1}), std::invalid_argument);
  EXPECT_THROW((env::markov_rewards{{{0.5}, {0.5, 0.5}}, {{1.0}}, 10, 1}),
               std::invalid_argument);
  EXPECT_THROW((env::markov_rewards{{{1.5}}, {{1.0}}, 10, 1}), std::invalid_argument);
  EXPECT_THROW((env::markov_rewards{{{0.5}}, {{0.5}}, 10, 1}),
               std::invalid_argument);  // row does not sum to 1
  EXPECT_THROW((env::markov_rewards{{{0.5}}, {{1.0}}, 0, 1}), std::invalid_argument);
}

// --- exp3 ----------------------------------------------------------------------

TEST(exp3, starts_uniform_and_validates) {
  algo::exp3 policy{4, 0.1};
  rng gen{1};
  (void)policy.select(gen);
  for (const double p : policy.distribution()) EXPECT_GT(p, 0.1 / 4.0 - 1e-12);
  EXPECT_THROW((algo::exp3{0, 0.1}), std::invalid_argument);
  EXPECT_THROW((algo::exp3{2, 0.0}), std::invalid_argument);
  EXPECT_THROW((algo::exp3{2, 1.5}), std::invalid_argument);
  EXPECT_THROW(policy.update(9, 1), std::out_of_range);
}

TEST(exp3, learns_the_better_arm) {
  algo::exp3 policy{2, 0.1};
  rng gen{2};
  int best_pulls = 0;
  for (int t = 0; t < 4000; ++t) {
    const std::size_t arm = policy.select(gen);
    const std::uint8_t reward = gen.next_bernoulli(arm == 0 ? 0.9 : 0.1) ? 1 : 0;
    policy.update(arm, reward);
    if (t >= 2000 && arm == 0) ++best_pulls;
  }
  EXPECT_GT(best_pulls, 1400);  // of the last 2000
}

TEST(exp3, exploration_floor_is_gamma_over_m) {
  algo::exp3 policy{2, 0.2};
  rng gen{3};
  // Hammer arm 0 with rewards; arm 1's probability must stay >= gamma/m.
  for (int t = 0; t < 500; ++t) {
    (void)policy.select(gen);
    policy.update(0, 1);
  }
  (void)policy.select(gen);
  EXPECT_GE(policy.distribution()[1], 0.1 - 1e-12);
}

TEST(exp3, reset_restores_uniform) {
  algo::exp3 policy{3, 0.3};
  rng gen{4};
  (void)policy.select(gen);
  policy.update(0, 1);
  policy.reset();
  (void)policy.select(gen);
  for (const double p : policy.distribution()) EXPECT_NEAR(p, 1.0 / 3.0, 1e-12);
}

TEST(exp3, optimal_gamma_formula) {
  const double g = algo::exp3_optimal_gamma(10, 10000);
  EXPECT_GT(g, 0.0);
  EXPECT_LE(g, 1.0);
  // Short horizons clamp to 1.
  EXPECT_DOUBLE_EQ(algo::exp3_optimal_gamma(10, 1), 1.0);
  EXPECT_THROW(algo::exp3_optimal_gamma(1, 100), std::invalid_argument);
}

// --- mean_field_map -------------------------------------------------------------

core::dynamics_params mf_params(std::size_t m, double mu, double beta) {
  core::dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  return p;
}

TEST(mean_field_map, gains_and_validation) {
  core::mean_field_map map{mf_params(2, 0.1, 0.7), {0.8, 0.2}};
  EXPECT_NEAR(map.gain(0), 0.7 * 0.8 + 0.3 * 0.2, 1e-12);
  EXPECT_NEAR(map.gain(1), 0.7 * 0.2 + 0.3 * 0.8, 1e-12);
  EXPECT_THROW((core::mean_field_map{mf_params(2, 0.1, 0.7), {0.8}}),
               std::invalid_argument);
  EXPECT_THROW((core::mean_field_map{mf_params(1, 0.1, 0.7), {1.5}}),
               std::invalid_argument);
}

TEST(mean_field_map, state_stays_on_simplex) {
  core::mean_field_map map{mf_params(4, 0.05, 0.65), {0.9, 0.5, 0.5, 0.2}};
  for (int t = 0; t < 1000; ++t) {
    map.step();
    double total = 0.0;
    for (const double x : map.state()) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    ASSERT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(mean_field_map, mu_zero_converges_to_pure_best) {
  core::mean_field_map map{mf_params(3, 0.0, 0.65), {0.9, 0.5, 0.2}};
  const std::uint64_t iterations = map.solve_fixed_point();
  EXPECT_GT(iterations, 0U);
  EXPECT_NEAR(map.state()[0], 1.0, 1e-9);
}

TEST(mean_field_map, fixed_point_is_invariant_under_the_map) {
  core::mean_field_map map{mf_params(3, 0.08, 0.62), {0.85, 0.4, 0.4}};
  map.solve_fixed_point(1e-14);
  const std::vector<double> fp(map.state().begin(), map.state().end());
  map.step();
  for (std::size_t j = 0; j < fp.size(); ++j) {
    EXPECT_NEAR(map.state()[j], fp[j], 1e-10);
  }
}

TEST(mean_field_map, fixed_point_independent_of_start) {
  core::mean_field_map a{mf_params(3, 0.08, 0.62), {0.85, 0.4, 0.4}};
  core::mean_field_map b{mf_params(3, 0.08, 0.62), {0.85, 0.4, 0.4}};
  b.reset(std::vector<double>{0.01, 0.01, 0.98});
  a.solve_fixed_point();
  b.solve_fixed_point();
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(a.state()[j], b.state()[j], 1e-9);
  }
}

TEST(mean_field_map, more_exploration_means_more_regret_at_equilibrium) {
  const std::vector<double> etas{0.85, 0.35};
  core::mean_field_map tight{mf_params(2, 0.01, 0.65), etas};
  core::mean_field_map loose{mf_params(2, 0.20, 0.65), etas};
  EXPECT_LT(tight.steady_state_regret(), loose.steady_state_regret());
  EXPECT_GT(tight.steady_state_regret(), 0.0);
}

TEST(mean_field_map, equal_gains_keep_uniform_fixed) {
  // eta identical => gains identical => uniform is the fixed point.
  core::mean_field_map map{mf_params(4, 0.1, 0.6), {0.5, 0.5, 0.5, 0.5}};
  map.solve_fixed_point();
  for (const double x : map.state()) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(mean_field_map, predicts_stochastic_steady_state) {
  // The stochastic infinite dynamics fluctuates around the mean-field fixed
  // point; long-run time averages should be close for small delta.
  const core::dynamics_params params = core::theorem_params(2, 0.58);
  const std::vector<double> etas{0.8, 0.4};
  core::mean_field_map map{params, etas};
  map.solve_fixed_point();
  const double predicted = map.state()[0];

  core::infinite_dynamics dyn{params};
  env::bernoulli_rewards environment{etas};
  rng gen{9};
  std::vector<std::uint8_t> r(2);
  running_stats late;
  for (std::uint64_t t = 1; t <= 20000; ++t) {
    environment.sample(t, gen, r);
    dyn.step(r);
    if (t > 10000) late.add(dyn.distribution()[0]);
  }
  EXPECT_NEAR(late.mean(), predicted, 0.05);
}

}  // namespace
}  // namespace sgl
