// Self-tests of the property tier's own machinery: generator determinism
// and coverage, the env-knob plan, and — the acceptance test for the whole
// tier — a deliberately broken invariant must come back as a shrunk,
// still-failing, `--file`-loadable minimal spec with a reproduction
// command.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "property/generators.h"
#include "property/property_harness.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

namespace {

using namespace sgl;

TEST(generators, every_draw_is_valid_and_deterministic) {
  for (std::uint64_t i = 0; i < 120; ++i) {
    const scenario::scenario_spec first = testgen::draw_scenario(99, i);
    const scenario::scenario_spec again = testgen::draw_scenario(99, i);
    EXPECT_TRUE(scenario::validate_spec_error(first).empty())
        << "iteration " << i << ": " << scenario::validate_spec_error(first);
    EXPECT_EQ(scenario::serialize_scenario(first),
              scenario::serialize_scenario(again))
        << "draw_scenario is not a pure function of (seed, iteration) at " << i;
  }
  // Different seeds explore different specs (past the fixed corner table).
  const std::uint64_t i = testgen::corner_specs().size() + 3;
  EXPECT_NE(scenario::serialize_scenario(testgen::draw_scenario(99, i)),
            scenario::serialize_scenario(testgen::draw_scenario(100, i)));
}

TEST(generators, corner_table_covers_every_engine_kind) {
  std::set<scenario::engine_kind> covered;
  for (const scenario::scenario_spec& spec : testgen::corner_specs()) {
    EXPECT_TRUE(scenario::validate_spec_error(spec).empty())
        << "corner '" << spec.name
        << "': " << scenario::validate_spec_error(spec);
    covered.insert(scenario::resolved_engine(spec));
  }
  EXPECT_EQ(covered.size(), 5U)
      << "the corner table must reach all five engine kinds";
}

TEST(generators, random_draws_reach_every_engine_kind) {
  std::set<scenario::engine_kind> covered;
  const std::uint64_t first_random = testgen::corner_specs().size();
  for (std::uint64_t i = first_random; i < first_random + 200; ++i) {
    covered.insert(scenario::resolved_engine(testgen::draw_scenario(0x5eed, i)));
  }
  EXPECT_EQ(covered.size(), 5U);
}

TEST(property_plan, env_knobs_override_defaults) {
  unsetenv("SGL_PROPERTY_SEED");
  unsetenv("SGL_PROPERTY_ITERS");
  const testgen::property_plan defaults = testgen::property_run_plan(60, 0x5eed);
  EXPECT_EQ(defaults.seed, 0x5eedULL);
  EXPECT_EQ(defaults.iterations, 60U);

  setenv("SGL_PROPERTY_SEED", "12345", 1);
  setenv("SGL_PROPERTY_ITERS", "7", 1);
  const testgen::property_plan overridden = testgen::property_run_plan(60, 0x5eed);
  EXPECT_EQ(overridden.seed, 12345U);
  EXPECT_EQ(overridden.iterations, 7U);

  setenv("SGL_PROPERTY_SEED", "not a number", 1);
  const testgen::property_plan fallback = testgen::property_run_plan(60, 0x5eed);
  EXPECT_EQ(fallback.seed, 0x5eedULL) << "garbage env values fall back";

  unsetenv("SGL_PROPERTY_SEED");
  unsetenv("SGL_PROPERTY_ITERS");
}

// The acceptance test: break an invariant on purpose — "no spec may use
// the watts_strogatz topology" — and the harness must (a) find a failing
// draw, (b) shrink it to a minimal spec that still fails and still
// validates, and (c) hand back loadable text plus a repro command.
TEST(property_harness, broken_invariant_yields_minimal_reloadable_spec) {
  const testgen::spec_property no_small_worlds =
      [](const scenario::scenario_spec& spec) -> std::string {
    if (spec.topology.family ==
        scenario::topology_spec::family_kind::watts_strogatz) {
      return "deliberately broken: watts_strogatz drawn";
    }
    return {};
  };
  testgen::property_plan plan;
  plan.seed = 0x5eed;
  plan.iterations = 400;  // plenty to reach a watts_strogatz draw
  const std::vector<testgen::failure_report> reports =
      testgen::run_property(no_small_worlds, plan, 1);
  ASSERT_EQ(reports.size(), 1U) << "the broken invariant was never tripped";
  const testgen::failure_report& report = reports.front();

  // Still failing, still valid, reloadable from its own text.
  const scenario::scenario_spec minimal =
      scenario::parse_scenario(report.spec_text);
  EXPECT_FALSE(no_small_worlds(minimal).empty());
  EXPECT_TRUE(scenario::validate_spec_error(minimal).empty());
  EXPECT_EQ(scenario::serialize_scenario(minimal), report.spec_text);

  // Actually minimal: the spec kept its load-bearing axis and dropped the
  // incidental ones (no probes, no groups, no per-agent rules survive a
  // shrink that only needs the topology family).
  EXPECT_EQ(minimal.topology.family,
            scenario::topology_spec::family_kind::watts_strogatz);
  EXPECT_TRUE(minimal.probes.empty());
  EXPECT_TRUE(minimal.groups.empty());
  EXPECT_TRUE(minimal.agent_rules.empty());
  EXPECT_LE(minimal.num_agents, 4U)
      << "population should shrink to the smallest still-failing N";

  // The repro command names the knobs and the failing iteration.
  EXPECT_NE(report.repro.find("SGL_PROPERTY_SEED=" + std::to_string(plan.seed)),
            std::string::npos);
  EXPECT_NE(report.repro.find("SGL_PROPERTY_ITERS=" +
                              std::to_string(report.iteration + 1)),
            std::string::npos);
  EXPECT_NE(report.repro.find("--gtest_filter="), std::string::npos);
  EXPECT_EQ(report.message, "deliberately broken: watts_strogatz drawn");
}

// Shrinking a failure that depends on an indexed family must keep the
// family contiguous and drop everything else.
TEST(property_harness, shrink_keeps_indexed_families_contiguous) {
  const testgen::spec_property needs_two_groups =
      [](const scenario::scenario_spec& spec) -> std::string {
    return spec.groups.size() >= 2 ? "deliberately broken: >= 2 groups" : "";
  };
  scenario::scenario_spec bulky;
  bulky.name = "bulky";
  bulky.description = "carries incidental fields the shrinker should drop";
  bulky.params.num_options = 4;
  bulky.params.beta = 0.75;
  bulky.num_agents = 60;
  bulky.groups = {{20, {0.1, 0.6}}, {20, {0.2, 0.7}}, {20, {0.3, 0.8}}};
  bulky.environment.etas = {0.9, 0.6, 0.3, 0.1};
  bulky.probes = {"regret", "trajectory", "final_histogram"};
  ASSERT_TRUE(scenario::validate_spec_error(bulky).empty());
  ASSERT_FALSE(needs_two_groups(bulky).empty());

  const scenario::scenario_spec minimal =
      testgen::shrink_failing_spec(bulky, needs_two_groups);
  EXPECT_EQ(minimal.groups.size(), 2U);
  EXPECT_TRUE(scenario::validate_spec_error(minimal).empty());
  EXPECT_FALSE(needs_two_groups(minimal).empty());
  EXPECT_TRUE(minimal.probes.empty());
  EXPECT_TRUE(minimal.description.empty());
}

}  // namespace
