// Bounded in-test fuzzing of the scenario text-format surfaces —
// parse_scenario, apply_override, parse_sweep_axis — with seeded hostile
// inputs.  The contract under test is total-function behaviour: every
// input either parses or throws std::invalid_argument; nothing crashes,
// hangs, or throws anything else.  (The deep offline run of this same idea
// — 300k iterations under ASan/UBSan — found the non-finite sweep-range
// hang pinned as a named regression in tests/serialize_test.cpp; this
// suite keeps the door shut at a few thousand iterations per CI run.)

#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "property/generators.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

namespace {

using namespace sgl;

/// Hostile building blocks: real keys and values from the format next to
/// malformed numbers, non-finite spellings, quoting/bracket damage, comment
/// markers, and sweep syntax.
const std::vector<std::string>& vocabulary() {
  static const std::vector<std::string> pieces = {
      "params.beta",  "params.num_options", "engine",       "kernel",
      "num_agents",   "topology.family",    "groups.0.size", "groups.3.alpha",
      "agent_rules.0.beta", "faults.0.kind", "faults.0.targets", "probes",
      "environment.etas", "start", "protocol.drop_probability",
      "=", " = ", ":", ",", ".", "#", "\n", " ", "\"", "[", "]", "(", ")",
      "0", "1", "-1", "0.5", "1e9", "1e999", "-1e999", "nan", "inf", "-inf",
      "NaN", "Infinity", "0x10", "1..2", "1:2:0", "nan:1:1", "0:1:0.1",
      "true", "false", "none", "ring", "grid", "aggregate", "protocol",
      "auto", "scalar", "simd", "regret", "hitting_time(eps=0.3)",
      "\"unterminated", "é", "\x01", "partition", "18446744073709551616",
  };
  return pieces;
}

std::string random_text(testgen::prng& rng, std::size_t max_pieces) {
  std::string out;
  const std::size_t count = rng.below(max_pieces + 1);
  for (std::size_t i = 0; i < count; ++i) {
    out += rng.pick(vocabulary());
  }
  return out;
}

/// Mutates a valid serialized spec: splice hostile tokens into random
/// positions, duplicate a line, truncate the tail.
std::string mutate_serialized(testgen::prng& rng, std::string text) {
  const std::size_t edits = 1 + rng.below(4);
  for (std::size_t i = 0; i < edits; ++i) {
    if (text.empty()) break;
    const std::size_t at = rng.below(text.size());
    switch (rng.below(3)) {
      case 0: text.insert(at, rng.pick(vocabulary())); break;
      case 1: text.erase(at, rng.below(8) + 1); break;
      default: text[at] = static_cast<char>(rng.below(256)); break;
    }
  }
  return text;
}

/// The fuzz oracle: `operation` must return or throw std::invalid_argument.
/// Any other escape (std::bad_alloc aside, which the small inputs cannot
/// trigger) fails with the offending input attached.
template <typename Operation>
void expect_total(const std::string& input, const Operation& operation) {
  try {
    operation();
  } catch (const std::invalid_argument&) {
    // the documented rejection path
  } catch (const std::exception& error) {
    FAIL() << "non-invalid_argument exception '" << error.what()
           << "' escaped on input:\n"
           << input;
  }
}

TEST(serialize_fuzz, parse_scenario_is_total_on_random_token_soup) {
  const testgen::property_plan plan = testgen::property_run_plan(1500);
  for (std::uint64_t i = 0; i < plan.iterations; ++i) {
    testgen::prng rng{plan.seed + 0x9e37ULL * (i + 1)};
    const std::string input = random_text(rng, 40);
    SCOPED_TRACE("iteration " + std::to_string(i) + " (seed " +
                 std::to_string(plan.seed) + ")");
    expect_total(input, [&] { (void)scenario::parse_scenario(input); });
  }
}

TEST(serialize_fuzz, parse_scenario_is_total_on_mutated_valid_specs) {
  const testgen::property_plan plan = testgen::property_run_plan(600);
  for (std::uint64_t i = 0; i < plan.iterations; ++i) {
    testgen::prng rng{plan.seed + 0xa5a5ULL * (i + 1)};
    const std::string input =
        mutate_serialized(rng, scenario::serialize_scenario(
                                   testgen::draw_scenario(plan.seed, i)));
    SCOPED_TRACE("iteration " + std::to_string(i) + " (seed " +
                 std::to_string(plan.seed) + ")");
    expect_total(input, [&] {
      const scenario::scenario_spec spec = scenario::parse_scenario(input);
      // A spec that survives parsing must also survive validation without
      // crashing — validate_spec_error is the property tier's load-bearing
      // predicate.
      (void)scenario::validate_spec_error(spec);
    });
  }
}

TEST(serialize_fuzz, apply_override_is_total) {
  const testgen::property_plan plan = testgen::property_run_plan(1500);
  for (std::uint64_t i = 0; i < plan.iterations; ++i) {
    testgen::prng rng{plan.seed + 0xc3c3ULL * (i + 1)};
    scenario::scenario_spec spec = testgen::corner_specs()[rng.below(
        testgen::corner_specs().size())];
    const std::string assignment = random_text(rng, 6);
    SCOPED_TRACE("iteration " + std::to_string(i) + " (seed " +
                 std::to_string(plan.seed) + ")");
    expect_total(assignment,
                 [&] { scenario::apply_override(spec, assignment); });
  }
}

TEST(serialize_fuzz, parse_sweep_axis_is_total) {
  const testgen::property_plan plan = testgen::property_run_plan(1500);
  for (std::uint64_t i = 0; i < plan.iterations; ++i) {
    testgen::prng rng{plan.seed + 0xe1e1ULL * (i + 1)};
    const std::string axis = random_text(rng, 8);
    SCOPED_TRACE("iteration " + std::to_string(i) + " (seed " +
                 std::to_string(plan.seed) + ")");
    expect_total(axis, [&] {
      const scenario::sweep_axis parsed = scenario::parse_sweep_axis(axis);
      // Grids are bounded by contract (<= 10000 points per axis), so a
      // successful parse yields a modest value list, never a hang.
      EXPECT_LE(parsed.values.size(), 10000U);
    });
  }
}

}  // namespace
