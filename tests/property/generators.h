#pragma once

/// \file generators.h
/// The seeded generator library behind the property test tier (DESIGN.md
/// "Property test tier") and the JSON round-trip suite.
///
/// Everything here is a pure function of an explicit seed: a failing
/// iteration reproduces from (SGL_PROPERTY_SEED, iteration index) alone, on
/// any machine, at any thread count.  Two generator families live here:
///
///   * random JSON documents (gen_node) — hostile strings, doubles drawn
///     from raw bit patterns, 64-bit integers past 2^53 — feeding the
///     writer/parser round-trip suite (tests/json_parse_test.cpp);
///   * random *valid* scenario_specs (draw_scenario) — every engine kind,
///     topology family, environment family, protocol/fault knob, and probe
///     set, plus a curated table of hostile-but-valid corners (N = 1,
///     m = 1, beta in {0, 1}, drop = 1, single-group mixtures, ...) that a
///     uniform draw would rarely reach.  Every spec this header hands out
///     satisfies scenario::validate_spec, by construction and by a final
///     check — a generator bug fails loudly, it does not silently shrink
///     coverage.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "scenario/scenario.h"
#include "support/json.h"
#include "support/json_parse.h"

namespace sgl::testgen {

/// splitmix64 — tiny, seedable, and good enough to explore the space.
class prng {
 public:
  explicit prng(std::uint64_t seed) : state_{seed} {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  /// Uniform in [0, 1).
  double unit() { return static_cast<double>(next()) * 0x1.0p-64; }
  /// True with probability p.
  bool chance(double p) { return unit() < p; }
  /// One element of a non-empty list.
  template <typename T>
  const T& pick(const std::vector<T>& options) {
    return options[below(options.size())];
  }

 private:
  std::uint64_t state_;
};

// --- random JSON documents --------------------------------------------------

/// A generated document node.  Integer-valued numbers are tracked apart
/// from doubles because they take different writer overloads and different
/// exactness checks (raw-token reparse vs shortest-round-trip double).
struct gen_node {
  enum class kind { null, boolean, number_double, number_uint, string, array, object };
  kind type = kind::null;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;
  std::string text;
  std::vector<gen_node> items;
  std::vector<std::pair<std::string, gen_node>> members;
};

/// A short string over a deliberately hostile alphabet: quotes,
/// backslashes, control bytes, and multi-byte UTF-8 — everything
/// json_escape has a code path for.
[[nodiscard]] std::string random_string(prng& rng);

/// Doubles that stress shortest-round-trip formatting: exact zeros, units,
/// huge/tiny magnitudes, and finite values from raw bit patterns.
[[nodiscard]] double random_double(prng& rng);

/// A random document subtree; containers get rarer with depth so documents
/// stay small and under the parser's 64-level limit.
[[nodiscard]] gen_node random_node(prng& rng, std::size_t depth);

/// Emits `node` through the JSON writer.
void emit_node(const gen_node& node, json_writer& json);

/// gtest-asserts that `actual` is value-exact against the generated node
/// (bit-exact doubles, exact uint64 reparse, structural equality).
void expect_node_equal(const gen_node& expected, const json_value& actual,
                       const std::string& where);

// --- random valid scenario specs --------------------------------------------

/// A random valid scenario_spec.  Spans every engine kind (the engine field
/// is sometimes left auto_select to exercise resolution), every topology
/// and environment family the chosen population admits, protocol and fault
/// knobs for protocol specs, per-agent rules and group mixtures, and a
/// random probe set.  Postcondition: scenario::validate_spec_error(result)
/// is empty (enforced; a violation throws std::logic_error naming the
/// generator bug).
[[nodiscard]] scenario::scenario_spec random_scenario(prng& rng);

/// The curated hostile-but-valid corner table: one-agent and one-option
/// populations, beta in {0, 1}, mu in {0, 1}, full packet loss, lockstep
/// sync, single-group mixtures, nonuniform starts, minimal lattices.
/// Covers all five engine kinds.  Every entry validates.
[[nodiscard]] const std::vector<scenario::scenario_spec>& corner_specs();

/// The deterministic iteration plan shared by every property suite:
/// iteration i draws corner_specs()[i] while i is in corner range, then
/// random_scenario seeded with (seed, i).  Same (seed, i) -> same spec,
/// regardless of which test or machine asks.
[[nodiscard]] scenario::scenario_spec draw_scenario(std::uint64_t seed,
                                                    std::uint64_t iteration);

// --- environment knobs -------------------------------------------------------

/// The (seed, iterations) pair a property run uses: SGL_PROPERTY_SEED /
/// SGL_PROPERTY_ITERS when set (decimal), the given defaults otherwise.
struct property_plan {
  std::uint64_t seed = 0;
  std::uint64_t iterations = 0;
};
[[nodiscard]] property_plan property_run_plan(std::uint64_t default_iterations,
                                              std::uint64_t default_seed = 0x5eedULL);

}  // namespace sgl::testgen
