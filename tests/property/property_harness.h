#pragma once

/// \file property_harness.h
/// The driver behind the property test tier (DESIGN.md "Property test
/// tier").  A *property* is a predicate over a whole scenario_spec: it runs
/// the spec however it likes and returns the first violation as a message
/// (empty string = holds).  The harness supplies everything around the
/// predicate:
///
///   * the iteration loop — draw_scenario(seed, i) for i in [0, iters),
///     corners first, seeded randoms after, with (seed, iters) taken from
///     SGL_PROPERTY_SEED / SGL_PROPERTY_ITERS when set;
///   * shrinking — a failing spec is greedily shrunk toward the
///     default-constructed spec, axis by axis (serialized `key = value`
///     lines and indexed-family clusters removed while the property still
///     fails and the spec still validates), to a local minimum;
///   * reporting — one gtest failure carrying the minimal spec as
///     `--file`-loadable text, the property's message on it, and the exact
///     environment + --gtest_filter command that reproduces the failure;
///     when SGL_PROPERTY_ARTIFACT_DIR is set the spec text is also written
///     there (CI uploads the directory on failure).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "property/generators.h"
#include "scenario/scenario.h"

namespace sgl::testgen {

/// A property over one spec: empty string when it holds, the first
/// violation otherwise.  Must be deterministic (the shrinker re-evaluates
/// it on every candidate) and must not throw — wrap risky work in
/// try/catch and return the exception text, so "this spec throws" is a
/// reportable, shrinkable failure rather than a test abort.
using spec_property = std::function<std::string(const scenario::scenario_spec&)>;

/// One shrunk, reported failure (returned for the harness's own tests).
struct failure_report {
  std::uint64_t seed = 0;       ///< the run's seed
  std::uint64_t iteration = 0;  ///< failing iteration index
  std::string message;          ///< property violation on the minimal spec
  std::string spec_text;        ///< serialize_scenario of the minimal spec
  std::string repro;            ///< env + gtest command reproducing it
};

/// Greedily shrinks `spec` toward scenario_spec{} while `fails` keeps
/// returning non-empty: serialized lines and indexed-family clusters
/// (groups.N.*, agent_rules.N.*, faults.N.* — highest index first, so the
/// family stays contiguous) are dropped one unit at a time, plus direct
/// num_agents reductions; a candidate must parse, validate, and still fail
/// to be kept.  Iterates to a fixpoint.  Precondition: fails(spec) is
/// non-empty.
[[nodiscard]] scenario::scenario_spec shrink_failing_spec(
    const scenario::scenario_spec& spec, const spec_property& fails);

/// Runs `property` over the standard iteration plan
/// (property_run_plan(default_iterations)).  Each failing iteration is
/// shrunk and reported as one gtest ADD_FAILURE; at most
/// `max_reported_failures` iterations are reported before the loop stops
/// (every corner + random draw before that still runs).  Returns the
/// number of failures found (0 = the property held everywhere).
std::size_t check_scenario_property(const spec_property& property,
                                    std::uint64_t default_iterations = 60,
                                    std::size_t max_reported_failures = 1);

/// check_scenario_property's engine room, without gtest reporting: runs
/// `property` for exactly the given plan and returns the shrunk reports.
/// The harness's own self-tests (deliberately broken invariants) call this
/// to inspect shrinking without failing themselves.
[[nodiscard]] std::vector<failure_report> run_property(
    const spec_property& property, const property_plan& plan,
    std::size_t max_failures = 1);

/// Canonical text dump of merged probe reports (%.17g doubles, scalars and
/// series in report order) — the same recipe as the golden-hash capture in
/// harness_determinism_test.cpp.  Two runs are bit-identical exactly when
/// their dumps compare equal.
[[nodiscard]] std::string dump_probe_reports(const core::probe_list& probes);

/// 64-bit FNV-1a, for compact fingerprints of dump_probe_reports text.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text);

/// run_probes(spec, config) reduced to one comparable fingerprint string.
/// Every property that claims "these two runs are bit-identical" compares
/// two of these.
[[nodiscard]] std::string run_fingerprint(const scenario::scenario_spec& spec,
                                          const core::run_config& config);

/// The run shape every bit-identity property uses: short horizon, two
/// replications, fixed seed — big enough to exercise merge paths, small
/// enough that hundreds of random specs stay fast.
[[nodiscard]] core::run_config property_run_config();

}  // namespace sgl::testgen
