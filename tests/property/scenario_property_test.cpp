// The generator-driven property tier's core suite: universal invariants
// asserted over randomly drawn valid scenario_specs spanning every engine
// kind, topology family, environment family, and protocol/fault knob
// (tests/property/generators.h).  Each TEST states one law the whole
// engine family must satisfy; a violation is shrunk to a minimal failing
// spec and reported as `--file`-loadable text plus the exact reproduction
// command (tests/property/property_harness.h).
//
// Iteration count and seed come from SGL_PROPERTY_ITERS / SGL_PROPERTY_SEED
// (decimal) when set; the defaults keep the suite a few seconds per test.
// The first corner_specs().size() iterations are the curated hostile
// corners, so every run covers all five engine kinds before any random
// draw.

#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "core/invariants.h"
#include "core/step_kernel.h"
#include "property/generators.h"
#include "property/property_harness.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "service/digest.h"
#include "support/rng.h"

namespace {

using namespace sgl;
using testgen::check_scenario_property;
using testgen::property_run_config;
using testgen::run_fingerprint;

/// Wraps property bodies that run specs: an exception is a failure message,
/// not a test abort, so "this spec throws" shrinks like any other violation.
template <typename Body>
std::string guarded(const Body& body) {
  try {
    return body();
  } catch (const std::exception& error) {
    return std::string{"unexpected exception: "} + error.what();
  }
}

// Law 1: the canonical text form is a fixpoint — serialize, parse,
// serialize again must reproduce the text byte for byte — and the reparsed
// spec must run bit-identically to the original.  This is the contract the
// service digest's cache soundness stands on.
TEST(scenario_property, serialize_parse_serialize_fixpoint_and_run_identity) {
  check_scenario_property([](const scenario::scenario_spec& spec) {
    return guarded([&]() -> std::string {
      const std::string text = scenario::serialize_scenario(spec);
      const scenario::scenario_spec reparsed = scenario::parse_scenario(text);
      const std::string again = scenario::serialize_scenario(reparsed);
      if (text != again) return "serialize/parse/serialize is not a fixpoint";
      const std::string validity = scenario::validate_spec_error(reparsed);
      if (!validity.empty()) {
        return "reparsed spec fails validate_spec: " + validity;
      }
      const core::run_config config = property_run_config();
      if (run_fingerprint(spec, config) != run_fingerprint(reparsed, config)) {
        return "reparsed spec runs differently from the original";
      }
      return {};
    });
  });
}

// Law 2: probe merging is schedule-invariant — the merged probe reports
// are bit-identical across harness thread counts and engine-reuse
// settings, for every drawn spec (the registry-wide version of this law is
// pinned golden in harness_determinism_test.cpp).
TEST(scenario_property, probe_merge_is_schedule_invariant) {
  check_scenario_property(
      [](const scenario::scenario_spec& spec) {
        return guarded([&]() -> std::string {
          core::run_config config = property_run_config();
          config.replications = 3;  // an odd count shards unevenly
          const std::string reference = run_fingerprint(spec, config);
          for (const unsigned threads : {2U, 3U}) {
            for (const bool reuse : {true, false}) {
              config.threads = threads;
              config.reuse = reuse;
              if (run_fingerprint(spec, config) != reference) {
                return "merged probes diverge at threads=" +
                       std::to_string(threads) +
                       " reuse=" + (reuse ? std::string{"on"} : "off");
              }
            }
          }
          return {};
        });
      },
      /*default_iterations=*/40);
}

// Law 3: the engine-state contract (core/invariants.h) holds at every step
// of every drawn spec: popularity stays a simplex vector, adopter counts
// stay consistent with it, empty_steps never exceeds steps.
TEST(scenario_property, state_invariants_hold_at_every_step) {
  check_scenario_property([](const scenario::scenario_spec& spec) {
    return guarded([&]() -> std::string {
      auto engine = scenario::make_engine(spec)();
      auto environment = scenario::make_environment(spec.environment)();
      rng reward_gen = rng::from_stream(33, 0);
      rng process_gen = rng::from_stream(33, 1);
      std::vector<std::uint8_t> rewards(engine->num_options());
      std::string error = core::state_invariant_error(*engine);
      if (!error.empty()) return "after construction: " + error;
      for (std::uint64_t t = 1; t <= 25; ++t) {
        environment->sample(t, reward_gen, rewards);
        engine->step(rewards, process_gen);
        error = core::state_invariant_error(*engine);
        if (!error.empty()) return "after step " + std::to_string(t) + ": " + error;
      }
      return {};
    });
  });
}

// Law 4: reset() restores the exact initial state — a used-then-reset()
// engine replays the trajectory of a fresh one bit for bit whenever the
// engine reports reusable(); and factory-fresh engines are deterministic
// (two builds, same streams, same trajectory) for every kind, including
// the non-reusable ones.
TEST(scenario_property, reset_reuse_and_fresh_build_determinism) {
  const auto trajectory = [](core::dynamics_engine& engine) {
    rng reward_gen = rng::from_stream(11, 0);
    rng process_gen = rng::from_stream(11, 1);
    std::vector<std::uint8_t> rewards(engine.num_options());
    std::vector<double> out;
    for (std::uint64_t t = 1; t <= 20; ++t) {
      for (auto& r : rewards) r = reward_gen.next_bernoulli(0.6) ? 1 : 0;
      engine.step(rewards, process_gen);
      for (const double q : engine.popularity()) out.push_back(q);
    }
    out.push_back(static_cast<double>(engine.empty_steps()));
    out.push_back(static_cast<double>(engine.steps()));
    return out;
  };
  check_scenario_property([&trajectory](const scenario::scenario_spec& spec) {
    return guarded([&]() -> std::string {
      const core::engine_factory make_engine = scenario::make_engine(spec);
      auto first = make_engine();
      const std::vector<double> reference = trajectory(*first);
      auto second = make_engine();
      if (trajectory(*second) != reference) {
        return "two factory-fresh engines disagree from identical streams";
      }
      if (first->reusable()) {
        first->reset();
        if (trajectory(*first) != reference) {
          return "reset() engine diverges from a fresh one";
        }
      }
      return {};
    });
  });
}

// Law 5: documented-inert engine knobs really are inert.  engine_threads
// only reshards the agent-based network step (finite_dynamics::set_threads
// promises bit-identity), and kernel = auto must equal the kernel it
// resolves to on this host — simd when a vector ISA is live, scalar
// otherwise.  (scalar vs simd is NOT an identity: v3 is a different stream
// derivation by design.)
TEST(scenario_property, engine_threads_and_kernel_resolution_are_inert) {
  check_scenario_property(
      [](const scenario::scenario_spec& spec) {
        return guarded([&]() -> std::string {
          const core::run_config config = property_run_config();
          const std::string reference = run_fingerprint(spec, config);
          if (scenario::resolved_engine(spec) != scenario::engine_kind::agent_based) {
            return std::string{};  // both knobs are read only by agent_based
          }
          scenario::scenario_spec threaded = spec;
          threaded.engine_threads = spec.engine_threads == 2 ? 1 : 2;
          if (run_fingerprint(threaded, config) != reference) {
            return "engine_threads changed the trajectory";
          }
          if (spec.engine_kernel == core::kernel_kind::auto_select) {
            scenario::scenario_spec pinned = spec;
            pinned.engine_kernel = core::kernel::vector_isa_available()
                                       ? core::kernel_kind::simd
                                       : core::kernel_kind::scalar;
            if (run_fingerprint(pinned, config) != reference) {
              return "kernel=auto ran differently from the kernel it resolves to";
            }
          }
          return {};
        });
      },
      /*default_iterations=*/40);
}

// Law 6: the service digest keys exactly the semantically meaningful
// inputs — stable under every documented-inert mutation (name,
// description, engine_threads, config.threads, config.reuse), changed by
// meaningful ones (master seed, horizon, mu).
TEST(scenario_property, spec_digest_keys_meaningful_inputs_only) {
  check_scenario_property([](const scenario::scenario_spec& spec) {
    return guarded([&]() -> std::string {
      const core::run_config config = property_run_config();
      const std::vector<std::string> no_probes;
      const service::digest128 base = service::spec_digest(spec, config, no_probes);

      scenario::scenario_spec renamed = spec;
      renamed.name += "-renamed";
      renamed.description += " (documentation only)";
      renamed.engine_threads = spec.engine_threads == 2 ? 1 : 2;
      core::run_config reshaped = config;
      reshaped.threads = 4;
      reshaped.reuse = !config.reuse;
      if (service::spec_digest(renamed, reshaped, no_probes) != base) {
        return "digest moved under inert mutations (name/description/"
               "engine_threads/config.threads/config.reuse)";
      }

      core::run_config reseeded = config;
      reseeded.seed = config.seed + 1;
      if (service::spec_digest(spec, reseeded, no_probes) == base) {
        return "digest ignored the master seed";
      }
      core::run_config longer = config;
      longer.horizon = config.horizon + 1;
      if (service::spec_digest(spec, longer, no_probes) == base) {
        return "digest ignored the horizon";
      }
      scenario::scenario_spec mixed = spec;
      mixed.params.mu = spec.params.mu == 1.0 ? 0.5 : (spec.params.mu + 1.0) / 2.0;
      if (service::spec_digest(mixed, config, no_probes) == base) {
        return "digest ignored params.mu";
      }
      return {};
    });
  });
}

// Law 7: every degenerate-parameter corner where the dynamics provably
// freeze — alpha = 0 with an all-bad-signal environment means no agent can
// ever commit — stays frozen in every engine kind: popularity exactly
// uniform, zero adopters, every step an empty step.
TEST(scenario_property, no_commits_under_alpha_zero_and_all_bad_signals) {
  check_scenario_property(
      [](const scenario::scenario_spec& spec) {
        return guarded([&]() -> std::string {
          scenario::scenario_spec frozen = spec;
          frozen.params.alpha = 0.0;
          frozen.environment.family =
              scenario::environment_spec::family_kind::bernoulli;
          frozen.environment.etas.assign(frozen.params.num_options, 0.0);
          frozen.environment.end_etas.clear();
          frozen.start.clear();  // a nonuniform P0 would (correctly) persist
          for (auto& group : frozen.groups) group.rule.alpha = 0.0;
          for (auto& rule : frozen.agent_rules) rule.alpha = 0.0;
          const std::string validity = scenario::validate_spec_error(frozen);
          if (!validity.empty()) return std::string{};  // corner not reachable

          auto engine = scenario::make_engine(frozen)();
          auto environment = scenario::make_environment(frozen.environment)();
          rng reward_gen = rng::from_stream(5, 0);
          rng process_gen = rng::from_stream(5, 1);
          std::vector<std::uint8_t> rewards(engine->num_options());
          const double uniform = 1.0 / static_cast<double>(engine->num_options());
          for (std::uint64_t t = 1; t <= 20; ++t) {
            environment->sample(t, reward_gen, rewards);
            engine->step(rewards, process_gen);
            for (const double q : engine->popularity()) {
              if (q != uniform) return "popularity left uniform with no commits";
            }
            for (const std::uint64_t count : engine->adopter_counts()) {
              if (count != 0) return "an agent committed under alpha=0, all-bad signals";
            }
          }
          if (engine->empty_steps() != engine->steps()) {
            return "a step was counted non-empty with no commits possible";
          }
          return {};
        });
      },
      /*default_iterations=*/40);
}

}  // namespace
