#include "property/property_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/probe.h"
#include "scenario/serialize.h"

namespace sgl::testgen {
namespace {

/// True when the property still fails on `text` after a shrink edit: the
/// candidate must parse, validate, and reproduce a violation.  Parse or
/// validation errors mean the edit left the valid-spec space — the
/// candidate is discarded, never reported.
bool still_fails(const std::string& text, const spec_property& fails) {
  scenario::scenario_spec candidate;
  try {
    candidate = scenario::parse_scenario(text);
  } catch (const std::exception&) {
    return false;
  }
  if (!scenario::validate_spec_error(candidate).empty()) return false;
  return !fails(candidate).empty();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in{text};
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// The removable-unit key of a serialized line: indexed-family lines
/// (groups.2.beta) share one unit per index ("groups.2.") so a whole entry
/// is dropped atomically, every other line is its own unit (its key).
std::string unit_of(const std::string& line) {
  const std::size_t eq = line.find('=');
  std::string key = line.substr(0, eq == std::string::npos ? line.size() : eq);
  while (!key.empty() && key.back() == ' ') key.pop_back();
  for (const char* family : {"groups.", "agent_rules.", "faults."}) {
    if (key.rfind(family, 0) != 0) continue;
    const std::size_t index_begin = std::string{family}.size();
    const std::size_t dot = key.find('.', index_begin);
    if (dot == std::string::npos) break;
    const std::string index = key.substr(index_begin, dot - index_begin);
    if (!index.empty() &&
        std::all_of(index.begin(), index.end(),
                    [](unsigned char c) { return c >= '0' && c <= '9'; })) {
      return key.substr(0, dot + 1);
    }
  }
  return key;
}

/// One greedy pass: try dropping each unit, last first (indexed families
/// shed their highest index before their lowest, keeping them contiguous).
/// Returns true when anything was removed.
bool drop_units_pass(std::vector<std::string>& lines, const spec_property& fails) {
  std::vector<std::string> units;
  for (const std::string& line : lines) {
    const std::string unit = unit_of(line);
    if (units.empty() || units.back() != unit) units.push_back(unit);
  }
  bool removed_any = false;
  for (auto it = units.rbegin(); it != units.rend(); ++it) {
    // num_agents only ever shrinks by rewrite: dropping the line would
    // "shrink" the population to its default of 1000.
    if (*it == "num_agents") continue;
    std::vector<std::string> candidate;
    for (const std::string& line : lines) {
      if (unit_of(line) != *it) candidate.push_back(line);
    }
    if (candidate.size() == lines.size()) continue;
    if (still_fails(join_lines(candidate), fails)) {
      lines = std::move(candidate);
      removed_any = true;
    }
  }
  return removed_any;
}

/// Shrinks a numeric `key = <n>` line strictly downward: tries the given
/// candidates (ascending) that are below the current value and keeps the
/// smallest one the property still fails on.  Strict descent is what makes
/// the shrink loop terminate.
bool shrink_number(std::vector<std::string>& lines, const std::string& key,
                   const std::vector<std::uint64_t>& candidates,
                   const spec_property& fails) {
  for (std::string& line : lines) {
    if (unit_of(line) != key) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    const std::uint64_t current =
        std::strtoull(line.c_str() + eq + 1, nullptr, 10);
    const std::string saved = line;
    for (const std::uint64_t candidate : candidates) {
      if (candidate >= current) break;
      line = key + " = " + std::to_string(candidate);
      if (still_fails(join_lines(lines), fails)) return true;
      line = saved;
    }
    return false;
  }
  return false;
}

std::string env_text(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string{} : std::string{value};
}

/// Best-effort name of the running test binary, for the repro command.
std::string binary_name() {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string{"<property-test-binary>"} : self.filename().string();
}

std::string gtest_filter() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  if (info == nullptr) return "*";
  return std::string{info->test_suite_name()} + "." + info->name();
}

/// Writes the failing spec under SGL_PROPERTY_ARTIFACT_DIR (when set) so CI
/// can upload it.  The failure details ride along as `#` comments — the
/// file stays directly `--file`-loadable.
void write_artifact(const failure_report& report) {
  const std::string dir = env_text("SGL_PROPERTY_ARTIFACT_DIR");
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string name = gtest_filter();
  std::replace_if(
      name.begin(), name.end(),
      [](unsigned char c) { return !std::isalnum(c) && c != '-' && c != '_'; }, '_');
  const std::filesystem::path path =
      std::filesystem::path{dir} /
      (name + "-seed" + std::to_string(report.seed) + "-iter" +
       std::to_string(report.iteration) + ".scenario");
  std::ofstream out{path};
  out << "# property failure: " << report.message << "\n";
  out << "# repro: " << report.repro << "\n";
  out << report.spec_text;
}

}  // namespace

scenario::scenario_spec shrink_failing_spec(const scenario::scenario_spec& spec,
                                            const spec_property& fails) {
  std::vector<std::string> lines = split_lines(scenario::serialize_scenario(spec));
  // Alternate removal passes with population shrinks until neither makes
  // progress.  Smaller N first: it often unlocks line removals (a topology
  // constraint that held at N=40 may be droppable at N=2) and vice versa.
  bool progress = true;
  while (progress) {
    progress = false;
    // degree first: watts_strogatz/barabasi_albert bounds (2k < N, k < N)
    // otherwise pin the population high.
    progress = shrink_number(lines, "topology.degree", {1, 2}, fails) || progress;
    progress =
        shrink_number(lines, "num_agents", {1, 2, 3, 4, 10, 100}, fails) || progress;
    progress =
        shrink_number(lines, "params.num_options", {1, 2}, fails) || progress;
    progress = drop_units_pass(lines, fails) || progress;
  }
  return scenario::parse_scenario(join_lines(lines));
}

std::vector<failure_report> run_property(const spec_property& property,
                                         const property_plan& plan,
                                         std::size_t max_failures) {
  std::vector<failure_report> reports;
  for (std::uint64_t i = 0; i < plan.iterations; ++i) {
    const scenario::scenario_spec spec = draw_scenario(plan.seed, i);
    if (property(spec).empty()) continue;

    const auto fails = [&property](const scenario::scenario_spec& candidate) {
      return property(candidate);
    };
    const scenario::scenario_spec minimal = shrink_failing_spec(spec, fails);
    failure_report report;
    report.seed = plan.seed;
    report.iteration = i;
    report.message = property(minimal);
    report.spec_text = scenario::serialize_scenario(minimal);
    report.repro = "SGL_PROPERTY_SEED=" + std::to_string(plan.seed) +
                   " SGL_PROPERTY_ITERS=" + std::to_string(i + 1) + " ./" +
                   binary_name() + " --gtest_filter=" + gtest_filter();
    reports.push_back(std::move(report));
    if (reports.size() >= max_failures) break;
  }
  return reports;
}

std::string dump_probe_reports(const core::probe_list& probes) {
  const auto append_double = [](std::string& out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  };
  std::string out;
  for (const auto& probe : probes) {
    const core::probe_report report = probe->report();
    out += report.probe;
    out += '\n';
    for (const auto& scalar : report.scalars) {
      out += scalar.key;
      out += '=';
      append_double(out, scalar.value);
      if (scalar.has_ci) {
        out += "+-";
        append_double(out, scalar.half_width);
      }
      out += '\n';
    }
    for (const auto& series : report.series) {
      out += series.key;
      out += "=[";
      for (std::size_t i = 0; i < series.values.size(); ++i) {
        if (i != 0) out += ',';
        append_double(out, series.values[i]);
      }
      out += "]\n";
    }
  }
  return out;
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string run_fingerprint(const scenario::scenario_spec& spec,
                            const core::run_config& config) {
  return dump_probe_reports(scenario::run_probes(spec, config));
}

core::run_config property_run_config() {
  core::run_config config;
  config.horizon = 20;
  config.replications = 2;
  config.seed = 7;
  config.threads = 1;
  config.reuse = true;
  return config;
}

std::size_t check_scenario_property(const spec_property& property,
                                    std::uint64_t default_iterations,
                                    std::size_t max_reported_failures) {
  const property_plan plan = property_run_plan(default_iterations);
  const std::vector<failure_report> reports =
      run_property(property, plan, max_reported_failures);
  for (const failure_report& report : reports) {
    write_artifact(report);
    ADD_FAILURE() << "property violated at iteration " << report.iteration
                  << " (seed " << report.seed << "):\n  " << report.message
                  << "\n\nminimal failing spec (save and run with --file):\n"
                  << report.spec_text << "\nreproduce with:\n  " << report.repro;
  }
  return reports.size();
}

}  // namespace sgl::testgen
