#include "property/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/step_kernel.h"
#include "scenario/serialize.h"

namespace sgl::testgen {

// --- random JSON documents --------------------------------------------------

std::string random_string(prng& rng) {
  static const std::vector<std::string> pieces = {
      "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\r", "\x01", "\x1f",
      "{", "}", "[", "]", ":", ",", "é", "😀", "\\u0041", "end"};
  std::string out;
  const std::size_t length = rng.below(8);
  for (std::size_t i = 0; i < length; ++i) out += pieces[rng.below(pieces.size())];
  return out;
}

double random_double(prng& rng) {
  switch (rng.below(6)) {
    case 0: return 0.0;
    case 1: return static_cast<double>(rng.next()) * 0x1.0p-64;  // [0,1)
    case 2: return 0.1 * static_cast<double>(rng.below(1000));
    case 3: return 1e300 * (static_cast<double>(rng.below(2000)) - 1000.0);
    case 4: return 1e-300 * static_cast<double>(rng.below(1000));
    default: {
      // Raw bit patterns reach the denormals and odd mantissas that
      // shortest-round-trip formatting gets wrong first; skip non-finite
      // (JSON has no encoding for them — the writer emits null).
      double bits = 0.0;
      const std::uint64_t raw = rng.next();
      static_assert(sizeof(bits) == sizeof(raw));
      std::memcpy(&bits, &raw, sizeof(bits));
      return std::isfinite(bits) ? bits : 0.5;
    }
  }
}

gen_node random_node(prng& rng, std::size_t depth) {
  gen_node node;
  // Containers get rarer with depth so documents stay small and under the
  // parser's 64-level limit.
  const std::uint64_t roll = rng.below(depth >= 5 ? 5 : 7);
  switch (roll) {
    case 0: node.type = gen_node::kind::null; break;
    case 1:
      node.type = gen_node::kind::boolean;
      node.boolean = rng.below(2) == 1;
      break;
    case 2:
      node.type = gen_node::kind::number_double;
      node.number = random_double(rng);
      break;
    case 3:
      node.type = gen_node::kind::number_uint;
      // Include values past 2^53, where double precision alone fails.
      node.integer = rng.below(2) == 0 ? rng.below(1000) : rng.next();
      break;
    case 4:
      node.type = gen_node::kind::string;
      node.text = random_string(rng);
      break;
    case 5: {
      node.type = gen_node::kind::array;
      const std::size_t size = rng.below(4);
      for (std::size_t i = 0; i < size; ++i) {
        node.items.push_back(random_node(rng, depth + 1));
      }
      break;
    }
    default: {
      node.type = gen_node::kind::object;
      const std::size_t size = rng.below(4);
      for (std::size_t i = 0; i < size; ++i) {
        node.members.emplace_back(random_string(rng), random_node(rng, depth + 1));
      }
      break;
    }
  }
  return node;
}

void emit_node(const gen_node& node, json_writer& json) {
  switch (node.type) {
    case gen_node::kind::null: json.null(); break;
    case gen_node::kind::boolean: json.value(node.boolean); break;
    case gen_node::kind::number_double: json.value(node.number); break;
    case gen_node::kind::number_uint: json.value(node.integer); break;
    case gen_node::kind::string: json.value(node.text); break;
    case gen_node::kind::array:
      json.begin_array();
      for (const gen_node& item : node.items) emit_node(item, json);
      json.end_array();
      break;
    case gen_node::kind::object:
      json.begin_object();
      for (const auto& [key, value] : node.members) {
        json.key(key);
        emit_node(value, json);
      }
      json.end_object();
      break;
  }
}

void expect_node_equal(const gen_node& expected, const json_value& actual,
                       const std::string& where) {
  switch (expected.type) {
    case gen_node::kind::null:
      EXPECT_TRUE(actual.is_null()) << where;
      break;
    case gen_node::kind::boolean:
      EXPECT_EQ(actual.as_bool(where), expected.boolean) << where;
      break;
    case gen_node::kind::number_double:
      // Bit-exact: json_number promises the shortest text that parses
      // back to exactly this double.
      EXPECT_EQ(actual.as_double(where), expected.number) << where;
      break;
    case gen_node::kind::number_uint:
      EXPECT_EQ(actual.as_uint64(where), expected.integer) << where;
      break;
    case gen_node::kind::string:
      EXPECT_EQ(actual.as_string(where), expected.text) << where;
      break;
    case gen_node::kind::array: {
      ASSERT_TRUE(actual.is_array()) << where;
      ASSERT_EQ(actual.items.size(), expected.items.size()) << where;
      for (std::size_t i = 0; i < expected.items.size(); ++i) {
        expect_node_equal(expected.items[i], actual.items[i],
                          where + "[" + std::to_string(i) + "]");
      }
      break;
    }
    case gen_node::kind::object: {
      ASSERT_TRUE(actual.is_object()) << where;
      ASSERT_EQ(actual.members.size(), expected.members.size()) << where;
      for (std::size_t i = 0; i < expected.members.size(); ++i) {
        EXPECT_EQ(actual.members[i].first, expected.members[i].first) << where;
        expect_node_equal(expected.members[i].second, actual.members[i].second,
                          where + "." + expected.members[i].first);
      }
      break;
    }
  }
}

// --- random valid scenario specs --------------------------------------------

namespace {

using scenario::engine_kind;
using scenario::environment_spec;
using scenario::fault_action_spec;
using scenario::scenario_spec;
using scenario::topology_spec;

/// Values quantized to eighths serialize short and exactly.
double eighths(prng& rng) { return static_cast<double>(rng.below(9)) / 8.0; }

/// A rule with 0 <= alpha <= beta <= 1, quantized.
core::adoption_rule random_rule(prng& rng) {
  const double beta = eighths(rng);
  const double alpha = beta * static_cast<double>(rng.below(9)) / 8.0;
  return {alpha, beta};
}

core::dynamics_params random_params(prng& rng) {
  core::dynamics_params params;
  params.num_options = rng.pick<std::size_t>({1, 1, 2, 2, 3, 4, 8});
  params.mu = rng.pick<double>({0.0, 0.01, 0.05, 0.25, 1.0});
  params.beta = rng.pick<double>({0.0, 0.5, 0.55, 0.625, 0.75, 1.0});
  if (params.beta >= 0.5 && rng.chance(0.5)) {
    params.alpha = -1.0;  // the paper's convention α = 1 − β (needs β >= 1/2)
  } else {
    params.alpha = params.beta * static_cast<double>(rng.below(9)) / 8.0;
  }
  return params;
}

/// A probability vector of size m: positive integer weights normalized, so
/// the sum lands within an ulp or two of 1 (well inside every 1e-9 check).
std::vector<double> random_simplex(prng& rng, std::size_t m) {
  std::vector<std::uint64_t> weights(m);
  std::uint64_t total = 0;
  for (auto& w : weights) {
    w = rng.below(8);
    total += w;
  }
  if (total == 0) {
    weights[rng.below(m)] = 1;
    total = 1;
  }
  std::vector<double> out(m);
  for (std::size_t j = 0; j < m; ++j) {
    out[j] = static_cast<double>(weights[j]) / static_cast<double>(total);
  }
  return out;
}

std::vector<double> random_etas(prng& rng, std::size_t m) {
  std::vector<double> etas(m);
  for (auto& eta : etas) eta = eighths(rng);
  return etas;
}

void fill_environment(prng& rng, scenario_spec& spec) {
  const std::size_t m = spec.params.num_options;
  auto& env = spec.environment;
  switch (rng.below(4)) {
    case 0:
      env.family = environment_spec::family_kind::bernoulli;
      env.etas = random_etas(rng, m);
      break;
    case 1:
      env.family = environment_spec::family_kind::exclusive;
      env.etas = random_simplex(rng, m);
      break;
    case 2:
      env.family = environment_spec::family_kind::switching;
      env.etas = random_etas(rng, m);
      env.period = rng.pick<std::uint64_t>({1, 3, 50});
      break;
    default:
      env.family = environment_spec::family_kind::drifting;
      env.etas = random_etas(rng, m);
      env.end_etas = random_etas(rng, m);
      env.horizon = rng.pick<std::uint64_t>({2, 40, 500});
      break;
  }
}

void fill_probes(prng& rng, scenario_spec& spec) {
  static const std::vector<std::string> all{
      "regret",
      "trajectory",
      "final_histogram",
      "hitting_time(eps=0.3)",
      "recovery(eps=0.4)",
      "popularity_floor",
      "popularity_floor(floor=0.01)",
      "message_cost",    // report zero replications off the protocol engine,
      "commit_latency",  // which is itself part of the contract under test
      "adoption",
  };
  const std::size_t count = 1 + rng.below(3);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& probe = rng.pick(all);
    bool seen = false;
    for (const auto& existing : spec.probes) seen = seen || existing == probe;
    if (!seen) spec.probes.push_back(probe);
  }
}

/// Populates topology + a compatible num_agents for an agent-based or
/// protocol spec.  `small` caps N (the protocol engine simulates every
/// node's mailbox, so its populations stay tiny).
void fill_topology(prng& rng, scenario_spec& spec, bool small) {
  auto& topo = spec.topology;
  topo.seed = rng.below(1000);
  const std::uint64_t cap = small ? 24 : 60;
  const auto pick_n = [&](std::vector<std::uint64_t> options) {
    std::vector<std::uint64_t> fit;
    for (const std::uint64_t n : options) {
      if (n <= cap) fit.push_back(n);
    }
    return rng.pick(fit);
  };
  switch (rng.below(9)) {
    case 0:
      topo.family = topology_spec::family_kind::complete;
      spec.num_agents = pick_n({1, 2, 3, 12, 40});
      break;
    case 1:
      topo.family = topology_spec::family_kind::ring;
      spec.num_agents = pick_n({1, 2, 3, 12, 40});
      break;
    case 2:
      topo.family = topology_spec::family_kind::star;
      spec.num_agents = pick_n({1, 2, 3, 12, 40});
      break;
    case 3:
      topo.family = topology_spec::family_kind::erdos_renyi;
      topo.edge_probability = rng.pick<double>({0.0, 0.05, 0.3, 1.0});
      spec.num_agents = pick_n({1, 2, 3, 12, 40});
      break;
    case 4:
    case 5: {
      topo.family = rng.chance(0.5) ? topology_spec::family_kind::grid
                                    : topology_spec::family_kind::torus;
      spec.num_agents = pick_n({1, 4, 6, 12, 24});
      if (rng.chance(0.5)) {
        // An explicit factorization, possibly degenerate (one row).
        std::vector<std::uint64_t> divisors;
        for (std::uint64_t d = 1; d <= spec.num_agents; ++d) {
          if (spec.num_agents % d == 0) divisors.push_back(d);
        }
        topo.rows = rng.pick(divisors);
        topo.cols = spec.num_agents / topo.rows;
      }
      break;
    }
    case 6: {
      topo.family = topology_spec::family_kind::watts_strogatz;
      spec.num_agents = pick_n({3, 5, 12, 40});
      topo.degree = 1 + rng.below((spec.num_agents - 1) / 2);
      topo.rewire_probability = rng.pick<double>({0.0, 0.1, 1.0});
      break;
    }
    case 7: {
      topo.family = topology_spec::family_kind::barabasi_albert;
      spec.num_agents = pick_n({2, 3, 12, 40});
      topo.degree = 1 + rng.below(spec.num_agents - 1);
      break;
    }
    default: {
      topo.family = topology_spec::family_kind::two_cliques;
      spec.num_agents = pick_n({4, 6, 12, 40});
      topo.bridges = 1 + rng.below(spec.num_agents / 2);
      break;
    }
  }
}

void fill_protocol(prng& rng, scenario_spec& spec) {
  auto& p = spec.protocol;
  p.round_interval = rng.pick<double>({0.5, 1.0});
  p.base_latency = rng.pick<double>({0.0, 0.05});
  p.jitter_mean = rng.pick<double>({0.0, 0.02});
  p.drop_probability = rng.pick<double>({0.0, 0.1, 1.0});
  p.max_retries = rng.pick<std::uint64_t>({0, 2, 4});
  p.crash_rate = rng.pick<double>({0.0, 0.05});
  p.restart_rate = p.crash_rate > 0.0 ? rng.pick<double>({0.0, 0.25}) : 0.0;
  p.sticky = rng.chance(0.3);
  p.lockstep = rng.chance(0.3);

  if (rng.chance(0.25)) {
    fault_action_spec action;
    // A partition needs a non-empty other side, so N = 1 draws a wave.
    switch (spec.num_agents < 2 ? 1 + rng.below(2) : rng.below(3)) {
      case 0: {
        action.kind = fault_action_spec::action_kind::partition;
        action.at = 2.0;
        action.until = 5.0;
        action.targets = {0};
        break;
      }
      case 1: {
        action.kind = fault_action_spec::action_kind::crash_wave;
        action.at = 2.0;
        action.fraction = 0.5;
        break;
      }
      default: {
        action.kind = fault_action_spec::action_kind::degrade;
        action.at = 1.0;
        action.until = 4.0;
        action.drop_probability = 0.5;
        action.base_latency = 0.05;
        break;
      }
    }
    spec.faults.actions.push_back(action);
    if (rng.chance(0.3)) {
      spec.faults.record = true;
      spec.faults.record_capacity = rng.pick<std::uint64_t>({0, 64});
    }
  }
}

core::kernel_kind random_kernel(prng& rng) {
  std::vector<core::kernel_kind> kinds{core::kernel_kind::auto_select,
                                       core::kernel_kind::scalar};
  if (core::kernel::vector_isa_available()) kinds.push_back(core::kernel_kind::simd);
  return rng.pick(kinds);
}

void check_valid(const scenario_spec& spec, const char* who) {
  const std::string error = scenario::validate_spec_error(spec);
  if (!error.empty()) {
    throw std::logic_error{std::string{who} + " produced an invalid spec: " + error +
                           "\n" + scenario::serialize_scenario(spec)};
  }
}

}  // namespace

scenario_spec random_scenario(prng& rng) {
  scenario_spec spec;
  spec.name = "generated";
  spec.params = random_params(rng);
  fill_environment(rng, spec);
  fill_probes(rng, spec);

  switch (rng.below(8)) {
    case 0:  // mean-field, optionally from a nonuniform start
      spec.num_agents = 0;
      spec.engine = rng.chance(0.5) ? engine_kind::infinite : engine_kind::auto_select;
      if (rng.chance(0.4)) {
        spec.engine = engine_kind::infinite;
        spec.start = random_simplex(rng, spec.params.num_options);
      }
      break;
    case 1:  // exact aggregate
      spec.num_agents = rng.pick<std::uint64_t>({1, 2, 3, 10, 77, 500});
      spec.engine = rng.chance(0.5) ? engine_kind::aggregate : engine_kind::auto_select;
      break;
    case 2:  // agent-based, homogeneous fully mixed
      spec.num_agents = rng.pick<std::uint64_t>({1, 2, 3, 16, 60, 200});
      spec.engine = engine_kind::agent_based;
      spec.engine_kernel = random_kernel(rng);
      spec.engine_threads = rng.pick<unsigned>({1, 2});
      break;
    case 3:  // agent-based, heterogeneous per-agent rules
      spec.num_agents = rng.pick<std::uint64_t>({1, 2, 3, 16, 60});
      spec.engine = engine_kind::agent_based;
      spec.agent_rules.resize(spec.num_agents);
      for (auto& rule : spec.agent_rules) rule = random_rule(rng);
      spec.engine_kernel = random_kernel(rng);
      spec.engine_threads = rng.pick<unsigned>({1, 2});
      break;
    case 4:  // agent-based on a topology
      spec.engine =
          rng.chance(0.5) ? engine_kind::agent_based : engine_kind::auto_select;
      fill_topology(rng, spec, /*small=*/false);
      if (rng.chance(0.3)) {
        spec.agent_rules.resize(spec.num_agents);
        for (auto& rule : spec.agent_rules) rule = random_rule(rng);
        spec.engine = engine_kind::agent_based;
      }
      spec.engine_kernel = random_kernel(rng);
      spec.engine_threads = rng.pick<unsigned>({1, 2});
      break;
    case 5: {  // grouped rule mixture
      spec.engine = rng.chance(0.5) ? engine_kind::grouped : engine_kind::auto_select;
      const std::size_t group_count = 1 + rng.below(3);
      spec.num_agents = 0;
      for (std::size_t i = 0; i < group_count; ++i) {
        const std::uint64_t size = rng.pick<std::uint64_t>({1, 2, 10, 50, 150});
        spec.groups.push_back({size, random_rule(rng)});
        spec.num_agents += size;
      }
      break;
    }
    case 6:  // protocol, fully mixed
      spec.engine = engine_kind::protocol;
      spec.num_agents = rng.pick<std::uint64_t>({1, 2, 3, 8, 24});
      fill_protocol(rng, spec);
      break;
    default:  // protocol on a topology
      spec.engine = engine_kind::protocol;
      fill_topology(rng, spec, /*small=*/true);
      fill_protocol(rng, spec);
      break;
  }

  check_valid(spec, "random_scenario");
  return spec;
}

const std::vector<scenario_spec>& corner_specs() {
  static const std::vector<scenario_spec> corners = [] {
    std::vector<scenario_spec> out;
    const auto add = [&out](const char* name, auto&& build) {
      scenario_spec spec;
      spec.name = name;
      spec.params.beta = 0.65;
      spec.params.mu = 0.05;
      build(spec);
      check_valid(spec, name);
      out.push_back(std::move(spec));
    };

    add("corner-one-agent-one-option", [](scenario_spec& spec) {
      spec.params.num_options = 1;
      spec.num_agents = 1;
      spec.engine = engine_kind::aggregate;
      spec.environment.etas = {1.0};
    });
    add("corner-infinite-one-option", [](scenario_spec& spec) {
      spec.params.num_options = 1;
      spec.num_agents = 0;
      spec.engine = engine_kind::infinite;
      spec.environment.etas = {0.5};
    });
    add("corner-infinite-degenerate-start", [](scenario_spec& spec) {
      spec.params.num_options = 4;
      spec.num_agents = 0;
      spec.engine = engine_kind::infinite;
      spec.start = {1.0, 0.0, 0.0, 0.0};
      spec.environment.etas = {0.8, 0.5, 0.3, 0.1};
    });
    add("corner-beta-zero", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.params.beta = 0.0;
      spec.params.alpha = 0.0;
      spec.num_agents = 10;
      spec.engine = engine_kind::aggregate;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-beta-one-all-bad", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.params.beta = 1.0;
      spec.params.alpha = 0.0;
      spec.num_agents = 5;
      spec.engine = engine_kind::agent_based;
      spec.engine_kernel = core::kernel_kind::scalar;
      spec.environment.etas = {0.0, 0.0};
    });
    add("corner-mu-one", [](scenario_spec& spec) {
      spec.params.num_options = 3;
      spec.params.mu = 1.0;
      spec.num_agents = 20;
      spec.environment.etas = {0.75, 0.5, 0.25};
    });
    add("corner-mu-zero", [](scenario_spec& spec) {
      spec.params.num_options = 3;
      spec.params.mu = 0.0;
      spec.num_agents = 20;
      spec.environment.etas = {0.75, 0.5, 0.25};
    });
    add("corner-grouped-single-group", [](scenario_spec& spec) {
      spec.params.num_options = 3;
      spec.num_agents = 50;
      spec.groups = {{50, {0.35, 0.65}}};
      spec.environment.etas = {0.75, 0.5, 0.25};
    });
    add("corner-grouped-size-one-groups", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 12;
      spec.groups = {{1, {0.0, 1.0}}, {10, {0.5, 0.5}}, {1, {0.35, 0.65}}};
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-ring-of-three", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 3;
      spec.topology.family = topology_spec::family_kind::ring;
      spec.engine_kernel = core::kernel_kind::scalar;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-empty-graph", [](scenario_spec& spec) {
      // erdos_renyi with p = 0: every agent is isolated, stage 1 never
      // finds a neighbour, and the run must stay well-defined (uniform).
      spec.params.num_options = 2;
      spec.num_agents = 8;
      spec.topology.family = topology_spec::family_kind::erdos_renyi;
      spec.topology.edge_probability = 0.0;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-two-cliques-minimal", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 4;
      spec.topology.family = topology_spec::family_kind::two_cliques;
      spec.topology.bridges = 2;
      spec.agent_rules = {{0.0, 1.0}, {0.5, 0.5}, {0.35, 0.65}, {0.0, 0.0}};
      spec.engine = engine_kind::agent_based;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-one-row-grid", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 6;
      spec.topology.family = topology_spec::family_kind::grid;
      spec.topology.rows = 1;
      spec.topology.cols = 6;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-smallworld-minimal", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 3;
      spec.topology.family = topology_spec::family_kind::watts_strogatz;
      spec.topology.degree = 1;
      spec.topology.rewire_probability = 1.0;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-protocol-single-node", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 1;
      spec.engine = engine_kind::protocol;
      spec.protocol.lockstep = true;
      spec.protocol.base_latency = 0.0;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-protocol-full-drop", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 4;
      spec.engine = engine_kind::protocol;
      spec.protocol.drop_probability = 1.0;
      spec.protocol.sticky = true;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-protocol-partition", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 6;
      spec.engine = engine_kind::protocol;
      fault_action_spec cut;
      cut.kind = fault_action_spec::action_kind::partition;
      cut.at = 2.0;
      cut.until = 6.0;
      cut.targets = {0, 1};
      spec.faults.actions.push_back(cut);
      spec.faults.record = true;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-switching-every-step", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 10;
      spec.environment.family = environment_spec::family_kind::switching;
      spec.environment.period = 1;
      spec.environment.etas = {0.75, 0.25};
    });
    add("corner-drifting-two-steps", [](scenario_spec& spec) {
      spec.params.num_options = 2;
      spec.num_agents = 10;
      spec.environment.family = environment_spec::family_kind::drifting;
      spec.environment.etas = {0.75, 0.25};
      spec.environment.end_etas = {0.25, 0.75};
      spec.environment.horizon = 2;
    });
    return out;
  }();
  return corners;
}

scenario_spec draw_scenario(std::uint64_t seed, std::uint64_t iteration) {
  const auto& corners = corner_specs();
  if (iteration < corners.size()) return corners[iteration];
  prng rng{seed + 0x100000001b3ULL * (iteration + 1)};
  return random_scenario(rng);
}

// --- environment knobs -------------------------------------------------------

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

property_plan property_run_plan(std::uint64_t default_iterations,
                                std::uint64_t default_seed) {
  property_plan plan;
  plan.seed = env_u64("SGL_PROPERTY_SEED", default_seed);
  plan.iterations = env_u64("SGL_PROPERTY_ITERS", default_iterations);
  return plan;
}

}  // namespace sgl::testgen
