// Law-equivalence properties between engine kinds in degenerate corners —
// the bit-level identities (distributional equivalences live in the
// `statistical` tier: protocol_law_test, kernel_law_test).
//
// The one exact cross-engine identity the implementation promises is that
// the grouped engine with a single rule group IS the aggregate engine: an
// aggregate population is the G = 1 case of the rule mixture, and both
// consume the process stream identically.  It is asserted here at both
// levels — raw engines fed shared streams, and whole specs through the
// Monte-Carlo harness — over randomly drawn parameters and populations.

#include <gtest/gtest.h>

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/grouped_dynamics.h"
#include "property/generators.h"
#include "property/property_harness.h"
#include "scenario/scenario.h"
#include "support/rng.h"

namespace {

using namespace sgl;

/// The adoption rule an aggregate engine actually runs: params.alpha with
/// the alpha = -1 convention resolved to 1 - beta (core/params.h).
core::adoption_rule resolved_rule(const core::dynamics_params& params) {
  const double alpha = params.alpha < 0.0 ? 1.0 - params.beta : params.alpha;
  return {alpha, params.beta};
}

std::vector<double> trajectory(core::dynamics_engine& engine, std::uint64_t seed) {
  rng reward_gen = rng::from_stream(seed, 0);
  rng process_gen = rng::from_stream(seed, 1);
  std::vector<std::uint8_t> rewards(engine.num_options());
  std::vector<double> out;
  for (std::uint64_t t = 1; t <= 40; ++t) {
    for (auto& r : rewards) r = reward_gen.next_bernoulli(0.55) ? 1 : 0;
    engine.step(rewards, process_gen);
    for (const double q : engine.popularity()) out.push_back(q);
  }
  out.push_back(static_cast<double>(engine.empty_steps()));
  out.push_back(static_cast<double>(engine.steps()));
  return out;
}

// Engine level: aggregate_dynamics(params, N) and grouped_dynamics with the
// single group (N, resolved rule) must walk identical trajectories from
// identical streams, for random parameters and populations.
TEST(engine_law_property, grouped_single_group_is_aggregate_bitwise) {
  const testgen::property_plan plan = testgen::property_run_plan(120);
  for (std::uint64_t i = 0; i < plan.iterations; ++i) {
    testgen::prng rng_state{plan.seed + 0x9e3779b9ULL * (i + 1)};
    core::dynamics_params params;
    params.num_options = rng_state.pick<std::size_t>({1, 2, 3, 5, 8});
    params.mu = rng_state.pick<double>({0.0, 0.05, 0.5, 1.0});
    params.beta = rng_state.pick<double>({0.0, 0.5, 0.625, 0.75, 1.0});
    params.alpha = params.beta >= 0.5 && rng_state.chance(0.5)
                       ? -1.0
                       : params.beta * static_cast<double>(rng_state.below(9)) / 8.0;
    const std::uint64_t population =
        rng_state.pick<std::uint64_t>({1, 2, 7, 100, 1000});
    SCOPED_TRACE("iteration " + std::to_string(i) + " (seed " +
                 std::to_string(plan.seed) + "), N=" + std::to_string(population));

    core::aggregate_dynamics aggregate{params, population};
    core::grouped_dynamics grouped{params, {{population, resolved_rule(params)}}};
    EXPECT_EQ(trajectory(aggregate, 17 + i), trajectory(grouped, 17 + i));
  }
}

// Spec level: any drawn spec that resolves to the aggregate engine runs
// bit-identically when rewritten as an explicit single-group mixture —
// through run_probes, whole merged reports compared.  (Draws resolving to
// other engines pass vacuously; the corner table guarantees aggregate
// coverage on every run.)
TEST(engine_law_property, aggregate_spec_equals_single_group_spec) {
  testgen::check_scenario_property(
      [](const scenario::scenario_spec& spec) -> std::string {
        try {
          if (scenario::resolved_engine(spec) != scenario::engine_kind::aggregate) {
            return {};
          }
          scenario::scenario_spec mixture = spec;
          mixture.engine = scenario::engine_kind::grouped;
          mixture.groups = {{spec.num_agents, resolved_rule(spec.params)}};
          const std::string validity = scenario::validate_spec_error(mixture);
          if (!validity.empty()) {
            return "single-group rewrite fails validate_spec: " + validity;
          }
          const core::run_config config = testgen::property_run_config();
          if (testgen::run_fingerprint(spec, config) !=
              testgen::run_fingerprint(mixture, config)) {
            return "aggregate spec and its single-group mixture diverge";
          }
          return {};
        } catch (const std::exception& error) {
          return std::string{"unexpected exception: "} + error.what();
        }
      },
      /*default_iterations=*/40);
}

}  // namespace
