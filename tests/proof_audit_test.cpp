// Pathwise verification of the Theorem 4.3 proof: the potential bounds and
// the combined regret inequality are deterministic statements that must
// hold along EVERY trajectory, for every reward realization — a far
// stronger check than the expectation-level property tests.

#include "core/proof_audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/infinite_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

TEST(proof_auditor, regime_validation) {
  EXPECT_NO_THROW(proof_auditor{theorem_params(3, 0.62)});

  dynamics_params bad = theorem_params(3, 0.62);
  bad.alpha = 0.2;  // breaks alpha = 1 - beta
  EXPECT_THROW(proof_auditor{bad}, std::invalid_argument);

  bad = theorem_params(3, 0.62);
  bad.mu = 0.0;
  EXPECT_THROW(proof_auditor{bad}, std::invalid_argument);

  bad = theorem_params(3, 0.62);
  bad.beta = 0.5;
  EXPECT_THROW(proof_auditor{bad}, std::invalid_argument);

  bad = theorem_params(3, 0.62);
  bad.beta = 0.9;  // delta > 1
  EXPECT_THROW(proof_auditor{bad}, std::invalid_argument);
}

TEST(proof_auditor, observe_validates_widths) {
  proof_auditor auditor{theorem_params(3, 0.6)};
  EXPECT_THROW(auditor.observe(std::vector<double>{0.5, 0.5},
                               std::vector<std::uint8_t>{1, 0, 1}, 0.0),
               std::invalid_argument);
}

TEST(proof_auditor, tracks_rewards) {
  const dynamics_params params = theorem_params(2, 0.6);
  infinite_dynamics dyn{params};
  proof_auditor auditor{params};
  const std::vector<std::vector<std::uint8_t>> schedule{{1, 0}, {1, 1}, {0, 0}};
  for (const auto& r : schedule) {
    std::vector<double> previous(dyn.distribution().begin(), dyn.distribution().end());
    dyn.step(r);
    auditor.observe(previous, r, dyn.log_potential());
  }
  EXPECT_EQ(auditor.steps(), 3U);
  EXPECT_DOUBLE_EQ(auditor.comparator_reward(), 2.0);  // R_1 = 1, 1, 0
  EXPECT_GT(auditor.group_reward(), 0.0);
  EXPECT_LE(auditor.group_reward(), 3.0);
}

struct audit_case {
  std::size_t m;
  double beta;
  double eta_best;
  double eta_rest;
};

class proof_audit_sweep : public ::testing::TestWithParam<audit_case> {};

TEST_P(proof_audit_sweep, all_inequalities_hold_pathwise) {
  const auto [m, beta, eta_best, eta_rest] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const auto etas = env::two_level_etas(m, eta_best, eta_rest);

  // Many independent trajectories; every step of every one must satisfy the
  // three proof inequalities.
  for (std::uint64_t rep = 0; rep < 25; ++rep) {
    infinite_dynamics dyn{params};
    proof_auditor auditor{params};
    env::bernoulli_rewards environment{etas};
    rng gen = rng::from_stream(0xa0d17 + m, rep);
    const double worst =
        audit_run(dyn, auditor, 400, [&](std::uint64_t t, std::span<std::uint8_t> out) {
          environment.sample(t, gen, out);
        });
    EXPECT_GE(worst, -1e-9) << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    grid, proof_audit_sweep,
    ::testing::Values(audit_case{2, 0.55, 0.85, 0.35}, audit_case{2, 0.62, 0.9, 0.1},
                      audit_case{2, 0.73, 0.6, 0.5}, audit_case{5, 0.6, 0.85, 0.35},
                      audit_case{5, 0.73, 0.95, 0.05}, audit_case{10, 0.62, 0.85, 0.35},
                      audit_case{20, 0.66, 0.7, 0.4}, audit_case{50, 0.6, 0.85, 0.35}),
    [](const ::testing::TestParamInfo<audit_case>& info) {
      return "m" + std::to_string(info.param.m) + "_beta" +
             std::to_string(static_cast<int>(info.param.beta * 100));
    });

TEST(proof_auditor, holds_on_adversarial_schedules) {
  // Deterministic worst-case-looking schedules (the inequality is pathwise,
  // so even adversarial reward sequences must satisfy it).
  const dynamics_params params = theorem_params(3, 0.65);
  const std::vector<std::vector<std::vector<std::uint8_t>>> schedules{
      {{0, 1, 1}},                      // comparator always bad
      {{1, 0, 0}},                      // comparator always good
      {{0, 0, 0}},                      // nothing ever good
      {{1, 1, 1}},                      // everything always good
      {{0, 1, 0}, {1, 0, 1}, {0, 0, 1}},  // churn
  };
  for (const auto& schedule : schedules) {
    infinite_dynamics dyn{params};
    proof_auditor auditor{params};
    env::schedule_rewards environment{schedule};
    rng dummy{0};
    const double worst =
        audit_run(dyn, auditor, 600, [&](std::uint64_t t, std::span<std::uint8_t> out) {
          environment.sample(t, dummy, out);
        });
    EXPECT_GE(worst, -1e-9);
  }
}

TEST(proof_auditor, regret_slack_scales_with_horizon) {
  // The combined inequality's rhs grows like (delta^2 + 6 mu) T, so for a
  // converging run the slack must grow roughly linearly.
  const dynamics_params params = theorem_params(2, 0.6);
  infinite_dynamics dyn{params};
  proof_auditor auditor{params};
  env::bernoulli_rewards environment{{0.85, 0.35}};
  rng gen{7};

  double slack_at_100 = 0.0;
  std::vector<double> previous(2);
  std::vector<std::uint8_t> r(2);
  for (std::uint64_t t = 1; t <= 1000; ++t) {
    previous.assign(dyn.distribution().begin(), dyn.distribution().end());
    environment.sample(t, gen, r);
    dyn.step(r);
    auditor.observe(previous, r, dyn.log_potential());
    if (t == 100) slack_at_100 = auditor.slacks().regret_inequality;
  }
  EXPECT_GT(auditor.slacks().regret_inequality, slack_at_100);
}

}  // namespace
}  // namespace sgl::core
