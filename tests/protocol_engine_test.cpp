// The protocol engine as a dynamics_engine: interface contract, the
// reset()-reuse law, bit-identical replays (trajectories, net counters AND
// the full netsim event-trace hash), schedule invariance through the
// harness and the sweep scheduler, and the fault-injection edge cases that
// must terminate with defined reports (total loss, all-crash, zero
// retries, single-node populations).

#include "protocol/protocol_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/probe.h"
#include "graph/graph.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "scenario/sweep.h"
#include "support/rng.h"

namespace {

using namespace sgl;

protocol::engine_config make_config(std::size_t m = 2, double mu = 0.1,
                                    double beta = 0.65) {
  protocol::engine_config config;
  config.dynamics.num_options = m;
  config.dynamics.mu = mu;
  config.dynamics.beta = beta;
  return config;
}

/// Drives the engine `horizon` rounds from fixed streams; returns the
/// flattened popularity trajectory plus the counters (the shape the
/// harness determinism tests use).
std::vector<double> drive(core::dynamics_engine& engine, std::uint64_t horizon,
                          std::uint64_t seed) {
  rng reward_gen = rng::from_stream(seed, 0);
  rng process_gen = rng::from_stream(seed, 1);
  std::vector<std::uint8_t> rewards(engine.num_options());
  std::vector<double> out;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    for (auto& r : rewards) r = reward_gen.next_bernoulli(0.6) ? 1 : 0;
    engine.step(rewards, process_gen);
    for (const double q : engine.popularity()) out.push_back(q);
  }
  out.push_back(static_cast<double>(engine.empty_steps()));
  out.push_back(static_cast<double>(engine.steps()));
  return out;
}

std::string dump_reports(const core::probe_list& probes) {
  std::string out;
  for (const auto& probe : probes) {
    const core::probe_report report = probe->report();
    out += report.probe;
    for (const auto& scalar : report.scalars) {
      char buf[96];
      std::snprintf(buf, sizeof buf, " %s=%.17g+-%.17g", scalar.key.c_str(),
                    scalar.value, scalar.half_width);
      out += buf;
    }
    for (const auto& series : report.series) {
      out += ' ';
      out += series.key;
      out += ":[";
      for (const double v : series.values) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g,", v);
        out += buf;
      }
      out += ']';
    }
    out += '\n';
  }
  return out;
}

// --- interface contract ------------------------------------------------------

TEST(protocol_engine, validates_construction_and_inputs) {
  EXPECT_NO_THROW(protocol::protocol_engine(make_config(), 10));
  EXPECT_THROW(protocol::protocol_engine(make_config(), 0), std::invalid_argument);

  protocol::engine_config bad = make_config();
  bad.round_interval = 0.0;
  EXPECT_THROW(protocol::protocol_engine(bad, 10), std::invalid_argument);
  bad = make_config();
  bad.drop_probability = 1.5;
  EXPECT_THROW(protocol::protocol_engine(bad, 10), std::invalid_argument);
  bad = make_config();
  bad.crash_rate = -0.1;
  EXPECT_THROW(protocol::protocol_engine(bad, 10), std::invalid_argument);
  bad = make_config();
  bad.restart_rate = 2.0;
  EXPECT_THROW(protocol::protocol_engine(bad, 10), std::invalid_argument);

  auto ring = std::make_shared<const graph::graph>(graph::graph::ring(8));
  EXPECT_THROW(protocol::protocol_engine(make_config(), 10, ring),
               std::invalid_argument);
  protocol::protocol_engine engine{make_config(), 8, ring};
  rng gen{1};
  const std::vector<std::uint8_t> wrong_width{1, 0, 1};
  EXPECT_THROW(engine.step(wrong_width, gen), std::invalid_argument);
}

TEST(protocol_engine, contract_basics) {
  protocol::protocol_engine engine{make_config(3), 60};
  EXPECT_EQ(engine.num_options(), 3U);
  EXPECT_TRUE(engine.reusable());
  EXPECT_EQ(engine.steps(), 0U);
  for (const double q : engine.popularity()) EXPECT_DOUBLE_EQ(q, 1.0 / 3.0);

  rng gen{7};
  const std::vector<std::uint8_t> rewards{1, 0, 1};
  for (int t = 1; t <= 40; ++t) {
    engine.step(rewards, gen);
    EXPECT_EQ(engine.steps(), static_cast<std::uint64_t>(t));
    double total = 0.0;
    for (const double q : engine.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
    const auto counts = engine.adopter_counts();
    ASSERT_EQ(counts.size(), 3U);
    const std::uint64_t committed =
        std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
    EXPECT_LE(committed, 60U);
    EXPECT_EQ(committed, engine.sample_net().committed);
  }
  const core::net_metrics net = engine.sample_net();
  EXPECT_GT(net.messages_sent, 0U);
  EXPECT_GT(net.timers_fired, 0U);
  EXPECT_EQ(net.bytes_sent, net.messages_sent * netsim::message::wire_bytes);
  EXPECT_EQ(net.alive, 60U);
}

// --- determinism -------------------------------------------------------------

TEST(protocol_engine, reset_reuse_law) {
  protocol::engine_config config = make_config(2, 0.1, 0.7);
  config.drop_probability = 0.2;
  config.jitter_mean = 0.1;
  auto reused = std::make_unique<protocol::protocol_engine>(config, 80);
  const std::vector<double> first = drive(*reused, 50, 11);
  reused->reset();
  const std::vector<double> again = drive(*reused, 50, 11);
  protocol::protocol_engine fresh{config, 80};
  const std::vector<double> reference = drive(fresh, 50, 11);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(again, reference);
}

TEST(protocol_engine, replay_is_bit_identical_including_event_trace) {
  protocol::engine_config config = make_config(2, 0.1, 0.7);
  config.drop_probability = 0.15;
  config.jitter_mean = 0.05;
  config.crash_rate = 0.01;
  config.restart_rate = 0.2;

  protocol::protocol_engine a{config, 70};
  protocol::protocol_engine b{config, 70};
  const std::vector<double> trajectory_a = drive(a, 60, 5);
  const std::vector<double> trajectory_b = drive(b, 60, 5);
  EXPECT_EQ(trajectory_a, trajectory_b);

  const core::net_metrics net_a = a.sample_net();
  const core::net_metrics net_b = b.sample_net();
  EXPECT_EQ(net_a.messages_sent, net_b.messages_sent);
  EXPECT_EQ(net_a.messages_delivered, net_b.messages_delivered);
  EXPECT_EQ(net_a.messages_dropped, net_b.messages_dropped);
  EXPECT_EQ(net_a.timers_fired, net_b.timers_fired);
  EXPECT_EQ(net_a.commit_events, net_b.commit_events);
  EXPECT_EQ(net_a.commit_latency_rounds, net_b.commit_latency_rounds);

  ASSERT_NE(a.simulation(), nullptr);
  ASSERT_NE(b.simulation(), nullptr);
  EXPECT_EQ(a.simulation()->trace_hash(), b.simulation()->trace_hash())
      << "full event traces must replay bit-identically";

  // A different replication stream is a genuinely different trace.
  protocol::protocol_engine c{config, 70};
  (void)drive(c, 60, 6);
  EXPECT_NE(a.simulation()->trace_hash(), c.simulation()->trace_hash());
}

TEST(protocol_engine, harness_results_invariant_to_threads_and_reuse) {
  scenario::scenario_spec spec = scenario::get_scenario("gossip_lossy_sweep");
  spec.num_agents = 150;
  core::run_config config;
  config.horizon = 20;
  config.replications = 6;
  config.seed = 17;

  config.threads = 1;
  config.reuse = true;
  const std::string reference = dump_reports(scenario::run_probes(spec, config));
  for (const unsigned threads : {1U, 4U}) {
    for (const bool reuse : {true, false}) {
      config.threads = threads;
      config.reuse = reuse;
      EXPECT_EQ(dump_reports(scenario::run_probes(spec, config)), reference)
          << "threads=" << threads << " reuse=" << reuse;
    }
  }
}

TEST(protocol_engine, sweep_points_bit_identical_to_individual_runs) {
  scenario::scenario_spec base = scenario::get_scenario("gossip_lossy_sweep");
  base.num_agents = 120;
  const scenario::sweep_axis axis =
      scenario::parse_sweep_axis("protocol.drop_probability=0:0.2:0.1");
  const auto grid = scenario::expand_sweep(std::span{&axis, 1});
  ASSERT_EQ(grid.size(), 3U);

  core::run_config config;
  config.horizon = 15;
  config.replications = 4;
  config.seed = 23;
  config.threads = 1;

  std::vector<std::string> reference;
  for (const auto& assignments : grid) {
    scenario::scenario_spec point = base;
    for (const auto& [key, value] : assignments) {
      scenario::apply_override(point, key, value);
    }
    reference.push_back(dump_reports(scenario::run_probes(point, config)));
  }
  for (const unsigned threads : {1U, 4U}) {
    config.threads = threads;
    const auto results = scenario::run_sweep(base, grid, config);
    ASSERT_EQ(results.size(), grid.size());
    for (std::size_t p = 0; p < results.size(); ++p) {
      EXPECT_EQ(dump_reports(results[p].probes), reference[p])
          << "point " << p << " threads=" << threads;
    }
  }
}

// --- fault-injection edge cases ---------------------------------------------

TEST(protocol_engine, total_packet_loss_terminates_with_defined_reports) {
  protocol::engine_config config = make_config(2, 0.1, 0.7);
  config.drop_probability = 1.0;
  protocol::protocol_engine engine{config, 50};
  rng gen{3};
  const std::vector<std::uint8_t> rewards{1, 0};
  for (int t = 0; t < 30; ++t) {
    engine.step(rewards, gen);
    double total = 0.0;
    for (const double q : engine.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
  const core::net_metrics net = engine.sample_net();
  EXPECT_EQ(net.messages_delivered, 0U);
  EXPECT_EQ(net.messages_dropped, net.messages_sent);
  // Exploration does not need the network: commits still happen.
  EXPECT_GT(net.commit_events, 0U);
}

TEST(protocol_engine, all_crash_terminates_with_defined_reports) {
  protocol::engine_config config = make_config(2, 0.1, 0.7);
  config.crash_rate = 1.0;
  protocol::protocol_engine engine{config, 40};
  rng gen{4};
  const std::vector<std::uint8_t> rewards{1, 0};
  for (int t = 0; t < 20; ++t) engine.step(rewards, gen);
  const core::net_metrics net = engine.sample_net();
  EXPECT_EQ(net.alive, 0U);
  EXPECT_EQ(net.committed, 0U);
  // Nobody alive => nobody adopts => uniform popularity and empty steps.
  for (const double q : engine.popularity()) EXPECT_DOUBLE_EQ(q, 0.5);
  EXPECT_EQ(engine.empty_steps(), 20U);

  // All-crash with certain restart keeps oscillating instead of hanging.
  config.restart_rate = 1.0;
  protocol::protocol_engine churned{config, 40};
  for (int t = 0; t < 20; ++t) churned.step(rewards, gen);
  EXPECT_EQ(churned.steps(), 20U);
}

TEST(protocol_engine, zero_retries_and_single_node_terminate) {
  protocol::engine_config config = make_config(3, 0.2, 0.7);
  config.max_retries = 0;
  protocol::protocol_engine engine{config, 30};
  rng gen{5};
  const std::vector<std::uint8_t> rewards{1, 0, 1};
  for (int t = 0; t < 25; ++t) engine.step(rewards, gen);
  EXPECT_EQ(engine.steps(), 25U);

  // A single isolated node can only self-explore: no messages, no hangs,
  // no division by zero in the popularity normalization.
  protocol::protocol_engine lonely{make_config(2, 0.1, 0.7), 1};
  const std::vector<std::uint8_t> two{1, 0};
  for (int t = 0; t < 40; ++t) {
    lonely.step(two, gen);
    double total = 0.0;
    for (const double q : lonely.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_EQ(lonely.sample_net().messages_sent, 0U);
}

TEST(protocol_engine, adoption_probe_survives_total_crash) {
  scenario::scenario_spec spec = scenario::get_scenario("gossip_crash_recovery");
  spec.num_agents = 60;
  spec.protocol.crash_rate = 1.0;
  spec.protocol.restart_rate = 0.0;
  core::run_config config;
  config.horizon = 10;
  config.replications = 2;
  config.seed = 2;
  config.threads = 1;
  const std::vector<std::string> probes{"adoption", "message_cost", "commit_latency"};
  const core::probe_list merged = scenario::run_probes(spec, config, probes);
  const core::probe_report adoption = merged[0]->report();
  const auto* alive = adoption.find_scalar("final_alive_fraction");
  ASSERT_NE(alive, nullptr);
  EXPECT_DOUBLE_EQ(alive->value, 0.0);
  const auto* committed = adoption.find_scalar("committed_fraction");
  ASSERT_NE(committed, nullptr);
  EXPECT_DOUBLE_EQ(committed->value, 0.0);
}

// --- probes on non-network engines -------------------------------------------

TEST(protocol_probes, report_zero_replications_for_plain_engines) {
  const scenario::scenario_spec spec = scenario::get_scenario("mixed_baseline");
  core::run_config config;
  config.horizon = 10;
  config.replications = 3;
  config.threads = 1;
  const std::vector<std::string> probes{"message_cost", "commit_latency", "adoption"};
  const core::probe_list merged = scenario::run_probes(spec, config, probes);
  for (const auto& probe : merged) {
    const core::probe_report report = probe->report();
    const auto* replications = report.find_scalar("replications");
    ASSERT_NE(replications, nullptr) << report.probe;
    EXPECT_DOUBLE_EQ(replications->value, 0.0) << report.probe;
  }
}

// --- scenario/spec validation ------------------------------------------------

TEST(protocol_spec, validate_rejects_unused_families_and_bad_ranges) {
  scenario::scenario_spec spec = scenario::get_scenario("gossip_lossy_sweep");
  EXPECT_NO_THROW(scenario::validate_spec(spec));

  scenario::scenario_spec grouped = spec;
  grouped.groups = {{100, {0.3, 0.7}}};
  EXPECT_THROW(scenario::validate_spec(grouped), std::invalid_argument);

  scenario::scenario_spec started = spec;
  started.start = {0.5, 0.5};
  EXPECT_THROW(scenario::validate_spec(started), std::invalid_argument);

  scenario::scenario_spec ruled = spec;
  ruled.agent_rules = {{0.3, 0.7}};
  EXPECT_THROW(scenario::validate_spec(ruled), std::invalid_argument);

  scenario::scenario_spec bad_rate = spec;
  bad_rate.protocol.crash_rate = 1.5;
  EXPECT_THROW(scenario::validate_spec(bad_rate), std::invalid_argument);

  scenario::scenario_spec no_nodes = spec;
  no_nodes.num_agents = 0;
  EXPECT_THROW(scenario::validate_spec(no_nodes), std::invalid_argument);
}

}  // namespace
