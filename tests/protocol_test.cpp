#include "protocol/gossip_learner.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "support/stats.h"

namespace sgl::protocol {
namespace {

gossip_params make_gossip(std::size_t m, double mu, double beta) {
  gossip_params p;
  p.dynamics.num_options = m;
  p.dynamics.mu = mu;
  p.dynamics.beta = beta;
  p.round_interval = 1.0;
  return p;
}

// --- signal_oracle -----------------------------------------------------------------

TEST(signal_oracle, deterministic_pure_function) {
  const signal_oracle oracle{{0.7, 0.3}, 42};
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(oracle.signal(round, j), oracle.signal(round, j));
    }
  }
}

TEST(signal_oracle, frequencies_match_etas) {
  const signal_oracle oracle{{0.8, 0.25}, 7};
  running_stats first;
  running_stats second;
  for (std::uint64_t round = 0; round < 20000; ++round) {
    first.add(oracle.signal(round, 0));
    second.add(oracle.signal(round, 1));
  }
  EXPECT_NEAR(first.mean(), 0.8, 0.01);
  EXPECT_NEAR(second.mean(), 0.25, 0.01);
}

TEST(signal_oracle, different_seeds_different_streams) {
  const signal_oracle a{{0.5}, 1};
  const signal_oracle b{{0.5}, 2};
  int diffs = 0;
  for (std::uint64_t round = 0; round < 200; ++round) {
    if (a.signal(round, 0) != b.signal(round, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(signal_oracle, best_option_and_validation) {
  const signal_oracle oracle{{0.2, 0.9, 0.5}, 1};
  EXPECT_EQ(oracle.best_option(), 1U);
  EXPECT_THROW((signal_oracle{{}, 1}), std::invalid_argument);
  EXPECT_THROW((signal_oracle{{1.5}, 1}), std::invalid_argument);
  EXPECT_THROW((void)oracle.signal(0, 9), std::out_of_range);
}

// --- gossip_learner ------------------------------------------------------------------

TEST(gossip_learner, validates_construction) {
  const signal_oracle oracle{{0.8, 0.3}, 1};
  gossip_params params = make_gossip(2, 0.1, 0.6);
  EXPECT_NO_THROW(gossip_learner(params, &oracle));
  EXPECT_THROW(gossip_learner(params, nullptr), std::invalid_argument);
  params.round_interval = 0.0;
  EXPECT_THROW(gossip_learner(params, &oracle), std::invalid_argument);
  params = make_gossip(3, 0.1, 0.6);  // option-count mismatch with the oracle
  EXPECT_THROW(gossip_learner(params, &oracle), std::invalid_argument);
}

TEST(run_gossip_experiment, converges_to_best_channel) {
  const signal_oracle oracle{{0.9, 0.3, 0.3}, 11};
  const gossip_params params = make_gossip(3, 0.05, 0.65);
  gossip_run_config config;
  config.num_nodes = 150;
  config.rounds = 150;
  config.seed = 1;

  const gossip_run_result result = run_gossip_experiment(params, oracle, config);
  ASSERT_EQ(result.best_fraction.size(), 150U);
  running_stats late;
  for (std::size_t t = 100; t < 150; ++t) late.add(result.best_fraction[t]);
  EXPECT_GT(late.mean(), 0.6);
  EXPECT_GT(result.net.messages_sent, 0U);
  EXPECT_GT(result.net.messages_delivered, 0U);
  EXPECT_LT(result.average_regret, 0.45);
}

TEST(run_gossip_experiment, survives_heavy_packet_loss) {
  const signal_oracle oracle{{0.9, 0.3}, 13};
  const gossip_params params = make_gossip(2, 0.08, 0.65);
  gossip_run_config config;
  config.num_nodes = 120;
  config.rounds = 200;
  config.seed = 2;
  config.links.drop_probability = 0.4;

  const gossip_run_result result = run_gossip_experiment(params, oracle, config);
  EXPECT_GT(result.net.messages_dropped, 0U);
  running_stats late;
  for (std::size_t t = 150; t < 200; ++t) late.add(result.best_fraction[t]);
  EXPECT_GT(late.mean(), 0.55) << "loss slows but must not stop convergence";
}

TEST(run_gossip_experiment, sticky_mode_keeps_everyone_committed) {
  const signal_oracle oracle{{0.8, 0.4}, 17};
  gossip_params params = make_gossip(2, 0.05, 0.6);
  params.sticky = true;
  gossip_run_config config;
  config.num_nodes = 80;
  config.rounds = 60;
  config.seed = 3;

  const gossip_run_result result = run_gossip_experiment(params, oracle, config);
  for (const double committed : result.committed_fraction) {
    EXPECT_DOUBLE_EQ(committed, 1.0);
  }
}

TEST(run_gossip_experiment, non_sticky_mode_has_sitters) {
  const signal_oracle oracle{{0.8, 0.4}, 17};
  const gossip_params params = make_gossip(2, 0.05, 0.6);
  gossip_run_config config;
  config.num_nodes = 80;
  config.rounds = 60;
  config.seed = 3;

  const gossip_run_result result = run_gossip_experiment(params, oracle, config);
  running_stats committed;
  for (const double c : result.committed_fraction) committed.add(c);
  EXPECT_LT(committed.mean(), 0.999);
  EXPECT_GT(committed.mean(), 0.3);
}

TEST(run_gossip_experiment, tolerates_crashes) {
  const signal_oracle oracle{{0.9, 0.3}, 19};
  const gossip_params params = make_gossip(2, 0.08, 0.65);
  gossip_run_config config;
  config.num_nodes = 100;
  config.rounds = 160;
  config.seed = 4;
  config.crash_fraction = 0.3;
  config.crash_round = 40;

  const gossip_run_result result = run_gossip_experiment(params, oracle, config);
  running_stats late;
  for (std::size_t t = 120; t < 160; ++t) late.add(result.best_fraction[t]);
  EXPECT_GT(late.mean(), 0.55);
}

TEST(run_gossip_experiment, works_on_ring_topology) {
  const graph::graph ring = graph::graph::ring(60);
  const signal_oracle oracle{{0.9, 0.3}, 23};
  const gossip_params params = make_gossip(2, 0.05, 0.65);
  gossip_run_config config;
  config.num_nodes = 60;
  config.rounds = 250;
  config.seed = 5;
  config.topology = &ring;

  const gossip_run_result result = run_gossip_experiment(params, oracle, config);
  running_stats late;
  for (std::size_t t = 200; t < 250; ++t) late.add(result.best_fraction[t]);
  EXPECT_GT(late.mean(), 0.55);
}

TEST(gossip_learner, retries_recover_adopter_conditioned_sampling) {
  // With retries the requester keeps asking until it finds a committed
  // neighbour (popularity over adopters); without them every uncommitted
  // reply falls back to a uniform option, injecting extra exploration and
  // flattening convergence.  Measured as late best-option share.
  const signal_oracle oracle{{0.9, 0.3}, 31};
  gossip_run_config config;
  config.num_nodes = 150;
  config.rounds = 150;
  config.seed = 7;

  gossip_params with_retries = make_gossip(2, 0.05, 0.65);
  with_retries.max_retries = 4;
  const gossip_run_result a = run_gossip_experiment(with_retries, oracle, config);

  gossip_params without_retries = make_gossip(2, 0.05, 0.65);
  without_retries.max_retries = 0;
  const gossip_run_result b = run_gossip_experiment(without_retries, oracle, config);

  running_stats late_with;
  running_stats late_without;
  for (std::size_t t = 100; t < 150; ++t) {
    late_with.add(a.best_fraction[t]);
    late_without.add(b.best_fraction[t]);
  }
  EXPECT_GT(late_with.mean(), late_without.mean() + 0.05);
  // Retries cost extra messages.
  EXPECT_GT(a.net.messages_sent, b.net.messages_sent);
}

TEST(run_gossip_experiment, deterministic_and_validated) {
  const signal_oracle oracle{{0.8, 0.4}, 29};
  const gossip_params params = make_gossip(2, 0.1, 0.6);
  gossip_run_config config;
  config.num_nodes = 40;
  config.rounds = 50;
  config.seed = 6;

  const gossip_run_result a = run_gossip_experiment(params, oracle, config);
  const gossip_run_result b = run_gossip_experiment(params, oracle, config);
  EXPECT_EQ(a.best_fraction, b.best_fraction);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);

  config.num_nodes = 0;
  EXPECT_THROW(run_gossip_experiment(params, oracle, config), std::invalid_argument);
  config.num_nodes = 10;
  config.rounds = 0;
  EXPECT_THROW(run_gossip_experiment(params, oracle, config), std::invalid_argument);
  config.rounds = 10;
  config.crash_fraction = 2.0;
  EXPECT_THROW(run_gossip_experiment(params, oracle, config), std::invalid_argument);
}

}  // namespace
}  // namespace sgl::protocol
