#include "core/coupling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/theory.h"
#include "env/reward_model.h"

namespace sgl::core {
namespace {

env_factory bernoulli_factory(std::vector<double> etas) {
  return [etas] { return std::make_unique<env::bernoulli_rewards>(etas); };
}

TEST(estimate_coupling, bound_vector_matches_theory) {
  const dynamics_params params = theorem_params(3, 0.62);
  run_config config;
  config.horizon = 5;
  config.replications = 5;
  config.seed = 1;
  const coupling_estimate est =
      estimate_coupling(params, 100000, bernoulli_factory({0.8, 0.4, 0.4}), config);
  for (std::uint64_t t = 1; t <= 5; ++t) {
    EXPECT_DOUBLE_EQ(est.bound[t - 1],
                     theory::coupling_bound(t, 3, params.mu, params.beta, 1e5));
  }
  EXPECT_EQ(est.replications, 5U);
}

TEST(estimate_coupling, deviation_shrinks_with_population) {
  const dynamics_params params = theorem_params(2, 0.62);
  run_config config;
  config.horizon = 10;
  config.replications = 60;
  config.seed = 2;
  const auto factory = bernoulli_factory({0.8, 0.4});

  const coupling_estimate small = estimate_coupling(params, 500, factory, config);
  const coupling_estimate large = estimate_coupling(params, 200000, factory, config);
  // At every step the mean deviation must be clearly smaller for larger N.
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_LT(large.deviation.mean(t), small.deviation.mean(t) + 1e-12) << "t=" << t;
  }
  EXPECT_LT(large.deviation.mean(9), 0.05);
}

TEST(estimate_coupling, deviation_grows_with_time) {
  const dynamics_params params = theorem_params(2, 0.62);
  run_config config;
  config.horizon = 40;
  config.replications = 60;
  config.seed = 3;
  const coupling_estimate est =
      estimate_coupling(params, 5000, bernoulli_factory({0.8, 0.4}), config);
  // Early deviation is tiny; it grows (on average) as trajectories decouple.
  EXPECT_LT(est.deviation.mean(0), est.deviation.mean(39));
}

TEST(estimate_coupling, lemma_bound_holds_with_high_probability) {
  // In the lemma's own regime (large N, t small enough that 5^t δ″ < 1) the
  // empirical violation rate must be far below the union-bound budget.
  const dynamics_params params = theorem_params(2, 0.6);
  run_config config;
  config.horizon = 4;
  config.replications = 200;
  config.seed = 4;
  const double n = 1e6;
  const coupling_estimate est =
      estimate_coupling(params, static_cast<std::uint64_t>(n),
                        bernoulli_factory({0.8, 0.4}), config);
  for (std::size_t t = 0; t < 4; ++t) {
    if (std::isinf(est.bound[t]) || est.bound[t] >= 1.0) continue;
    EXPECT_GT(est.within_bound.mean(t), 0.99) << "t=" << t;
  }
}

TEST(estimate_coupling, caps_extreme_deviation) {
  // mu = 0 with alpha = 0 can zero out an option in the finite process while
  // the infinite one keeps mass: the ratio explodes and must be capped.
  dynamics_params params;
  params.num_options = 2;
  params.mu = 0.0;
  params.beta = 1.0;
  params.alpha = 0.0;
  run_config config;
  config.horizon = 30;
  config.replications = 40;
  config.seed = 5;
  const coupling_estimate est =
      estimate_coupling(params, 10, bernoulli_factory({0.9, 0.1}), config, 7.5);
  EXPECT_DOUBLE_EQ(est.deviation_cap, 7.5);
  for (std::size_t t = 0; t < est.deviation.length(); ++t) {
    EXPECT_LE(est.deviation.mean(t), 7.5 + 1e-9);
  }
  EXPECT_GT(est.capped_fraction, 0.0);
}

TEST(estimate_coupling, rejects_bad_input) {
  const dynamics_params params = theorem_params(2, 0.6);
  run_config config;
  config.horizon = 0;
  EXPECT_THROW(
      estimate_coupling(params, 100, bernoulli_factory({0.8, 0.4}), config),
      std::invalid_argument);
  config.horizon = 5;
  EXPECT_THROW(
      estimate_coupling(params, 100, bernoulli_factory({0.8, 0.4}), config, -1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace sgl::core
