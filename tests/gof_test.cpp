#include "support/gof.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"

namespace sgl {
namespace {

// --- regularized gamma / chi-square CDF ----------------------------------------

TEST(regularized_gamma, known_values) {
  // P(1, x) = 1 - e^{-x}.
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-10);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_NEAR(regularized_gamma_p(0.5, 4.0), std::erf(2.0), 1e-10);
}

TEST(regularized_gamma, boundaries_and_errors) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(2.0, 1e3), 1.0, 1e-12);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(chi_square_cdf, known_quantiles) {
  // Median of chi2(k=2) is 2 ln 2; P(chi2_1 <= 3.841) ≈ 0.95.
  EXPECT_NEAR(chi_square_cdf(2.0 * std::log(2.0), 2.0), 0.5, 1e-10);
  EXPECT_NEAR(chi_square_cdf(3.841458821, 1.0), 0.95, 1e-6);
  EXPECT_NEAR(chi_square_cdf(18.30703805, 10.0), 0.95, 1e-6);
  EXPECT_DOUBLE_EQ(chi_square_cdf(-1.0, 3.0), 0.0);
}

// --- chi-square test -------------------------------------------------------------

TEST(chi_square_test, accepts_data_from_the_null) {
  rng gen{1};
  std::vector<std::uint64_t> counts(5, 0);
  const std::vector<double> expected{0.1, 0.2, 0.3, 0.25, 0.15};
  for (int i = 0; i < 20000; ++i) {
    double u = gen.next_double();
    std::size_t k = 0;
    while (k + 1 < expected.size() && u >= expected[k]) {
      u -= expected[k];
      ++k;
    }
    ++counts[k];
  }
  EXPECT_GT(chi_square_test(counts, expected).p_value, 1e-4);
}

TEST(chi_square_test, rejects_biased_data) {
  // Claim uniform, supply heavily skewed counts.
  const std::vector<std::uint64_t> counts{9000, 500, 250, 250};
  const std::vector<double> expected(4, 0.25);
  EXPECT_LT(chi_square_test(counts, expected).p_value, 1e-10);
}

TEST(chi_square_test, pools_sparse_bins) {
  // Tail bins have expected counts << 1; pooling must keep the test sane.
  const std::vector<std::uint64_t> counts{800, 150, 40, 8, 1, 1, 0, 0};
  const std::vector<double> expected{0.8, 0.15, 0.04, 0.008, 0.001, 0.0005,
                                     0.0003, 0.0002};
  const gof_result r = chi_square_test(counts, expected);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_GT(r.p_value, 1e-6);  // data was drawn to match
}

TEST(chi_square_test, rejects_bad_input) {
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1},
                               std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1, 2},
                               std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{0, 0},
                               std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

// --- KS test ---------------------------------------------------------------------

TEST(ks_test, accepts_uniform_sample) {
  rng gen{2};
  std::vector<double> xs(4000);
  for (double& x : xs) x = gen.next_double();
  std::sort(xs.begin(), xs.end());
  // CDF of Uniform(0,1) at the data is the data itself.
  EXPECT_GT(ks_test_from_cdf(xs).p_value, 1e-4);
}

TEST(ks_test, rejects_shifted_sample) {
  rng gen{3};
  std::vector<double> xs(4000);
  for (double& x : xs) x = 0.5 * gen.next_double();  // actually Uniform(0, 0.5)
  std::sort(xs.begin(), xs.end());
  EXPECT_LT(ks_test_from_cdf(xs).p_value, 1e-10);
}

TEST(ks_test, statistic_is_the_sup_distance) {
  // Two points with CDF values 0 and 1: D = max(|0 - 0|, |0.5 - 0|, |1 - 0.5|, ...)
  const std::vector<double> cdf{0.0, 1.0};
  const gof_result r = ks_test_from_cdf(cdf);
  EXPECT_NEAR(r.statistic, 0.5, 1e-12);
}

TEST(ks_test, rejects_empty) {
  EXPECT_THROW(ks_test_from_cdf(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
}  // namespace sgl
