// Tests for the sociolearnd service layer: digest stability and
// sensitivity, the content-addressed result store (checksum trailers,
// quarantine, tmp GC, fsck), cache/resume semantics of the job queue
// (identical resubmission served entirely from cache, byte-identically; a
// partial store resumes by recomputing only the missing points),
// cancellation, priorities, bounded-queue backpressure, per-job timeouts,
// the wire session, and the fail-point-driven I/O edge paths.

#include "service/digest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "core/experiment.h"
#include "core/step_kernel.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"
#include "service/job_queue.h"
#include "service/payload.h"
#include "service/result_store.h"
#include "service/service.h"
#include "service/socket.h"
#include "support/failpoint.h"
#include "support/json.h"
#include "support/json_parse.h"

namespace sgl::service {
namespace {

/// A fresh per-test store directory under the gtest temp root.
std::filesystem::path fresh_store_root(const std::string& name) {
  const std::filesystem::path root =
      std::filesystem::path{testing::TempDir()} / ("sgl_service_" + name);
  std::filesystem::remove_all(root);
  return root;
}

scenario::scenario_spec test_spec() {
  return scenario::parse_scenario(
      "engine = \"agent_based\"\n"
      "num_agents = 40\n"
      "params.num_options = 3\n"
      "params.beta = 0.65\n"
      "environment.etas = [0.8, 0.5, 0.3]\n");
}

core::run_config test_config() {
  core::run_config config;
  config.horizon = 30;
  config.replications = 3;
  config.seed = 7;
  config.threads = 1;
  return config;
}

// --- spec_digest ------------------------------------------------------------

TEST(spec_digest, canonical_serialization_is_override_order_independent) {
  // The same overrides in two insertion orders: the canonical serialized
  // text and the digest must be byte-identical — key order is the
  // serializer's, never the caller's.
  scenario::scenario_spec a = test_spec();
  scenario::apply_override(a, "params.beta", "0.7");
  scenario::apply_override(a, "num_agents", "60");
  scenario::apply_override(a, "params.mu", "0.02");

  scenario::scenario_spec b = test_spec();
  scenario::apply_override(b, "params.mu", "0.02");
  scenario::apply_override(b, "params.beta", "0.7");
  scenario::apply_override(b, "num_agents", "60");

  EXPECT_EQ(scenario::serialize_scenario(a), scenario::serialize_scenario(b));
  const core::run_config config = test_config();
  EXPECT_EQ(spec_digest(a, config, {}), spec_digest(b, config, {}));
  EXPECT_EQ(digest_input(a, config, {}), digest_input(b, config, {}));
}

TEST(spec_digest, inert_fields_do_not_change_the_digest) {
  const scenario::scenario_spec base = test_spec();
  const core::run_config config = test_config();
  const digest128 reference = spec_digest(base, config, {});

  // name/description are labels; engine_threads and the run_config's
  // threads/reuse/collect_curves are scheduling choices — all proven
  // bit-identical by the determinism suite, so none may split the cache.
  scenario::scenario_spec relabeled = base;
  relabeled.name = "some other name";
  relabeled.description = "same experiment, different words";
  relabeled.engine_threads = 7;
  EXPECT_EQ(spec_digest(relabeled, config, {}), reference);

  core::run_config reconfigured = config;
  reconfigured.threads = 13;
  reconfigured.reuse = false;
  reconfigured.collect_curves = true;
  EXPECT_EQ(spec_digest(base, reconfigured, {}), reference);
}

TEST(spec_digest, every_semantic_field_changes_the_digest) {
  const scenario::scenario_spec base = test_spec();
  const core::run_config config = test_config();
  const digest128 reference = spec_digest(base, config, {});

  const std::vector<std::pair<std::string, std::string>> semantic_overrides{
      {"params.beta", "0.7"},
      {"params.mu", "0.07"},
      {"params.num_options", "4"},
      {"num_agents", "41"},
      {"environment.etas", "[0.8, 0.5, 0.31]"},
      {"topology.family", "\"complete\""},
  };
  for (const auto& [key, value] : semantic_overrides) {
    scenario::scenario_spec changed = base;
    scenario::apply_override(changed, key, value);
    EXPECT_NE(spec_digest(changed, config, {}), reference) << key;
  }

  core::run_config longer = config;
  longer.horizon = 31;
  EXPECT_NE(spec_digest(base, longer, {}), reference);
  core::run_config more = config;
  more.replications = 4;
  EXPECT_NE(spec_digest(base, more, {}), reference);
  core::run_config reseeded = config;
  reseeded.seed = 8;
  EXPECT_NE(spec_digest(base, reseeded, {}), reference);

  const std::vector<std::string> other_probes{"regret", "final_histogram"};
  EXPECT_NE(spec_digest(base, config, other_probes), reference);
}

TEST(spec_digest, kernel_auto_hashes_as_the_resolved_decision) {
  // `kernel = auto` must digest to what THIS host would execute, or a
  // store shared across hosts (or SGL_KERNEL settings) would serve a
  // scalar result for a simd run.
  scenario::scenario_spec auto_kernel = test_spec();
  scenario::apply_override(auto_kernel, "kernel", "auto");
  scenario::scenario_spec resolved = test_spec();
  scenario::apply_override(resolved, "kernel",
                           core::kernel::vector_isa_available() ? "simd" : "scalar");
  const core::run_config config = test_config();
  EXPECT_EQ(spec_digest(auto_kernel, config, {}), spec_digest(resolved, config, {}));
}

TEST(spec_digest, kernel_is_dropped_for_engines_without_one) {
  // On a non-agent-based engine the kernel field cannot affect the
  // trajectory; a stray setting must not split the cache.
  scenario::scenario_spec scalar = scenario::parse_scenario(
      "engine = \"infinite\"\n"
      "params.num_options = 3\n"
      "params.beta = 0.65\n"
      "environment.etas = [0.8, 0.5, 0.3]\n"
      "kernel = \"scalar\"\n");
  scenario::scenario_spec simd = scalar;
  scenario::apply_override(simd, "kernel", "simd");
  const core::run_config config = test_config();
  EXPECT_EQ(spec_digest(scalar, config, {}), spec_digest(simd, config, {}));
}

TEST(spec_digest, probe_fallback_matches_explicit_probes) {
  // digest(no probes) resolves through the spec's probes then {"regret"},
  // exactly like the runner, so the fallback and its explicit spelling
  // share one cache entry.
  const scenario::scenario_spec base = test_spec();
  const core::run_config config = test_config();
  const std::vector<std::string> regret{"regret"};
  EXPECT_EQ(spec_digest(base, config, {}), spec_digest(base, config, regret));
}

TEST(spec_digest, prebuilt_graph_is_rejected) {
  scenario::scenario_spec spec = scenario::get_scenario("ring");
  spec.prebuilt_graph = scenario::shared_topology(spec.topology, spec.num_agents);
  EXPECT_THROW((void)spec_digest(spec, test_config(), {}), std::invalid_argument);
}

TEST(spec_digest, hex_is_stable_and_distinct) {
  const digest128 a = fnv1a_128("one input");
  const digest128 b = fnv1a_128("another input");
  EXPECT_EQ(a.hex().size(), 32U);
  EXPECT_EQ(a, fnv1a_128("one input"));
  EXPECT_NE(a, b);
  EXPECT_NE(a.hex(), b.hex());
}

// --- result_store -----------------------------------------------------------

TEST(result_store, round_trips_and_counts) {
  result_store store{fresh_store_root("roundtrip")};
  const digest128 digest = fnv1a_128("key");
  EXPECT_EQ(store.get(digest), std::nullopt);
  store.put(digest, "payload-bytes");
  EXPECT_EQ(store.get(digest), "payload-bytes");
  EXPECT_EQ(store.object_count(), 1U);
  EXPECT_EQ(store.hits(), 1U);
  EXPECT_EQ(store.misses(), 1U);

  // put() is idempotent, and no in-flight temp files survive it.
  store.put(digest, "payload-bytes");
  EXPECT_EQ(store.object_count(), 1U);
  EXPECT_TRUE(std::filesystem::is_empty(store.root() / "tmp"));
}

TEST(result_store, persists_across_instances) {
  const std::filesystem::path root = fresh_store_root("persist");
  const digest128 digest = fnv1a_128("durable");
  {
    result_store store{root};
    store.put(digest, "survives the process");
  }
  result_store reopened{root};
  EXPECT_EQ(reopened.get(digest), "survives the process");
}

// --- result_store: self-verification, quarantine, tmp GC, fsck --------------

/// Clears the process-global fail-point registry around a test body.
/// Every test that arms a fail point must hold one of these, or a failing
/// test could leak its fault schedule into unrelated tests.
struct failpoint_guard {
  failpoint_guard() { failpoints::clear(); }
  ~failpoint_guard() { failpoints::clear(); }
};

/// The store's on-disk path for a digest (mirrors the layout contract in
/// result_store.h: objects/<hh>/<hex>.json).
std::filesystem::path object_path_of(const result_store& store, const digest128& digest) {
  const std::string hex = digest.hex();
  return store.root() / "objects" / hex.substr(0, 2) / (hex + ".json");
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t file_count(const std::filesystem::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::recursive_directory_iterator{dir}) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

TEST(result_store, object_framing_round_trips_and_rejects_tampering) {
  const std::string payload = R"({"digest":"abc","values":[1,2,3]})";
  const std::string framed = frame_object(payload);
  EXPECT_NE(framed.find(k_object_trailer_magic), std::string::npos);
  EXPECT_EQ(unframe_object(framed), payload);

  // Any payload change breaks the checksum; any trailer damage breaks
  // the frame.  Both must read as "corrupt", never as a payload.
  std::string flipped = framed;
  flipped[10] ^= 0x20;
  EXPECT_EQ(unframe_object(flipped), std::nullopt);
  EXPECT_EQ(unframe_object(framed.substr(0, framed.size() - 2)), std::nullopt);
  EXPECT_EQ(unframe_object(payload), std::nullopt) << "pre-v2 object (no trailer)";
  EXPECT_EQ(unframe_object(""), std::nullopt);
}

TEST(result_store, objects_on_disk_carry_the_checksum_trailer) {
  result_store store{fresh_store_root("trailer")};
  const digest128 digest = fnv1a_128("framed");
  store.put(digest, "the payload");
  const std::string on_disk = read_file(object_path_of(store, digest));
  EXPECT_EQ(on_disk, frame_object("the payload"));
  // get() strips the trailer: callers always see the exact payload bytes.
  EXPECT_EQ(store.get(digest), "the payload");
}

TEST(result_store, corrupt_object_is_quarantined_and_treated_as_a_miss) {
  result_store store{fresh_store_root("quarantine")};
  const digest128 digest = fnv1a_128("rot");
  store.put(digest, "good bytes");

  // Flip one payload byte in place — the trailer no longer matches.
  const std::filesystem::path object = object_path_of(store, digest);
  std::string bytes = read_file(object);
  bytes[2] ^= 0x01;
  std::ofstream{object, std::ios::binary | std::ios::trunc} << bytes;

  EXPECT_EQ(store.get(digest), std::nullopt) << "corrupt results are never served";
  EXPECT_EQ(store.quarantined(), 1U);
  EXPECT_FALSE(std::filesystem::exists(object)) << "moved out of objects/";
  EXPECT_EQ(file_count(store.root() / "quarantine"), 1U);

  // The digest is now a plain miss; a recompute re-populates it cleanly.
  store.put(digest, "good bytes");
  EXPECT_EQ(store.get(digest), "good bytes");
}

TEST(result_store, pre_v2_object_without_trailer_is_quarantined) {
  result_store store{fresh_store_root("prev2")};
  const digest128 digest = fnv1a_128("legacy");
  const std::filesystem::path object = object_path_of(store, digest);
  std::filesystem::create_directories(object.parent_path());
  std::ofstream{object, std::ios::binary} << "raw payload with no trailer";
  EXPECT_EQ(store.get(digest), std::nullopt);
  EXPECT_EQ(store.quarantined(), 1U);
  EXPECT_FALSE(std::filesystem::exists(object));
}

TEST(result_store, construction_collects_tmp_files_of_dead_writers_only) {
  const std::filesystem::path root = fresh_store_root("tmpgc");
  std::filesystem::create_directories(root / "tmp");
  // Our own pid counts as dead (a fresh store instance cannot have
  // in-flight writes from this process); pid 1 is alive and not ours.
  const std::string dead = "aaaa." + std::to_string(::getpid()) + ".0";
  std::ofstream{root / "tmp" / dead} << "torn write";
  std::ofstream{root / "tmp" / "bbbb.1.0"} << "live writer";
  std::ofstream{root / "tmp" / "unrecognized-name"} << "not ours to judge";

  result_store store{root};
  EXPECT_EQ(store.tmp_collected(), 1U);
  EXPECT_FALSE(std::filesystem::exists(root / "tmp" / dead));
  EXPECT_TRUE(std::filesystem::exists(root / "tmp" / "bbbb.1.0"));
  EXPECT_TRUE(std::filesystem::exists(root / "tmp" / "unrecognized-name"));

  // fsck's opening mode: gc off preserves the evidence.
  std::ofstream{root / "tmp" / dead} << "torn write again";
  result_store no_gc{root, store_options{.gc_stale_tmp = false}};
  EXPECT_EQ(no_gc.tmp_collected(), 0U);
  EXPECT_TRUE(std::filesystem::exists(root / "tmp" / dead));
}

TEST(result_store, put_failures_throw_and_leave_no_tmp_files) {
  const failpoint_guard guard;
  result_store store{fresh_store_root("putfail")};
  const digest128 digest = fnv1a_128("doomed");
  for (const char* site :
       {"store.tmp_open", "store.write", "store.fsync", "store.rename"}) {
    failpoints::clear();
    failpoints::set(site, "1");
    EXPECT_THROW(store.put(digest, "payload"), std::runtime_error) << site;
    EXPECT_TRUE(std::filesystem::is_empty(store.root() / "tmp"))
        << site << ": the failed write leaked its tmp file";
    EXPECT_FALSE(std::filesystem::exists(object_path_of(store, digest))) << site;
  }
  // After the schedule is exhausted the same put succeeds.
  failpoints::clear();
  store.put(digest, "payload");
  EXPECT_EQ(store.get(digest), "payload");
}

TEST(result_store, read_failure_is_a_miss_without_quarantine) {
  const failpoint_guard guard;
  result_store store{fresh_store_root("readfail")};
  const digest128 digest = fnv1a_128("transient");
  store.put(digest, "still good");
  failpoints::set("store.read", "1");
  EXPECT_EQ(store.get(digest), std::nullopt);
  EXPECT_EQ(store.quarantined(), 0U)
      << "an unreadable object is not evidence of corruption";
  EXPECT_TRUE(std::filesystem::exists(object_path_of(store, digest)));
  failpoints::clear();
  EXPECT_EQ(store.get(digest), "still good");
}

TEST(result_store, fsck_reports_and_repairs) {
  const std::filesystem::path root = fresh_store_root("fsck");
  const digest128 good = fnv1a_128("good");
  const digest128 bad = fnv1a_128("bad");
  std::string dead_tmp;
  {
    result_store store{root};
    store.put(good, "intact");
    store.put(bad, "will rot");
    const std::filesystem::path object = object_path_of(store, bad);
    std::string bytes = read_file(object);
    bytes[1] ^= 0x08;
    std::ofstream{object, std::ios::binary | std::ios::trunc} << bytes;
    dead_tmp = "cccc." + std::to_string(::getpid()) + ".7";
    std::ofstream{root / "tmp" / dead_tmp} << "orphan";
  }

  // Report pass: everything is named, nothing is touched.
  result_store store{root, store_options{.gc_stale_tmp = false}};
  fsck_report report = store.fsck(/*repair=*/false);
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.repaired);
  EXPECT_EQ(report.objects_ok, 1U);
  ASSERT_EQ(report.corrupt.size(), 1U);
  EXPECT_NE(report.corrupt[0].find(bad.hex()), std::string::npos);
  ASSERT_EQ(report.orphaned_tmp.size(), 1U);
  EXPECT_NE(report.orphaned_tmp[0].find(dead_tmp), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(root / "tmp" / dead_tmp));

  // Repair pass: corrupt object quarantined, orphan removed, store clean.
  report = store.fsck(/*repair=*/true);
  EXPECT_TRUE(report.repaired);
  EXPECT_EQ(report.corrupt.size(), 1U);
  EXPECT_FALSE(std::filesystem::exists(root / "tmp" / dead_tmp));
  EXPECT_EQ(file_count(root / "quarantine"), 1U);

  const fsck_report after = store.fsck(/*repair=*/false);
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.objects_ok, 1U);
  EXPECT_EQ(after.quarantined, 1U);
  // The quarantined digest is recomputable: it is simply a miss now.
  EXPECT_EQ(store.get(bad), std::nullopt);
  EXPECT_EQ(store.get(good), "intact");
}

// --- payload ----------------------------------------------------------------

TEST(payload, is_canonical_json_without_timing) {
  const scenario::scenario_spec spec = test_spec();
  const core::run_config config = test_config();
  const std::vector<std::string> probe_specs{"regret"};
  const auto reports =
      core::collect_reports(scenario::run_probes(spec, config, probe_specs));
  const digest128 digest = spec_digest(spec, config, {});
  const std::string payload = build_point_payload(digest, spec, config, {}, reports);

  // Byte-deterministic, parseable, and carries its own identity.
  EXPECT_EQ(payload, build_point_payload(digest, spec, config, {}, reports));
  const json_value parsed = parse_json(payload);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.find("digest")->as_string("digest"), digest.hex());
  EXPECT_EQ(parsed.find("stream_derivation")->as_string("sd"),
            std::string{k_stream_derivation_id});
  EXPECT_NE(parsed.find("spec"), nullptr);
  EXPECT_NE(parsed.find("probes"), nullptr);
  // Timing varies run to run, so it may never enter the cached bytes.
  EXPECT_EQ(parsed.find("seconds"), nullptr);
  EXPECT_EQ(parsed.find("timing"), nullptr);
}

// --- job_queue: cache and resume --------------------------------------------

/// Collects a job's events; safe to share across worker threads.
struct event_log {
  std::mutex mutex;
  std::vector<job_point_event> points;  // payload copied into `payloads`
  std::vector<std::string> payloads;
  std::vector<job_done_event> done;

  job_sinks sinks() {
    job_sinks s;
    s.on_point = [this](const job_point_event& event) {
      const std::lock_guard<std::mutex> lock{mutex};
      points.push_back(event);
      payloads.push_back(*event.payload);
      points.back().payload = &payloads.back();
    };
    s.on_done = [this](const job_done_event& event) {
      const std::lock_guard<std::mutex> lock{mutex};
      done.push_back(event);
    };
    return s;
  }
};

job_request sweep_request() {
  job_request request;
  request.base = test_spec();
  std::vector<scenario::sweep_axis> axes;
  axes.push_back(scenario::parse_sweep_axis("params.beta=0.6,0.65,0.7"));
  request.grid = scenario::expand_sweep(axes);
  request.config = test_config();
  return request;
}

TEST(job_queue, identical_resubmission_is_served_from_cache_byte_identically) {
  result_store store{fresh_store_root("cache")};
  job_queue queue{store, 1};

  event_log first;
  queue.submit(sweep_request(), first.sinks());
  queue.drain();
  ASSERT_EQ(first.done.size(), 1U);
  EXPECT_EQ(first.done[0].state, job_state::done);
  EXPECT_EQ(first.done[0].computed, 3U);
  EXPECT_EQ(first.done[0].cached, 0U);
  ASSERT_EQ(first.points.size(), 3U);
  EXPECT_TRUE(std::none_of(first.points.begin(), first.points.end(),
                           [](const job_point_event& e) { return e.cache_hit; }));
  EXPECT_EQ(store.object_count(), 3U);

  event_log second;
  queue.submit(sweep_request(), second.sinks());
  queue.drain();
  ASSERT_EQ(second.done.size(), 1U);
  EXPECT_EQ(second.done[0].state, job_state::done);
  EXPECT_EQ(second.done[0].computed, 0U);
  EXPECT_EQ(second.done[0].cached, 3U);
  ASSERT_EQ(second.points.size(), 3U);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(second.points[p].cache_hit) << p;
    EXPECT_EQ(second.points[p].index, p);
    // The heart of the contract: the cached bytes ARE the computed bytes.
    const std::size_t original = static_cast<std::size_t>(
        std::find_if(first.points.begin(), first.points.end(),
                     [p](const job_point_event& e) { return e.index == p; }) -
        first.points.begin());
    ASSERT_LT(original, first.payloads.size());
    EXPECT_EQ(second.payloads[p], first.payloads[original]) << p;
  }
  // Nothing was recomputed, nothing new was stored.
  EXPECT_EQ(store.object_count(), 3U);
}

TEST(job_queue, partial_store_resumes_by_recomputing_only_missing_points) {
  result_store store{fresh_store_root("resume")};
  job_queue queue{store, 1};

  // Act 1: run ONE grid point as its own job — the same resolved spec a
  // sweep point would have, so the same digest.  This is the state a
  // killed sweep leaves behind: some points persisted, the rest absent.
  job_request one_point;
  one_point.base = test_spec();
  scenario::apply_override(one_point.base, "params.beta", "0.65");
  one_point.config = test_config();
  event_log warmup;
  queue.submit(std::move(one_point), warmup.sinks());
  queue.drain();
  ASSERT_EQ(warmup.done.size(), 1U);
  ASSERT_EQ(warmup.done[0].computed, 1U);
  ASSERT_EQ(store.object_count(), 1U);

  // Act 2: the full sweep resumes — the persisted point is served from
  // cache, exactly the other two are computed.
  event_log resumed;
  queue.submit(sweep_request(), resumed.sinks());
  queue.drain();
  ASSERT_EQ(resumed.done.size(), 1U);
  EXPECT_EQ(resumed.done[0].state, job_state::done);
  EXPECT_EQ(resumed.done[0].cached, 1U);
  EXPECT_EQ(resumed.done[0].computed, 2U);
  ASSERT_EQ(resumed.points.size(), 3U);
  for (const job_point_event& event : resumed.points) {
    EXPECT_EQ(event.cache_hit, event.index == 1) << event.index;  // beta=0.65
  }
  // And the resumed point's bytes are the warmup job's bytes.
  const auto hit = std::find_if(resumed.points.begin(), resumed.points.end(),
                                [](const job_point_event& e) { return e.cache_hit; });
  ASSERT_NE(hit, resumed.points.end());
  EXPECT_EQ(resumed.payloads[static_cast<std::size_t>(hit - resumed.points.begin())],
            warmup.payloads.at(0));
  EXPECT_EQ(store.object_count(), 3U);
}

TEST(job_queue, queued_jobs_cancel_without_running) {
  result_store store{fresh_store_root("cancel")};
  job_queue queue{store, 1};
  queue.pause();

  event_log log;
  const std::uint64_t id = queue.submit(sweep_request(), log.sinks());
  ASSERT_TRUE(queue.status(id).has_value());
  EXPECT_EQ(queue.status(id)->state, job_state::queued);

  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.status(id)->state, job_state::cancelled);
  EXPECT_FALSE(queue.cancel(id)) << "second cancel of a terminal job";

  queue.drain();
  ASSERT_EQ(log.done.size(), 1U);
  EXPECT_EQ(log.done[0].state, job_state::cancelled);
  EXPECT_TRUE(log.points.empty());
  EXPECT_EQ(store.object_count(), 0U);
}

TEST(job_queue, higher_priority_jobs_run_first) {
  result_store store{fresh_store_root("priority")};
  job_queue queue{store, 1};
  queue.pause();  // both jobs queued before the dispatcher may choose

  std::mutex order_mutex;
  std::vector<std::uint64_t> finish_order;
  const auto track = [&](event_log& log) {
    job_sinks sinks = log.sinks();
    const auto inner = sinks.on_done;
    sinks.on_done = [&, inner](const job_done_event& event) {
      {
        const std::lock_guard<std::mutex> lock{order_mutex};
        finish_order.push_back(event.job);
      }
      inner(event);
    };
    return sinks;
  };

  event_log low_log;
  event_log high_log;
  job_request low = sweep_request();
  low.priority = 0;
  job_request high = sweep_request();
  high.priority = 5;
  const std::uint64_t low_id = queue.submit(std::move(low), track(low_log));
  const std::uint64_t high_id = queue.submit(std::move(high), track(high_log));
  queue.drain();

  ASSERT_EQ(finish_order.size(), 2U);
  EXPECT_EQ(finish_order[0], high_id);
  EXPECT_EQ(finish_order[1], low_id);
  // The low-priority job re-ran nothing: the high-priority job populated
  // the cache for the identical request.
  ASSERT_EQ(low_log.done.size(), 1U);
  EXPECT_EQ(low_log.done[0].cached, 3U);
  EXPECT_EQ(low_log.done[0].computed, 0U);
}

TEST(job_queue, invalid_submissions_fail_fast_and_leave_no_job) {
  result_store store{fresh_store_root("invalid")};
  job_queue queue{store, 1};
  job_request bad = sweep_request();
  bad.grid.push_back({{"params.beta", "1.5"}});  // out of range at point 4
  event_log log;
  EXPECT_THROW((void)queue.submit(std::move(bad), log.sinks()), std::invalid_argument);
  queue.drain();
  EXPECT_TRUE(log.done.empty());
  EXPECT_EQ(store.object_count(), 0U);
}

// --- session (wire protocol) ------------------------------------------------

struct wire {
  std::mutex mutex;
  std::vector<std::string> lines;

  session_options options() {
    session_options o;
    o.write_line = [this](std::string_view line) {
      const std::lock_guard<std::mutex> lock{mutex};
      lines.emplace_back(line);
      return true;
    };
    return o;
  }

  std::vector<std::string> events() {
    const std::lock_guard<std::mutex> lock{mutex};
    std::vector<std::string> kinds;
    for (const std::string& line : lines) {
      const json_value event = parse_json(line);
      kinds.push_back(event.find("event")->as_string("event"));
    }
    return kinds;
  }
};

std::string submit_line() {
  const scenario::scenario_spec spec = test_spec();
  std::string line = R"({"op":"submit","spec":)";
  line += '"';
  line += json_escape(scenario::serialize_scenario(spec));
  line += '"';
  line += R"(,"sweep":["params.beta=0.6,0.65"],"horizon":30,"replications":3,"seed":7})";
  return line;
}

TEST(session, submit_streams_accept_points_done_in_order) {
  result_store store{fresh_store_root("session")};
  job_queue queue{store, 1};
  wire out;
  session s{queue, out.options()};
  s.handle_line(submit_line());
  s.finish();

  const std::vector<std::string> events = out.events();
  ASSERT_EQ(events.size(), 4U);
  EXPECT_EQ(events[0], "job_accepted");
  EXPECT_EQ(events[1], "point_done");
  EXPECT_EQ(events[2], "point_done");
  EXPECT_EQ(events[3], "job_done");

  const json_value accepted = parse_json(out.lines[0]);
  EXPECT_EQ(accepted.find("points")->as_uint64("points"), 2U);
  ASSERT_NE(accepted.find("digests"), nullptr);
  EXPECT_EQ(accepted.find("digests")->items.size(), 2U);
  const json_value done = parse_json(out.lines[3]);
  EXPECT_EQ(done.find("status")->as_string("status"), "done");
  EXPECT_EQ(done.find("computed")->as_uint64("computed"), 2U);

  // Resubmission over the wire: same events, but every point a cache_hit
  // whose result object is byte-identical to the computed one.
  wire again;
  session s2{queue, again.options()};
  s2.handle_line(submit_line());
  s2.finish();
  const std::vector<std::string> second = again.events();
  ASSERT_EQ(second.size(), 4U);
  EXPECT_EQ(second[1], "cache_hit");
  EXPECT_EQ(second[2], "cache_hit");
  for (std::size_t i = 1; i <= 2; ++i) {
    const json_value computed = parse_json(out.lines[i]);
    const json_value hit = parse_json(again.lines[i]);
    const std::uint64_t point = hit.find("point")->as_uint64("point");
    EXPECT_EQ(computed.find("point")->as_uint64("point"), point);
    // Compare the exact cached bytes through the store.
    const json_value* result = hit.find("result");
    ASSERT_NE(result, nullptr);
    const digest128 digest = spec_digest(
        [&] {
          scenario::scenario_spec spec = test_spec();
          scenario::apply_override(spec, "params.beta", point == 0 ? "0.6" : "0.65");
          return spec;
        }(),
        test_config(), {});
    const std::optional<std::string> stored = store.get(digest);
    ASSERT_TRUE(stored.has_value());
    EXPECT_NE(again.lines[i].find(*stored), std::string::npos)
        << "cache_hit must embed the stored payload verbatim";
    EXPECT_NE(out.lines[i].find(*stored), std::string::npos)
        << "point_done must embed the stored payload verbatim";
  }
}

TEST(session, malformed_and_unknown_requests_produce_error_events) {
  result_store store{fresh_store_root("session_err")};
  job_queue queue{store, 1};
  wire out;
  session s{queue, out.options()};
  s.handle_line("this is not json");
  s.handle_line(R"({"op":"frobnicate"})");
  s.handle_line(R"({"no_op":1})");
  s.handle_line(R"({"op":"status","job":999})");
  s.handle_line("");  // blank lines are ignored
  s.finish();
  const std::vector<std::string> events = out.events();
  ASSERT_EQ(events.size(), 4U);
  for (const std::string& kind : events) EXPECT_EQ(kind, "error");
}

TEST(session, cancel_round_trip_over_the_wire) {
  result_store store{fresh_store_root("session_cancel")};
  job_queue queue{store, 1};
  queue.pause();
  wire out;
  session s{queue, out.options()};
  s.handle_line(submit_line());
  const json_value accepted = parse_json(out.lines.at(0));
  const std::uint64_t job = accepted.find("job")->as_uint64("job");
  s.handle_line(R"({"op":"cancel","job":)" + std::to_string(job) + "}");
  s.handle_line(R"({"op":"status","job":)" + std::to_string(job) + "}");
  queue.resume();
  s.finish();

  const std::vector<std::string> events = out.events();
  // job_accepted, job_done (from the cancel), cancel_result, status.
  ASSERT_EQ(events.size(), 4U);
  EXPECT_EQ(events[0], "job_accepted");
  EXPECT_EQ(events[1], "job_done");
  EXPECT_EQ(events[2], "cancel_result");
  EXPECT_EQ(events[3], "status");
  EXPECT_EQ(parse_json(out.lines[1]).find("status")->as_string("s"), "cancelled");
  EXPECT_TRUE(parse_json(out.lines[2]).find("cancelled")->as_bool("c"));
  EXPECT_EQ(parse_json(out.lines[3]).find("state")->as_string("s"), "cancelled");
}

// --- job_queue: overload and fault robustness --------------------------------

TEST(job_queue, bounded_queue_rejects_submissions_past_the_limit) {
  result_store store{fresh_store_root("bounded")};
  job_queue queue{store, 1, /*max_queued=*/1};
  queue.pause();

  event_log first;
  (void)queue.submit(sweep_request(), first.sinks());
  event_log second;
  try {
    (void)queue.submit(sweep_request(), second.sinks());
    FAIL() << "submit past the bound must throw queue_full_error";
  } catch (const queue_full_error& e) {
    EXPECT_EQ(e.limit(), 1U);
  }
  // Nothing was enqueued for the rejected job...
  queue.drain();
  EXPECT_TRUE(second.done.empty());
  ASSERT_EQ(first.done.size(), 1U);
  EXPECT_EQ(first.done[0].state, job_state::done);

  // ...and once the queue settles, the identical resubmission is accepted
  // and served entirely from cache — backpressure costs no compute.
  event_log retry;
  (void)queue.submit(sweep_request(), retry.sinks());
  queue.drain();
  ASSERT_EQ(retry.done.size(), 1U);
  EXPECT_EQ(retry.done[0].cached, 3U);
  EXPECT_EQ(retry.done[0].computed, 0U);
}

TEST(job_queue, timeout_fails_the_job_but_keeps_persisted_points) {
  result_store store{fresh_store_root("timeout")};
  job_queue queue{store, 1};

  // A budget far below the job's real cost: the watchdog raises the stop
  // flag mid-run.  The job must finish `failed` with a timeout error, and
  // whatever points completed first must already be in the store.
  job_request timed = sweep_request();
  timed.config.horizon = 20000;
  timed.config.replications = 8;
  timed.timeout_seconds = 1e-3;
  event_log log;
  (void)queue.submit(std::move(timed), log.sinks());
  queue.drain();
  ASSERT_EQ(log.done.size(), 1U);
  EXPECT_EQ(log.done[0].state, job_state::failed);
  EXPECT_NE(log.done[0].error.find("timed out"), std::string::npos)
      << log.done[0].error;
  EXPECT_LT(log.done[0].computed, 3U);
  EXPECT_EQ(store.object_count(), log.done[0].computed);

  // Resubmitted with no budget, the sweep resumes from the persisted
  // points and completes.
  job_request again = sweep_request();
  again.config.horizon = 20000;
  again.config.replications = 8;
  event_log resumed;
  (void)queue.submit(std::move(again), resumed.sinks());
  queue.drain();
  ASSERT_EQ(resumed.done.size(), 1U);
  EXPECT_EQ(resumed.done[0].state, job_state::done);
  EXPECT_EQ(resumed.done[0].cached, log.done[0].computed);
  EXPECT_EQ(resumed.done[0].cached + resumed.done[0].computed, 3U);
  EXPECT_EQ(store.object_count(), 3U);
}

TEST(job_queue, injected_point_failure_resumes_byte_identically) {
  const failpoint_guard guard;
  // Control: the same sweep, undisturbed, in its own store.
  result_store control_store{fresh_store_root("pointfail_control")};
  std::vector<std::string> control_payloads;
  {
    job_queue queue{control_store, 1};
    event_log log;
    (void)queue.submit(sweep_request(), log.sinks());
    queue.drain();
    control_payloads = log.payloads;
    std::sort(control_payloads.begin(), control_payloads.end());
  }

  // Faulted run: the first computed point's delivery throws.
  result_store store{fresh_store_root("pointfail")};
  job_queue queue{store, 1};
  failpoints::set("queue.point", "1");
  event_log failed;
  (void)queue.submit(sweep_request(), failed.sinks());
  queue.drain();
  ASSERT_EQ(failed.done.size(), 1U);
  EXPECT_EQ(failed.done[0].state, job_state::failed);
  EXPECT_FALSE(failed.done[0].error.empty());

  // Recovery: clear the fault, resubmit, and the store converges to the
  // exact bytes the undisturbed run produced.
  failpoints::clear();
  event_log resumed;
  (void)queue.submit(sweep_request(), resumed.sinks());
  queue.drain();
  ASSERT_EQ(resumed.done.size(), 1U);
  EXPECT_EQ(resumed.done[0].state, job_state::done);
  EXPECT_EQ(resumed.done[0].cached + resumed.done[0].computed, 3U);
  std::vector<std::string> payloads = resumed.payloads;
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(payloads, control_payloads)
      << "a faulted-then-resumed sweep must converge to the control bytes";
}

TEST(session, full_queue_replies_with_job_rejected) {
  result_store store{fresh_store_root("rejected")};
  job_queue queue{store, 1, /*max_queued=*/1};
  queue.pause();
  wire out;
  session s{queue, out.options()};
  s.handle_line(submit_line());
  s.handle_line(submit_line());
  {
    const std::vector<std::string> events = out.events();
    ASSERT_EQ(events.size(), 2U);
    EXPECT_EQ(events[0], "job_accepted");
    EXPECT_EQ(events[1], "job_rejected");
    const json_value rejected = parse_json(out.lines[1]);
    EXPECT_EQ(rejected.find("reason")->as_string("reason"), "queue_full");
    EXPECT_EQ(rejected.find("limit")->as_uint64("limit"), 1U);
    EXPECT_NE(rejected.find("message"), nullptr);
  }
  // The rejected submit left nothing outstanding: finish() returns once
  // the accepted job completes, with exactly one job_done.
  queue.resume();
  s.finish();
  const std::vector<std::string> events = out.events();
  EXPECT_EQ(std::count(events.begin(), events.end(), "job_done"), 1);
  EXPECT_EQ(std::count(events.begin(), events.end(), "job_rejected"), 1);
}

TEST(session, peer_disconnect_mid_reply_cancels_outstanding_jobs) {
  result_store store{fresh_store_root("disconnect")};
  job_queue queue{store, 1};
  // A wire whose peer vanishes after the first event line (job_accepted):
  // the first point_done write fails, the session must cancel its jobs
  // and drop further events instead of wedging or crashing.
  std::mutex mutex;
  std::vector<std::string> lines;
  session_options options;
  options.write_line = [&](std::string_view line) {
    const std::lock_guard<std::mutex> lock{mutex};
    if (lines.size() >= 1) return false;  // peer gone
    lines.emplace_back(line);
    return true;
  };
  {
    session s{queue, std::move(options)};
    s.handle_line(submit_line());
    s.finish();
    EXPECT_TRUE(s.peer_closed());
  }
  queue.drain();
  const std::lock_guard<std::mutex> lock{mutex};
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_NE(lines[0].find("job_accepted"), std::string::npos);
}

// --- socket edge paths (driven by fail points over a socketpair) ------------

struct socket_pair {
  unix_fd a;
  unix_fd b;
  socket_pair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair failed";
    }
    a = unix_fd{fds[0]};
    b = unix_fd{fds[1]};
  }
};

TEST(socket, write_all_completes_through_short_writes) {
  const failpoint_guard guard;
  socket_pair pair;
  // Every one of the first eight writes is capped at 3 bytes; write_all
  // must loop until the whole line is on the wire.
  failpoints::set("socket.write_short", "1..8(3)");
  const std::string data = "a line that takes many short writes\n";
  ASSERT_TRUE(write_all(pair.a.get(), data));
  pair.a.reset();  // EOF for the reader
  line_reader reader;
  const std::optional<std::string> line = reader.next_line(pair.b.get());
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "a line that takes many short writes");
  EXPECT_EQ(reader.next_line(pair.b.get()), std::nullopt);
}

TEST(socket, write_all_reports_a_broken_connection) {
  const failpoint_guard guard;
  socket_pair pair;
  failpoints::set("socket.write_fail", "1");
  EXPECT_FALSE(write_all(pair.a.get(), "never arrives\n"));
  failpoints::clear();
  EXPECT_TRUE(write_all(pair.a.get(), "arrives\n"));
}

TEST(socket, line_reader_reassembles_through_eintr_and_short_reads) {
  const failpoint_guard guard;
  socket_pair pair;
  ASSERT_TRUE(write_all(pair.a.get(), "alpha\nbeta\n"));
  pair.a.reset();
  // First read interrupted, the next several capped at 2 bytes: the
  // reader must still produce exactly the two lines, byte-perfect.
  failpoints::configure("socket.read_eintr=1;socket.read_short=1..8(2)");
  line_reader reader;
  EXPECT_EQ(reader.next_line(pair.b.get()), "alpha");
  EXPECT_EQ(reader.next_line(pair.b.get()), "beta");
  EXPECT_EQ(reader.next_line(pair.b.get()), std::nullopt);
}

TEST(socket, line_reader_surfaces_hard_read_errors) {
  const failpoint_guard guard;
  socket_pair pair;
  ASSERT_TRUE(write_all(pair.a.get(), "doomed\n"));
  failpoints::set("socket.read_fail", "1");
  line_reader reader;
  EXPECT_THROW((void)reader.next_line(pair.b.get()), std::runtime_error);
}

TEST(socket, line_reader_rejects_oversized_lines) {
  // A hostile peer streaming one endless line must hit the bound, both
  // with and without ever sending the newline.
  {
    socket_pair pair;
    ASSERT_TRUE(write_all(pair.a.get(), std::string(64, 'x') + "\n"));
    pair.a.reset();
    line_reader reader{/*max_line=*/16};
    EXPECT_THROW((void)reader.next_line(pair.b.get()), std::runtime_error);
  }
  {
    socket_pair pair;
    ASSERT_TRUE(write_all(pair.a.get(), std::string(64, 'y')));  // no newline
    pair.a.reset();
    line_reader reader{/*max_line=*/16};
    EXPECT_THROW((void)reader.next_line(pair.b.get()), std::runtime_error);
  }
  {
    // At the bound is fine; the cap is on a line longer than max_line.
    socket_pair pair;
    ASSERT_TRUE(write_all(pair.a.get(), std::string(16, 'z') + "\n"));
    pair.a.reset();
    line_reader reader{/*max_line=*/16};
    EXPECT_EQ(reader.next_line(pair.b.get()), std::string(16, 'z'));
  }
}

}  // namespace
}  // namespace sgl::service
