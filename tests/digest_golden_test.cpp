// Golden spec_digest values for every registry scenario — the pinned
// content addresses of the service result cache (service/digest.h).
//
// A digest names a cached probe result; if any digest here moves, every
// result cached by a previous build is silently unreachable (cache miss —
// annoying) or, far worse, a STALE result could be served as current if a
// semantic change failed to move the digest.  This table turns both into a
// loud tier-1 failure: it must change exactly when a semantic input
// changes — spec fields, run shape, probe resolution, header format, or
// the k_stream_derivation_id epoch — and never otherwise.
//
// The capture recipe (rerun ONLY on an intentional break, and say so in
// the commit message): for each registry scenario, pin kernel = scalar,
// hash with horizon 40 / 2 replications / seed 7 / no probe override, and
// replace the table.  Kernel is pinned because spec_digest hashes the
// *resolved* kernel — `auto` digests differently on hosts with and without
// a vector ISA, by design, and a golden table must not depend on the host.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/experiment.h"
#include "core/finite_dynamics.h"
#include "scenario/registry.h"
#include "service/digest.h"

namespace {

using namespace sgl;

const std::map<std::string, std::string>& golden_digests() {
  static const std::map<std::string, std::string> golden{
      {"quickstart", "6ebe7d127dca680556f1b4a7ae16d313"},
      {"theorem-infinite", "a94cda995c17cc035c63bcf4b998462c"},
      {"theorem-finite", "51b14c31cb69c09b8e7465f45e06fe68"},
      {"nonuniform-start", "02c6621df8e59007dfc8238fe0229ecb"},
      {"ef-exclusive", "d0e641bd195138effda525b8348a3b0b"},
      {"switching-stocks", "a8b9c088ad253a6bc5757fdbdcc1fd79"},
      {"drifting-crossover", "8f94b5a517c479025bb3eafdefff72fa"},
      {"ring", "472da8348568330c1627a59d1549b1c8"},
      {"small-world", "9d751249a9944f02eec1e58ee3fdb0b2"},
      {"two-cliques", "6b468df41ae647149fd336516f164c89"},
      {"torus", "49c7a88bb3723faa8b8b00be078b8949"},
      {"network_ring_1e5", "9c293ea365eb506aafde05bc0d324704"},
      {"network_ba_1e6", "83f3d26d359a26da4051905a81e7eb4e"},
      {"network_smallworld_1e6", "b57a72e48b965a3d677735898e1da8ea"},
      // Same fields as theorem-finite under another name: names are
      // documentation, so the digests MUST collide — the cache reuses the
      // result.
      {"mixed_baseline", "51b14c31cb69c09b8e7465f45e06fe68"},
      {"switching_recovery", "ef0c8ee284ced0890eee935911087da3"},
      {"two_cliques_consensus", "198c87709c34c0f7ae57f3880f7425c6"},
      {"drift_tracking_1e5", "9870cc78b261a2a08d2b53db829e8cc7"},
      {"gossip_sensor_1e4", "3739b11891ea728db72b4328dc3726e7"},
      {"gossip_lossy_sweep", "16029f113a2c6985cf62031c6e82e0dc"},
      {"gossip_crash_recovery", "2eb7a2820f0a3a58e10674cd444f3f0d"},
      {"gossip_ring_300", "7fed6872bb70d9f04caa0b783b92a18d"},
      {"gossip_sync_ideal", "66f10c65c7cd745c42cab3696848bdc3"},
      {"gossip_partition_heal", "7bd623a16b89c3efb26b433ff2ad1d81"},
      {"gossip_crash_waves", "32cf4481143cb4d291897c1c6730466b"},
      {"gossip_degraded_links", "46038315014415646d105eec0aa8af0a"},
      {"mixture-discernment", "5cbf7f1f68a5cab57bef20abaa2971cb"},
  };
  return golden;
}

core::run_config capture_config() {
  core::run_config config;
  config.horizon = 40;
  config.replications = 2;
  config.seed = 7;
  return config;
}

TEST(digest_golden, every_registry_scenario_is_pinned) {
  const auto& golden = golden_digests();
  std::size_t covered = 0;
  const std::vector<std::string> no_probes;
  for (auto spec : scenario::all_scenarios()) {
    const auto it = golden.find(spec.name);
    ASSERT_NE(it, golden.end())
        << "scenario '" << spec.name
        << "' has no golden digest; extend the table (capture recipe in "
           "this file's header)";
    ++covered;
    spec.engine_kernel = core::kernel_kind::scalar;
    EXPECT_EQ(service::spec_digest(spec, capture_config(), no_probes).hex(),
              it->second)
        << "digest moved for scenario '" << spec.name
        << "' — every previously cached result for it is now unreachable. "
           "If the semantic change is intentional, recapture the table (and "
           "bump k_stream_derivation_id if a stream derivation changed).";
  }
  // Retiring a scenario must retire its golden entry too.
  EXPECT_EQ(covered, golden.size());
}

}  // namespace
