// Tests for the inbound JSON reader (support/json_parse.h): values,
// escapes, exact 64-bit integers, checked accessors, and the error paths
// the service wire protocol depends on.

#include "support/json_parse.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "support/json.h"

namespace sgl {
namespace {

TEST(json_parse, scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool("x"));
  EXPECT_FALSE(parse_json("false").as_bool("x"));
  EXPECT_EQ(parse_json("\"hi\"").as_string("x"), "hi");
  EXPECT_DOUBLE_EQ(parse_json("-2.5e2").as_double("x"), -250.0);
  EXPECT_EQ(parse_json("42").as_int64("x"), 42);
  EXPECT_TRUE(parse_json("  17 ").is_number()) << "surrounding whitespace";
}

TEST(json_parse, uint64_round_trips_past_double_precision) {
  // 2^63 + 1 is not representable as a double; the raw-token reparse in
  // as_uint64 must still return it exactly (seeds are uint64).
  const std::uint64_t big = (1ULL << 63) + 1;
  const json_value value = parse_json(std::to_string(big));
  EXPECT_EQ(value.as_uint64("seed"), big);
  EXPECT_EQ(parse_json("9223372036854775807").as_int64("x"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(json_parse, objects_arrays_and_lookup) {
  const json_value doc = parse_json(
      R"({"op":"submit","grid":[1,2,3],"nested":{"deep":true},"op":"dup"})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("op")->as_string("op"), "submit") << "first key wins";
  ASSERT_NE(doc.find("grid"), nullptr);
  ASSERT_EQ(doc.find("grid")->items.size(), 3U);
  EXPECT_EQ(doc.find("grid")->items[1].as_int64("x"), 2);
  EXPECT_TRUE(doc.find("nested")->find("deep")->as_bool("deep"));
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(json_parse, escapes_round_trip_through_json_escape) {
  const std::string nasty = "line\nbreak \"quoted\" back\\slash \ttab \x01 unicode: é";
  const std::string doc = "\"" + json_escape(nasty) + "\"";
  EXPECT_EQ(parse_json(doc).as_string("x"), nasty);
  // Explicit \u escapes, including a surrogate pair.
  EXPECT_EQ(parse_json(R"("Aé😀")").as_string("x"),
            "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(json_parse, malformed_documents_throw_with_offsets) {
  EXPECT_THROW((void)parse_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1 2]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("01"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("nul"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{} trailing"), std::invalid_argument);
  // Nesting bomb: deeper than the 64-level guard.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
}

TEST(json_parse, checked_accessors_name_the_field) {
  const json_value doc = parse_json(R"({"job":"not a number","neg":-1})");
  try {
    (void)doc.find("job")->as_uint64("job");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("job"), std::string::npos);
  }
  EXPECT_THROW((void)doc.find("neg")->as_uint64("neg"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("2.5").as_int64("x"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("1").as_string("x"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"s\"").as_bool("x"), std::invalid_argument);
}

}  // namespace
}  // namespace sgl
