// Tests for the inbound JSON reader (support/json_parse.h): values,
// escapes, exact 64-bit integers, checked accessors, and the error paths
// the service wire protocol depends on.

#include "support/json_parse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "property/generators.h"
#include "support/json.h"

namespace sgl {
namespace {

using testgen::emit_node;
using testgen::expect_node_equal;
using testgen::gen_node;
using testgen::prng;
using testgen::random_node;

TEST(json_parse, scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool("x"));
  EXPECT_FALSE(parse_json("false").as_bool("x"));
  EXPECT_EQ(parse_json("\"hi\"").as_string("x"), "hi");
  EXPECT_DOUBLE_EQ(parse_json("-2.5e2").as_double("x"), -250.0);
  EXPECT_EQ(parse_json("42").as_int64("x"), 42);
  EXPECT_TRUE(parse_json("  17 ").is_number()) << "surrounding whitespace";
}

TEST(json_parse, uint64_round_trips_past_double_precision) {
  // 2^63 + 1 is not representable as a double; the raw-token reparse in
  // as_uint64 must still return it exactly (seeds are uint64).
  const std::uint64_t big = (1ULL << 63) + 1;
  const json_value value = parse_json(std::to_string(big));
  EXPECT_EQ(value.as_uint64("seed"), big);
  EXPECT_EQ(parse_json("9223372036854775807").as_int64("x"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(json_parse, objects_arrays_and_lookup) {
  const json_value doc = parse_json(
      R"({"op":"submit","grid":[1,2,3],"nested":{"deep":true},"op":"dup"})");
  ASSERT_TRUE(doc.is_object());
  // Duplicate keys: find() must agree with mainstream parsers (last key
  // wins), so a hostile client can't hide a second value from validation.
  EXPECT_EQ(doc.find("op")->as_string("op"), "dup") << "last key wins";
  ASSERT_EQ(doc.members.size(), 4U) << "duplicates stay visible in members";
  EXPECT_EQ(doc.members.front().second.as_string("op"), "submit");
  ASSERT_NE(doc.find("grid"), nullptr);
  ASSERT_EQ(doc.find("grid")->items.size(), 3U);
  EXPECT_EQ(doc.find("grid")->items[1].as_int64("x"), 2);
  EXPECT_TRUE(doc.find("nested")->find("deep")->as_bool("deep"));
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(json_parse, escapes_round_trip_through_json_escape) {
  const std::string nasty = "line\nbreak \"quoted\" back\\slash \ttab \x01 unicode: é";
  const std::string doc = "\"" + json_escape(nasty) + "\"";
  EXPECT_EQ(parse_json(doc).as_string("x"), nasty);
  // Explicit \u escapes, including a surrogate pair.
  EXPECT_EQ(parse_json(R"("Aé😀")").as_string("x"),
            "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(json_parse, malformed_documents_throw_with_offsets) {
  EXPECT_THROW((void)parse_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1 2]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("01"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("nul"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{} trailing"), std::invalid_argument);
  // Nesting bomb: deeper than the 64-level guard.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
}

TEST(json_parse, depth_limit_boundary) {
  // parse_value(depth) starts at 0 and rejects depth > 64, so 65 nested
  // brackets are the deepest legal document and 66 must throw.  The limit
  // exists because the daemon parses untrusted socket bytes with a
  // recursive-descent parser — unbounded nesting would be stack exhaustion
  // on demand.
  const auto nested = [](std::size_t n) {
    return std::string(n, '[') + std::string(n, ']');
  };
  EXPECT_NO_THROW((void)parse_json(nested(65)));
  EXPECT_THROW((void)parse_json(nested(66)), std::invalid_argument);
}

TEST(json_parse, checked_accessors_name_the_field) {
  const json_value doc = parse_json(R"({"job":"not a number","neg":-1})");
  try {
    (void)doc.find("job")->as_uint64("job");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("job"), std::string::npos);
  }
  EXPECT_THROW((void)doc.find("neg")->as_uint64("neg"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("2.5").as_int64("x"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("1").as_string("x"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"s\"").as_bool("x"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property-based round-trip: seeded random JSON documents emitted through
// the writer (support/json) and read back through this parser must be
// value-exact.  The generators (splitmix64 prng, gen_node, emit_node,
// expect_node_equal) live in the shared seeded-generator library behind the
// whole property tier, tests/property/generators.h — a failure reproduces
// from the seed printed in the assertion message alone.

TEST(json_parse, property_random_documents_round_trip_exactly) {
  constexpr std::uint64_t k_base_seed = 0x5eed0f'20260809ULL;
  constexpr int k_documents = 300;
  for (int i = 0; i < k_documents; ++i) {
    const std::uint64_t seed = k_base_seed + static_cast<std::uint64_t>(i);
    prng rng{seed};
    const gen_node document = random_node(rng, 0);
    // Alternate compact and indented output: the parser must be
    // whitespace-blind, and the writer's indentation must never change a
    // value.
    std::ostringstream out;
    json_writer json{out, /*indent=*/i % 2 == 0 ? 0 : 2};
    emit_node(document, json);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + out.str());
    expect_node_equal(document, parse_json(out.str()), "$");
  }
}

}  // namespace
}  // namespace sgl
