// Tests for the inbound JSON reader (support/json_parse.h): values,
// escapes, exact 64-bit integers, checked accessors, and the error paths
// the service wire protocol depends on.

#include "support/json_parse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/json.h"

namespace sgl {
namespace {

TEST(json_parse, scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool("x"));
  EXPECT_FALSE(parse_json("false").as_bool("x"));
  EXPECT_EQ(parse_json("\"hi\"").as_string("x"), "hi");
  EXPECT_DOUBLE_EQ(parse_json("-2.5e2").as_double("x"), -250.0);
  EXPECT_EQ(parse_json("42").as_int64("x"), 42);
  EXPECT_TRUE(parse_json("  17 ").is_number()) << "surrounding whitespace";
}

TEST(json_parse, uint64_round_trips_past_double_precision) {
  // 2^63 + 1 is not representable as a double; the raw-token reparse in
  // as_uint64 must still return it exactly (seeds are uint64).
  const std::uint64_t big = (1ULL << 63) + 1;
  const json_value value = parse_json(std::to_string(big));
  EXPECT_EQ(value.as_uint64("seed"), big);
  EXPECT_EQ(parse_json("9223372036854775807").as_int64("x"),
            std::numeric_limits<std::int64_t>::max());
}

TEST(json_parse, objects_arrays_and_lookup) {
  const json_value doc = parse_json(
      R"({"op":"submit","grid":[1,2,3],"nested":{"deep":true},"op":"dup"})");
  ASSERT_TRUE(doc.is_object());
  // Duplicate keys: find() must agree with mainstream parsers (last key
  // wins), so a hostile client can't hide a second value from validation.
  EXPECT_EQ(doc.find("op")->as_string("op"), "dup") << "last key wins";
  ASSERT_EQ(doc.members.size(), 4U) << "duplicates stay visible in members";
  EXPECT_EQ(doc.members.front().second.as_string("op"), "submit");
  ASSERT_NE(doc.find("grid"), nullptr);
  ASSERT_EQ(doc.find("grid")->items.size(), 3U);
  EXPECT_EQ(doc.find("grid")->items[1].as_int64("x"), 2);
  EXPECT_TRUE(doc.find("nested")->find("deep")->as_bool("deep"));
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(json_parse, escapes_round_trip_through_json_escape) {
  const std::string nasty = "line\nbreak \"quoted\" back\\slash \ttab \x01 unicode: é";
  const std::string doc = "\"" + json_escape(nasty) + "\"";
  EXPECT_EQ(parse_json(doc).as_string("x"), nasty);
  // Explicit \u escapes, including a surrogate pair.
  EXPECT_EQ(parse_json(R"("Aé😀")").as_string("x"),
            "A\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(json_parse, malformed_documents_throw_with_offsets) {
  EXPECT_THROW((void)parse_json(""), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1 2]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("01"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("nul"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{} trailing"), std::invalid_argument);
  // Nesting bomb: deeper than the 64-level guard.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)parse_json(deep), std::invalid_argument);
}

TEST(json_parse, depth_limit_boundary) {
  // parse_value(depth) starts at 0 and rejects depth > 64, so 65 nested
  // brackets are the deepest legal document and 66 must throw.  The limit
  // exists because the daemon parses untrusted socket bytes with a
  // recursive-descent parser — unbounded nesting would be stack exhaustion
  // on demand.
  const auto nested = [](std::size_t n) {
    return std::string(n, '[') + std::string(n, ']');
  };
  EXPECT_NO_THROW((void)parse_json(nested(65)));
  EXPECT_THROW((void)parse_json(nested(66)), std::invalid_argument);
}

TEST(json_parse, checked_accessors_name_the_field) {
  const json_value doc = parse_json(R"({"job":"not a number","neg":-1})");
  try {
    (void)doc.find("job")->as_uint64("job");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("job"), std::string::npos);
  }
  EXPECT_THROW((void)doc.find("neg")->as_uint64("neg"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("2.5").as_int64("x"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("1").as_string("x"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("\"s\"").as_bool("x"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property-based round-trip: seeded random JSON documents emitted through
// the writer (support/json) and read back through this parser must be
// value-exact.  First brick of the generator-driven test tier (ROADMAP):
// the generator is a plain counter-free PRNG, so a failure reproduces from
// the seed printed in the assertion message alone.

namespace {

/// splitmix64 — tiny, seedable, and good enough to explore the space.
class prng {
 public:
  explicit prng(std::uint64_t seed) : state_{seed} {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// A generated document node.  Integer-valued numbers are tracked apart
/// from doubles because they take different writer overloads and different
/// exactness checks (raw-token reparse vs shortest-round-trip double).
struct gen_node {
  enum class kind { null, boolean, number_double, number_uint, string, array, object };
  kind type = kind::null;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;
  std::string text;
  std::vector<gen_node> items;
  std::vector<std::pair<std::string, gen_node>> members;
};

std::string random_string(prng& rng) {
  // A deliberately hostile alphabet: quotes, backslashes, control bytes,
  // and multi-byte UTF-8 — everything json_escape has a code path for.
  static const std::vector<std::string> pieces = {
      "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\r", "\x01", "\x1f",
      "{", "}", "[", "]", ":", ",", "é", "😀", "\\u0041", "end"};
  std::string out;
  const std::size_t length = rng.below(8);
  for (std::size_t i = 0; i < length; ++i) out += pieces[rng.below(pieces.size())];
  return out;
}

double random_double(prng& rng) {
  switch (rng.below(6)) {
    case 0: return 0.0;
    case 1: return static_cast<double>(rng.next()) * 0x1.0p-64;  // [0,1)
    case 2: return 0.1 * static_cast<double>(rng.below(1000));
    case 3: return 1e300 * (static_cast<double>(rng.below(2000)) - 1000.0);
    case 4: return 1e-300 * static_cast<double>(rng.below(1000));
    default: {
      // Raw bit patterns reach the denormals and odd mantissas that
      // shortest-round-trip formatting gets wrong first; skip non-finite
      // (JSON has no encoding for them — the writer emits null).
      double bits = 0.0;
      const std::uint64_t raw = rng.next();
      static_assert(sizeof(bits) == sizeof(raw));
      std::memcpy(&bits, &raw, sizeof(bits));
      return std::isfinite(bits) ? bits : 0.5;
    }
  }
}

gen_node random_node(prng& rng, std::size_t depth) {
  gen_node node;
  // Containers get rarer with depth so documents stay small and under the
  // parser's 64-level limit.
  const std::uint64_t roll = rng.below(depth >= 5 ? 5 : 7);
  switch (roll) {
    case 0: node.type = gen_node::kind::null; break;
    case 1:
      node.type = gen_node::kind::boolean;
      node.boolean = rng.below(2) == 1;
      break;
    case 2:
      node.type = gen_node::kind::number_double;
      node.number = random_double(rng);
      break;
    case 3:
      node.type = gen_node::kind::number_uint;
      // Include values past 2^53, where double precision alone fails.
      node.integer = rng.below(2) == 0 ? rng.below(1000) : rng.next();
      break;
    case 4:
      node.type = gen_node::kind::string;
      node.text = random_string(rng);
      break;
    case 5: {
      node.type = gen_node::kind::array;
      const std::size_t size = rng.below(4);
      for (std::size_t i = 0; i < size; ++i) {
        node.items.push_back(random_node(rng, depth + 1));
      }
      break;
    }
    default: {
      node.type = gen_node::kind::object;
      const std::size_t size = rng.below(4);
      for (std::size_t i = 0; i < size; ++i) {
        node.members.emplace_back(random_string(rng), random_node(rng, depth + 1));
      }
      break;
    }
  }
  return node;
}

void emit_node(const gen_node& node, json_writer& json) {
  switch (node.type) {
    case gen_node::kind::null: json.null(); break;
    case gen_node::kind::boolean: json.value(node.boolean); break;
    case gen_node::kind::number_double: json.value(node.number); break;
    case gen_node::kind::number_uint: json.value(node.integer); break;
    case gen_node::kind::string: json.value(node.text); break;
    case gen_node::kind::array:
      json.begin_array();
      for (const gen_node& item : node.items) emit_node(item, json);
      json.end_array();
      break;
    case gen_node::kind::object:
      json.begin_object();
      for (const auto& [key, value] : node.members) {
        json.key(key);
        emit_node(value, json);
      }
      json.end_object();
      break;
  }
}

void expect_node_equal(const gen_node& expected, const json_value& actual,
                       const std::string& where) {
  switch (expected.type) {
    case gen_node::kind::null:
      EXPECT_TRUE(actual.is_null()) << where;
      break;
    case gen_node::kind::boolean:
      EXPECT_EQ(actual.as_bool(where), expected.boolean) << where;
      break;
    case gen_node::kind::number_double:
      // Bit-exact: json_number promises the shortest text that parses
      // back to exactly this double.
      EXPECT_EQ(actual.as_double(where), expected.number) << where;
      break;
    case gen_node::kind::number_uint:
      EXPECT_EQ(actual.as_uint64(where), expected.integer) << where;
      break;
    case gen_node::kind::string:
      EXPECT_EQ(actual.as_string(where), expected.text) << where;
      break;
    case gen_node::kind::array: {
      ASSERT_TRUE(actual.is_array()) << where;
      ASSERT_EQ(actual.items.size(), expected.items.size()) << where;
      for (std::size_t i = 0; i < expected.items.size(); ++i) {
        expect_node_equal(expected.items[i], actual.items[i],
                          where + "[" + std::to_string(i) + "]");
      }
      break;
    }
    case gen_node::kind::object: {
      ASSERT_TRUE(actual.is_object()) << where;
      ASSERT_EQ(actual.members.size(), expected.members.size()) << where;
      for (std::size_t i = 0; i < expected.members.size(); ++i) {
        EXPECT_EQ(actual.members[i].first, expected.members[i].first) << where;
        expect_node_equal(expected.members[i].second, actual.members[i].second,
                          where + "." + expected.members[i].first);
      }
      break;
    }
  }
}

}  // namespace

TEST(json_parse, property_random_documents_round_trip_exactly) {
  constexpr std::uint64_t k_base_seed = 0x5eed0f'20260809ULL;
  constexpr int k_documents = 300;
  for (int i = 0; i < k_documents; ++i) {
    const std::uint64_t seed = k_base_seed + static_cast<std::uint64_t>(i);
    prng rng{seed};
    const gen_node document = random_node(rng, 0);
    // Alternate compact and indented output: the parser must be
    // whitespace-blind, and the writer's indentation must never change a
    // value.
    std::ostringstream out;
    json_writer json{out, /*indent=*/i % 2 == 0 ? 0 : 2};
    emit_node(document, json);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + out.str());
    expect_node_equal(document, parse_json(out.str()), "$");
  }
}

}  // namespace
}  // namespace sgl
