// Statistical laws of stream derivation v3 (the SIMD step kernels).
// Labelled `statistical`, NOT `tier1` — same contract as
// protocol_law_test.cpp: fully seeded and reproducible, run by plain
// `ctest` and the dedicated statistical CI job, not by the blocking gate.
//
// v3 draws per-agent words from a counter-based splitmix64 stream instead
// of v2's sequential per-shard streams, so scalar-vs-SIMD equality cannot
// be checked bit for bit — the two derivations are *different* exact
// samplers of the *same* law.  These tests pin the law:
//
//   1. exact one-step category probabilities from the all-uncommitted
//      start, pooled over replications, verified by chi-square — on the
//      sparse network path (the vectorized net2 kernel), the dense network
//      path (scalar under every kernel setting, so `kernel = simd` must
//      not corrupt it), and the fully mixed heterogeneous path (the mixed
//      kernel);
//   2. an exact stage-1 chi-square *from a committed configuration*,
//      driving the net2 kernel directly with a crafted committed-neighbour
//      view (every agent sees 3 committed neighbours on option 0, 1 on
//      option 1), where the consideration law μ/2 + (1−μ)·c_j/(c_0+c_1)
//      is in closed form;
//   3. a multi-round 4.5σ comparison of scalar-v2 and SIMD-v3 engines on
//      final best-option popularity and adopter counts over a ring — the
//      law-equivalence statement that lets `kernel = auto` pick either.
//
// Every SIMD leg skips when the dispatcher resolved no vector ISA (e.g.
// under SGL_KERNEL=scalar), keeping the file meaningful on any host.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "core/step_kernel.h"
#include "graph/graph.h"
#include "support/gof.h"
#include "support/rng.h"
#include "support/stats.h"

namespace {

using namespace sgl;

core::dynamics_params make_params(std::size_t m, double mu, double beta,
                                  double alpha) {
  core::dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

/// One engine step from the all-uncommitted start pools to a multinomial:
/// stage 1 is uniform (explore and the no-committed-neighbour copy
/// fallback coincide), stage 2 commits with β (rewarded) / α, so category
/// j has mass (β if R_j else α)/m and sit-out the complement.  Returns
/// the chi-square result over `replications` i.i.d. populations.
sgl::gof_result one_step_adoption_chi_square(core::finite_dynamics&& prototype,
                                             const graph::graph* topology,
                                             core::kernel_kind kind,
                                             std::uint64_t seed) {
  const core::dynamics_params& params = prototype.params();
  const std::size_t m = params.num_options;
  const std::size_t n = prototype.num_agents();
  constexpr int replications = 200;
  std::vector<std::uint8_t> rewards(m, 0);
  rewards[0] = 1;
  if (m > 2) rewards[m - 1] = 1;

  std::vector<std::uint64_t> observed(m + 1, 0);
  prototype.set_topology(topology);
  prototype.set_kernel(kind);
  for (int r = 0; r < replications; ++r) {
    prototype.reset();
    rng gen = rng::from_stream(seed, static_cast<std::uint64_t>(r));
    prototype.step(rewards, gen);
    const auto counts = prototype.adopter_counts();
    std::uint64_t committed = 0;
    for (std::size_t j = 0; j < m; ++j) {
      observed[j] += counts[j];
      committed += counts[j];
    }
    observed[m] += n - committed;
  }

  std::vector<double> expected(m + 1, 0.0);
  double commit_mass = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    expected[j] =
        (rewards[j] != 0 ? params.beta : params.alpha) / static_cast<double>(m);
    commit_mass += expected[j];
  }
  expected[m] = 1.0 - commit_mass;
  return sgl::chi_square_test(observed, expected);
}

TEST(kernel_law, network_sparse_one_step_chi_square_simd) {
  if (!core::kernel::vector_isa_available()) GTEST_SKIP() << "no vector ISA";
  const std::size_t n = 500;
  const graph::graph g = graph::graph::ring(n);
  const auto result =
      one_step_adoption_chi_square(core::finite_dynamics{make_params(2, 0.1, 0.7, 0.3), n},
                                   &g, core::kernel_kind::simd, 101);
  EXPECT_GT(result.p_value, 1e-3) << "chi-square statistic " << result.statistic;
}

TEST(kernel_law, network_dense_one_step_chi_square_under_simd_setting) {
  if (!core::kernel::vector_isa_available()) GTEST_SKIP() << "no vector ISA";
  // K_60's average degree (59) is over dense_degree_threshold, so the
  // engine runs the rejection sampler — scalar under every kernel setting.
  // `kernel = simd` must leave its law untouched.
  const std::size_t n = 60;
  const graph::graph g = graph::graph::complete(n);
  const auto result =
      one_step_adoption_chi_square(core::finite_dynamics{make_params(2, 0.1, 0.7, 0.3), n},
                                   &g, core::kernel_kind::simd, 202);
  EXPECT_GT(result.p_value, 1e-3) << "chi-square statistic " << result.statistic;
}

TEST(kernel_law, mixed_one_step_chi_square_simd) {
  if (!core::kernel::vector_isa_available()) GTEST_SKIP() << "no vector ISA";
  // Identical per-agent rules keep the agents i.i.d. (multinomial pooled
  // counts) while the non-empty rule vector forces the per-agent path —
  // which is the mixed v3 kernel under `kernel = simd`.
  const std::size_t n = 400;
  core::finite_dynamics dyn{make_params(3, 0.1, 0.7, 0.3), n};
  dyn.set_agent_rules(std::vector<core::adoption_rule>(n, {0.3, 0.7}));
  const auto result = one_step_adoption_chi_square(std::move(dyn), nullptr,
                                                   core::kernel_kind::simd, 303);
  EXPECT_GT(result.p_value, 1e-3) << "chi-square statistic " << result.statistic;
}

TEST(kernel_law, net2_stage1_chi_square_from_committed_view) {
  // Drives the active-ISA net2 kernel directly with a crafted committed-
  // neighbour view: every agent sees c0 = 3 committed neighbours on
  // option 0 and c1 = 1 on option 1, so stage 1 considers option 0 with
  // probability μ/2 + (1−μ)·3/4 for every agent independently — the
  // pooled stage tallies are binomial.  This is the configuration-
  // dependent half of the stage-1 law, which the from-scratch tests above
  // (uniform consideration) cannot see.  Runs under every ISA including
  // generic: the law, unlike the bits, is derivation-v3's own.
  constexpr std::size_t n = 1000;
  constexpr int replications = 300;
  constexpr double mu = 0.1;
  const std::vector<std::uint32_t> rows(n, 3U | (1U << 16));
  const std::vector<std::int32_t> previous(n, -1);
  std::vector<std::int32_t> choices(n, 0);
  std::vector<std::uint64_t> changed(n, 0);

  std::uint64_t stage[2] = {0, 0};
  rng seed_gen{404};
  for (int r = 0; r < replications; ++r) {
    std::uint32_t changed_len = 0;
    std::uint64_t adopt[2] = {0, 0};
    core::kernel::net2_args a;
    a.step_seed = seed_gen.next_u64();
    a.lo = 0;
    a.hi = n;
    a.rows = rows.data();
    a.previous = previous.data();
    a.choices = choices.data();
    a.t_mu = prob_to_u64(mu);
    a.thr_explore[0] = prob_to_u64(mu * 0.7);
    a.thr_explore[1] = prob_to_u64(mu * 0.3);
    a.thr_copy[0] = prob_to_u64(mu + (1.0 - mu) * 0.7);
    a.thr_copy[1] = prob_to_u64(mu + (1.0 - mu) * 0.3);
    a.changed = changed.data();
    a.changed_len = &changed_len;
    a.stage = stage;
    a.adopt = adopt;
    core::kernel::net2_step()(a);
  }

  const std::uint64_t observed[2] = {stage[0], stage[1]};
  const double p0 = mu / 2.0 + (1.0 - mu) * 3.0 / 4.0;
  const std::vector<double> expected{p0, 1.0 - p0};
  const auto result = sgl::chi_square_test(observed, expected);
  EXPECT_GT(result.p_value, 1e-3)
      << "chi-square statistic " << result.statistic << " over n = "
      << n * replications << " pooled stage-1 draws";
}

TEST(kernel_law, multi_round_scalar_vs_simd_within_sigma) {
  if (!core::kernel::vector_isa_available()) GTEST_SKIP() << "no vector ISA";
  // The equivalence that justifies `kernel = auto`: over a ring, from
  // independent streams, the v2-scalar and v3-SIMD engines agree on final
  // best-option popularity and total adopters to within 4.5σ.
  constexpr std::size_t n = 300;
  constexpr int replications = 250;
  constexpr int horizon = 25;
  const std::vector<double> etas{0.8, 0.3};
  const graph::graph g = graph::graph::ring(n);
  const core::dynamics_params params = make_params(2, 0.08, 0.7, 0.3);

  sgl::running_stats scalar_pop, scalar_adopt, simd_pop, simd_adopt;
  std::vector<std::uint8_t> rewards(2);
  core::finite_dynamics scalar_dyn{params, n};
  scalar_dyn.set_topology(&g);
  scalar_dyn.set_kernel(core::kernel_kind::scalar);
  core::finite_dynamics simd_dyn{params, n};
  simd_dyn.set_topology(&g);
  simd_dyn.set_kernel(core::kernel_kind::simd);

  for (int r = 0; r < replications; ++r) {
    scalar_dyn.reset();
    simd_dyn.reset();
    rng scalar_gen = rng::from_stream(31, static_cast<std::uint64_t>(r));
    rng simd_gen = rng::from_stream(32, static_cast<std::uint64_t>(r));
    rng scalar_env = rng::from_stream(33, static_cast<std::uint64_t>(r));
    rng simd_env = rng::from_stream(34, static_cast<std::uint64_t>(r));
    for (int t = 0; t < horizon; ++t) {
      for (std::size_t j = 0; j < 2; ++j) {
        rewards[j] = scalar_env.next_bernoulli(etas[j]) ? 1 : 0;
      }
      scalar_dyn.step(rewards, scalar_gen);
      for (std::size_t j = 0; j < 2; ++j) {
        rewards[j] = simd_env.next_bernoulli(etas[j]) ? 1 : 0;
      }
      simd_dyn.step(rewards, simd_gen);
    }
    scalar_pop.add(scalar_dyn.popularity()[0]);
    scalar_adopt.add(static_cast<double>(scalar_dyn.adopters()));
    simd_pop.add(simd_dyn.popularity()[0]);
    simd_adopt.add(static_cast<double>(simd_dyn.adopters()));
  }

  const double pop_tolerance =
      4.5 * std::sqrt((scalar_pop.variance() + simd_pop.variance()) / replications);
  const double adopt_tolerance =
      4.5 * std::sqrt((scalar_adopt.variance() + simd_adopt.variance()) /
                      replications);
  EXPECT_NEAR(scalar_pop.mean(), simd_pop.mean(), pop_tolerance);
  EXPECT_NEAR(scalar_adopt.mean(), simd_adopt.mean(), adopt_tolerance);
}

}  // namespace
