#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/bandit.h"
#include "algo/full_info.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::algo {
namespace {

// --- hedge -----------------------------------------------------------------------

TEST(hedge, starts_uniform) {
  const hedge h{4, 0.5};
  for (const double p : h.distribution()) EXPECT_DOUBLE_EQ(p, 0.25);
}

TEST(hedge, closed_form_softmax_after_updates) {
  hedge h{2, 0.5};
  h.update(std::vector<std::uint8_t>{1, 0});
  h.update(std::vector<std::uint8_t>{1, 0});
  h.update(std::vector<std::uint8_t>{0, 1});
  // Cumulative rewards: (2, 1); weights exp(0.5*2), exp(0.5*1).
  const double w0 = std::exp(1.0);
  const double w1 = std::exp(0.5);
  EXPECT_NEAR(h.distribution()[0], w0 / (w0 + w1), 1e-12);
  EXPECT_NEAR(h.distribution()[1], w1 / (w0 + w1), 1e-12);
}

TEST(hedge, long_horizon_no_underflow) {
  hedge h{3, 1.0};
  const std::vector<std::uint8_t> r{1, 0, 0};
  for (int t = 0; t < 5000; ++t) h.update(r);
  EXPECT_NEAR(h.distribution()[0], 1.0, 1e-9);
  EXPECT_GE(h.distribution()[1], 0.0);
  double total = 0.0;
  for (const double p : h.distribution()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(hedge, reset_restores_uniform) {
  hedge h{2, 0.3};
  h.update(std::vector<std::uint8_t>{1, 0});
  h.reset();
  EXPECT_DOUBLE_EQ(h.distribution()[0], 0.5);
}

TEST(hedge, validates_input) {
  EXPECT_THROW((hedge{0, 0.5}), std::invalid_argument);
  EXPECT_THROW((hedge{2, 0.0}), std::invalid_argument);
  hedge h{2, 0.5};
  EXPECT_THROW(h.update(std::vector<std::uint8_t>{1}), std::invalid_argument);
}

TEST(hedge_optimal_rate, formula_and_validation) {
  EXPECT_NEAR(hedge_optimal_rate(10, 1000), std::sqrt(8.0 * std::log(10.0) / 1000.0),
              1e-12);
  EXPECT_THROW(hedge_optimal_rate(1, 1000), std::invalid_argument);
  EXPECT_THROW(hedge_optimal_rate(10, 0), std::invalid_argument);
}

// --- follow_the_leader --------------------------------------------------------------

TEST(follow_the_leader, tracks_cumulative_leader) {
  follow_the_leader ftl{3};
  ftl.update(std::vector<std::uint8_t>{0, 1, 0});
  EXPECT_DOUBLE_EQ(ftl.distribution()[1], 1.0);
  ftl.update(std::vector<std::uint8_t>{1, 0, 0});
  ftl.update(std::vector<std::uint8_t>{1, 0, 0});
  EXPECT_DOUBLE_EQ(ftl.distribution()[0], 1.0);
}

TEST(follow_the_leader, ties_break_to_lowest_index) {
  follow_the_leader ftl{2};
  ftl.update(std::vector<std::uint8_t>{1, 1});
  EXPECT_DOUBLE_EQ(ftl.distribution()[0], 1.0);
  EXPECT_DOUBLE_EQ(ftl.distribution()[1], 0.0);
}

TEST(follow_the_leader, reset) {
  follow_the_leader ftl{2};
  ftl.update(std::vector<std::uint8_t>{0, 1});
  ftl.reset();
  EXPECT_DOUBLE_EQ(ftl.distribution()[0], 0.5);
}

// --- uniform_policy ----------------------------------------------------------------

TEST(uniform_policy, never_moves) {
  uniform_policy u{5};
  u.update(std::vector<std::uint8_t>{1, 1, 1, 1, 1});
  for (const double p : u.distribution()) EXPECT_DOUBLE_EQ(p, 0.2);
}

// --- replicator_map ----------------------------------------------------------------

TEST(replicator_map, converges_to_best_option) {
  replicator_map rep{{0.8, 0.6, 0.4}};
  for (int t = 0; t < 200; ++t) rep.step();
  EXPECT_GT(rep.state()[0], 0.999);
}

TEST(replicator_map, pure_state_is_fixed_point) {
  replicator_map rep{{0.5, 0.5}};
  // Equal fitness: uniform state is invariant under the map.
  rep.step();
  EXPECT_DOUBLE_EQ(rep.state()[0], 0.5);
  EXPECT_DOUBLE_EQ(rep.state()[1], 0.5);
}

TEST(replicator_map, zero_quality_options_die_in_one_step) {
  replicator_map rep{{0.5, 0.0}};
  rep.step();
  EXPECT_DOUBLE_EQ(rep.state()[0], 1.0);
  EXPECT_DOUBLE_EQ(rep.state()[1], 0.0);
}

TEST(replicator_map, validates_input) {
  EXPECT_THROW(replicator_map{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW((replicator_map{{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW((replicator_map{{1.5}}), std::invalid_argument);
}

// --- ucb1 -------------------------------------------------------------------------

TEST(ucb1, initialization_round_visits_every_arm) {
  ucb1 policy{4};
  rng gen{1};
  for (std::size_t j = 0; j < 4; ++j) {
    const std::size_t arm = policy.select(gen);
    EXPECT_EQ(arm, j);
    policy.update(arm, 0);
  }
}

TEST(ucb1, exploits_clearly_better_arm) {
  ucb1 policy{2};
  rng gen{2};
  int best_pulls = 0;
  for (int t = 0; t < 2000; ++t) {
    const std::size_t arm = policy.select(gen);
    const std::uint8_t reward = gen.next_bernoulli(arm == 0 ? 0.9 : 0.1) ? 1 : 0;
    policy.update(arm, reward);
    if (arm == 0) ++best_pulls;
  }
  EXPECT_GT(best_pulls, 1700);
}

TEST(ucb1, reset_and_errors) {
  ucb1 policy{2};
  rng gen{3};
  policy.update(policy.select(gen), 1);
  policy.reset();
  EXPECT_EQ(policy.select(gen), 0U);  // back to the init round
  EXPECT_THROW(policy.update(7, 1), std::out_of_range);
  EXPECT_THROW(ucb1{0}, std::invalid_argument);
}

// --- thompson_sampling --------------------------------------------------------------

TEST(thompson_sampling, exploits_clearly_better_arm) {
  thompson_sampling policy{3};
  rng gen{4};
  int best_pulls = 0;
  for (int t = 0; t < 3000; ++t) {
    const std::size_t arm = policy.select(gen);
    const std::uint8_t reward = gen.next_bernoulli(arm == 1 ? 0.8 : 0.2) ? 1 : 0;
    policy.update(arm, reward);
    if (t >= 1000 && arm == 1) ++best_pulls;
  }
  EXPECT_GT(best_pulls, 1700);  // of the last 2000
}

TEST(thompson_sampling, reset_and_errors) {
  thompson_sampling policy{2};
  policy.update(0, 1);
  policy.reset();
  // After reset the posterior is symmetric; both arms should be selected
  // over repeated draws.
  rng gen{5};
  int arm0 = 0;
  for (int i = 0; i < 1000; ++i) arm0 += policy.select(gen) == 0 ? 1 : 0;
  EXPECT_GT(arm0, 300);
  EXPECT_LT(arm0, 700);
  EXPECT_THROW(policy.update(9, 1), std::out_of_range);
  EXPECT_THROW(thompson_sampling{0}, std::invalid_argument);
}

// --- epsilon_greedy -----------------------------------------------------------------

TEST(epsilon_greedy, explores_at_rate_epsilon) {
  epsilon_greedy policy{2, 0.2};
  rng gen{6};
  // Make arm 0 clearly best first.
  for (int i = 0; i < 50; ++i) policy.update(0, 1);
  for (int i = 0; i < 50; ++i) policy.update(1, 0);
  int pulls_of_worse = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) pulls_of_worse += policy.select(gen) == 1 ? 1 : 0;
  // Exploration picks the worse arm half the time: rate ≈ ε/2 = 0.1.
  EXPECT_NEAR(pulls_of_worse / static_cast<double>(n), 0.1, 0.02);
}

TEST(epsilon_greedy, optimistic_initialization_tries_everything) {
  epsilon_greedy policy{3, 0.0};
  rng gen{7};
  std::vector<bool> tried(3, false);
  for (int i = 0; i < 3; ++i) {
    const std::size_t arm = policy.select(gen);
    tried[arm] = true;
    policy.update(arm, 0);  // disappointing reward moves on to the next arm
  }
  EXPECT_TRUE(tried[0]);
  EXPECT_TRUE(tried[1]);
  EXPECT_TRUE(tried[2]);
}

TEST(epsilon_greedy, validates_parameters) {
  EXPECT_THROW((epsilon_greedy{2, -0.1}), std::invalid_argument);
  EXPECT_THROW((epsilon_greedy{2, 1.1}), std::invalid_argument);
  EXPECT_THROW((epsilon_greedy{0, 0.1}), std::invalid_argument);
}

// --- random_bandit -----------------------------------------------------------------

TEST(random_bandit, uniform_pulls) {
  random_bandit policy{4};
  rng gen{8};
  std::vector<int> counts(4, 0);
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[policy.select(gen)];
  for (const int c : counts) EXPECT_NEAR(c, n / 4, 400);
}

}  // namespace
}  // namespace sgl::algo
