// The faults.* nemesis family, bottom to top:
//   * fault_schedule::validate rejects malformed schedules naming the action;
//   * scheduled partitions / crash waves / restart waves / degrade windows
//     execute as first-class (time, seq) events with the documented effects;
//   * the whole fault timeline is deterministic: equal seeds give equal
//     trace hashes, recorder attachment costs nothing, and a scheduled run
//     is bit-identical across engine reuse;
//   * the scenario layer round-trips faults.* through the text format,
//     gates the family on the protocol engine, and reports range errors by
//     key name.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "netsim/simulation.h"
#include "netsim/trace.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/serialize.h"

namespace {

using namespace sgl;
using netsim::fault_action;
using netsim::fault_schedule;
using netsim::node_id;

/// Sends one message to `peer` every second (timer-driven, so scheduled
/// faults activating at fractional times interleave cleanly).
class pinger : public netsim::node {
 public:
  explicit pinger(node_id peer) : peer_{peer} {}
  void on_start(netsim::context& ctx) override { ctx.set_timer(1.0, 1); }
  void on_message(netsim::context&, const netsim::message&) override {}
  void on_timer(netsim::context& ctx, std::int32_t) override {
    netsim::message m;
    m.kind = 42;
    ctx.send(peer_, m);
    ctx.set_timer(1.0, 1);
  }

 private:
  node_id peer_;
};

/// Records when messages arrive.
class sink : public netsim::node {
 public:
  void on_start(netsim::context&) override {}
  void on_message(netsim::context& ctx, const netsim::message&) override {
    receive_times.push_back(ctx.now());
  }
  void on_timer(netsim::context&, std::int32_t) override {}

  std::vector<double> receive_times;
};

/// Counts on_start calls (restart visibility).
class start_counter : public netsim::node {
 public:
  void on_start(netsim::context&) override { ++starts; }
  void on_message(netsim::context&, const netsim::message&) override {}
  void on_timer(netsim::context&, std::int32_t) override {}
  int starts = 0;
};

fault_action partition_action(double at, double until, std::vector<node_id> side) {
  fault_action act;
  act.which = fault_action::kind::partition;
  act.at = at;
  act.until = until;
  act.targets = std::move(side);
  return act;
}

// --- schedule validation ----------------------------------------------------

TEST(fault_schedule, validate_rejects_malformed_actions) {
  const auto expect_invalid = [](const fault_action& act, const char* what) {
    fault_schedule schedule;
    schedule.actions.push_back(act);
    try {
      schedule.validate(4);
      FAIL() << "expected " << what << " to be rejected";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string{error.what()}.find("action 0"), std::string::npos)
          << what << ": message should name the action: " << error.what();
    }
  };

  expect_invalid(partition_action(-1.0, 2.0, {0}), "negative at");
  expect_invalid(partition_action(3.0, 3.0, {0}), "empty window");
  expect_invalid(partition_action(1.0, -1.0, {0}), "partition without until");
  expect_invalid(partition_action(1.0, 2.0, {}), "partition with empty side");
  expect_invalid(partition_action(1.0, 2.0, {0, 1, 2, 3}), "complete side");
  expect_invalid(partition_action(1.0, 2.0, {9}), "target out of range");

  fault_action fractional_partition = partition_action(1.0, 2.0, {0});
  fractional_partition.fraction = 0.5;
  expect_invalid(fractional_partition, "partition with a fraction");

  fault_action crash;
  crash.which = fault_action::kind::crash_wave;
  crash.at = 1.0;
  expect_invalid(crash, "crash wave with neither targets nor fraction");
  crash.fraction = 1.5;
  expect_invalid(crash, "fraction above 1");
  crash.fraction = 0.5;
  crash.targets = {0};
  expect_invalid(crash, "crash wave with both targets and fraction");
  crash.targets.clear();
  crash.until = 2.0;
  expect_invalid(crash, "crash wave with a window");

  fault_action degrade;
  degrade.which = fault_action::kind::degrade;
  degrade.at = 1.0;
  degrade.degrade_class = netsim::link_class::cross;
  expect_invalid(degrade, "non-all degrade class without targets");
  degrade.degrade_class = netsim::link_class::all;
  degrade.link.drop_probability = 2.0;
  expect_invalid(degrade, "invalid degrade link model");
}

TEST(fault_schedule, validate_rejects_overlapping_partitions) {
  fault_schedule schedule;
  schedule.actions.push_back(partition_action(1.0, 5.0, {0}));
  schedule.actions.push_back(partition_action(4.0, 8.0, {1}));
  EXPECT_THROW(schedule.validate(3), std::invalid_argument);

  // Back-to-back windows are fine: the first heal dispatches before the
  // second cut at the shared instant (end events precede later begins).
  schedule.actions[1] = partition_action(5.0, 8.0, {1});
  EXPECT_NO_THROW(schedule.validate(3));
}

// --- scheduled execution ----------------------------------------------------

TEST(fault_schedule, partition_window_cuts_and_heals) {
  netsim::simulation sim{21};
  sim.add_node(std::make_unique<pinger>(1));
  auto b = std::make_unique<sink>();
  sink* pb = b.get();
  sim.add_node(std::move(b));
  netsim::link_model links;
  links.base_latency = 0.1;
  sim.set_link_model(links);
  fault_schedule schedule;
  schedule.actions.push_back(partition_action(2.5, 5.5, {0}));
  sim.set_fault_schedule(std::move(schedule));
  sim.start();
  sim.run_until(10.0);

  // Sends fire at t = 1..9, deliveries at t + 0.1; the ones landing inside
  // [2.5, 5.5) — from the sends at 3, 4, 5 — are dropped at delivery time.
  std::vector<double> expected{1.1, 2.1, 6.1, 7.1, 8.1, 9.1};
  ASSERT_EQ(pb->receive_times.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(pb->receive_times[i], expected[i]);
  }
  EXPECT_EQ(sim.stats().messages_dropped, 3U);
  EXPECT_FALSE(sim.is_partitioned());   // auto-healed
  EXPECT_TRUE(sim.has_partition_sides());  // sides persist for probes
  EXPECT_TRUE(sim.on_side_a(0));
  EXPECT_FALSE(sim.on_side_a(1));
}

TEST(fault_schedule, crash_and_restart_waves_by_targets) {
  netsim::simulation sim{22};
  auto n = std::make_unique<start_counter>();
  start_counter* p = n.get();
  sim.add_node(std::move(n));
  sim.add_node(std::make_unique<start_counter>());
  fault_schedule schedule;
  fault_action crash;
  crash.which = fault_action::kind::crash_wave;
  crash.at = 2.0;
  crash.targets = {0};
  schedule.actions.push_back(crash);
  fault_action restart;
  restart.which = fault_action::kind::restart_wave;
  restart.at = 5.0;  // empty targets + unset fraction: restart all crashed
  schedule.actions.push_back(restart);
  sim.set_fault_schedule(std::move(schedule));
  sim.start();

  sim.run_until(3.0);
  EXPECT_FALSE(sim.is_alive(0));
  EXPECT_TRUE(sim.is_alive(1));
  sim.run_until(10.0);
  EXPECT_TRUE(sim.is_alive(0));
  EXPECT_EQ(p->starts, 2);  // initial start + the restart wave
}

TEST(fault_schedule, fractional_crash_wave_is_deterministic) {
  const auto crashed_set = [](std::uint64_t seed) {
    netsim::simulation sim{seed};
    for (int i = 0; i < 50; ++i) sim.add_node(std::make_unique<start_counter>());
    fault_schedule schedule;
    fault_action wave;
    wave.which = fault_action::kind::crash_wave;
    wave.at = 1.0;
    wave.fraction = 0.5;
    schedule.actions.push_back(wave);
    sim.set_fault_schedule(std::move(schedule));
    sim.start();
    sim.run_until(2.0);
    std::vector<bool> crashed;
    for (node_id id = 0; id < 50; ++id) crashed.push_back(!sim.is_alive(id));
    return crashed;
  };
  const std::vector<bool> first = crashed_set(33);
  EXPECT_EQ(first, crashed_set(33));
  // With p = 0.5 over 50 nodes, both extremes are (2^-50)-improbable.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 50);
}

TEST(fault_schedule, degrade_window_overrides_link_class) {
  // Three nodes, targets = {0}, cross-class degrade with full loss during
  // [2.5, 5.5): 0 -> 1 crosses the set boundary (dropped in the window),
  // 2 -> 1 is intra (both outside the set; unaffected).
  netsim::simulation sim{23};
  sim.add_node(std::make_unique<pinger>(1));
  auto b = std::make_unique<sink>();
  sink* pb = b.get();
  sim.add_node(std::move(b));
  sim.add_node(std::make_unique<pinger>(1));
  netsim::link_model links;
  links.base_latency = 0.1;
  sim.set_link_model(links);
  fault_schedule schedule;
  fault_action brownout;
  brownout.which = fault_action::kind::degrade;
  brownout.at = 2.5;
  brownout.until = 5.5;
  brownout.degrade_class = netsim::link_class::cross;
  brownout.targets = {0};
  brownout.link.base_latency = 0.1;
  brownout.link.drop_probability = 1.0;
  schedule.actions.push_back(brownout);
  sim.set_fault_schedule(std::move(schedule));
  sim.start();
  sim.run_until(10.0);

  // 9 sends per pinger; node 0's sends at t = 3, 4, 5 hit the override.
  EXPECT_EQ(pb->receive_times.size(), 15U);
  EXPECT_EQ(sim.stats().messages_dropped, 3U);
}

// --- determinism and the recorder's zero cost --------------------------------

std::uint64_t scheduled_run_hash(std::uint64_t seed, double partition_at,
                                 netsim::trace_recorder* recorder) {
  netsim::simulation sim{seed};
  sim.add_node(std::make_unique<pinger>(1));
  sim.add_node(std::make_unique<sink>());
  sim.add_node(std::make_unique<pinger>(0));
  netsim::link_model links;
  links.base_latency = 0.2;
  links.jitter_mean = 0.3;
  links.drop_probability = 0.1;
  sim.set_link_model(links);
  fault_schedule schedule;
  schedule.actions.push_back(partition_action(partition_at, partition_at + 3.0, {0}));
  fault_action wave;
  wave.which = fault_action::kind::crash_wave;
  wave.at = 8.0;
  wave.fraction = 0.5;
  schedule.actions.push_back(wave);
  sim.set_fault_schedule(std::move(schedule));
  sim.set_trace_recorder(recorder);
  sim.start();
  sim.run_until(20.0);
  return sim.trace_hash();
}

TEST(fault_schedule, trace_hash_pins_the_fault_timeline) {
  EXPECT_EQ(scheduled_run_hash(5, 2.5, nullptr), scheduled_run_hash(5, 2.5, nullptr));
  EXPECT_NE(scheduled_run_hash(5, 2.5, nullptr), scheduled_run_hash(6, 2.5, nullptr));
  // Re-timing a fault changes the hash even if no message happens to care.
  EXPECT_NE(scheduled_run_hash(5, 2.5, nullptr), scheduled_run_hash(5, 2.6, nullptr));
}

TEST(fault_schedule, recorder_attachment_does_not_change_the_run) {
  netsim::trace_recorder recorder;
  EXPECT_EQ(scheduled_run_hash(5, 2.5, &recorder), scheduled_run_hash(5, 2.5, nullptr));
  EXPECT_GT(recorder.size(), 0U);

  // The recorded stream contains the scheduled fault marks.
  bool saw_partition = false, saw_heal = false, saw_crash = false;
  for (const netsim::trace_record& rec : recorder.snapshot()) {
    saw_partition |= rec.kind == netsim::trace_kind::partition;
    saw_heal |= rec.kind == netsim::trace_kind::heal;
    saw_crash |= rec.kind == netsim::trace_kind::crash;
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_heal);
  EXPECT_TRUE(saw_crash);
}

TEST(trace_recorder, ring_capacity_keeps_the_most_recent_records) {
  netsim::trace_recorder ring{8};
  for (int i = 0; i < 20; ++i) {
    netsim::trace_record rec;
    rec.time = i;
    rec.kind = netsim::trace_kind::send;
    ring.append(rec);
  }
  EXPECT_EQ(ring.size(), 8U);
  EXPECT_EQ(ring.evicted(), 12U);
  const auto records = ring.snapshot();
  ASSERT_EQ(records.size(), 8U);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].time, 12.0 + static_cast<double>(i));
  }
}

// --- the scenario layer -----------------------------------------------------

TEST(fault_spec, registry_nemesis_scenarios_round_trip_through_text) {
  for (const char* name :
       {"gossip_partition_heal", "gossip_crash_waves", "gossip_degraded_links"}) {
    const scenario::scenario_spec spec = scenario::get_scenario(name);
    ASSERT_FALSE(spec.faults.empty()) << name;
    const scenario::scenario_spec parsed =
        scenario::parse_scenario(scenario::serialize_scenario(spec));
    EXPECT_EQ(parsed.faults, spec.faults) << name;
    EXPECT_EQ(scenario::serialize_scenario(parsed), scenario::serialize_scenario(spec))
        << name;
  }
}

TEST(fault_spec, overrides_build_and_edit_actions) {
  scenario::scenario_spec spec = scenario::get_scenario("gossip_sync_ideal");
  scenario::apply_override(spec, "faults.0.kind=\"partition\"");
  scenario::apply_override(spec, "faults.0.at=10");
  scenario::apply_override(spec, "faults.0.until=20");
  scenario::apply_override(spec, "faults.0.targets=[0, 1, 2]");
  scenario::apply_override(spec, "faults.record=true");
  ASSERT_EQ(spec.faults.actions.size(), 1U);
  EXPECT_EQ(spec.faults.actions[0].kind,
            scenario::fault_action_spec::action_kind::partition);
  EXPECT_DOUBLE_EQ(spec.faults.actions[0].at, 10.0);
  EXPECT_DOUBLE_EQ(spec.faults.actions[0].until, 20.0);
  EXPECT_EQ(spec.faults.actions[0].targets, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_TRUE(spec.faults.record);
  EXPECT_NO_THROW(scenario::validate_spec(spec));
}

TEST(fault_spec, family_is_gated_on_the_protocol_engine) {
  scenario::scenario_spec spec = scenario::get_scenario("quickstart");
  // Overrides reject the family immediately (the engine is known).
  EXPECT_THROW(scenario::apply_override(spec, "faults.record=true"),
               std::invalid_argument);
  EXPECT_THROW(scenario::apply_override(spec, "faults.0.at=5"), std::invalid_argument);

  // A spec with stranded fault fields fails validate_spec.
  scenario::scenario_spec stranded = scenario::get_scenario("gossip_partition_heal");
  stranded.engine = scenario::engine_kind::agent_based;
  try {
    scenario::validate_spec(stranded);
    FAIL() << "fault fields on a non-protocol engine must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("faults"), std::string::npos)
        << error.what();
  }
}

TEST(fault_spec, validate_names_the_offending_key) {
  const auto expect_message = [](const char* key, const char* value,
                                 const char* needle) {
    scenario::scenario_spec spec = scenario::get_scenario("gossip_partition_heal");
    try {
      scenario::apply_override(spec, std::string{key} + "=" + value);
      scenario::validate_spec(spec);
      FAIL() << key << "=" << value << " should not validate";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string{error.what()}.find(needle), std::string::npos)
          << key << "=" << value << " raised: " << error.what();
    }
  };
  expect_message("faults.0.until", "5", "faults.0.until");  // until <= at
  expect_message("faults.0.fraction", "0.5", "faults.0.fraction");  // on a partition
  expect_message("faults.0.targets", "[500]", "faults.0.targets");  // >= N
  expect_message("faults.1.kind", "\"crash_wave\"", "faults.1");  // no target/fraction
}

TEST(fault_spec, unknown_field_suggests_the_nearest_key) {
  scenario::scenario_spec spec = scenario::get_scenario("gossip_partition_heal");
  try {
    scenario::apply_override(spec, "faults.0.fractoin=0.5");
    FAIL() << "typo should be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("fraction"), std::string::npos)
        << error.what();
  }
}

// --- scheduled runs under the harness ---------------------------------------

TEST(fault_spec, scheduled_runs_are_bit_identical_across_threads_and_reuse) {
  const scenario::scenario_spec spec = scenario::get_scenario("gossip_partition_heal");
  core::run_config config;
  config.horizon = 40;
  config.replications = 3;
  config.seed = 11;
  config.threads = 1;
  config.reuse = true;

  const auto fingerprint = [&](unsigned threads, bool reuse) {
    core::run_config c = config;
    c.threads = threads;
    c.reuse = reuse;
    std::string out;
    for (const auto& probe : scenario::run_probes(spec, c)) {
      const core::probe_report report = probe->report();
      for (const auto& scalar : report.scalars) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s=%.17g;", scalar.key.c_str(), scalar.value);
        out += buf;
      }
    }
    return out;
  };
  const std::string reference = fingerprint(1, true);
  EXPECT_EQ(fingerprint(4, true), reference);
  EXPECT_EQ(fingerprint(1, false), reference);
  EXPECT_EQ(fingerprint(4, false), reference);
}

}  // namespace
