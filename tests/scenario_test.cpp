// Tests for the scenario layer: registry lookup, engine/environment
// resolution, topology construction, validation, and an end-to-end run of
// every registered scenario through the generic harness.

#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>

#include "scenario/registry.h"
#include "support/rng.h"

namespace sgl::scenario {
namespace {

TEST(registry, names_are_unique_and_lookup_works) {
  std::set<std::string> names;
  for (const auto& spec : all_scenarios()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.description.empty());
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate name " << spec.name;
    EXPECT_EQ(find_scenario(spec.name), &spec);
  }
  EXPECT_GE(names.size(), 10U);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_THROW((void)get_scenario("no-such-scenario"), std::invalid_argument);
}

TEST(registry, every_scenario_runs_end_to_end) {
  core::run_config config;
  config.horizon = 25;
  config.replications = 2;
  config.seed = 3;
  config.threads = 1;
  for (const auto& spec : all_scenarios()) {
    const core::run_result result = run(spec, config);
    EXPECT_EQ(result.scalars.replications, 2U) << spec.name;
    EXPECT_GE(result.scalars.average_reward.mean, 0.0) << spec.name;
    EXPECT_LE(result.scalars.average_reward.mean, 1.0) << spec.name;
  }
}

TEST(registry, runs_are_deterministic_given_the_seed) {
  const scenario_spec spec = get_scenario("theorem-finite");
  core::run_config config;
  config.horizon = 40;
  config.replications = 6;
  config.seed = 11;
  const auto a = run(spec, config).scalars;
  config.threads = 1;
  const auto b = run(spec, config).scalars;
  EXPECT_DOUBLE_EQ(a.regret.mean, b.regret.mean);
  EXPECT_DOUBLE_EQ(a.final_best_mass.mean, b.final_best_mass.mean);
}

TEST(scenario, auto_select_resolves_by_spec_shape) {
  scenario_spec spec;
  spec.params = core::theorem_params(2, 0.65);
  spec.environment.etas = {0.8, 0.4};

  // Plain finite population -> aggregate; N = 0 -> infinite; topology or
  // per-agent rules -> agent-based; groups -> grouped.  We can't observe the
  // kind directly, but each combination must at least build and step.
  rng gen{1};
  const std::vector<std::uint8_t> rewards{1, 0};

  spec.num_agents = 100;
  auto engine = make_engine(spec)();
  engine->step(rewards, gen);
  EXPECT_FALSE(engine->adopter_counts().empty());

  spec.num_agents = 0;
  engine = make_engine(spec)();
  engine->step(rewards, gen);
  EXPECT_TRUE(engine->adopter_counts().empty());  // infinite engine

  spec.num_agents = 100;
  spec.topology.family = topology_spec::family_kind::ring;
  engine = make_engine(spec)();
  engine->step(rewards, gen);
  EXPECT_FALSE(engine->adopter_counts().empty());
  spec.topology.family = topology_spec::family_kind::none;

  spec.groups = {{60, {0.2, 0.8}}, {40, {0.35, 0.65}}};
  engine = make_engine(spec)();
  engine->step(rewards, gen);
  const auto counts = engine->adopter_counts();
  EXPECT_LE(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}), 100U);
}

TEST(scenario, topology_requires_agent_based_engine) {
  scenario_spec spec;
  spec.params = core::theorem_params(2, 0.65);
  spec.environment.etas = {0.8, 0.4};
  spec.num_agents = 50;
  spec.topology.family = topology_spec::family_kind::ring;
  spec.engine = engine_kind::aggregate;
  EXPECT_THROW((void)make_engine(spec), std::invalid_argument);
  spec.engine = engine_kind::agent_based;
  EXPECT_NO_THROW((void)make_engine(spec)());
}

TEST(scenario, build_topology_families) {
  topology_spec spec;
  spec.family = topology_spec::family_kind::ring;
  EXPECT_EQ(build_topology(spec, 10).num_edges(), 10U);

  spec.family = topology_spec::family_kind::complete;
  EXPECT_EQ(build_topology(spec, 10).num_edges(), 45U);

  spec.family = topology_spec::family_kind::torus;
  const auto torus = build_topology(spec, 36);  // 6x6 auto-factorization
  EXPECT_EQ(torus.num_vertices(), 36U);
  EXPECT_EQ(torus.min_degree(), 4U);

  spec.family = topology_spec::family_kind::two_cliques;
  EXPECT_TRUE(build_topology(spec, 20).is_connected());
  EXPECT_THROW((void)build_topology(spec, 21), std::invalid_argument);  // odd N

  spec.family = topology_spec::family_kind::grid;
  spec.rows = 3;
  spec.cols = 5;
  EXPECT_EQ(build_topology(spec, 15).num_vertices(), 15U);
  EXPECT_THROW((void)build_topology(spec, 16), std::invalid_argument);

  spec.family = topology_spec::family_kind::none;
  EXPECT_THROW((void)build_topology(spec, 10), std::invalid_argument);
}

TEST(scenario, generated_topology_is_deterministic_and_owned) {
  scenario_spec spec;
  spec.params = core::theorem_params(2, 0.65);
  spec.environment.etas = {0.8, 0.4};
  spec.num_agents = 60;
  spec.engine = engine_kind::agent_based;
  spec.topology.family = topology_spec::family_kind::watts_strogatz;
  spec.topology.degree = 3;
  spec.topology.seed = 42;

  // The factory owns the generated graph: engines stay valid after the
  // factory produced them, and two runs with the same seed agree.
  const auto factory = make_engine(spec);
  auto engine_a = factory();
  auto engine_b = factory();
  rng gen_a{9};
  rng gen_b{9};
  const std::vector<std::uint8_t> rewards{1, 0};
  for (int t = 0; t < 30; ++t) {
    engine_a->step(rewards, gen_a);
    engine_b->step(rewards, gen_b);
  }
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(engine_a->popularity()[j], engine_b->popularity()[j]);
  }
}

TEST(scenario, prebuilt_graph_is_used_verbatim) {
  scenario_spec spec;
  spec.params = core::theorem_params(2, 0.65);
  spec.environment.etas = {0.8, 0.4};
  spec.num_agents = 40;
  spec.topology.family = topology_spec::family_kind::ring;
  // Hand the factory a star instead; the ring spec must be ignored.
  spec.prebuilt_graph =
      std::make_shared<const graph::graph>(graph::graph::star(40));

  const auto engine = make_engine(spec)();
  rng gen{4};
  const std::vector<std::uint8_t> rewards{1, 0};
  engine->step(rewards, gen);
  EXPECT_EQ(engine->steps(), 1U);

  // Vertex-count mismatch is caught by set_topology at engine build time.
  spec.prebuilt_graph =
      std::make_shared<const graph::graph>(graph::graph::star(10));
  EXPECT_THROW((void)make_engine(spec)(), std::invalid_argument);
}

TEST(scenario, resolved_engine_matches_spec_shape) {
  scenario_spec spec;
  spec.params = core::theorem_params(2, 0.65);
  spec.num_agents = 100;
  EXPECT_EQ(resolved_engine(spec), engine_kind::aggregate);
  spec.num_agents = 0;
  EXPECT_EQ(resolved_engine(spec), engine_kind::infinite);
  spec.num_agents = 100;
  spec.topology.family = topology_spec::family_kind::ring;
  EXPECT_EQ(resolved_engine(spec), engine_kind::agent_based);
  spec.topology.family = topology_spec::family_kind::none;
  spec.groups = {{100, {0.35, 0.65}}};
  EXPECT_EQ(resolved_engine(spec), engine_kind::grouped);
  spec.engine = engine_kind::agent_based;
  EXPECT_EQ(resolved_engine(spec), engine_kind::agent_based);  // explicit wins
}

TEST(scenario, environment_families_build) {
  environment_spec spec;
  spec.etas = {0.8, 0.4};
  rng gen{1};
  std::vector<std::uint8_t> out(2);

  spec.family = environment_spec::family_kind::bernoulli;
  EXPECT_EQ(make_environment(spec)()->num_options(), 2U);

  spec.family = environment_spec::family_kind::exclusive;
  spec.etas = {0.7, 0.3};
  auto exclusive = make_environment(spec)();
  exclusive->sample(1, gen, out);
  EXPECT_EQ(out[0] + out[1], 1);

  spec.family = environment_spec::family_kind::switching;
  spec.etas = {0.8, 0.4};
  spec.period = 10;
  EXPECT_FALSE(make_environment(spec)()->is_stationary());

  spec.family = environment_spec::family_kind::drifting;
  spec.end_etas = {0.4, 0.8};
  spec.horizon = 100;
  auto drifting = make_environment(spec)();
  EXPECT_NEAR(drifting->mean(100, 0), 0.4, 1e-9);
}

}  // namespace
}  // namespace sgl::scenario
