#include "support/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <vector>

namespace sgl {
namespace {

TEST(splitmix64, known_sequence_is_stable) {
  // Reference values from the public-domain splitmix64 with seed 0.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

TEST(splitmix64, different_seeds_diverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(mix_seed, streams_are_distinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(mix_seed(42, stream));
  }
  EXPECT_EQ(seen.size(), 1000U);
}

TEST(mix_seed, seed_matters) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
}

TEST(rng, same_seed_same_sequence) {
  rng a{123};
  rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(rng, different_seed_different_sequence) {
  rng a{123};
  rng b{124};
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 15);
}

TEST(rng, zero_seed_is_usable) {
  rng gen{0};
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(gen.next_u64());
  EXPECT_EQ(values.size(), 64U);  // state escaped the all-zero trap
}

TEST(rng, equality_tracks_state) {
  rng a{7};
  rng b{7};
  EXPECT_EQ(a, b);
  (void)a.next_u64();
  EXPECT_NE(a, b);
  (void)b.next_u64();
  EXPECT_EQ(a, b);
}

TEST(rng, from_stream_gives_independent_generators) {
  rng a = rng::from_stream(99, 0);
  rng b = rng::from_stream(99, 1);
  EXPECT_NE(a, b);
  // First outputs should differ (astronomically unlikely collision).
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(rng, split_changes_parent_and_child) {
  rng parent{5};
  rng parent_copy{5};
  rng child = parent.split();
  EXPECT_NE(parent, parent_copy);  // split advanced the parent
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(rng, next_double_in_unit_interval) {
  rng gen{11};
  for (int i = 0; i < 10000; ++i) {
    const double x = gen.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(rng, next_double_mean_is_half) {
  rng gen{13};
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += gen.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(rng, next_below_respects_bound) {
  rng gen{17};
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 33)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(gen.next_below(bound), bound);
  }
}

TEST(rng, next_below_bound_one_is_zero) {
  rng gen{19};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next_below(1), 0U);
}

TEST(rng, next_below_is_roughly_uniform) {
  rng gen{23};
  constexpr std::uint64_t bound = 7;
  std::array<int, bound> counts{};
  constexpr int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[gen.next_below(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / static_cast<double>(bound), 500.0);
  }
}

TEST(rng, next_in_covers_inclusive_range) {
  rng gen{29};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = gen.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(rng, next_in_degenerate_range) {
  rng gen{31};
  EXPECT_EQ(gen.next_in(5, 5), 5);
}

TEST(rng, bernoulli_extremes) {
  rng gen{37};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.next_bernoulli(0.0));
    EXPECT_TRUE(gen.next_bernoulli(1.0));
    EXPECT_FALSE(gen.next_bernoulli(-1.0));
  }
}

TEST(rng, bernoulli_frequency_matches_p) {
  rng gen{41};
  constexpr int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += gen.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(rng, satisfies_uniform_random_bit_generator) {
  static_assert(std::uniform_random_bit_generator<rng>);
  EXPECT_EQ(rng::min(), 0U);
  EXPECT_EQ(rng::max(), ~std::uint64_t{0});
}

TEST(rng, constexpr_usable) {
  constexpr auto value = [] {
    rng gen{1};
    return gen.next_u64();
  }();
  rng gen{1};
  EXPECT_EQ(value, gen.next_u64());
}

}  // namespace
}  // namespace sgl
