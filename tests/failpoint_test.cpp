// Tests for the deterministic fail-point framework (support/failpoint.h):
// DSL parsing, count/range/Bernoulli triggers, the site argument, hit
// accounting, and the env-var entry point the daemon uses.

#include "support/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace sgl {
namespace {

/// Every test starts and ends with a clean registry — fail points are
/// process-global, and a leaked site would fire inside an unrelated test.
class failpoint_test : public ::testing::Test {
 protected:
  void SetUp() override { failpoints::clear(); }
  void TearDown() override { failpoints::clear(); }
};

TEST_F(failpoint_test, off_by_default) {
  EXPECT_FALSE(failpoints::active());
  EXPECT_FALSE(failpoints::check("store.rename").has_value());
  // Unconfigured sites are not even counted (the fast path never looks).
  EXPECT_EQ(failpoints::hit_count("store.rename"), 0U);
}

TEST_F(failpoint_test, single_count_fires_exactly_once) {
  failpoints::set("site.a", "3");
  EXPECT_TRUE(failpoints::active());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(failpoints::check("site.a").has_value());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(failpoints::hit_count("site.a"), 6U);
}

TEST_F(failpoint_test, closed_and_open_ranges) {
  failpoints::configure("site.a=2..4; site.b=5..");
  std::vector<bool> a;
  std::vector<bool> b;
  for (int i = 0; i < 8; ++i) {
    a.push_back(failpoints::check("site.a").has_value());
    b.push_back(failpoints::check("site.b").has_value());
  }
  EXPECT_EQ(a, (std::vector<bool>{false, true, true, true, false, false, false, false}));
  EXPECT_EQ(b, (std::vector<bool>{false, false, false, false, true, true, true, true}));
}

TEST_F(failpoint_test, argument_reaches_the_site) {
  failpoints::configure("socket.read_short=1..(7)");
  const auto fired = failpoints::check("socket.read_short");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 7U);
  // Sites without an explicit argument get 0.
  failpoints::set("site.a", "1");
  EXPECT_EQ(failpoints::check("site.a").value(), 0U);
}

TEST_F(failpoint_test, off_mode_counts_but_never_fires) {
  failpoints::set("site.a", "off");
  EXPECT_TRUE(failpoints::active()) << "off sites still keep check() on the slow path";
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(failpoints::check("site.a").has_value());
  EXPECT_EQ(failpoints::hit_count("site.a"), 5U) << "an A/B baseline needs the count";
}

TEST_F(failpoint_test, bernoulli_is_deterministic_per_seed) {
  const auto sample = [](std::uint64_t seed) {
    failpoints::set("site.p", "p=0.3@" + std::to_string(seed));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(failpoints::check("site.p").has_value());
    failpoints::clear();
    return fired;
  };
  const std::vector<bool> first = sample(42);
  EXPECT_EQ(first, sample(42)) << "same seed, same schedule";
  EXPECT_NE(first, sample(43)) << "different seed, different schedule";

  // Frequency sanity: ~30% of 200 hits; a generous band, this is a hash
  // stream, not a statistics test.
  const auto fires = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 30U);
  EXPECT_LT(fires, 90U);

  // Edge probabilities are absolute.
  failpoints::set("site.p", "p=0@1");
  EXPECT_FALSE(failpoints::check("site.p").has_value());
  failpoints::set("site.p", "p=1@1");
  EXPECT_TRUE(failpoints::check("site.p").has_value());
}

TEST_F(failpoint_test, bernoulli_schedule_is_thread_interleaving_independent) {
  // The decision for hit index i depends only on (site, seed, i): with 4
  // threads racing, the multiset of indices that fired must equal the
  // serial schedule, whatever the interleaving.
  failpoints::set("site.p", "p=0.5@7");
  std::vector<bool> serial;
  for (int i = 0; i < 400; ++i) serial.push_back(failpoints::check("site.p").has_value());
  const auto serial_fires =
      static_cast<std::size_t>(std::count(serial.begin(), serial.end(), true));

  failpoints::set("site.p", "p=0.5@7");  // reset the hit counter
  std::atomic<std::size_t> parallel_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (failpoints::check("site.p")) parallel_fires.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(parallel_fires.load(), serial_fires);
}

TEST_F(failpoint_test, configure_replaces_and_clear_removes) {
  failpoints::configure("a=1;b=2");
  EXPECT_EQ(failpoints::configured_sites(), (std::vector<std::string>{"a", "b"}));
  failpoints::configure("c=1");
  EXPECT_EQ(failpoints::configured_sites(), (std::vector<std::string>{"c"}));
  EXPECT_FALSE(failpoints::check("a").has_value()) << "replaced, not merged";

  EXPECT_TRUE(failpoints::clear("c"));
  EXPECT_FALSE(failpoints::clear("c")) << "already gone";
  EXPECT_FALSE(failpoints::active());
}

TEST_F(failpoint_test, parse_errors_name_the_entry_and_keep_old_config) {
  failpoints::configure("keep.me=1");
  const auto expect_rejected = [&](std::string_view dsl) {
    EXPECT_THROW(failpoints::configure(dsl), std::invalid_argument) << dsl;
    EXPECT_EQ(failpoints::configured_sites(), (std::vector<std::string>{"keep.me"}))
        << "a rejected configure must leave the old registry untouched: " << dsl;
  };
  expect_rejected("site.a");            // no '='
  expect_rejected("=1");                // empty site
  expect_rejected("site.a=");           // empty spec
  expect_rejected("site.a=zero");       // not a count
  expect_rejected("site.a=0");          // counts are 1-based
  expect_rejected("site.a=5..3");       // empty range
  expect_rejected("site.a=p=0.5");      // bernoulli without a seed
  expect_rejected("site.a=p=1.5@1");    // probability out of range
  expect_rejected("site.a=p=-0.1@1");   // probability out of range
  expect_rejected("site.a=1(x)");       // non-numeric argument
  expect_rejected("site.a=1)");         // unmatched paren
}

TEST_F(failpoint_test, dsl_tolerates_whitespace_and_empty_entries) {
  failpoints::configure("  a = 1 ; ; b = 2..3 (9) ;");
  EXPECT_EQ(failpoints::configured_sites(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(failpoints::check("a").has_value());
  EXPECT_FALSE(failpoints::check("b").has_value());
  EXPECT_EQ(failpoints::check("b").value(), 9U);
}

TEST_F(failpoint_test, init_from_env_reads_sgl_failpoints) {
  ::setenv("SGL_FAILPOINTS", "env.site=1", 1);
  failpoints::init_from_env();
  ::unsetenv("SGL_FAILPOINTS");
  EXPECT_EQ(failpoints::configured_sites(), (std::vector<std::string>{"env.site"}));
  EXPECT_TRUE(failpoints::check("env.site").has_value());

  // Unset (or empty) is a no-op, not a clear.
  failpoints::init_from_env();
  EXPECT_TRUE(failpoints::active());
}

}  // namespace
}  // namespace sgl
