#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/infinite_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "graph/graph.h"

namespace sgl::core {
namespace {

env_factory bernoulli_factory(std::vector<double> etas) {
  return [etas] { return std::make_unique<env::bernoulli_rewards>(etas); };
}

env_factory schedule_factory(std::vector<std::vector<std::uint8_t>> table) {
  return [table] { return std::make_unique<env::schedule_rewards>(table); };
}

dynamics_params make_params(std::size_t m, double mu, double beta) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  return p;
}

TEST(estimate_infinite_regret, deterministic_schedule_matches_direct_simulation) {
  // On a fixed schedule the infinite dynamics is deterministic, so the
  // harness must reproduce a hand-rolled simulation exactly.
  const dynamics_params params = make_params(2, 0.1, 0.6);
  const std::vector<std::vector<std::uint8_t>> table{{1, 0}, {1, 1}, {0, 1}, {1, 0}};
  run_config config;
  config.horizon = 12;
  config.replications = 3;  // identical replications — CI must collapse
  config.seed = 42;

  const regret_estimate est =
      estimate_infinite_regret(params, schedule_factory(table), config);

  // Direct simulation.
  infinite_dynamics dyn{params};
  env::schedule_rewards environment{table};
  rng dummy{0};
  std::vector<std::uint8_t> r(2);
  double reward_sum = 0.0;
  double best_mean_sum = 0.0;
  for (std::uint64_t t = 1; t <= config.horizon; ++t) {
    const auto p = dyn.distribution();
    environment.sample(t, dummy, r);
    reward_sum += p[0] * r[0] + p[1] * r[1];
    best_mean_sum += environment.best_mean(t);
    dyn.step(r);
  }
  const double expected_regret =
      (best_mean_sum - reward_sum) / static_cast<double>(config.horizon);

  EXPECT_NEAR(est.regret.mean, expected_regret, 1e-12);
  EXPECT_NEAR(est.regret.half_width, 0.0, 1e-12);  // deterministic
  EXPECT_EQ(est.replications, 3U);
}

TEST(estimate_infinite_regret, thread_count_does_not_change_result) {
  const dynamics_params params = theorem_params(4, 0.62);
  run_config config;
  config.horizon = 60;
  config.replications = 40;
  config.seed = 7;

  config.threads = 1;
  const regret_estimate one =
      estimate_infinite_regret(params, bernoulli_factory({0.8, 0.4, 0.4, 0.4}), config);
  config.threads = 8;
  const regret_estimate eight =
      estimate_infinite_regret(params, bernoulli_factory({0.8, 0.4, 0.4, 0.4}), config);

  EXPECT_DOUBLE_EQ(one.regret.mean, eight.regret.mean);
  EXPECT_DOUBLE_EQ(one.best_mass.mean, eight.best_mass.mean);
  EXPECT_DOUBLE_EQ(one.average_reward.mean, eight.average_reward.mean);
}

TEST(estimate_infinite_regret, nonuniform_start_biases_early_mass) {
  const dynamics_params params = theorem_params(2, 0.6);
  run_config config;
  config.horizon = 5;
  config.replications = 200;
  config.seed = 11;
  const auto factory = bernoulli_factory({0.8, 0.4});

  const std::vector<double> hostile{0.02, 0.98};  // nearly all mass on the bad option
  const regret_estimate uniform = estimate_infinite_regret(params, factory, config);
  const regret_estimate biased =
      estimate_infinite_regret(params, factory, config, hostile);
  EXPECT_GT(biased.regret.mean, uniform.regret.mean);
  EXPECT_LT(biased.best_mass.mean, uniform.best_mass.mean);
}

TEST(estimate_finite_regret, engines_agree_within_noise) {
  const dynamics_params params = theorem_params(3, 0.65);
  run_config config;
  config.horizon = 80;
  config.replications = 150;
  config.seed = 13;
  const auto factory = bernoulli_factory({0.8, 0.4, 0.4});

  const regret_estimate agg =
      estimate_finite_regret(params, 300, factory, config, finite_engine::aggregate);
  const regret_estimate agent =
      estimate_finite_regret(params, 300, factory, config, finite_engine::agent_based);
  EXPECT_NEAR(agg.regret.mean, agent.regret.mean,
              agg.regret.half_width + agent.regret.half_width + 0.01);
}

TEST(estimate_finite_regret, learning_beats_no_learning) {
  // beta = alpha (signal-blind adoption) must do worse than the real rule
  // on the same environment.
  run_config config;
  config.horizon = 150;
  config.replications = 80;
  config.seed = 17;
  const auto factory = bernoulli_factory({0.9, 0.3});

  const dynamics_params learning = theorem_params(2, 0.65);
  dynamics_params blind = learning;
  blind.alpha = blind.beta;  // adopt regardless of the signal

  const regret_estimate with_signal =
      estimate_finite_regret(learning, 500, factory, config);
  const regret_estimate without_signal =
      estimate_finite_regret(blind, 500, factory, config);
  EXPECT_LT(with_signal.regret.mean + with_signal.regret.half_width,
            without_signal.regret.mean - without_signal.regret.half_width);
}

TEST(estimate_finite_regret, topology_runs_and_converges) {
  const dynamics_params params = theorem_params(2, 0.62);
  rng topo_gen{99};
  const graph::graph g = graph::graph::watts_strogatz(150, 3, 0.1, topo_gen);
  run_config config;
  config.horizon = 200;
  config.replications = 30;
  config.seed = 19;
  const regret_estimate est =
      estimate_finite_regret(params, 150, bernoulli_factory({0.85, 0.35}), config,
                             finite_engine::agent_based, &g);
  EXPECT_GT(est.final_best_mass.mean, 0.5);
  EXPECT_LT(est.regret.mean, 0.5);
}

TEST(estimate_regret, rejects_bad_configs) {
  const dynamics_params params = make_params(2, 0.1, 0.6);
  run_config config;
  config.horizon = 0;
  EXPECT_THROW(
      estimate_infinite_regret(params, bernoulli_factory({0.5, 0.5}), config),
      std::invalid_argument);
  config.horizon = 10;
  config.replications = 0;
  EXPECT_THROW(
      estimate_finite_regret(params, 10, bernoulli_factory({0.5, 0.5}), config),
      std::invalid_argument);
  config.replications = 1;
  EXPECT_THROW(
      estimate_infinite_regret(params, bernoulli_factory({0.5, 0.5, 0.5}), config),
      std::invalid_argument);  // m mismatch
}

TEST(collect_trajectories, curve_shapes_and_lengths) {
  const dynamics_params params = theorem_params(3, 0.62);
  run_config config;
  config.horizon = 120;
  config.replications = 60;
  config.seed = 23;
  const auto factory = bernoulli_factory({0.8, 0.4, 0.4});

  const trajectory_estimate inf = collect_infinite_trajectory(params, factory, config);
  EXPECT_EQ(inf.running_regret.length(), 120U);
  EXPECT_EQ(inf.best_mass.length(), 120U);
  EXPECT_EQ(inf.running_regret.replications(), 60U);
  // Learning: late best-mass above early best-mass.
  EXPECT_GT(inf.best_mass.mean(119), inf.best_mass.mean(0) + 0.2);
  // Regret curve settles below its early value.
  EXPECT_LT(inf.running_regret.mean(119), inf.running_regret.mean(5));

  const trajectory_estimate fin =
      collect_finite_trajectory(params, 400, factory, config);
  EXPECT_EQ(fin.best_mass.length(), 120U);
  EXPECT_GT(fin.best_mass.mean(119), 0.5);
  // min popularity stays strictly positive thanks to exploration.
  EXPECT_GT(fin.min_popularity.mean(119), 0.0);
}

TEST(collect_trajectories, switching_environment_tracks_new_best) {
  // After the switch the dynamics must recover mass on the new best option.
  dynamics_params params = theorem_params(2, 0.65);
  run_config config;
  config.horizon = 300;
  config.replications = 40;
  config.seed = 29;
  const auto factory = [] {
    return std::make_unique<env::switching_rewards>(std::vector<double>{0.85, 0.35}, 150);
  };
  const trajectory_estimate curves =
      collect_finite_trajectory(params, 400, factory, config);
  // At t=150 the best option flips; best_mass (computed against the
  // *current* best) dips right after the switch and then recovers.
  EXPECT_GT(curves.best_mass.mean(140), 0.6);
  EXPECT_LT(curves.best_mass.mean(149), 0.5);
  EXPECT_GT(curves.best_mass.mean(295), 0.6);
}

}  // namespace
}  // namespace sgl::core
