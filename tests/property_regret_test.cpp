// Property tests: the paper's theorem inequalities checked empirically over
// parameter sweeps.  Each sweep point runs a Monte-Carlo estimate with a
// fixed seed; assertions allow the estimate's CI plus a small slack, so the
// tests are deterministic and non-flaky.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/experiment.h"
#include "core/params.h"
#include "core/theory.h"
#include "env/reward_model.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::core {
namespace {

env_factory bernoulli_factory(std::vector<double> etas) {
  return [etas] { return std::make_unique<env::bernoulli_rewards>(etas); };
}

struct sweep_point {
  std::size_t m;
  double beta;
};

std::string sweep_name(const ::testing::TestParamInfo<sweep_point>& info) {
  return "m" + std::to_string(info.param.m) + "_beta" +
         std::to_string(static_cast<int>(std::round(info.param.beta * 1000)));
}

std::vector<double> sweep_etas(std::size_t m) {
  return env::two_level_etas(m, 0.85, 0.35);
}

// --- Theorem 4.3: Regret_inf(T) <= 3 delta for T >= ln m / delta^2 --------------

class theorem_43_sweep : public ::testing::TestWithParam<sweep_point> {};

TEST_P(theorem_43_sweep, infinite_regret_below_3delta) {
  const auto [m, beta] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const double bound = theory::infinite_regret_bound(beta);
  const auto horizon = static_cast<std::uint64_t>(
      std::ceil(std::max(theory::min_horizon(m, beta), 8.0)));

  run_config config;
  config.horizon = horizon;
  config.replications = 120;
  config.seed = 1234;
  const regret_estimate est =
      estimate_infinite_regret(params, bernoulli_factory(sweep_etas(m)), config);
  EXPECT_LE(est.regret.mean - est.regret.half_width, bound)
      << "measured " << est.regret.mean << " vs bound " << bound;
}

TEST_P(theorem_43_sweep, infinite_regret_still_bounded_at_4x_horizon) {
  // "for all T >= ln m / delta^2" — spot-check a longer horizon too.
  const auto [m, beta] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const double bound = theory::infinite_regret_bound(beta);
  run_config config;
  config.horizon = static_cast<std::uint64_t>(
      std::ceil(4.0 * std::max(theory::min_horizon(m, beta), 8.0)));
  config.replications = 60;
  config.seed = 4321;
  const regret_estimate est =
      estimate_infinite_regret(params, bernoulli_factory(sweep_etas(m)), config);
  EXPECT_LE(est.regret.mean - est.regret.half_width, bound);
}

INSTANTIATE_TEST_SUITE_P(grid, theorem_43_sweep,
                         ::testing::Values(sweep_point{2, 0.55}, sweep_point{2, 0.6},
                                           sweep_point{2, 0.65}, sweep_point{2, 0.73},
                                           sweep_point{5, 0.55}, sweep_point{5, 0.62},
                                           sweep_point{5, 0.7}, sweep_point{10, 0.6},
                                           sweep_point{10, 0.73}, sweep_point{20, 0.62},
                                           sweep_point{20, 0.7}),
                         sweep_name);

// --- Theorem 4.4: Regret_N(T) <= 6 delta ---------------------------------------

class theorem_44_sweep : public ::testing::TestWithParam<sweep_point> {};

TEST_P(theorem_44_sweep, finite_regret_below_6delta) {
  const auto [m, beta] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const double bound = theory::finite_regret_bound(beta);
  run_config config;
  config.horizon = static_cast<std::uint64_t>(
      std::ceil(std::max(theory::min_horizon(m, beta), 8.0)));
  config.replications = 120;
  config.seed = 77;
  const regret_estimate est = estimate_finite_regret(
      params, 20000, bernoulli_factory(sweep_etas(m)), config);
  EXPECT_LE(est.regret.mean - est.regret.half_width, bound)
      << "measured " << est.regret.mean << " vs bound " << bound;
}

TEST_P(theorem_44_sweep, finite_regret_bounded_even_for_modest_population) {
  // The paper's N-conditions are astronomically conservative; the measured
  // claim should already hold at N = 1000 — worth pinning as a finding.
  const auto [m, beta] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const double bound = theory::finite_regret_bound(beta);
  run_config config;
  config.horizon = static_cast<std::uint64_t>(
      std::ceil(std::max(theory::min_horizon(m, beta), 8.0)));
  config.replications = 120;
  config.seed = 78;
  const regret_estimate est =
      estimate_finite_regret(params, 1000, bernoulli_factory(sweep_etas(m)), config);
  EXPECT_LE(est.regret.mean - est.regret.half_width, bound);
}

INSTANTIATE_TEST_SUITE_P(grid, theorem_44_sweep,
                         ::testing::Values(sweep_point{2, 0.55}, sweep_point{2, 0.65},
                                           sweep_point{2, 0.73}, sweep_point{5, 0.6},
                                           sweep_point{5, 0.7}, sweep_point{10, 0.62},
                                           sweep_point{10, 0.73}, sweep_point{20, 0.65}),
                         sweep_name);

// --- Theorem 4.3 part 2: average mass on the best option ------------------------

struct mass_point {
  double beta;
  double gap;
};

class best_mass_sweep : public ::testing::TestWithParam<mass_point> {};

TEST_P(best_mass_sweep, time_average_best_mass_above_bound) {
  const auto [beta, gap] = GetParam();
  const dynamics_params params = theorem_params(3, beta);
  const double eta1 = 0.9;
  const double bound = theory::best_mass_lower_bound(beta, gap);
  run_config config;
  config.horizon = static_cast<std::uint64_t>(
      std::ceil(2.0 * std::max(theory::min_horizon(3, beta), 8.0)));
  config.replications = 100;
  config.seed = 99;
  const regret_estimate est = estimate_infinite_regret(
      params, bernoulli_factory({eta1, eta1 - gap, eta1 - gap}), config);
  EXPECT_GE(est.best_mass.mean + est.best_mass.half_width, bound)
      << "measured " << est.best_mass.mean << " vs bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(
    grid, best_mass_sweep,
    ::testing::Values(mass_point{0.52, 0.8}, mass_point{0.55, 0.8},
                      mass_point{0.55, 0.5}, mass_point{0.6, 0.8},
                      mass_point{0.65, 0.8}, mass_point{0.73, 0.5}),
    [](const ::testing::TestParamInfo<mass_point>& info) {
      return "beta" + std::to_string(static_cast<int>(std::round(info.param.beta * 100))) +
             "_gap" + std::to_string(static_cast<int>(std::round(info.param.gap * 100)));
    });

// --- Theorem 4.6: nonuniform starts ----------------------------------------------

class theorem_46_sweep : public ::testing::TestWithParam<sweep_point> {};

TEST_P(theorem_46_sweep, regret_bounded_from_hostile_zeta_floor_start) {
  const auto [m, beta] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const double zeta = 0.01;
  const double bound = theory::infinite_regret_bound(beta);
  // Worst case: the floor on every good option, the bulk on the worst.
  std::vector<double> start(m, zeta);
  start[m - 1] = 1.0 - zeta * static_cast<double>(m - 1);

  run_config config;
  config.horizon = static_cast<std::uint64_t>(
      std::ceil(std::max(theory::nonuniform_min_horizon(zeta, beta), 8.0)));
  config.replications = 100;
  config.seed = 111;
  const regret_estimate est = estimate_infinite_regret(
      params, bernoulli_factory(sweep_etas(m)), config, start);
  EXPECT_LE(est.regret.mean - est.regret.half_width, bound)
      << "measured " << est.regret.mean << " vs bound " << bound;
}

INSTANTIATE_TEST_SUITE_P(grid, theorem_46_sweep,
                         ::testing::Values(sweep_point{2, 0.6}, sweep_point{3, 0.62},
                                           sweep_point{5, 0.65}, sweep_point{10, 0.7}),
                         sweep_name);

// --- popularity floor (§4.3.2) ------------------------------------------------------

class popularity_floor_sweep : public ::testing::TestWithParam<sweep_point> {};

TEST_P(popularity_floor_sweep, min_popularity_rarely_below_zeta) {
  const auto [m, beta] = GetParam();
  const dynamics_params params = theorem_params(m, beta);
  const double zeta = theory::popularity_floor(m, params.mu, beta);
  const std::uint64_t n = 20000;

  rng process_gen = rng::from_stream(7, 0);
  rng env_gen = rng::from_stream(7, 1);
  env::bernoulli_rewards environment{sweep_etas(m)};
  aggregate_dynamics dyn{params, n};
  std::vector<std::uint8_t> r(m);
  std::uint64_t violations = 0;
  constexpr std::uint64_t horizon = 400;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    environment.sample(t, env_gen, r);
    dyn.step(r, process_gen);
    double min_q = 1.0;
    for (const double q : dyn.popularity()) min_q = std::min(min_q, q);
    if (min_q < zeta) ++violations;
  }
  EXPECT_LT(static_cast<double>(violations) / static_cast<double>(horizon), 0.05)
      << "zeta=" << zeta;
}

INSTANTIATE_TEST_SUITE_P(grid, popularity_floor_sweep,
                         ::testing::Values(sweep_point{2, 0.6}, sweep_point{3, 0.62},
                                           sweep_point{5, 0.65}, sweep_point{10, 0.7}),
                         sweep_name);

// --- structural symmetry -------------------------------------------------------------

TEST(symmetry, equal_quality_options_are_exchangeable) {
  // η = (0.8, 0.4, 0.4): options 1 and 2 must get the same long-run mass.
  const dynamics_params params = theorem_params(3, 0.62);
  constexpr int reps = 300;
  running_stats mass1;
  running_stats mass2;
  for (int rep = 0; rep < reps; ++rep) {
    rng process_gen = rng::from_stream(31, static_cast<std::uint64_t>(2 * rep));
    rng env_gen = rng::from_stream(31, static_cast<std::uint64_t>(2 * rep + 1));
    env::bernoulli_rewards environment{{0.8, 0.4, 0.4}};
    aggregate_dynamics dyn{params, 5000};
    std::vector<std::uint8_t> r(3);
    for (std::uint64_t t = 1; t <= 120; ++t) {
      environment.sample(t, env_gen, r);
      dyn.step(r, process_gen);
    }
    mass1.add(dyn.popularity()[1]);
    mass2.add(dyn.popularity()[2]);
  }
  const double se = std::sqrt(mass1.variance() / reps + mass2.variance() / reps);
  EXPECT_NEAR(mass1.mean(), mass2.mean(), 4.0 * se + 0.005);
}

TEST(monotonicity, bigger_quality_gap_gives_more_best_mass) {
  const dynamics_params params = theorem_params(2, 0.62);
  run_config config;
  config.horizon = 150;
  config.replications = 120;
  config.seed = 41;
  const regret_estimate wide =
      estimate_finite_regret(params, 5000, bernoulli_factory({0.9, 0.2}), config);
  const regret_estimate narrow =
      estimate_finite_regret(params, 5000, bernoulli_factory({0.9, 0.7}), config);
  EXPECT_GT(wide.best_mass.mean,
            narrow.best_mass.mean + narrow.best_mass.half_width);
}

TEST(monotonicity, smaller_beta_gives_smaller_regret_bound_and_regret) {
  // The paper: "the closer β is to 1/2, the better the regret."
  run_config config;
  config.horizon = 400;
  config.replications = 100;
  config.seed = 43;
  const auto factory = bernoulli_factory({0.85, 0.35});
  const regret_estimate gentle =
      estimate_infinite_regret(theorem_params(2, 0.55), factory, config);
  const regret_estimate aggressive =
      estimate_infinite_regret(theorem_params(2, 0.73), factory, config);
  // Bounds are ordered by construction...
  EXPECT_LT(theory::infinite_regret_bound(0.55), theory::infinite_regret_bound(0.73));
  // ...and at long horizons the measured steady-state regret follows suit.
  EXPECT_LT(gentle.regret.mean, aggressive.regret.mean + aggressive.regret.half_width);
}

}  // namespace
}  // namespace sgl::core
