// Cross-module integration tests: epoch restarts, the Ellison–Fudenberg
// reduction end-to-end, group-vs-individual learning, ablations, and the
// gossip protocol against the synchronous dynamics it implements.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "algo/bandit.h"
#include "core/aggregate_dynamics.h"
#include "core/experiment.h"
#include "core/finite_dynamics.h"
#include "core/params.h"
#include "core/theory.h"
#include "env/ef_model.h"
#include "env/reward_model.h"
#include "protocol/gossip_learner.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl {
namespace {

TEST(integration, epoch_restart_preserves_learning) {
  // The large-T proof restarts analysis at epoch boundaries from the current
  // adopter counts.  Exercise that pathway: run, snapshot, restart, run.
  const core::dynamics_params params = core::theorem_params(3, 0.62);
  rng process_gen = rng::from_stream(1, 0);
  rng env_gen = rng::from_stream(1, 1);
  env::bernoulli_rewards environment{{0.85, 0.35, 0.35}};
  std::vector<std::uint8_t> r(3);

  core::aggregate_dynamics first_epoch{params, 10000};
  for (std::uint64_t t = 1; t <= 200; ++t) {
    environment.sample(t, env_gen, r);
    first_epoch.step(r, process_gen);
  }
  const double mass_at_boundary = first_epoch.popularity()[0];
  EXPECT_GT(mass_at_boundary, 0.5);

  core::aggregate_dynamics second_epoch{params, 10000};
  const std::vector<std::uint64_t> counts(first_epoch.adopter_counts().begin(),
                                          first_epoch.adopter_counts().end());
  second_epoch.reset(counts);
  EXPECT_NEAR(second_epoch.popularity()[0], mass_at_boundary, 1e-12);

  running_stats late;
  for (std::uint64_t t = 201; t <= 400; ++t) {
    environment.sample(t, env_gen, r);
    second_epoch.step(r, process_gen);
    late.add(second_epoch.popularity()[0]);
  }
  EXPECT_GT(late.mean(), 0.6) << "learning survives the epoch restart";
}

TEST(integration, ef_direct_and_reduced_models_agree) {
  // E13's claim in miniature: simulate the continuous-shock EF model
  // directly, and the reduced binary (η, α, β) dynamics, and compare the
  // long-run popularity of the better option.
  env::ef_params ef;
  ef.mean1 = 0.65;
  ef.mean2 = 0.45;
  ef.reward_sd = 0.25;
  ef.shock_sd = 0.2;
  const env::ef_reduction reduced = env::reduce_ef_model(ef);

  constexpr std::size_t n = 400;
  constexpr std::uint64_t horizon = 250;
  constexpr int reps = 60;
  const double mu = 0.05;

  running_stats direct_mass;
  running_stats reduced_mass;
  for (int rep = 0; rep < reps; ++rep) {
    // Direct shock-level simulation.
    env::ef_direct_dynamics direct{ef, n, mu};
    rng reward_gen = rng::from_stream(2, static_cast<std::uint64_t>(3 * rep));
    rng pop_gen = rng::from_stream(2, static_cast<std::uint64_t>(3 * rep + 1));
    running_stats late_direct;
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      direct.step(reward_gen, pop_gen);
      if (t > horizon / 2) late_direct.add(direct.popularity()[0]);
    }
    direct_mass.add(late_direct.mean());

    // Reduced binary dynamics on exclusive rewards with the mapped (α, β).
    core::dynamics_params params;
    params.num_options = 2;
    params.mu = mu;
    params.beta = reduced.beta;
    params.alpha = reduced.alpha;
    core::finite_dynamics binary{params, n};
    env::exclusive_rewards environment{{reduced.eta1, reduced.eta2}};
    rng env_gen = rng::from_stream(2, static_cast<std::uint64_t>(3 * rep + 2));
    rng bin_gen = rng::from_stream(3, static_cast<std::uint64_t>(rep));
    std::vector<std::uint8_t> r(2);
    running_stats late_reduced;
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      environment.sample(t, env_gen, r);
      binary.step(r, bin_gen);
      if (t > horizon / 2) late_reduced.add(binary.popularity()[0]);
    }
    reduced_mass.add(late_reduced.mean());
  }
  // Both should favour option 1 and agree closely on average.
  EXPECT_GT(direct_mass.mean(), 0.55);
  EXPECT_GT(reduced_mass.mean(), 0.55);
  EXPECT_NEAR(direct_mass.mean(), reduced_mass.mean(), 0.06);
}

TEST(integration, group_learning_beats_population_of_random_bandits) {
  // The group's per-step expected reward vs N independent uniform players.
  const core::dynamics_params params = core::theorem_params(4, 0.62);
  const std::vector<double> etas{0.85, 0.35, 0.35, 0.35};
  core::run_config config;
  config.horizon = 200;
  config.replications = 60;
  config.seed = 5;
  const core::regret_estimate group = core::estimate_finite_regret(
      params, 2000,
      [&] { return std::make_unique<env::bernoulli_rewards>(etas); }, config);

  // Uniform players earn mean(etas) per step forever.
  double uniform_reward = 0.0;
  for (const double eta : etas) uniform_reward += eta / 4.0;
  EXPECT_GT(group.average_reward.mean, uniform_reward + 0.1);
}

TEST(integration, group_dynamics_competitive_with_individual_ucb_population) {
  // A population of independent UCB1 learners (each on its own bandit) vs
  // the social group on the same signals: over a short horizon the copying
  // dynamics must reach a comparable average reward (the paper's pitch is
  // that it does so with *no per-agent memory*).
  const std::vector<double> etas{0.85, 0.35, 0.35, 0.35};
  constexpr std::uint64_t horizon = 150;
  constexpr int reps = 40;
  constexpr std::size_t n = 200;

  running_stats group_reward;
  running_stats ucb_reward;
  for (int rep = 0; rep < reps; ++rep) {
    // Group.
    const core::dynamics_params params = core::theorem_params(4, 0.62);
    core::finite_dynamics group{params, n};
    env::bernoulli_rewards environment{etas};
    rng env_gen = rng::from_stream(6, static_cast<std::uint64_t>(2 * rep));
    rng group_gen = rng::from_stream(6, static_cast<std::uint64_t>(2 * rep + 1));
    std::vector<std::uint8_t> r(4);
    double g_total = 0.0;
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      const auto q = group.popularity();
      environment.sample(t, env_gen, r);
      for (std::size_t j = 0; j < 4; ++j) g_total += q[j] * r[j];
      group.step(r, group_gen);
    }
    group_reward.add(g_total / static_cast<double>(horizon));

    // Independent UCB1 players, same reward stream.
    std::vector<algo::ucb1> players(n, algo::ucb1{4});
    rng env_gen2 = rng::from_stream(6, static_cast<std::uint64_t>(2 * rep));
    rng players_gen = rng::from_stream(7, static_cast<std::uint64_t>(rep));
    double u_total = 0.0;
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      environment.sample(t, env_gen2, r);
      for (auto& player : players) {
        const std::size_t arm = player.select(players_gen);
        player.update(arm, r[arm]);
        u_total += static_cast<double>(r[arm]) / static_cast<double>(n);
      }
    }
    ucb_reward.add(u_total / static_cast<double>(horizon));
  }
  // Memoryless copying must land within 10% of the full-memory UCB fleet.
  EXPECT_GT(group_reward.mean(), ucb_reward.mean() - 0.1);
}

TEST(integration, ablations_fail_where_the_paper_says_they_fail) {
  // §3: sampling-only or adoption-only is not enough.
  const std::vector<double> etas{0.85, 0.35};
  core::run_config config;
  config.horizon = 300;
  config.replications = 80;
  config.seed = 8;
  const auto factory = [&] { return std::make_unique<env::bernoulli_rewards>(etas); };

  const core::regret_estimate full =
      core::estimate_finite_regret(core::theorem_params(2, 0.65), 2000, factory, config);

  // Pure copying: adoption blind to signals (β = α = 1).
  core::dynamics_params copy_only;
  copy_only.num_options = 2;
  copy_only.mu = 0.0;
  copy_only.beta = 1.0;
  copy_only.alpha = 1.0;
  const core::regret_estimate copying =
      core::estimate_finite_regret(copy_only, 2000, factory, config);

  // No social sampling: μ = 1 (uniform consideration forever).
  core::dynamics_params no_social;
  no_social.num_options = 2;
  no_social.mu = 1.0;
  no_social.beta = 0.65;
  const core::regret_estimate solo =
      core::estimate_finite_regret(no_social, 2000, factory, config);

  EXPECT_LT(full.regret.mean, copying.regret.mean - copying.regret.half_width)
      << "signal-blind copying cannot identify the best option";
  EXPECT_LT(full.regret.mean, solo.regret.mean - solo.regret.half_width)
      << "without social sampling the population never concentrates";
  // Pure copying fixates at the uniform average reward in expectation.
  EXPECT_NEAR(copying.average_reward.mean, 0.6, 0.05);
}

TEST(integration, gossip_protocol_matches_synchronous_dynamics) {
  // The asynchronous protocol and the synchronous finite dynamics are the
  // same algorithm; their converged best-option shares must be similar.
  const std::vector<double> etas{0.85, 0.35};
  const core::dynamics_params params = core::theorem_params(2, 0.65);

  protocol::gossip_params gossip;
  gossip.dynamics = params;
  protocol::signal_oracle oracle{etas, 91};
  protocol::gossip_run_config gossip_config;
  gossip_config.num_nodes = 300;
  gossip_config.rounds = 200;
  gossip_config.seed = 9;
  const protocol::gossip_run_result async =
      protocol::run_gossip_experiment(gossip, oracle, gossip_config);
  running_stats async_late;
  for (std::size_t t = 150; t < 200; ++t) async_late.add(async.best_fraction[t]);

  core::run_config config;
  config.horizon = 200;
  config.replications = 40;
  config.seed = 10;
  const core::regret_estimate sync = core::estimate_finite_regret(
      params, 300, [&] { return std::make_unique<env::bernoulli_rewards>(etas); },
      config);

  EXPECT_NEAR(async_late.mean(), sync.final_best_mass.mean, 0.15);
  EXPECT_GT(async_late.mean(), 0.6);
}

TEST(integration, regret_estimate_consistent_with_theory_kit) {
  // End-to-end: parameters built by theorem_params satisfy the hypotheses,
  // and the measured regret honours the matching bound.
  for (const double beta : {0.58, 0.66}) {
    const core::dynamics_params params = core::theorem_params(6, beta);
    ASSERT_TRUE(params.satisfies_theorem_conditions());
    core::run_config config;
    config.horizon = static_cast<std::uint64_t>(
        std::ceil(std::max(core::theory::min_horizon(6, beta), 10.0)));
    config.replications = 80;
    config.seed = 11;
    const core::regret_estimate est = core::estimate_finite_regret(
        params, 20000,
        [] {
          return std::make_unique<env::bernoulli_rewards>(
              env::two_level_etas(6, 0.85, 0.35));
        },
        config);
    EXPECT_LE(est.regret.mean - est.regret.half_width,
              core::theory::finite_regret_bound(beta));
  }
}

}  // namespace
}  // namespace sgl
