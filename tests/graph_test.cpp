#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "support/rng.h"

namespace sgl::graph {
namespace {

// --- construction ----------------------------------------------------------------

TEST(graph_build, dedupes_and_symmetrizes) {
  const std::vector<graph::edge> edges{{0, 1}, {1, 0}, {0, 1}, {1, 2}};
  const graph g{3, edges};
  EXPECT_EQ(g.num_edges(), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(graph_build, neighbor_lists_are_sorted) {
  const std::vector<graph::edge> edges{{3, 0}, {1, 0}, {2, 0}};
  const graph g{4, edges};
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.degree(0), 3U);
}

TEST(graph_build, rejects_bad_edges) {
  EXPECT_THROW((graph{2, std::vector<graph::edge>{{0, 0}}}), std::invalid_argument);
  EXPECT_THROW((graph{2, std::vector<graph::edge>{{0, 5}}}), std::invalid_argument);
  EXPECT_THROW((graph{0, std::vector<graph::edge>{}}), std::invalid_argument);
}

TEST(graph_build, out_of_range_queries_throw) {
  const graph g{2, std::vector<graph::edge>{{0, 1}}};
  EXPECT_THROW((void)g.degree(5), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(5), std::out_of_range);
}

TEST(graph_build, edgeless_graph) {
  const graph g{3, std::vector<graph::edge>{}};
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_EQ(g.degree(1), 0U);
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.min_degree(), 0U);
}

// --- generators -------------------------------------------------------------------

TEST(complete_graph, structure) {
  const graph g = graph::complete(6);
  EXPECT_EQ(g.num_vertices(), 6U);
  EXPECT_EQ(g.num_edges(), 15U);
  EXPECT_EQ(g.min_degree(), 5U);
  EXPECT_EQ(g.max_degree(), 5U);
  EXPECT_TRUE(g.is_connected());
  EXPECT_DOUBLE_EQ(g.average_degree(), 5.0);
}

TEST(complete_graph, singleton) {
  const graph g = graph::complete(1);
  EXPECT_EQ(g.num_vertices(), 1U);
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_TRUE(g.is_connected());
}

TEST(ring_graph, structure) {
  const graph g = graph::ring(8);
  EXPECT_EQ(g.num_edges(), 8U);
  EXPECT_EQ(g.min_degree(), 2U);
  EXPECT_EQ(g.max_degree(), 2U);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_edge(7, 0));
}

TEST(ring_graph, degenerate_sizes) {
  const graph pair = graph::ring(2);
  EXPECT_EQ(pair.num_edges(), 1U);  // a single edge, not a double edge
  EXPECT_TRUE(pair.is_connected());
  const graph single = graph::ring(1);
  EXPECT_EQ(single.num_edges(), 0U);
}

TEST(grid_graph, lattice_structure) {
  const graph g = graph::grid(3, 4, false);
  EXPECT_EQ(g.num_vertices(), 12U);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17U);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(0), 2U);   // corner
  EXPECT_EQ(g.degree(5), 4U);   // interior
}

TEST(grid_graph, torus_is_regular) {
  const graph g = graph::grid(4, 5, true);
  EXPECT_EQ(g.min_degree(), 4U);
  EXPECT_EQ(g.max_degree(), 4U);
  EXPECT_TRUE(g.is_connected());
}

TEST(grid_graph, rejects_empty) {
  EXPECT_THROW(graph::grid(0, 3, false), std::invalid_argument);
}

TEST(star_graph, structure) {
  const graph g = graph::star(7);
  EXPECT_EQ(g.num_edges(), 6U);
  EXPECT_EQ(g.degree(0), 6U);
  EXPECT_EQ(g.degree(3), 1U);
  EXPECT_TRUE(g.is_connected());
}

TEST(erdos_renyi, edge_density_matches_p) {
  rng gen{1};
  const std::size_t n = 200;
  const double p = 0.1;
  const graph g = graph::erdos_renyi(n, p, gen);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4.0 * std::sqrt(expected));
}

TEST(erdos_renyi, extremes) {
  rng gen{2};
  EXPECT_EQ(graph::erdos_renyi(20, 0.0, gen).num_edges(), 0U);
  EXPECT_EQ(graph::erdos_renyi(20, 1.0, gen).num_edges(), 190U);
  EXPECT_THROW(graph::erdos_renyi(5, 1.5, gen), std::invalid_argument);
}

TEST(watts_strogatz, no_rewiring_is_ring_lattice) {
  rng gen{3};
  const graph g = graph::watts_strogatz(20, 3, 0.0, gen);
  EXPECT_EQ(g.num_edges(), 60U);  // n * k
  EXPECT_EQ(g.min_degree(), 6U);
  EXPECT_EQ(g.max_degree(), 6U);
  EXPECT_TRUE(g.is_connected());
}

TEST(watts_strogatz, rewiring_preserves_edge_count) {
  rng gen{4};
  const graph g = graph::watts_strogatz(50, 2, 0.3, gen);
  EXPECT_EQ(g.num_edges(), 100U);
  EXPECT_EQ(g.num_vertices(), 50U);
}

TEST(watts_strogatz, validates_parameters) {
  rng gen{5};
  EXPECT_THROW(graph::watts_strogatz(2, 1, 0.1, gen), std::invalid_argument);
  EXPECT_THROW(graph::watts_strogatz(10, 5, 0.1, gen), std::invalid_argument);
  EXPECT_THROW(graph::watts_strogatz(10, 0, 0.1, gen), std::invalid_argument);
  EXPECT_THROW(graph::watts_strogatz(10, 2, 1.5, gen), std::invalid_argument);
}

TEST(barabasi_albert, size_and_connectivity) {
  rng gen{6};
  const std::size_t n = 100;
  const std::size_t attach = 3;
  const graph g = graph::barabasi_albert(n, attach, gen);
  EXPECT_EQ(g.num_vertices(), n);
  // Seed clique: C(4,2)=6 edges; then (n - attach - 1) * attach.
  EXPECT_EQ(g.num_edges(), 6U + (n - attach - 1) * attach);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.min_degree(), attach);
}

TEST(barabasi_albert, hubs_emerge) {
  rng gen{7};
  const graph g = graph::barabasi_albert(300, 2, gen);
  // Preferential attachment should create at least one vertex with degree
  // far above the mean (~4).
  EXPECT_GE(g.max_degree(), 12U);
}

TEST(barabasi_albert, validates_parameters) {
  rng gen{8};
  EXPECT_THROW(graph::barabasi_albert(3, 3, gen), std::invalid_argument);
  EXPECT_THROW(graph::barabasi_albert(10, 0, gen), std::invalid_argument);
}

TEST(two_cliques, bottleneck_structure) {
  const graph g = graph::two_cliques(5, 1);
  EXPECT_EQ(g.num_vertices(), 10U);
  EXPECT_EQ(g.num_edges(), 2U * 10U + 1U);  // two K5s + bridge
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_edge(0, 5));  // the bridge
  EXPECT_FALSE(g.has_edge(1, 6));
}

TEST(two_cliques, multiple_bridges) {
  const graph g = graph::two_cliques(4, 3);
  EXPECT_EQ(g.num_edges(), 2U * 6U + 3U);
  EXPECT_TRUE(g.has_edge(2, 6));
}

TEST(two_cliques, validates_parameters) {
  EXPECT_THROW(graph::two_cliques(1, 1), std::invalid_argument);
  EXPECT_THROW(graph::two_cliques(4, 0), std::invalid_argument);
  EXPECT_THROW(graph::two_cliques(4, 5), std::invalid_argument);
}

// --- connectivity -----------------------------------------------------------------

TEST(is_connected, detects_split_components) {
  const graph g{4, std::vector<graph::edge>{{0, 1}, {2, 3}}};
  EXPECT_FALSE(g.is_connected());
  const graph joined{4, std::vector<graph::edge>{{0, 1}, {2, 3}, {1, 2}}};
  EXPECT_TRUE(joined.is_connected());
}

}  // namespace
}  // namespace sgl::graph
