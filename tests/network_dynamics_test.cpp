// Network-mode tests for finite_dynamics: the incremental committed-
// neighbour view (sparse mode) and the rejection-with-exact-scan sampler
// (dense mode) must both realize the law "copy a uniform committed
// neighbour, uniform option when there is none" exactly; the sharded step
// must be bit-identical for every thread count; and reset()/set_topology()
// must rebuild the view so engines stay reusable.

#include "core/finite_dynamics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "core/params.h"
#include "graph/graph.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::core {
namespace {

dynamics_params make_params(std::size_t m, double mu, double beta, double alpha = -1.0) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

/// The exact stage-1 marginal: expected number of agents considering each
/// option given the previous choices, computed by direct neighbourhood
/// scans (the law both samplers must realize).
std::vector<double> expected_stage_counts(const graph::graph& g,
                                          std::span<const std::int32_t> choices,
                                          std::size_t m, double mu) {
  std::vector<double> expected(m, 0.0);
  std::vector<double> committed(m, 0.0);
  for (std::size_t i = 0; i < g.num_vertices(); ++i) {
    std::fill(committed.begin(), committed.end(), 0.0);
    double total = 0.0;
    for (const auto v : g.neighbors(static_cast<graph::graph::vertex>(i))) {
      const std::int32_t c = choices[v];
      if (c >= 0) {
        committed[static_cast<std::size_t>(c)] += 1.0;
        total += 1.0;
      }
    }
    for (std::size_t j = 0; j < m; ++j) {
      const double copy_p = total > 0.0 ? committed[j] / total : 1.0 / static_cast<double>(m);
      expected[j] += mu / static_cast<double>(m) + (1.0 - mu) * copy_p;
    }
  }
  return expected;
}

/// Drives `dyn` into a nontrivial state, then estimates the one-step
/// stage-1 marginal by averaging many independent continuations from
/// copies, and checks it against the exact expectation.
void check_stage_one_law(finite_dynamics& dyn, const graph::graph& g,
                         std::size_t m, double mu,
                         std::span<const std::uint8_t> rewards) {
  rng warm{101};
  for (int t = 0; t < 30; ++t) dyn.step(rewards, warm);

  const std::vector<double> expected =
      expected_stage_counts(g, dyn.choices(), m, mu);

  constexpr int replications = 6000;
  std::vector<double> mean(m, 0.0);
  for (int r = 0; r < replications; ++r) {
    finite_dynamics branch = dyn;  // same state, fresh future
    rng gen = rng::from_stream(777, static_cast<std::uint64_t>(r));
    branch.step(rewards, gen);
    for (std::size_t j = 0; j < m; ++j) {
      mean[j] += static_cast<double>(branch.stage_counts()[j]);
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    mean[j] /= replications;
    // Stage counts are sums of independent indicators over <= N agents:
    // the standard error of the estimated mean is below
    // sqrt(N) / sqrt(replications); 6 sigma keeps the test sharp but stable.
    const double sigma =
        std::sqrt(static_cast<double>(g.num_vertices())) / std::sqrt(replications);
    EXPECT_NEAR(mean[j], expected[j], 6.0 * sigma)
        << "option " << j << " of " << m;
  }
}

TEST(network_dynamics, stage_one_law_exact_sparse_mode) {
  // Ring: average degree 2 -> incremental-view sampler (m = 3 exercises the
  // generic row layout, not the packed two-option one).
  const graph::graph g = graph::graph::ring(64);
  finite_dynamics dyn{make_params(3, 0.1, 0.7), 64};
  dyn.set_topology(&g);
  const std::vector<std::uint8_t> rewards{1, 0, 1};
  check_stage_one_law(dyn, g, 3, 0.1, rewards);
}

TEST(network_dynamics, stage_one_law_exact_sparse_mode_packed) {
  // m = 2 takes the packed one-word-per-vertex view.
  const graph::graph g = graph::graph::ring(64);
  finite_dynamics dyn{make_params(2, 0.1, 0.7), 64};
  dyn.set_topology(&g);
  const std::vector<std::uint8_t> rewards{1, 0};
  check_stage_one_law(dyn, g, 2, 0.1, rewards);
}

TEST(network_dynamics, stage_one_law_exact_dense_mode) {
  // Two cliques of 40: average degree ~40 -> rejection sampler with the
  // exact scan fallback.
  const graph::graph g = graph::graph::two_cliques(40, 2);
  finite_dynamics dyn{make_params(2, 0.1, 0.7), 80};
  dyn.set_topology(&g);
  const std::vector<std::uint8_t> rewards{1, 0};
  check_stage_one_law(dyn, g, 2, 0.1, rewards);
}

/// Straight-line reference implementation of the network step: collect the
/// committed neighbours, pick one uniformly.  Different RNG consumption, so
/// the comparison with the engine is statistical, not bitwise.
class naive_reference {
 public:
  naive_reference(const graph::graph& g, std::size_t m, double mu, double alpha,
                  double beta)
      : g_{g}, m_{m}, mu_{mu}, alpha_{alpha}, beta_{beta},
        choices_(g.num_vertices(), -1), previous_(g.num_vertices(), -1),
        adopter_counts_(m, 0) {}

  void step(std::span<const std::uint8_t> rewards, rng& gen) {
    previous_ = choices_;
    std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);
    std::vector<std::int32_t> committed;
    for (std::size_t i = 0; i < choices_.size(); ++i) {
      std::size_t considered;
      if (gen.next_bernoulli(mu_)) {
        considered = static_cast<std::size_t>(gen.next_below(m_));
      } else {
        committed.clear();
        for (const auto v : g_.neighbors(static_cast<graph::graph::vertex>(i))) {
          if (previous_[v] >= 0) committed.push_back(previous_[v]);
        }
        considered = committed.empty()
                         ? static_cast<std::size_t>(gen.next_below(m_))
                         : static_cast<std::size_t>(
                               committed[gen.next_below(committed.size())]);
      }
      const double adopt_p = rewards[considered] != 0 ? beta_ : alpha_;
      if (gen.next_bernoulli(adopt_p)) {
        choices_[i] = static_cast<std::int32_t>(considered);
        ++adopter_counts_[considered];
      } else {
        choices_[i] = -1;
      }
    }
  }

  [[nodiscard]] double popularity0() const {
    const std::uint64_t total =
        std::accumulate(adopter_counts_.begin(), adopter_counts_.end(),
                        std::uint64_t{0});
    if (total == 0) return 1.0 / static_cast<double>(m_);
    return static_cast<double>(adopter_counts_[0]) / static_cast<double>(total);
  }
  [[nodiscard]] std::uint64_t adopters() const {
    return std::accumulate(adopter_counts_.begin(), adopter_counts_.end(),
                           std::uint64_t{0});
  }

 private:
  const graph::graph& g_;
  std::size_t m_;
  double mu_, alpha_, beta_;
  std::vector<std::int32_t> choices_, previous_;
  std::vector<std::uint64_t> adopter_counts_;
};

/// Multi-step law equivalence on a given topology: engine trajectories and
/// naive-reference trajectories (independent streams, shared reward
/// streams) must agree in distribution.
void check_law_against_reference(const graph::graph& g, double beta) {
  const std::size_t m = 2;
  const double mu = 0.08;
  const dynamics_params params = make_params(m, mu, beta);
  const double alpha = params.resolved_alpha();
  const std::vector<double> etas{0.8, 0.3};

  constexpr int replications = 500;
  constexpr int horizon = 30;
  running_stats engine_pop, engine_adopt, reference_pop, reference_adopt;
  std::vector<std::uint8_t> rewards(m);

  for (int r = 0; r < replications; ++r) {
    finite_dynamics dyn{params, g.num_vertices()};
    dyn.set_topology(&g);
    naive_reference ref{g, m, mu, alpha, beta};
    rng gen_engine = rng::from_stream(11, static_cast<std::uint64_t>(r));
    rng gen_reference = rng::from_stream(12, static_cast<std::uint64_t>(r));
    rng env_engine = rng::from_stream(13, static_cast<std::uint64_t>(r));
    rng env_reference = env_engine;  // identical reward streams
    for (int t = 0; t < horizon; ++t) {
      for (std::size_t j = 0; j < m; ++j) {
        rewards[j] = env_engine.next_bernoulli(etas[j]) ? 1 : 0;
      }
      dyn.step(rewards, gen_engine);
      for (std::size_t j = 0; j < m; ++j) {
        rewards[j] = env_reference.next_bernoulli(etas[j]) ? 1 : 0;
      }
      ref.step(rewards, gen_reference);
    }
    engine_pop.add(dyn.popularity()[0]);
    engine_adopt.add(static_cast<double>(dyn.adopters()));
    reference_pop.add(ref.popularity0());
    reference_adopt.add(static_cast<double>(ref.adopters()));
  }

  // ~4.5 sigma of the difference of two independent means.
  const double pop_tolerance =
      4.5 * std::sqrt((engine_pop.variance() + reference_pop.variance()) /
                      replications);
  const double adopt_tolerance =
      4.5 * std::sqrt((engine_adopt.variance() + reference_adopt.variance()) /
                      replications);
  EXPECT_NEAR(engine_pop.mean(), reference_pop.mean(), pop_tolerance);
  EXPECT_NEAR(engine_adopt.mean(), reference_adopt.mean(), adopt_tolerance);
}

TEST(network_dynamics, law_matches_naive_reference_sparse_mode) {
  check_law_against_reference(graph::graph::ring(48), 0.7);
}

TEST(network_dynamics, law_matches_naive_reference_dense_mode) {
  check_law_against_reference(graph::graph::two_cliques(26, 1), 0.7);
}

TEST(network_dynamics, sharded_step_bit_identical_across_thread_counts) {
  rng topo_gen{5};
  const graph::graph ba = graph::graph::barabasi_albert(1500, 3, topo_gen);
  const graph::graph ring = graph::graph::ring(900);
  const std::vector<std::pair<const graph::graph*, std::size_t>> cases{
      {&ba, 4},   // generic row layout
      {&ring, 2}  // packed two-option layout
  };
  for (const auto& [g, m] : cases) {
    finite_dynamics serial{make_params(m, 0.1, 0.65), g->num_vertices()};
    finite_dynamics two_threads{make_params(m, 0.1, 0.65), g->num_vertices()};
    finite_dynamics many_threads{make_params(m, 0.1, 0.65), g->num_vertices()};
    serial.set_threads(1);
    two_threads.set_threads(2);
    many_threads.set_threads(0);  // hardware concurrency
    serial.set_topology(g);
    two_threads.set_topology(g);
    many_threads.set_topology(g);

    rng g1{42}, g2{42}, g3{42};
    rng env_gen{43};
    std::vector<std::uint8_t> rewards(m);
    for (int t = 0; t < 60; ++t) {
      for (auto& x : rewards) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
      serial.step(rewards, g1);
      two_threads.step(rewards, g2);
      many_threads.step(rewards, g3);
      ASSERT_EQ(g1, g2);
      ASSERT_EQ(g1, g3);
      for (std::size_t i = 0; i < g->num_vertices(); ++i) {
        ASSERT_EQ(serial.choices()[i], two_threads.choices()[i]) << "t=" << t;
        ASSERT_EQ(serial.choices()[i], many_threads.choices()[i]) << "t=" << t;
      }
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_DOUBLE_EQ(serial.popularity()[j], two_threads.popularity()[j]);
        ASSERT_DOUBLE_EQ(serial.popularity()[j], many_threads.popularity()[j]);
      }
    }
  }
}

TEST(network_dynamics, reset_rebuilds_the_view) {
  const graph::graph g = graph::graph::ring(200);
  finite_dynamics dyn{make_params(2, 0.1, 0.65), 200};
  dyn.set_topology(&g);
  const std::vector<std::uint8_t> rewards{1, 0};

  rng first{7};
  std::vector<double> trajectory;
  for (int t = 0; t < 40; ++t) {
    dyn.step(rewards, first);
    trajectory.push_back(dyn.popularity()[0]);
  }

  dyn.reset();
  rng second{7};
  for (int t = 0; t < 40; ++t) {
    dyn.step(rewards, second);
    ASSERT_DOUBLE_EQ(dyn.popularity()[0], trajectory[static_cast<std::size_t>(t)])
        << "t=" << t;
  }
}

TEST(network_dynamics, retopology_rebuilds_the_view_mid_run) {
  // Toggling the topology off and back on rebuilds the committed-neighbour
  // view from the live choices: the engine that toggled and the one that
  // never did must continue identically.
  const graph::graph g = graph::graph::ring(150);
  finite_dynamics toggled{make_params(2, 0.1, 0.65), 150};
  finite_dynamics control{make_params(2, 0.1, 0.65), 150};
  toggled.set_topology(&g);
  control.set_topology(&g);
  const std::vector<std::uint8_t> rewards{1, 0};

  rng ga{9}, gb{9};
  for (int t = 0; t < 20; ++t) {
    toggled.step(rewards, ga);
    control.step(rewards, gb);
  }
  toggled.set_topology(nullptr);
  toggled.set_topology(&g);
  for (int t = 0; t < 20; ++t) {
    toggled.step(rewards, ga);
    control.step(rewards, gb);
    for (std::size_t i = 0; i < 150; ++i) {
      ASSERT_EQ(toggled.choices()[i], control.choices()[i]) << "t=" << t;
    }
  }
}

TEST(network_dynamics, dense_mode_scan_fallback_keeps_invariants) {
  // beta = 0.95 with all-bad signals: ~5% commitment on a degree-30 graph,
  // so the rejection budget is regularly exhausted and the exact scan
  // fallback runs; every invariant must hold throughout.
  const graph::graph g = graph::graph::two_cliques(30, 1);
  finite_dynamics dyn{make_params(2, 0.05, 0.95), 60};
  dyn.set_topology(&g);
  rng gen{15};
  const std::vector<std::uint8_t> all_bad{0, 0};
  for (int t = 0; t < 300; ++t) {
    dyn.step(all_bad, gen);
    const auto s = dyn.stage_counts();
    EXPECT_EQ(std::accumulate(s.begin(), s.end(), std::uint64_t{0}), 60U);
    std::uint64_t from_choices = 0;
    for (const std::int32_t c : dyn.choices()) from_choices += c >= 0;
    EXPECT_EQ(from_choices, dyn.adopters());
    double total = 0.0;
    for (const double q : dyn.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(network_dynamics, heterogeneous_rules_respected_in_network_mode) {
  // Half the ring never adopts; the adopter count can never exceed N/2 and
  // the never-adopt agents always sit out.
  const graph::graph g = graph::graph::ring(100);
  finite_dynamics dyn{make_params(2, 0.2, 0.8), 100};
  dyn.set_topology(&g);
  std::vector<adoption_rule> rules(100, {0.0, 0.0});
  for (std::size_t i = 0; i < 50; ++i) rules[i] = {1.0, 1.0};
  dyn.set_agent_rules(std::move(rules));
  rng gen{23};
  for (int t = 0; t < 50; ++t) {
    dyn.step(std::vector<std::uint8_t>{1, 0}, gen);
    EXPECT_EQ(dyn.adopters(), 50U);
    for (std::size_t i = 50; i < 100; ++i) EXPECT_EQ(dyn.choices()[i], -1);
  }
}

}  // namespace
}  // namespace sgl::core
