#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "core/params.h"
#include "core/theory.h"

namespace sgl::core {
namespace {

// --- dynamics_params ----------------------------------------------------------

TEST(dynamics_params, delta_formula) {
  dynamics_params p;
  p.beta = 0.6;
  EXPECT_NEAR(p.delta(), std::log(0.6 / 0.4), 1e-12);
  p.beta = 0.5;
  EXPECT_NEAR(p.delta(), 0.0, 1e-12);
  p.beta = std::numbers::e / (std::numbers::e + 1.0);
  EXPECT_NEAR(p.delta(), 1.0, 1e-12);  // ln(e) = 1 at the cap
}

TEST(dynamics_params, delta_requires_interior_beta) {
  dynamics_params p;
  p.beta = 1.0;
  EXPECT_THROW((void)p.delta(), std::domain_error);
  p.beta = 0.0;
  EXPECT_THROW((void)p.delta(), std::domain_error);
}

TEST(dynamics_params, alpha_convention) {
  dynamics_params p;
  p.beta = 0.7;
  p.alpha = -1.0;
  EXPECT_NEAR(p.resolved_alpha(), 0.3, 1e-12);
  p.alpha = 0.1;
  EXPECT_DOUBLE_EQ(p.resolved_alpha(), 0.1);
}

TEST(dynamics_params, validation) {
  dynamics_params p;
  EXPECT_NO_THROW(p.validate());
  p.num_options = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = dynamics_params{};
  p.mu = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = dynamics_params{};
  p.beta = 0.4;
  p.alpha = 0.6;  // alpha > beta
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = dynamics_params{};
  p.beta = 1.2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(dynamics_params, theorem_conditions) {
  dynamics_params p = theorem_params(10, 0.6);
  EXPECT_TRUE(p.satisfies_theorem_conditions());
  EXPECT_NEAR(p.mu, p.delta() * p.delta() / 6.0, 1e-12);

  p.mu = 0.9;  // way above the cap
  EXPECT_FALSE(p.satisfies_theorem_conditions());

  p = theorem_params(10, 0.6);
  p.alpha = 0.2;  // breaks alpha = 1 - beta
  EXPECT_FALSE(p.satisfies_theorem_conditions());

  dynamics_params too_big;
  too_big.beta = 0.9;  // above e/(e+1)
  too_big.mu = 0.01;
  EXPECT_FALSE(too_big.satisfies_theorem_conditions());
}

TEST(theorem_params, rejects_out_of_range_beta) {
  EXPECT_THROW(theorem_params(5, 0.5), std::invalid_argument);   // delta = 0
  EXPECT_THROW(theorem_params(5, 0.9), std::invalid_argument);   // above cap
  EXPECT_NO_THROW(theorem_params(5, 0.7));
}

// --- theory constants ------------------------------------------------------------

TEST(theory, delta_and_caps) {
  EXPECT_NEAR(theory::delta(0.6), std::log(1.5), 1e-12);
  EXPECT_NEAR(theory::beta_cap(), std::numbers::e / (std::numbers::e + 1.0), 1e-12);
  EXPECT_NEAR(theory::mu_cap(0.6), std::log(1.5) * std::log(1.5) / 6.0, 1e-12);
  EXPECT_THROW(theory::delta(0.0), std::invalid_argument);
  EXPECT_THROW(theory::delta(1.0), std::invalid_argument);
}

TEST(theory, horizons) {
  const double d = theory::delta(0.6);
  EXPECT_NEAR(theory::min_horizon(10, 0.6), std::log(10.0) / (d * d), 1e-12);
  EXPECT_DOUBLE_EQ(theory::min_horizon(1, 0.6), 1.0);
  // Larger m needs longer horizons; larger delta needs shorter ones.
  EXPECT_GT(theory::min_horizon(100, 0.6), theory::min_horizon(10, 0.6));
  EXPECT_GT(theory::min_horizon(10, 0.55), theory::min_horizon(10, 0.7));
}

TEST(theory, regret_bounds_scale_with_delta) {
  EXPECT_NEAR(theory::infinite_regret_bound(0.6), 3.0 * std::log(1.5), 1e-12);
  EXPECT_NEAR(theory::finite_regret_bound(0.6), 2.0 * theory::infinite_regret_bound(0.6),
              1e-12);
  EXPECT_LT(theory::infinite_regret_bound(0.55), theory::infinite_regret_bound(0.7));
}

TEST(theory, best_mass_lower_bound) {
  // Large gap, small delta: informative bound.
  const double b = theory::best_mass_lower_bound(0.55, 0.9);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 1.0);
  // Tiny gap: bound clamps to zero rather than going negative.
  EXPECT_DOUBLE_EQ(theory::best_mass_lower_bound(0.7, 0.01), 0.0);
  EXPECT_THROW(theory::best_mass_lower_bound(0.6, 0.0), std::invalid_argument);
}

TEST(theory, concentration_radii_formulas) {
  const double n = 1e6;
  const double dp = theory::delta_prime(10, 0.05, n);
  EXPECT_NEAR(dp, std::sqrt(30.0 * 10.0 * std::log(n) / (0.05 * n)), 1e-12);
  const double ddp = theory::delta_double_prime(10, 0.05, 0.6, n);
  EXPECT_NEAR(ddp, std::sqrt(60.0 * 10.0 * std::log(n) / (0.4 * 0.05 * n)), 1e-12);
  EXPECT_GT(ddp, dp);  // stage 2 is noisier
  EXPECT_THROW(theory::delta_prime(10, 0.0, n), std::invalid_argument);
  EXPECT_THROW(theory::delta_prime(10, 0.05, 1.0), std::invalid_argument);
}

TEST(theory, radii_shrink_with_population) {
  EXPECT_GT(theory::delta_double_prime(5, 0.05, 0.6, 1e4),
            theory::delta_double_prime(5, 0.05, 0.6, 1e6));
}

TEST(theory, coupling_bound_grows_like_powers_of_five) {
  const double b1 = theory::coupling_bound(1, 5, 0.05, 0.6, 1e6);
  const double b2 = theory::coupling_bound(2, 5, 0.05, 0.6, 1e6);
  const double b3 = theory::coupling_bound(3, 5, 0.05, 0.6, 1e6);
  EXPECT_NEAR(b2 / b1, 5.0, 1e-9);
  EXPECT_NEAR(b3 / b2, 5.0, 1e-9);
  // Enormous t overflows to +inf instead of garbage.
  EXPECT_TRUE(std::isinf(theory::coupling_bound(10000, 5, 0.05, 0.6, 1e6)));
}

TEST(theory, coupling_failure_probability) {
  const double p = theory::coupling_failure_probability(10, 5, 100.0);
  EXPECT_NEAR(p, 6.0 * 10.0 * 5.0 / 1e20, 1e-25);
  EXPECT_DOUBLE_EQ(theory::coupling_failure_probability(1000000, 5, 2.0), 1.0);
}

TEST(theory, popularity_floor_and_epoch) {
  const double zeta = theory::popularity_floor(10, 0.05, 0.6);
  EXPECT_NEAR(zeta, 0.05 * 0.4 / 40.0, 1e-12);
  const double d = theory::delta(0.6);
  EXPECT_NEAR(theory::epoch_length(10, 0.05, 0.6), std::log(1.0 / zeta) / (d * d), 1e-12);
  EXPECT_NEAR(theory::nonuniform_min_horizon(0.01, 0.6), std::log(100.0) / (d * d),
              1e-12);
  EXPECT_THROW(theory::nonuniform_min_horizon(0.0, 0.6), std::invalid_argument);
  EXPECT_THROW(theory::nonuniform_min_horizon(1.5, 0.6), std::invalid_argument);
}

TEST(theory, horizon_window) {
  dynamics_params p = theorem_params(10, 0.6);
  const double t_min = theory::min_horizon(10, 0.6);
  EXPECT_FALSE(theory::horizon_in_window(p, 1e4, t_min * 0.5));
  EXPECT_TRUE(theory::horizon_in_window(p, 1e4, t_min * 2.0));
  // N^10 cap is astronomically large for reasonable N (1e60-ish at N=1e6),
  // and saturates to +inf once the power overflows the double range.
  EXPECT_GT(theory::max_horizon(10, 0.6, 1e6), 1e55);
  EXPECT_TRUE(std::isinf(theory::max_horizon(10, 0.6, 1e80)));
}

TEST(theory, theorem44_condition_is_monotone_in_population) {
  const dynamics_params p = theorem_params(2, 0.73);
  // The paper's N condition is wildly conservative: even when it fails for
  // small N it must hold for astronomically large N.
  EXPECT_FALSE(theory::theorem44_population_condition(p, 100.0));
  EXPECT_TRUE(theory::theorem44_population_condition(p, 1e200));
}

}  // namespace
}  // namespace sgl::core
