#include "env/ef_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/distributions.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::env {
namespace {

ef_params default_params() {
  ef_params p;
  p.mean1 = 0.6;
  p.mean2 = 0.4;
  p.reward_sd = 0.3;
  p.shock_sd = 0.2;
  return p;
}

TEST(ef_params, validation) {
  ef_params p = default_params();
  EXPECT_NO_THROW(p.validate());
  p.reward_sd = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = default_params();
  p.shock_sd = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = default_params();
  p.mean1 = p.mean2;  // option 1 must be strictly better
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ef_win_probability, closed_form_matches_monte_carlo) {
  const ef_params p = default_params();
  const double analytic = ef_win_probability(p);
  rng gen{1};
  int wins = 0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double r1 = sample_normal(gen, p.mean1, p.reward_sd);
    const double r2 = sample_normal(gen, p.mean2, p.reward_sd);
    if (r1 > r2) ++wins;
  }
  EXPECT_NEAR(analytic, wins / static_cast<double>(n), 0.005);
  EXPECT_GT(analytic, 0.5);  // option 1 is better
}

TEST(reduce_ef_model, produces_valid_framework_parameters) {
  const ef_reduction r = reduce_ef_model(default_params());
  EXPECT_NEAR(r.eta1 + r.eta2, 1.0, 1e-12);
  EXPECT_GT(r.eta1, r.eta2);
  EXPECT_GT(r.beta, r.alpha) << "the paper's conversion requires alpha < beta";
  EXPECT_GT(r.beta, 0.5);  // ξ symmetric around 0, conditioning on a good draw
  EXPECT_LT(r.alpha, 0.5);
  EXPECT_GT(r.alpha, 0.0);
  EXPECT_LT(r.beta, 1.0);
}

TEST(reduce_ef_model, matches_monte_carlo_conditional_probabilities) {
  const ef_params p = default_params();
  const ef_reduction reduced = reduce_ef_model(p);

  // Estimate beta = P[xi > r2 - r1 | r1 > r2] directly.
  rng gen{2};
  const double xi_sd = 2.0 * p.shock_sd;
  running_stats beta_est;
  running_stats alpha_est;
  for (int i = 0; i < 300000; ++i) {
    const double r1 = sample_normal(gen, p.mean1, p.reward_sd);
    const double r2 = sample_normal(gen, p.mean2, p.reward_sd);
    const double xi = sample_normal(gen, 0.0, xi_sd);
    if (r1 > r2) {
      beta_est.add(xi > r2 - r1 ? 1.0 : 0.0);
    } else {
      alpha_est.add(xi > r2 - r1 ? 1.0 : 0.0);
    }
  }
  EXPECT_NEAR(reduced.beta, beta_est.mean(), 0.01);
  EXPECT_NEAR(reduced.alpha, alpha_est.mean(), 0.01);
}

TEST(reduce_ef_model, symmetric_shock_limits) {
  // Tiny shocks: adoption is almost deterministic in the comparison
  // (beta -> 1, alpha -> 0).  Huge shocks: adoption is a coin flip.
  ef_params sharp = default_params();
  sharp.shock_sd = 1e-3;
  const ef_reduction r_sharp = reduce_ef_model(sharp);
  EXPECT_GT(r_sharp.beta, 0.99);
  EXPECT_LT(r_sharp.alpha, 0.01);

  ef_params noisy = default_params();
  noisy.shock_sd = 50.0;
  const ef_reduction r_noisy = reduce_ef_model(noisy);
  EXPECT_NEAR(r_noisy.beta, 0.5, 0.02);
  EXPECT_NEAR(r_noisy.alpha, 0.5, 0.02);
}

TEST(ef_direct_dynamics, popularity_stays_on_simplex) {
  ef_direct_dynamics dyn{default_params(), 200, 0.05};
  rng rewards{3};
  rng population{4};
  for (int t = 0; t < 50; ++t) {
    dyn.step(rewards, population);
    const auto& q = dyn.popularity();
    EXPECT_NEAR(q[0] + q[1], 1.0, 1e-12);
    EXPECT_GE(q[0], 0.0);
    EXPECT_LE(q[0], 1.0);
    EXPECT_LE(dyn.adopters(), 200U);
  }
  EXPECT_EQ(dyn.steps(), 50U);
}

TEST(ef_direct_dynamics, converges_towards_better_option) {
  ef_direct_dynamics dyn{default_params(), 500, 0.05};
  rng rewards{5};
  rng population{6};
  running_stats late_popularity;
  for (int t = 0; t < 400; ++t) {
    dyn.step(rewards, population);
    if (t >= 200) late_popularity.add(dyn.popularity()[0]);
  }
  EXPECT_GT(late_popularity.mean(), 0.6)
      << "option 1 (better mean reward) should dominate on average";
}

TEST(ef_direct_dynamics, exposes_last_rewards) {
  ef_direct_dynamics dyn{default_params(), 10, 0.0};
  rng rewards{7};
  rng population{8};
  dyn.step(rewards, population);
  // Rewards should be plausible draws from the configured normals.
  EXPECT_LT(std::abs(dyn.last_reward(0) - 0.6), 5.0 * 0.3);
  EXPECT_LT(std::abs(dyn.last_reward(1) - 0.4), 5.0 * 0.3);
  EXPECT_THROW((void)dyn.last_reward(2), std::out_of_range);
}

TEST(ef_direct_dynamics, validates_construction) {
  EXPECT_THROW((ef_direct_dynamics{default_params(), 0, 0.1}), std::invalid_argument);
  EXPECT_THROW((ef_direct_dynamics{default_params(), 10, 1.5}), std::invalid_argument);
}

}  // namespace
}  // namespace sgl::env
