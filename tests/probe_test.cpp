// Tests for the probe API: the built-in regret/trajectory probes must
// reproduce the pre-redesign estimate_*/collect_* numbers EXACTLY (golden
// values captured from the fixed-reduction implementation before probes
// existed), probes must merge deterministically across thread counts, the
// new probes must measure what they claim, and the probe spec grammar must
// parse and reject correctly.

#include "core/probe.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace sgl::core {
namespace {

env_factory bernoulli_factory(std::vector<double> etas) {
  return [etas] { return std::make_unique<env::bernoulli_rewards>(etas); };
}

probe_list run_probe(const engine_factory& engines, const env_factory& envs,
                     const run_config& config, const probe& prototype) {
  const probe* pointers[] = {&prototype};
  return run_with_probes(engines, envs, config, pointers);
}

// --- golden equivalence with the pre-redesign fixed reduction ---------------
//
// These constants were printed with %.17g by the seed implementation (the
// hand-rolled reduction inside run_scenario, commit 9959ddf) and parse back
// to the exact doubles it produced.  The probe-based runner must match them
// bit for bit.

TEST(probe_golden, finite_regret_estimate_matches_pre_redesign_numbers) {
  run_config config;
  config.horizon = 60;
  config.replications = 24;
  config.seed = 123;
  config.threads = 3;
  const regret_estimate est = estimate_finite_regret(
      theorem_params(3, 0.65), 400, bernoulli_factory({0.8, 0.45, 0.4}), config);

  EXPECT_EQ(est.regret.mean, 0.11268049156909628);
  EXPECT_EQ(est.regret.half_width, 0.021475501421871532);
  EXPECT_EQ(est.average_reward.mean, 0.68731950843090306);
  EXPECT_EQ(est.average_reward.half_width, 0.021475501421871535);
  EXPECT_EQ(est.best_mass.mean, 0.72277625267115508);
  EXPECT_EQ(est.best_mass.half_width, 0.026129920786873245);
  EXPECT_EQ(est.final_best_mass.mean, 0.74980178302420897);
  EXPECT_EQ(est.final_best_mass.half_width, 0.057725300701185804);
  EXPECT_EQ(est.empty_step_fraction, 0.0);
  EXPECT_EQ(est.replications, 24U);
}

TEST(probe_golden, infinite_regret_estimate_matches_pre_redesign_numbers) {
  run_config config;
  config.horizon = 50;
  config.replications = 16;
  config.seed = 7;
  config.threads = 2;
  const regret_estimate est = estimate_infinite_regret(
      theorem_params(4, 0.62), bernoulli_factory({0.8, 0.4, 0.4, 0.4}), config);

  EXPECT_EQ(est.regret.mean, 0.11550083862632068);
  EXPECT_EQ(est.regret.half_width, 0.028754513917564894);
  EXPECT_EQ(est.average_reward.mean, 0.68449916137367917);
  EXPECT_EQ(est.best_mass.mean, 0.69211775996976077);
  EXPECT_EQ(est.best_mass.half_width, 0.04161534184372806);
  EXPECT_EQ(est.final_best_mass.mean, 0.85030293216284636);
  EXPECT_EQ(est.final_best_mass.half_width, 0.031665777695948506);
  EXPECT_EQ(est.replications, 16U);
}

TEST(probe_golden, finite_trajectory_matches_pre_redesign_numbers) {
  run_config config;
  config.horizon = 40;
  config.replications = 10;
  config.seed = 31;
  config.threads = 4;
  const trajectory_estimate curves = collect_finite_trajectory(
      theorem_params(2, 0.62), 250, bernoulli_factory({0.85, 0.35}), config);

  EXPECT_EQ(curves.running_regret.mean(0), 0.24999999999999997);
  EXPECT_EQ(curves.running_regret.mean(39), 0.083470043833588622);
  EXPECT_EQ(curves.running_regret.ci(39).half_width, 0.041483229633138073);
  EXPECT_EQ(curves.best_mass.mean(39), 0.91374372553448369);
  EXPECT_EQ(curves.best_mass.ci(39).half_width, 0.03073259684297832);
  EXPECT_EQ(curves.min_popularity.mean(39), 0.086256274465516244);
  EXPECT_EQ(curves.best_mass.replications(), 10U);
}

TEST(probe_golden, ring_scenario_matches_pre_redesign_numbers) {
  run_config config;
  config.horizon = 30;
  config.replications = 8;
  config.seed = 5;
  config.threads = 2;
  // Pre-redesign numbers came from the scalar v2 path; pin it so the
  // SIMD v3 kernel (different stream derivation) is not auto-selected.
  scenario::scenario_spec spec = scenario::get_scenario("ring");
  spec.engine_kernel = kernel_kind::scalar;
  const run_result result = scenario::run(spec, config);

  EXPECT_EQ(result.scalars.regret.mean, 0.17502155660354757);
  EXPECT_EQ(result.scalars.regret.half_width, 0.031087072503648484);
  EXPECT_EQ(result.scalars.average_reward.mean, 0.67497844339645274);
  EXPECT_EQ(result.scalars.best_mass.mean, 0.68957747915354717);
  EXPECT_EQ(result.scalars.final_best_mass.mean, 0.6832410721701172);
}

// --- probe-vs-wrapper equivalence -------------------------------------------

TEST(probe, regret_probe_report_equals_estimate_wrapper) {
  const dynamics_params params = theorem_params(3, 0.65);
  const auto envs = bernoulli_factory({0.8, 0.45, 0.4});
  run_config config;
  config.horizon = 50;
  config.replications = 12;
  config.seed = 9;

  const regret_estimate est = estimate_finite_regret(params, 200, envs, config);
  const auto merged = run_probe(make_finite_engine_factory(params, 200), envs, config,
                                regret_probe{});
  const auto& probe = dynamic_cast<const regret_probe&>(*merged[0]);
  const regret_estimate from_probe = to_regret_estimate(probe);
  EXPECT_EQ(est.regret.mean, from_probe.regret.mean);
  EXPECT_EQ(est.regret.half_width, from_probe.regret.half_width);
  EXPECT_EQ(est.final_best_mass.mean, from_probe.final_best_mass.mean);

  const probe_report report = probe.report();
  ASSERT_NE(report.find_scalar("regret"), nullptr);
  EXPECT_EQ(report.find_scalar("regret")->value, est.regret.mean);
  EXPECT_EQ(report.find_scalar("regret")->half_width, est.regret.half_width);
  EXPECT_EQ(report.find_scalar("replications")->value, 12.0);
}

TEST(probe, reports_are_thread_count_independent) {
  const dynamics_params params = theorem_params(2, 0.65);
  const auto envs = bernoulli_factory({0.85, 0.35});
  run_config config;
  config.horizon = 40;
  config.replications = 20;
  config.seed = 77;

  const auto run_at = [&](unsigned threads) {
    run_config c = config;
    c.threads = threads;
    std::vector<std::unique_ptr<probe>> prototypes;
    prototypes.push_back(std::make_unique<regret_probe>());
    prototypes.push_back(std::make_unique<hitting_time_probe>(0.3));
    prototypes.push_back(std::make_unique<popularity_floor_probe>(0.01));
    prototypes.push_back(std::make_unique<final_histogram_probe>());
    std::vector<const probe*> pointers;
    for (const auto& p : prototypes) pointers.push_back(p.get());
    return collect_reports(
        run_with_probes(make_finite_engine_factory(params, 300), envs, c, pointers));
  };

  const auto one = run_at(1);
  const auto eight = run_at(8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t p = 0; p < one.size(); ++p) {
    ASSERT_EQ(one[p].scalars.size(), eight[p].scalars.size()) << one[p].probe;
    for (std::size_t s = 0; s < one[p].scalars.size(); ++s) {
      EXPECT_EQ(one[p].scalars[s].value, eight[p].scalars[s].value)
          << one[p].probe << "." << one[p].scalars[s].key;
      EXPECT_EQ(one[p].scalars[s].half_width, eight[p].scalars[s].half_width)
          << one[p].probe << "." << one[p].scalars[s].key;
    }
  }
}

// --- the new probes measure what they claim ---------------------------------

TEST(probe, hitting_time_on_learning_run) {
  const dynamics_params params = theorem_params(2, 0.65);
  run_config config;
  config.horizon = 120;
  config.replications = 10;
  config.seed = 3;
  const auto merged =
      run_probe(make_finite_engine_factory(params, 400),
                bernoulli_factory({0.9, 0.2}), config, hitting_time_probe{0.3});
  const auto& probe = dynamic_cast<const hitting_time_probe&>(*merged[0]);
  // A strongly separated two-option instance concentrates well past 70%.
  EXPECT_EQ(probe.hit_fraction_stats().mean(), 1.0);
  EXPECT_GE(probe.hitting_time_stats().mean(), 1.0);
  EXPECT_LT(probe.hitting_time_stats().mean(), 120.0);
  const probe_report report = probe.report();
  EXPECT_EQ(report.find_scalar("hits")->value, 10.0);
  EXPECT_EQ(report.find_scalar("threshold")->value, 0.7);
}

TEST(probe, popularity_floor_stays_positive_with_exploration) {
  const dynamics_params params = theorem_params(2, 0.62);
  run_config config;
  config.horizon = 80;
  config.replications = 8;
  config.seed = 11;
  const auto merged =
      run_probe(make_finite_engine_factory(params, 500),
                bernoulli_factory({0.85, 0.35}), config, popularity_floor_probe{0.0});
  const auto& probe = dynamic_cast<const popularity_floor_probe&>(*merged[0]);
  EXPECT_GT(probe.min_popularity_stats().min(), 0.0);
  EXPECT_LE(probe.min_popularity_stats().min(), probe.min_popularity_stats().mean());
  // floor = 0 can never be violated.
  EXPECT_EQ(probe.violation_rate_stats().mean(), 0.0);
}

TEST(probe, final_histogram_masses_sum_to_one) {
  const dynamics_params params = theorem_params(3, 0.65);
  run_config config;
  config.horizon = 60;
  config.replications = 6;
  config.seed = 21;
  const auto merged =
      run_probe(make_finite_engine_factory(params, 300),
                bernoulli_factory({0.8, 0.5, 0.3}), config, final_histogram_probe{});
  const probe_report report = merged[0]->report();
  const probe_series* means = report.find_series("final_popularity_mean");
  ASSERT_NE(means, nullptr);
  ASSERT_EQ(means->values.size(), 3U);
  double total = 0.0;
  for (const double v : means->values) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The best option should dominate the histogram.
  EXPECT_GT(means->values[0], means->values[1]);
  EXPECT_GT(means->values[0], means->values[2]);
}

TEST(probe, recovery_counts_switches_and_measures_recovery) {
  const dynamics_params params = theorem_params(2, 0.65);
  run_config config;
  config.horizon = 240;
  config.replications = 6;
  config.seed = 13;
  const env_factory envs = [] {
    return std::make_unique<env::switching_rewards>(std::vector<double>{0.85, 0.35}, 80);
  };
  const auto merged = run_probe(make_finite_engine_factory(params, 500), envs, config,
                                recovery_probe{0.4});
  const auto& probe = dynamic_cast<const recovery_probe&>(*merged[0]);
  // The best option rotates at t = 80, 160, 240: three switches per
  // replication, every one either recovered or counted unrecovered.
  EXPECT_EQ(probe.switches(), 6U * 3U);
  EXPECT_EQ(probe.switches(), probe.recovery_time_stats().count() + probe.unrecovered());
  EXPECT_GT(probe.recovery_time_stats().count(), 0U);
  EXPECT_GT(probe.recovery_time_stats().mean(), 0.0);
}

TEST(probe, deterministic_schedule_never_recovers_when_threshold_unreachable) {
  // alpha = beta = 0.5 is signal-blind: mass stays diffuse, so a 0.99
  // threshold is never reached and every switch counts as unrecovered.
  dynamics_params params = theorem_params(2, 0.65);
  params.alpha = 0.5;
  params.beta = 0.5;
  run_config config;
  config.horizon = 100;
  config.replications = 4;
  config.seed = 17;
  const env_factory envs = [] {
    return std::make_unique<env::switching_rewards>(std::vector<double>{0.85, 0.35}, 40);
  };
  const auto merged = run_probe(make_finite_engine_factory(params, 100), envs, config,
                                recovery_probe{0.01});
  const auto& probe = dynamic_cast<const recovery_probe&>(*merged[0]);
  EXPECT_EQ(probe.recovery_time_stats().count(), 0U);
  EXPECT_EQ(probe.unrecovered(), probe.switches());
  EXPECT_GT(probe.switches(), 0U);
}

// --- probes never consume the RNG stream ------------------------------------

TEST(probe, adding_probes_does_not_change_results) {
  const dynamics_params params = theorem_params(2, 0.65);
  const auto envs = bernoulli_factory({0.85, 0.35});
  run_config config;
  config.horizon = 50;
  config.replications = 8;
  config.seed = 41;

  const auto bare = run_probe(make_finite_engine_factory(params, 200), envs, config,
                              regret_probe{});
  const regret_probe scalars;
  const hitting_time_probe hitting{0.2};
  const trajectory_probe curves;
  const final_histogram_probe histogram;
  const probe* pointers[] = {&scalars, &hitting, &curves, &histogram};
  const auto full =
      run_with_probes(make_finite_engine_factory(params, 200), envs, config, pointers);

  const auto& a = dynamic_cast<const regret_probe&>(*bare[0]);
  const auto& b = dynamic_cast<const regret_probe&>(*full[0]);
  EXPECT_EQ(a.regret_stats().mean(), b.regret_stats().mean());
  EXPECT_EQ(a.final_best_mass_stats().mean(), b.final_best_mass_stats().mean());
}

// --- scenario-level probe selection -----------------------------------------

TEST(probe, scenario_run_probes_uses_spec_defaults_then_fallback) {
  scenario::scenario_spec spec = scenario::get_scenario("switching_recovery");
  run_config config;
  config.horizon = 40;
  config.replications = 2;
  config.seed = 1;
  config.threads = 1;

  const auto defaults = scenario::run_probes(spec, config);
  ASSERT_EQ(defaults.size(), 2U);  // the spec's {regret, recovery(eps=0.4)}
  EXPECT_EQ(defaults[0]->name(), "regret");
  EXPECT_EQ(defaults[1]->name(), "recovery");

  spec.probes.clear();
  const auto fallback = scenario::run_probes(spec, config);
  ASSERT_EQ(fallback.size(), 1U);
  EXPECT_EQ(fallback[0]->name(), "regret");

  const std::vector<std::string> chosen{"final_histogram"};
  const auto explicit_choice = scenario::run_probes(spec, config, chosen);
  ASSERT_EQ(explicit_choice.size(), 1U);
  EXPECT_EQ(explicit_choice[0]->name(), "final_histogram");
}

// --- the spec grammar -------------------------------------------------------

TEST(probe_grammar, parses_names_and_arguments) {
  EXPECT_EQ(make_probe("regret")->name(), "regret");
  EXPECT_EQ(make_probe(" trajectory ")->name(), "trajectory");
  EXPECT_EQ(make_probe("hitting_time(eps=0.25)")->name(), "hitting_time");
  EXPECT_EQ(make_probe("recovery( eps = 0.3 )")->name(), "recovery");
  EXPECT_EQ(make_probe("popularity_floor(floor=0.001)")->name(), "popularity_floor");

  const auto list = parse_probe_list("regret, hitting_time(eps=0.1), final_histogram");
  ASSERT_EQ(list.size(), 3U);
  EXPECT_EQ(list[0]->name(), "regret");
  EXPECT_EQ(list[1]->name(), "hitting_time");
  EXPECT_EQ(list[2]->name(), "final_histogram");
}

TEST(probe_grammar, rejects_bad_specs) {
  EXPECT_THROW((void)make_probe("no_such_probe"), std::invalid_argument);
  EXPECT_THROW((void)make_probe("hitting_time(eps=0.1"), std::invalid_argument);
  EXPECT_THROW((void)make_probe("hitting_time(threshold=0.9)"), std::invalid_argument);
  EXPECT_THROW((void)make_probe("hitting_time(eps=zero)"), std::invalid_argument);
  EXPECT_THROW((void)make_probe("hitting_time(eps=2.0)"), std::invalid_argument);
  EXPECT_THROW((void)make_probe("regret(eps=0.1)"), std::invalid_argument);
  EXPECT_THROW((void)parse_probe_list(""), std::invalid_argument);

  // Typos suggest the nearest known probe.
  try {
    (void)make_probe("hitting_tme");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("hitting_time"), std::string::npos);
  }
}

}  // namespace
}  // namespace sgl::core
