// Property sweeps: structural invariants checked across the whole graph
// generator zoo and across randomized dynamics configurations ("fuzz-light"
// — random but seeded, hence reproducible).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/finite_dynamics.h"
#include "core/grouped_dynamics.h"
#include "core/infinite_dynamics.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace sgl {
namespace {

// --- graph generator invariants -----------------------------------------------------

struct graph_case {
  std::string name;
  graph::graph g;
};

std::vector<graph_case> generator_zoo() {
  rng gen{1234};
  std::vector<graph_case> zoo;
  zoo.push_back({"complete_9", graph::graph::complete(9)});
  zoo.push_back({"ring_17", graph::graph::ring(17)});
  zoo.push_back({"grid_4x7", graph::graph::grid(4, 7, false)});
  zoo.push_back({"torus_5x5", graph::graph::grid(5, 5, true)});
  zoo.push_back({"star_12", graph::graph::star(12)});
  zoo.push_back({"erdos_renyi_60", graph::graph::erdos_renyi(60, 0.08, gen)});
  zoo.push_back({"watts_strogatz_40", graph::graph::watts_strogatz(40, 3, 0.2, gen)});
  zoo.push_back({"barabasi_albert_50", graph::graph::barabasi_albert(50, 2, gen)});
  zoo.push_back({"two_cliques_8", graph::graph::two_cliques(8, 2)});
  return zoo;
}

class graph_invariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(graph_invariants, csr_is_consistent) {
  const auto zoo = generator_zoo();
  const graph::graph& g = zoo[GetParam()].g;

  // Degree sum = 2|E|.
  std::size_t degree_sum = 0;
  for (graph::graph::vertex v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());

  for (graph::graph::vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    // Sorted, unique, no self-loops, symmetric.
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (const graph::graph::vertex w : nbrs) {
      EXPECT_NE(w, v);
      EXPECT_LT(w, g.num_vertices());
      EXPECT_TRUE(g.has_edge(w, v)) << zoo[GetParam()].name;
    }
  }

  // min/max/average degree are mutually consistent.
  EXPECT_LE(g.min_degree(), g.max_degree());
  EXPECT_GE(g.average_degree(), static_cast<double>(g.min_degree()));
  EXPECT_LE(g.average_degree(), static_cast<double>(g.max_degree()));
}

INSTANTIATE_TEST_SUITE_P(zoo, graph_invariants, ::testing::Range<std::size_t>(0, 9),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return generator_zoo()[info.param].name;
                         });

// --- randomized dynamics invariants ----------------------------------------------------

/// Draws a random-but-valid parameter set from a seeded stream.
core::dynamics_params random_params(rng& gen) {
  core::dynamics_params p;
  p.num_options = 1 + static_cast<std::size_t>(gen.next_below(7));
  p.mu = gen.next_double();
  p.beta = gen.next_double();
  // Random alpha in [0, beta], occasionally the 1-beta convention.
  p.alpha = gen.next_bernoulli(0.3) ? -1.0 : gen.next_double() * p.beta;
  if (p.alpha < 0.0 && 1.0 - p.beta > p.beta) p.beta = 1.0 - p.beta;  // keep alpha<=beta
  return p;
}

class randomized_invariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(randomized_invariants, every_engine_keeps_its_invariants) {
  rng meta{GetParam()};
  for (int config = 0; config < 8; ++config) {
    const core::dynamics_params params = random_params(meta);
    ASSERT_NO_THROW(params.validate());
    const std::size_t m = params.num_options;
    const std::uint64_t n = 1 + meta.next_below(300);

    core::finite_dynamics agent{params, static_cast<std::size_t>(n)};
    core::aggregate_dynamics aggregate{params, n};
    core::infinite_dynamics infinite{params};
    core::grouped_dynamics grouped{
        params, {{(n + 1) / 2, {params.resolved_alpha(), params.beta}},
                 {n / 2 + 1, {0.0, 1.0}}}};

    rng gen = meta.split();
    rng env_gen = meta.split();
    std::vector<std::uint8_t> r(m);
    for (int t = 0; t < 40; ++t) {
      for (auto& x : r) x = env_gen.next_bernoulli(env_gen.next_double()) ? 1 : 0;
      agent.step(r, gen);
      aggregate.step(r, gen);
      infinite.step(r);
      grouped.step(r, gen);

      const auto check_distribution = [&](std::span<const double> q) {
        double total = 0.0;
        for (const double x : q) {
          ASSERT_GE(x, 0.0);
          ASSERT_LE(x, 1.0 + 1e-12);
          total += x;
        }
        ASSERT_NEAR(total, 1.0, 1e-9);
      };
      check_distribution(agent.popularity());
      check_distribution(aggregate.popularity());
      check_distribution(infinite.distribution());
      check_distribution(grouped.popularity());

      ASSERT_LE(agent.adopters(), n);
      ASSERT_LE(aggregate.adopters(), n);
      ASSERT_LE(grouped.adopters(), grouped.num_agents());

      // Stage counts always partition the population.
      ASSERT_EQ(std::accumulate(agent.stage_counts().begin(),
                                agent.stage_counts().end(), std::uint64_t{0}),
                n);
      ASSERT_EQ(std::accumulate(aggregate.stage_counts().begin(),
                                aggregate.stage_counts().end(), std::uint64_t{0}),
                n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(seeds, randomized_invariants,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL, 66ULL));

}  // namespace
}  // namespace sgl
