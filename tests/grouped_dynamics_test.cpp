// Tests for the grouped (heterogeneous) aggregate engine, including the
// distribution-equality check against the agent-based engine with the same
// group assignment — the heterogeneous analogue of the homogeneous
// aggregate-vs-agent law test.

#include "core/grouped_dynamics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "support/gof.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::core {
namespace {

dynamics_params make_params(std::size_t m, double mu) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = 0.65;  // unused by the grouped engine (groups carry rules)
  return p;
}

TEST(grouped_dynamics, construction_and_validation) {
  const std::vector<rule_group> groups{{100, {0.3, 0.7}}, {50, {0.0, 1.0}}};
  grouped_dynamics dyn{make_params(3, 0.1), groups};
  EXPECT_EQ(dyn.num_agents(), 150U);
  EXPECT_EQ(dyn.num_groups(), 2U);
  EXPECT_DOUBLE_EQ(dyn.popularity()[0], 1.0 / 3.0);

  EXPECT_THROW((grouped_dynamics{make_params(2, 0.1), {}}), std::invalid_argument);
  EXPECT_THROW((grouped_dynamics{make_params(2, 0.1), {{0, {0.3, 0.7}}}}),
               std::invalid_argument);
  EXPECT_THROW((grouped_dynamics{make_params(2, 0.1), {{10, {0.9, 0.2}}}}),
               std::invalid_argument);
}

TEST(grouped_dynamics, invariants_across_steps) {
  const std::vector<rule_group> groups{
      {200, {0.1, 0.9}}, {300, {0.35, 0.65}}, {100, {0.5, 0.5}}};
  grouped_dynamics dyn{make_params(4, 0.08), groups};
  rng gen{1};
  rng env_gen{2};
  std::vector<std::uint8_t> r(4);
  for (int t = 0; t < 300; ++t) {
    for (auto& x : r) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
    dyn.step(r, gen);

    std::uint64_t from_groups = 0;
    for (std::size_t g = 0; g < dyn.num_groups(); ++g) {
      for (const std::uint64_t d : dyn.group_adopters(g)) from_groups += d;
    }
    EXPECT_EQ(from_groups, dyn.adopters());
    EXPECT_LE(dyn.adopters(), dyn.num_agents());

    double total = 0.0;
    for (const double q : dyn.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_EQ(dyn.steps(), 300U);
  EXPECT_THROW((void)dyn.group_adopters(3), std::out_of_range);
}

TEST(grouped_dynamics, single_group_matches_aggregate_semantics) {
  // One group with rule (1-beta, beta) must behave like the homogeneous
  // engine: compare mean popularity trajectories under shared rewards.
  const dynamics_params params = theorem_params(2, 0.65);
  const std::vector<rule_group> groups{
      {500, {params.resolved_alpha(), params.beta}}};

  running_stats grouped_mass;
  constexpr int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    rng env_gen = rng::from_stream(10, static_cast<std::uint64_t>(rep));
    rng gen = rng::from_stream(11, static_cast<std::uint64_t>(rep));
    grouped_dynamics dyn{params, groups};
    std::vector<std::uint8_t> r(2);
    for (int t = 1; t <= 40; ++t) {
      r[0] = env_gen.next_bernoulli(0.85) ? 1 : 0;
      r[1] = env_gen.next_bernoulli(0.35) ? 1 : 0;
      dyn.step(r, gen);
    }
    grouped_mass.add(dyn.popularity()[0]);
  }

  running_stats agent_mass;
  for (int rep = 0; rep < reps; ++rep) {
    rng env_gen = rng::from_stream(10, static_cast<std::uint64_t>(rep));
    rng gen = rng::from_stream(12, static_cast<std::uint64_t>(rep));
    finite_dynamics dyn{params, 500};
    std::vector<std::uint8_t> r(2);
    for (int t = 1; t <= 40; ++t) {
      r[0] = env_gen.next_bernoulli(0.85) ? 1 : 0;
      r[1] = env_gen.next_bernoulli(0.35) ? 1 : 0;
      dyn.step(r, gen);
    }
    agent_mass.add(dyn.popularity()[0]);
  }
  const double se =
      std::sqrt(grouped_mass.variance() / reps + agent_mass.variance() / reps);
  EXPECT_NEAR(grouped_mass.mean(), agent_mass.mean(), 4.0 * se + 0.01);
}

TEST(grouped_dynamics, same_law_as_agent_based_with_two_groups) {
  // Tiny heterogeneous population: joint outcome distribution of per-group
  // adopter counts must match the agent engine with the same assignment.
  dynamics_params params = make_params(2, 0.2);
  const std::vector<rule_group> groups{{3, {0.2, 0.9}}, {3, {0.0, 0.5}}};
  const std::vector<std::uint8_t> rewards{1, 0};
  constexpr int reps = 30000;

  std::map<std::uint64_t, std::uint64_t> grouped_hist;
  std::map<std::uint64_t, std::uint64_t> agent_hist;
  for (int rep = 0; rep < reps; ++rep) {
    rng g1 = rng::from_stream(20, static_cast<std::uint64_t>(rep));
    grouped_dynamics grouped{params, groups};
    grouped.step(rewards, g1);
    const auto a = grouped.group_adopters(0);
    const auto b = grouped.group_adopters(1);
    ++grouped_hist[((a[0] * 4 + a[1]) * 4 + b[0]) * 4 + b[1]];

    rng g2 = rng::from_stream(21, static_cast<std::uint64_t>(rep));
    finite_dynamics agent{params, 6};
    std::vector<adoption_rule> rules(6);
    for (std::size_t i = 0; i < 3; ++i) rules[i] = {0.2, 0.9};
    for (std::size_t i = 3; i < 6; ++i) rules[i] = {0.0, 0.5};
    agent.set_agent_rules(std::move(rules));
    agent.step(rewards, g2);
    std::uint64_t ga0 = 0, ga1 = 0, gb0 = 0, gb1 = 0;
    for (std::size_t i = 0; i < 6; ++i) {
      const std::int32_t c = agent.choices()[i];
      if (c < 0) continue;
      if (i < 3) {
        (c == 0 ? ga0 : ga1) += 1;
      } else {
        (c == 0 ? gb0 : gb1) += 1;
      }
    }
    ++agent_hist[((ga0 * 4 + ga1) * 4 + gb0) * 4 + gb1];
  }

  // Two-sample chi-square over the joint outcomes.
  std::map<std::uint64_t, std::pair<double, double>> joint;
  for (const auto& [k, c] : grouped_hist) joint[k].first += static_cast<double>(c);
  for (const auto& [k, c] : agent_hist) joint[k].second += static_cast<double>(c);
  double stat = 0.0;
  double dof = -1.0;
  for (const auto& [k, counts] : joint) {
    const double total = counts.first + counts.second;
    if (total < 10.0) continue;
    const double expected = total / 2.0;
    stat += (counts.first - expected) * (counts.first - expected) / expected +
            (counts.second - expected) * (counts.second - expected) / expected;
    dof += 1.0;
  }
  ASSERT_GE(dof, 1.0);
  const double p_value = 1.0 - chi_square_cdf(stat, dof);
  EXPECT_GT(p_value, 1e-4) << "stat=" << stat << " dof=" << dof;
}

TEST(grouped_dynamics, sensitive_group_drives_convergence) {
  // 90% signal-blind + 10% discerning: the blind mass follows the
  // discerning core onto the best option.
  const std::vector<rule_group> groups{{900, {1.0, 1.0}}, {100, {0.1, 0.9}}};
  grouped_dynamics dyn{make_params(2, 0.05), groups};
  rng gen{5};
  rng env_gen{6};
  std::vector<std::uint8_t> r(2);
  running_stats late;
  for (int t = 0; t < 2000; ++t) {
    r[0] = env_gen.next_bernoulli(0.85) ? 1 : 0;
    r[1] = env_gen.next_bernoulli(0.35) ? 1 : 0;
    dyn.step(r, gen);
    if (t >= 1000) late.add(dyn.popularity()[0]);
  }
  EXPECT_GT(late.mean(), 0.6);
}

TEST(grouped_dynamics, reset_clears_state) {
  grouped_dynamics dyn{make_params(2, 0.1), {{10, {0.3, 0.7}}}};
  rng gen{7};
  dyn.step(std::vector<std::uint8_t>{1, 0}, gen);
  dyn.reset();
  EXPECT_EQ(dyn.steps(), 0U);
  EXPECT_EQ(dyn.adopters(), 0U);
  EXPECT_DOUBLE_EQ(dyn.popularity()[0], 0.5);
}

}  // namespace
}  // namespace sgl::core
