// Seeded property tests for the v3 step kernels (core/step_kernel.h) and
// the engine paths that consume them.  The population grid deliberately
// straddles every batching boundary — lane width (7/8/9), shard size
// (8191/8192/8193) and the degenerate N = 1 — because the classic failure
// of a vectorized loop with a scalar remainder is an agent stepped twice,
// skipped, or read from the wrong lane at exactly those edges.  Every test
// runs the scalar kernel unconditionally and the SIMD kernel whenever the
// dispatcher resolved a vector ISA (under SGL_KERNEL=scalar the SIMD legs
// collapse to the scalar path on purpose — CI runs that configuration).

#include "core/step_kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/finite_dynamics.h"
#include "core/params.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

// Lane-width and shard-size straddles (shard_size = 8192 in
// finite_dynamics; lane_count is 4 or 8 depending on the compiled ABI).
constexpr std::size_t k_population_grid[] = {1, 7, 8, 9, 31, 32, 33,
                                             8191, 8192, 8193};

std::vector<kernel_kind> kernels_under_test() {
  std::vector<kernel_kind> kinds{kernel_kind::scalar};
  if (kernel::vector_isa_available()) kinds.push_back(kernel_kind::simd);
  return kinds;
}

dynamics_params make_params(std::size_t m, double mu, double beta,
                            double alpha = -1.0) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

/// Mildly heterogeneous rules so the per-agent (not batched) path runs.
std::vector<adoption_rule> varied_rules(std::size_t n) {
  std::vector<adoption_rule> rules(n);
  for (std::size_t i = 0; i < n; ++i) {
    rules[i].alpha = 0.05 + 0.3 * static_cast<double>(i % 5) / 5.0;
    rules[i].beta = 0.6 + 0.35 * static_cast<double>(i % 7) / 7.0;
  }
  return rules;
}

/// Shared single-step invariants: choices in range, counters consistent
/// with the agent array, popularity a distribution.
void check_step_invariants(const finite_dynamics& dyn, std::size_t n,
                           std::size_t m, const char* label) {
  const auto choices = dyn.choices();
  ASSERT_EQ(choices.size(), n) << label;
  std::vector<std::uint64_t> counted(m, 0);
  std::uint64_t committed = 0;
  for (const std::int32_t c : choices) {
    ASSERT_GE(c, -1) << label;
    ASSERT_LT(c, static_cast<std::int32_t>(m)) << label;
    if (c >= 0) {
      ++counted[static_cast<std::size_t>(c)];
      ++committed;
    }
  }
  const auto adopters = dyn.adopter_counts();
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_EQ(adopters[j], counted[j]) << label << " option " << j;
  }
  EXPECT_EQ(dyn.adopters(), committed) << label;
  // Stage 1 considers exactly one option per agent, every agent, every
  // step — the "stepped exactly once" invariant at the counter level.
  const auto stage = dyn.stage_counts();
  EXPECT_EQ(std::accumulate(stage.begin(), stage.end(), std::uint64_t{0}), n)
      << label;
  double mass = 0.0;
  for (const double q : dyn.popularity()) {
    EXPECT_GE(q, 0.0) << label;
    mass += q;
  }
  EXPECT_NEAR(mass, 1.0, 1e-9) << label;
}

TEST(kernel_property, network_invariants_on_every_batch_boundary) {
  const std::vector<std::uint8_t> rewards{1, 0};
  for (const kernel_kind kind : kernels_under_test()) {
    for (const std::size_t n : k_population_grid) {
      finite_dynamics dyn{make_params(2, 0.1, 0.7, 0.2), n};
      const graph::graph g = graph::graph::ring(n);
      dyn.set_topology(&g);
      dyn.set_kernel(kind);
      rng gen{0x51c7u + n};
      for (int t = 0; t < 6; ++t) {
        dyn.step(rewards, gen);
        check_step_invariants(
            dyn, n, 2,
            (std::string{"network kernel="} +
             (kind == kernel_kind::simd ? "simd" : "scalar") + " N=" +
             std::to_string(n) + " t=" + std::to_string(t))
                .c_str());
      }
    }
  }
}

TEST(kernel_property, network_heterogeneous_rules_share_the_kernel) {
  const std::vector<std::uint8_t> rewards{0, 1};
  for (const kernel_kind kind : kernels_under_test()) {
    for (const std::size_t n : {std::size_t{9}, std::size_t{8193}}) {
      finite_dynamics dyn{make_params(2, 0.15, 0.8), n};
      const graph::graph g = graph::graph::ring(n);
      dyn.set_topology(&g);
      dyn.set_agent_rules(varied_rules(n));
      dyn.set_kernel(kind);
      rng gen{0xbeefu + n};
      for (int t = 0; t < 4; ++t) {
        dyn.step(rewards, gen);
        check_step_invariants(dyn, n, 2, "network heterogeneous");
      }
    }
  }
}

TEST(kernel_property, mixed_invariants_on_every_batch_boundary) {
  for (const kernel_kind kind : kernels_under_test()) {
    for (const std::size_t m : {std::size_t{2}, std::size_t{3}, std::size_t{10}}) {
      std::vector<std::uint8_t> rewards(m, 0);
      rewards[0] = 1;
      if (m > 2) rewards[2] = 1;
      for (const std::size_t n : k_population_grid) {
        finite_dynamics dyn{make_params(m, 0.1, 0.7), n};
        dyn.set_agent_rules(varied_rules(n));  // heterogeneous → per-agent path
        dyn.set_kernel(kind);
        rng gen{0xabcdu + n * 31 + m};
        for (int t = 0; t < 5; ++t) {
          dyn.step(rewards, gen);
          check_step_invariants(
              dyn, n, m,
              (std::string{"mixed kernel="} +
               (kind == kernel_kind::simd ? "simd" : "scalar") + " N=" +
               std::to_string(n) + " m=" + std::to_string(m))
                  .c_str());
        }
      }
    }
  }
}

TEST(kernel_property, simd_network_bit_identical_across_threads_and_reuse) {
  if (!kernel::vector_isa_available()) GTEST_SKIP() << "no vector ISA";
  const std::size_t n = 8193;
  const std::vector<std::uint8_t> rewards{1, 0};
  const graph::graph g = graph::graph::ring(n);
  const auto run = [&](unsigned threads, bool reuse) {
    finite_dynamics dyn{make_params(2, 0.1, 0.7, 0.2), n};
    dyn.set_topology(&g);
    dyn.set_kernel(kernel_kind::simd);
    dyn.set_threads(threads);
    if (reuse) {
      // Dirty the state, then reset: a reused engine must replay the
      // reference trajectory exactly.
      rng warm{99};
      for (int t = 0; t < 3; ++t) dyn.step(rewards, warm);
      dyn.reset();
    }
    rng gen{7};
    std::vector<std::int32_t> trace;
    for (int t = 0; t < 8; ++t) {
      dyn.step(rewards, gen);
      trace.insert(trace.end(), dyn.choices().begin(), dyn.choices().end());
    }
    return trace;
  };
  const std::vector<std::int32_t> reference = run(1, false);
  EXPECT_EQ(run(4, false), reference);
  EXPECT_EQ(run(1, true), reference);
  EXPECT_EQ(run(4, true), reference);
}

// --- direct kernel calls ----------------------------------------------------

/// Builds a self-consistent net2 input of n agents: packed view rows with
/// small committed counts, previous choices, homogeneous thresholds.
struct net2_fixture {
  std::vector<std::uint32_t> rows;
  std::vector<std::int32_t> previous;
  std::vector<std::int32_t> choices;
  std::vector<std::uint64_t> changed;
  std::uint32_t changed_len = 0;
  std::uint64_t stage[2] = {0, 0};
  std::uint64_t adopt[2] = {0, 0};

  explicit net2_fixture(std::size_t n, std::int32_t sentinel) {
    rng gen{2024};
    rows.resize(n);
    previous.resize(n);
    choices.assign(n, sentinel);
    changed.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c0 = static_cast<std::uint32_t>(gen.next_u64() % 5);
      const std::uint32_t c1 = static_cast<std::uint32_t>(gen.next_u64() % 5);
      rows[i] = c0 | (c1 << 16);
      previous[i] = static_cast<std::int32_t>(gen.next_u64() % 3) - 1;
    }
  }

  kernel::net2_args args(std::size_t lo, std::size_t hi,
                         std::uint64_t step_seed) {
    kernel::net2_args a;
    a.step_seed = step_seed;
    a.lo = lo;
    a.hi = hi;
    a.rows = rows.data();
    a.previous = previous.data();
    a.choices = choices.data();
    a.t_mu = prob_to_u64(0.1);
    a.thr_explore[0] = prob_to_u64(0.02);
    a.thr_explore[1] = prob_to_u64(0.01);
    a.thr_copy[0] = prob_to_u64(0.73);
    a.thr_copy[1] = prob_to_u64(0.28);
    a.changed = changed.data();
    a.changed_len = &changed_len;
    a.stage = stage;
    a.adopt = adopt;
    return a;
  }
};

TEST(kernel_property, net2_writes_exactly_the_requested_range) {
  constexpr std::int32_t sentinel = -7;
  for (const std::size_t n : k_population_grid) {
    // Sub-ranges stress the lane alignment of lo as well as hi.
    const std::size_t lo = n / 3;
    net2_fixture fx(n, sentinel);
    auto a = fx.args(lo, n, 0x5eedULL * (n + 1));
    kernel::net2_step()(a);
    for (std::size_t i = 0; i < lo; ++i) {
      ASSERT_EQ(fx.choices[i], sentinel) << "agent " << i << " below lo written";
    }
    std::uint64_t committed = 0;
    for (std::size_t i = lo; i < n; ++i) {
      ASSERT_NE(fx.choices[i], sentinel) << "agent " << i << " skipped";
      ASSERT_GE(fx.choices[i], -1);
      ASSERT_LT(fx.choices[i], 2);
      if (fx.choices[i] >= 0) ++committed;
    }
    // Each agent considered exactly one option and adopted at most once.
    EXPECT_EQ(fx.stage[0] + fx.stage[1], n - lo);
    EXPECT_EQ(fx.adopt[0] + fx.adopt[1], committed);
    // The changed list matches a scalar recount, in order.
    std::uint32_t expected_len = 0;
    for (std::size_t i = lo; i < n; ++i) {
      if (fx.choices[i] == fx.previous[i]) continue;
      const std::uint64_t entry =
          i |
          (static_cast<std::uint64_t>(
               static_cast<std::uint16_t>(fx.previous[i] + 1))
           << 32) |
          (static_cast<std::uint64_t>(
               static_cast<std::uint16_t>(fx.choices[i] + 1))
           << 48);
      ASSERT_LT(expected_len, fx.changed_len);
      EXPECT_EQ(fx.changed[expected_len], entry) << "changed entry " << expected_len;
      ++expected_len;
    }
    EXPECT_EQ(fx.changed_len, expected_len);
  }
}

TEST(kernel_property, net2_generic_and_active_isa_bit_identical) {
  for (const std::size_t n : k_population_grid) {
    net2_fixture generic_fx(n, -7);
    net2_fixture active_fx(n, -7);
    auto ga = generic_fx.args(0, n, 0xfeedULL + n);
    auto aa = active_fx.args(0, n, 0xfeedULL + n);
    kernel::net2_step_generic(ga);
    kernel::net2_step()(aa);
    EXPECT_EQ(generic_fx.choices, active_fx.choices) << "N=" << n;
    EXPECT_EQ(generic_fx.changed_len, active_fx.changed_len) << "N=" << n;
    generic_fx.changed.resize(generic_fx.changed_len);
    active_fx.changed.resize(active_fx.changed_len);
    EXPECT_EQ(generic_fx.changed, active_fx.changed) << "N=" << n;
    EXPECT_EQ(generic_fx.stage[0], active_fx.stage[0]);
    EXPECT_EQ(generic_fx.stage[1], active_fx.stage[1]);
    EXPECT_EQ(generic_fx.adopt[0], active_fx.adopt[0]);
    EXPECT_EQ(generic_fx.adopt[1], active_fx.adopt[1]);
  }
}

TEST(kernel_property, mixed_generic_and_active_isa_bit_identical) {
  for (const std::size_t n : k_population_grid) {
    for (const std::size_t m : {std::size_t{2}, std::size_t{3}, std::size_t{10}}) {
      std::vector<std::uint64_t> alpha_thr(n);
      std::vector<std::uint64_t> beta_thr(n);
      const auto rules = varied_rules(n);
      for (std::size_t i = 0; i < n; ++i) {
        alpha_thr[i] = prob_to_u64(rules[i].alpha);
        beta_thr[i] = prob_to_u64(rules[i].beta);
      }
      std::vector<std::uint64_t> pop_cdf(m - 1);
      for (std::size_t j = 0; j + 1 < m; ++j) {
        pop_cdf[j] = prob_to_u64(static_cast<double>(j + 1) /
                                 static_cast<double>(m));
      }
      const auto run = [&](kernel::mixed_fn fn) {
        std::vector<std::int32_t> choices(n, -7);
        std::vector<std::uint32_t> considered(n, 0xffffffffu);
        kernel::mixed_args a;
        a.step_seed = 0xc0deULL + n * 131 + m;
        a.n = n;
        a.m = m;
        a.t_mu = prob_to_u64(0.1);
        a.pop_cdf = pop_cdf.data();
        a.reward_bits = 0b101;
        a.alpha_thr = alpha_thr.data();
        a.beta_thr = beta_thr.data();
        a.choices = choices.data();
        a.considered = considered.data();
        fn(a);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_NE(choices[i], -7) << "agent " << i << " skipped";
          EXPECT_LT(considered[i], m) << "agent " << i;
        }
        return std::pair{choices, considered};
      };
      EXPECT_EQ(run(kernel::mixed_step_generic), run(kernel::mixed_step()))
          << "N=" << n << " m=" << m;
    }
  }
}

}  // namespace
}  // namespace sgl::core
