#include "core/finite_dynamics.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/params.h"
#include "graph/graph.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl::core {
namespace {

dynamics_params make_params(std::size_t m, double mu, double beta, double alpha = -1.0) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

TEST(finite_dynamics, initial_state) {
  const finite_dynamics dyn{make_params(3, 0.1, 0.6), 50};
  EXPECT_EQ(dyn.num_agents(), 50U);
  EXPECT_EQ(dyn.adopters(), 0U);
  EXPECT_EQ(dyn.steps(), 0U);
  for (const double q : dyn.popularity()) EXPECT_DOUBLE_EQ(q, 1.0 / 3.0);
  for (const std::int32_t c : dyn.choices()) EXPECT_EQ(c, -1);
}

TEST(finite_dynamics, invariants_hold_across_steps) {
  finite_dynamics dyn{make_params(4, 0.1, 0.65), 200};
  rng gen{1};
  std::vector<std::uint8_t> r(4);
  rng env_gen{2};
  for (int t = 0; t < 300; ++t) {
    for (auto& x : r) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
    dyn.step(r, gen);

    // Stage counts partition the population.
    const auto s = dyn.stage_counts();
    EXPECT_EQ(std::accumulate(s.begin(), s.end(), std::uint64_t{0}), 200U);

    // Adopter counts match choices and are bounded by stage counts.
    const auto d = dyn.adopter_counts();
    std::vector<std::uint64_t> from_choices(4, 0);
    for (const std::int32_t c : dyn.choices()) {
      if (c >= 0) ++from_choices[static_cast<std::size_t>(c)];
    }
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(d[j], from_choices[j]);
      EXPECT_LE(d[j], s[j]);
    }

    // Popularity is a distribution.
    double total = 0.0;
    for (const double q : dyn.popularity()) {
      EXPECT_GE(q, 0.0);
      total += q;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_EQ(dyn.steps(), 300U);
}

TEST(finite_dynamics, single_agent_population_works) {
  finite_dynamics dyn{make_params(3, 0.2, 1.0, 1.0), 1};
  rng gen{21};
  dyn.step(std::vector<std::uint8_t>{1, 1, 1}, gen);
  EXPECT_EQ(dyn.num_agents(), 1U);
  EXPECT_EQ(dyn.adopters(), 1U);  // beta = alpha = 1 always commits
  EXPECT_GE(dyn.choices()[0], 0);
}

TEST(finite_dynamics, pure_copy_regime_never_sits_out) {
  finite_dynamics dyn{make_params(3, 0.2, 1.0, 1.0), 100};
  rng gen{3};
  const std::vector<std::uint8_t> r{0, 1, 0};
  for (int t = 0; t < 100; ++t) {
    dyn.step(r, gen);
    EXPECT_EQ(dyn.adopters(), 100U);
  }
  EXPECT_EQ(dyn.empty_steps(), 0U);
}

TEST(finite_dynamics, alpha_zero_bad_signals_empty_population) {
  // beta=1, alpha=0, all signals bad: nobody can adopt.
  finite_dynamics dyn{make_params(2, 0.5, 1.0, 0.0), 50};
  rng gen{4};
  const std::vector<std::uint8_t> all_bad{0, 0};
  dyn.step(all_bad, gen);
  EXPECT_EQ(dyn.adopters(), 0U);
  EXPECT_EQ(dyn.empty_steps(), 1U);
  for (const double q : dyn.popularity()) EXPECT_DOUBLE_EQ(q, 0.5);  // uniform rule
}

TEST(finite_dynamics, mu_one_samples_uniformly) {
  // mu = 1: stage-1 counts are Multinomial(N, uniform) regardless of history.
  finite_dynamics dyn{make_params(4, 1.0, 1.0, 1.0), 4000};
  rng gen{5};
  const std::vector<std::uint8_t> r{1, 1, 1, 1};
  std::vector<running_stats> s(4);
  for (int t = 0; t < 50; ++t) {
    dyn.step(r, gen);
    for (std::size_t j = 0; j < 4; ++j) {
      s[j].add(static_cast<double>(dyn.stage_counts()[j]));
    }
  }
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(s[j].mean(), 1000.0, 25.0);
}

TEST(finite_dynamics, mu_zero_herds_to_consensus) {
  // No exploration, signal-independent adoption (alpha = beta = 1): pure
  // Polya-style copying must fixate on a single option and stay there.
  finite_dynamics dyn{make_params(3, 0.0, 1.0, 1.0), 60};
  rng gen{6};
  const std::vector<std::uint8_t> r{1, 1, 1};
  for (int t = 0; t < 2000; ++t) dyn.step(r, gen);
  double top = 0.0;
  for (const double q : dyn.popularity()) top = std::max(top, q);
  EXPECT_DOUBLE_EQ(top, 1.0) << "copying without exploration fixates";
  const auto q_before = std::vector<double>(dyn.popularity().begin(),
                                            dyn.popularity().end());
  dyn.step(r, gen);
  EXPECT_EQ(q_before[0], dyn.popularity()[0]);  // absorbed forever
}

TEST(finite_dynamics, converges_to_best_option) {
  const dynamics_params params = theorem_params(3, 0.6);
  finite_dynamics dyn{params, 500};
  rng gen{7};
  rng env_gen{8};
  const std::vector<double> etas{0.9, 0.2, 0.2};
  std::vector<std::uint8_t> r(3);
  running_stats late;
  for (int t = 0; t < 1500; ++t) {
    for (std::size_t j = 0; j < 3; ++j) r[j] = env_gen.next_bernoulli(etas[j]) ? 1 : 0;
    dyn.step(r, gen);
    if (t >= 750) late.add(dyn.popularity()[0]);
  }
  EXPECT_GT(late.mean(), 0.75);
}

TEST(finite_dynamics, same_seed_reproduces_exactly) {
  const dynamics_params params = make_params(3, 0.1, 0.6);
  finite_dynamics a{params, 100};
  finite_dynamics b{params, 100};
  rng ga{9};
  rng gb{9};
  rng env_gen{10};
  std::vector<std::uint8_t> r(3);
  for (int t = 0; t < 50; ++t) {
    for (auto& x : r) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
    a.step(r, ga);
    b.step(r, gb);
    for (std::size_t i = 0; i < 100; ++i) ASSERT_EQ(a.choices()[i], b.choices()[i]);
  }
}

TEST(finite_dynamics, reset_clears_everything) {
  finite_dynamics dyn{make_params(2, 0.1, 0.7), 30};
  rng gen{11};
  dyn.step(std::vector<std::uint8_t>{1, 0}, gen);
  dyn.reset();
  EXPECT_EQ(dyn.steps(), 0U);
  EXPECT_EQ(dyn.adopters(), 0U);
  EXPECT_DOUBLE_EQ(dyn.popularity()[0], 0.5);
  for (const std::int32_t c : dyn.choices()) EXPECT_EQ(c, -1);
}

// --- heterogeneous rules ------------------------------------------------------------

TEST(finite_dynamics, heterogeneous_rules_validation) {
  finite_dynamics dyn{make_params(2, 0.1, 0.6), 3};
  EXPECT_THROW(dyn.set_agent_rules({{0.1, 0.9}}), std::invalid_argument);  // wrong size
  EXPECT_THROW(dyn.set_agent_rules({{0.9, 0.1}, {0.1, 0.9}, {0.1, 0.9}}),
               std::invalid_argument);  // alpha > beta
  EXPECT_NO_THROW(dyn.set_agent_rules({{0.1, 0.9}, {0.0, 1.0}, {0.5, 0.5}}));
}

TEST(finite_dynamics, deterministic_adopters_always_commit_on_good) {
  // Agents with (alpha=0, beta=1) commit exactly when the signal is good.
  finite_dynamics dyn{make_params(2, 1.0, 0.6), 100};
  dyn.set_agent_rules(std::vector<adoption_rule>(100, {0.0, 1.0}));
  rng gen{12};
  dyn.step(std::vector<std::uint8_t>{1, 1}, gen);
  EXPECT_EQ(dyn.adopters(), 100U);
  dyn.step(std::vector<std::uint8_t>{0, 0}, gen);
  EXPECT_EQ(dyn.adopters(), 0U);
}

TEST(finite_dynamics, mixed_population_biases_towards_sensitive_agents) {
  // Half the agents never adopt (alpha = beta = 0): adopter count stays at
  // most N/2.
  finite_dynamics dyn{make_params(2, 0.5, 0.8), 100};
  std::vector<adoption_rule> rules(100, {0.0, 0.0});
  for (std::size_t i = 0; i < 50; ++i) rules[i] = {1.0, 1.0};
  dyn.set_agent_rules(std::move(rules));
  rng gen{13};
  for (int t = 0; t < 20; ++t) {
    dyn.step(std::vector<std::uint8_t>{1, 0}, gen);
    EXPECT_EQ(dyn.adopters(), 50U);
  }
}

// --- topology ------------------------------------------------------------------------

TEST(finite_dynamics, topology_size_mismatch_throws) {
  finite_dynamics dyn{make_params(2, 0.1, 0.6), 10};
  const graph::graph g = graph::graph::ring(11);
  EXPECT_THROW(dyn.set_topology(&g), std::invalid_argument);
}

TEST(finite_dynamics, network_mode_keeps_invariants) {
  const graph::graph g = graph::graph::ring(100);
  finite_dynamics dyn{make_params(3, 0.1, 0.6), 100};
  dyn.set_topology(&g);
  rng gen{14};
  rng env_gen{15};
  std::vector<std::uint8_t> r(3);
  for (int t = 0; t < 200; ++t) {
    for (auto& x : r) x = env_gen.next_bernoulli(0.6) ? 1 : 0;
    dyn.step(r, gen);
    double total = 0.0;
    for (const double q : dyn.popularity()) total += q;
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(finite_dynamics, isolated_agents_fall_back_to_uniform) {
  // Edgeless graph: stage 1 must behave like uniform sampling even with
  // mu = 0 (the documented fallback).
  const graph::graph g{50, std::vector<graph::graph::edge>{}};
  finite_dynamics dyn{make_params(2, 0.0, 1.0, 1.0), 50};
  dyn.set_topology(&g);
  rng gen{16};
  running_stats first_option;
  for (int t = 0; t < 200; ++t) {
    dyn.step(std::vector<std::uint8_t>{1, 1}, gen);
    first_option.add(static_cast<double>(dyn.stage_counts()[0]));
  }
  EXPECT_NEAR(first_option.mean(), 25.0, 2.0);
}

TEST(finite_dynamics, network_convergence_on_complete_graph_matches_mixed) {
  // The complete graph is "everyone can copy everyone" — same as the mixed
  // mode in expectation.  Check both find the best option.
  const dynamics_params params = theorem_params(2, 0.62);
  const graph::graph g = graph::graph::complete(200);

  finite_dynamics with_graph{params, 200};
  with_graph.set_topology(&g);
  finite_dynamics mixed{params, 200};

  rng g1{17};
  rng g2{18};
  rng env_gen{19};
  const std::vector<double> etas{0.85, 0.3};
  std::vector<std::uint8_t> r(2);
  running_stats mass_graph;
  running_stats mass_mixed;
  for (int t = 0; t < 800; ++t) {
    for (std::size_t j = 0; j < 2; ++j) r[j] = env_gen.next_bernoulli(etas[j]) ? 1 : 0;
    with_graph.step(r, g1);
    mixed.step(r, g2);
    if (t >= 400) {
      mass_graph.add(with_graph.popularity()[0]);
      mass_mixed.add(mixed.popularity()[0]);
    }
  }
  EXPECT_GT(mass_graph.mean(), 0.7);
  EXPECT_GT(mass_mixed.mean(), 0.7);
  EXPECT_NEAR(mass_graph.mean(), mass_mixed.mean(), 0.1);
}

TEST(finite_dynamics, rejects_bad_construction) {
  EXPECT_THROW((finite_dynamics{make_params(2, 0.1, 0.6), 0}), std::invalid_argument);
  EXPECT_THROW((finite_dynamics{make_params(0, 0.1, 0.6), 10}), std::invalid_argument);
  finite_dynamics dyn{make_params(2, 0.1, 0.6), 10};
  rng gen{20};
  EXPECT_THROW(dyn.step(std::vector<std::uint8_t>{1}, gen), std::invalid_argument);
}

}  // namespace
}  // namespace sgl::core
