#include "env/reward_model.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"

namespace sgl::env {
namespace {

// --- bernoulli_rewards ------------------------------------------------------------

TEST(bernoulli_rewards, frequencies_match_etas) {
  bernoulli_rewards model{{0.9, 0.5, 0.1}};
  rng gen{1};
  std::vector<std::uint8_t> r(3);
  std::vector<running_stats> stats(3);
  for (int t = 1; t <= 50000; ++t) {
    model.sample(static_cast<std::uint64_t>(t), gen, r);
    for (std::size_t j = 0; j < 3; ++j) stats[j].add(r[j]);
  }
  EXPECT_NEAR(stats[0].mean(), 0.9, 0.01);
  EXPECT_NEAR(stats[1].mean(), 0.5, 0.01);
  EXPECT_NEAR(stats[2].mean(), 0.1, 0.01);
}

TEST(bernoulli_rewards, means_and_best) {
  bernoulli_rewards model{{0.3, 0.8, 0.5}};
  EXPECT_EQ(model.num_options(), 3U);
  EXPECT_DOUBLE_EQ(model.mean(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(model.mean(99, 1), 0.8);
  EXPECT_EQ(model.best_option(1), 1U);
  EXPECT_DOUBLE_EQ(model.best_mean(1), 0.8);
  EXPECT_TRUE(model.is_stationary());
}

TEST(bernoulli_rewards, best_option_ties_to_lowest_index) {
  bernoulli_rewards model{{0.5, 0.5}};
  EXPECT_EQ(model.best_option(1), 0U);
}

TEST(bernoulli_rewards, deterministic_extremes) {
  bernoulli_rewards model{{1.0, 0.0}};
  rng gen{2};
  std::vector<std::uint8_t> r(2);
  for (int t = 1; t <= 100; ++t) {
    model.sample(static_cast<std::uint64_t>(t), gen, r);
    EXPECT_EQ(r[0], 1);
    EXPECT_EQ(r[1], 0);
  }
}

TEST(bernoulli_rewards, validates_input) {
  EXPECT_THROW(bernoulli_rewards{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW((bernoulli_rewards{{0.5, 1.5}}), std::invalid_argument);
  EXPECT_THROW((bernoulli_rewards{{-0.1}}), std::invalid_argument);
}

// --- exclusive_rewards ------------------------------------------------------------

TEST(exclusive_rewards, exactly_one_winner_every_step) {
  exclusive_rewards model{{0.7, 0.2, 0.1}};
  rng gen{3};
  std::vector<std::uint8_t> r(3);
  for (int t = 1; t <= 2000; ++t) {
    model.sample(static_cast<std::uint64_t>(t), gen, r);
    EXPECT_EQ(std::accumulate(r.begin(), r.end(), 0), 1);
  }
}

TEST(exclusive_rewards, winner_frequencies) {
  exclusive_rewards model{{0.7, 0.3}};
  rng gen{4};
  std::vector<std::uint8_t> r(2);
  running_stats first;
  for (int t = 1; t <= 50000; ++t) {
    model.sample(static_cast<std::uint64_t>(t), gen, r);
    first.add(r[0]);
  }
  EXPECT_NEAR(first.mean(), 0.7, 0.01);
  EXPECT_DOUBLE_EQ(model.mean(1, 0), 0.7);
  EXPECT_DOUBLE_EQ(model.mean(1, 1), 0.3);
}

TEST(exclusive_rewards, requires_probability_vector) {
  EXPECT_THROW((exclusive_rewards{{0.5, 0.6}}), std::invalid_argument);
  EXPECT_THROW((exclusive_rewards{{0.2, 0.2}}), std::invalid_argument);
}

// --- switching_rewards -------------------------------------------------------------

TEST(switching_rewards, rotates_best_every_period) {
  switching_rewards model{{0.8, 0.4, 0.4}, 10};
  // t in [0,10): identity; t in [10,20): shift by one.
  EXPECT_DOUBLE_EQ(model.mean(5, 0), 0.8);
  EXPECT_DOUBLE_EQ(model.mean(5, 1), 0.4);
  EXPECT_EQ(model.best_option(5), 0U);
  EXPECT_DOUBLE_EQ(model.mean(15, 2), 0.8);  // base[(2 + 1) % 3] = base[0]
  EXPECT_EQ(model.best_option(15), 2U);
  EXPECT_EQ(model.best_option(25), 1U);
  EXPECT_EQ(model.best_option(35), 0U);  // full cycle
  EXPECT_FALSE(model.is_stationary());
}

TEST(switching_rewards, sampling_tracks_current_means) {
  switching_rewards model{{1.0, 0.0}, 5};
  rng gen{5};
  std::vector<std::uint8_t> r(2);
  model.sample(2, gen, r);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 0);
  model.sample(7, gen, r);  // shifted: option 1 now has quality 1
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(r[1], 1);
}

TEST(switching_rewards, rejects_zero_period) {
  EXPECT_THROW((switching_rewards{{0.5, 0.4}, 0}), std::invalid_argument);
}

// --- drifting_rewards --------------------------------------------------------------

TEST(drifting_rewards, interpolates_linearly) {
  drifting_rewards model{{0.0, 1.0}, {1.0, 0.0}, 11};
  EXPECT_DOUBLE_EQ(model.mean(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.mean(6, 0), 0.5);
  EXPECT_DOUBLE_EQ(model.mean(11, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.mean(999, 0), 1.0);  // clamps at end
  EXPECT_DOUBLE_EQ(model.mean(6, 1), 0.5);
  EXPECT_FALSE(model.is_stationary());
}

TEST(drifting_rewards, best_option_crosses_over) {
  drifting_rewards model{{0.9, 0.1}, {0.1, 0.9}, 101};
  EXPECT_EQ(model.best_option(1), 0U);
  EXPECT_EQ(model.best_option(101), 1U);
}

TEST(drifting_rewards, validates_input) {
  EXPECT_THROW((drifting_rewards{{0.5}, {0.5, 0.5}, 10}), std::invalid_argument);
  EXPECT_THROW((drifting_rewards{{0.5}, {0.5}, 1}), std::invalid_argument);
}

// --- schedule_rewards --------------------------------------------------------------

TEST(schedule_rewards, replays_and_wraps) {
  schedule_rewards model{{{1, 0}, {0, 1}, {1, 1}}};
  rng gen{6};
  std::vector<std::uint8_t> r(2);
  model.sample(1, gen, r);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 0);
  model.sample(2, gen, r);
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(r[1], 1);
  model.sample(4, gen, r);  // wraps to row 0
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 0);
}

TEST(schedule_rewards, mean_is_column_frequency) {
  schedule_rewards model{{{1, 0}, {0, 1}, {1, 1}, {1, 0}}};
  EXPECT_DOUBLE_EQ(model.mean(1, 0), 0.75);
  EXPECT_DOUBLE_EQ(model.mean(1, 1), 0.5);
}

TEST(schedule_rewards, validates_table) {
  EXPECT_THROW(schedule_rewards{std::vector<std::vector<std::uint8_t>>{}},
               std::invalid_argument);
  EXPECT_THROW((schedule_rewards{{{1, 0}, {1}}}), std::invalid_argument);
  EXPECT_THROW((schedule_rewards{{{2, 0}}}), std::invalid_argument);
}

// --- two_level_etas ----------------------------------------------------------------

TEST(two_level_etas, builds_canonical_vector) {
  const auto etas = two_level_etas(4, 0.75, 0.5);
  EXPECT_EQ(etas, (std::vector<double>{0.75, 0.5, 0.5, 0.5}));
  EXPECT_THROW(two_level_etas(0, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(two_level_etas(2, 1.5, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace sgl::env
