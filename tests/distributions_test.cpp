#include "support/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/gof.h"
#include "support/rng.h"
#include "support/stats.h"

namespace sgl {
namespace {

constexpr double k_reject_level = 1e-4;  // statistical tests use fixed seeds

// --- normal -------------------------------------------------------------------

TEST(normal_sampler, moments) {
  rng gen{1};
  running_stats s;
  for (int i = 0; i < 200000; ++i) s.add(sample_standard_normal(gen));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(normal_sampler, ks_against_normal_cdf) {
  rng gen{2};
  std::vector<double> xs(5000);
  for (double& x : xs) x = sample_standard_normal(gen);
  std::sort(xs.begin(), xs.end());
  std::vector<double> cdf(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) cdf[i] = normal_cdf(xs[i]);
  EXPECT_GT(ks_test_from_cdf(cdf).p_value, k_reject_level);
}

TEST(normal_sampler, location_and_scale) {
  rng gen{3};
  running_stats s;
  for (int i = 0; i < 100000; ++i) s.add(sample_normal(gen, 5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

// --- exponential ---------------------------------------------------------------

TEST(exponential_sampler, moments_and_positivity) {
  rng gen{4};
  running_stats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = sample_exponential(gen, 2.0);
    EXPECT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), 0.5, 0.02);
}

TEST(exponential_sampler, ks_fit) {
  rng gen{5};
  constexpr double rate = 0.7;
  std::vector<double> xs(5000);
  for (double& x : xs) x = sample_exponential(gen, rate);
  std::sort(xs.begin(), xs.end());
  std::vector<double> cdf(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) cdf[i] = 1.0 - std::exp(-rate * xs[i]);
  EXPECT_GT(ks_test_from_cdf(cdf).p_value, k_reject_level);
}

// --- geometric -----------------------------------------------------------------

TEST(geometric_sampler, pmf_chi_square) {
  rng gen{6};
  constexpr double p = 0.3;
  constexpr int cap = 30;
  std::vector<std::uint64_t> counts(cap + 1, 0);
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[std::min<std::uint64_t>(sample_geometric(gen, p), cap)];
  }
  std::vector<double> expected(cap + 1, 0.0);
  double tail = 1.0;
  for (int k = 0; k < cap; ++k) {
    expected[k] = p * std::pow(1.0 - p, k);
    tail -= expected[k];
  }
  expected[cap] = tail;
  EXPECT_GT(chi_square_test(counts, expected).p_value, k_reject_level);
}

TEST(geometric_sampler, p_one_is_always_zero) {
  rng gen{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_geometric(gen, 1.0), 0U);
}

// --- binomial ------------------------------------------------------------------

struct binomial_case {
  std::uint64_t n;
  double p;
};

class binomial_pmf_test : public ::testing::TestWithParam<binomial_case> {};

TEST_P(binomial_pmf_test, chi_square_against_exact_pmf) {
  const auto [n, p] = GetParam();
  rng gen{static_cast<std::uint64_t>(n * 7919) + 11};
  std::vector<std::uint64_t> counts(n + 1, 0);
  constexpr int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[sample_binomial(gen, n, p)];

  std::vector<double> expected(n + 1, 0.0);
  for (std::uint64_t k = 0; k <= n; ++k) {
    const double log_pmf = std::lgamma(static_cast<double>(n + 1)) -
                           std::lgamma(static_cast<double>(k + 1)) -
                           std::lgamma(static_cast<double>(n - k + 1)) +
                           static_cast<double>(k) * std::log(p) +
                           static_cast<double>(n - k) * std::log1p(-p);
    expected[k] = std::exp(log_pmf);
  }
  EXPECT_GT(chi_square_test(counts, expected).p_value, k_reject_level)
      << "n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    regimes, binomial_pmf_test,
    ::testing::Values(binomial_case{1, 0.5},      // Bernoulli
                      binomial_case{5, 0.2},      // inversion, tiny
                      binomial_case{20, 0.4},     // inversion, moderate np
                      binomial_case{40, 0.04},    // inversion, skewed
                      binomial_case{60, 0.5},     // BTRS
                      binomial_case{100, 0.2},    // BTRS
                      binomial_case{100, 0.8},    // BTRS via symmetry
                      binomial_case{250, 0.33},   // BTRS larger
                      binomial_case{50, 0.97}));  // symmetry + inversion

TEST(binomial_sampler, edge_cases) {
  rng gen{8};
  EXPECT_EQ(sample_binomial(gen, 0, 0.5), 0U);
  EXPECT_EQ(sample_binomial(gen, 100, 0.0), 0U);
  EXPECT_EQ(sample_binomial(gen, 100, 1.0), 100U);
  EXPECT_EQ(sample_binomial(gen, 100, -0.5), 0U);
  EXPECT_EQ(sample_binomial(gen, 100, 1.5), 100U);
}

TEST(binomial_sampler, large_n_moments) {
  rng gen{9};
  constexpr std::uint64_t n = 1000000;
  constexpr double p = 0.37;
  running_stats s;
  for (int i = 0; i < 3000; ++i) s.add(static_cast<double>(sample_binomial(gen, n, p)));
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(s.mean(), nd * p, 5.0 * std::sqrt(nd * p * (1 - p) / 3000.0));
  EXPECT_NEAR(s.stddev(), std::sqrt(nd * p * (1 - p)), 20.0);
}

TEST(binomial_sampler, never_exceeds_n) {
  rng gen{10};
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(sample_binomial(gen, 17, 0.9), 17U);
  }
}

// --- multinomial ----------------------------------------------------------------

TEST(multinomial_sampler, counts_sum_to_n) {
  rng gen{11};
  const std::vector<double> w{0.2, 0.3, 0.5};
  std::vector<std::uint64_t> out(3);
  for (int i = 0; i < 1000; ++i) {
    sample_multinomial(gen, 1000, w, out);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::uint64_t{0}), 1000U);
  }
}

TEST(multinomial_sampler, marginals_are_binomial_means) {
  rng gen{12};
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};  // unnormalized on purpose
  std::vector<std::uint64_t> out(4);
  std::vector<running_stats> stats(4);
  constexpr std::uint64_t n = 10000;
  for (int i = 0; i < 2000; ++i) {
    sample_multinomial(gen, n, w, out);
    for (std::size_t j = 0; j < 4; ++j) stats[j].add(static_cast<double>(out[j]));
  }
  for (std::size_t j = 0; j < 4; ++j) {
    const double pj = w[j] / 10.0;
    EXPECT_NEAR(stats[j].mean(), static_cast<double>(n) * pj,
                5.0 * std::sqrt(static_cast<double>(n) * pj * (1 - pj) / 2000.0) + 1.0);
  }
}

TEST(multinomial_sampler, zero_weight_categories_get_nothing) {
  rng gen{13};
  const std::vector<double> w{0.0, 1.0, 0.0};
  std::vector<std::uint64_t> out(3);
  sample_multinomial(gen, 500, w, out);
  EXPECT_EQ(out[0], 0U);
  EXPECT_EQ(out[1], 500U);
  EXPECT_EQ(out[2], 0U);
}

TEST(multinomial_sampler, single_category) {
  rng gen{14};
  const std::vector<double> w{2.0};
  std::vector<std::uint64_t> out(1);
  sample_multinomial(gen, 42, w, out);
  EXPECT_EQ(out[0], 42U);
}

TEST(multinomial_sampler, rejects_bad_input) {
  rng gen{15};
  std::vector<std::uint64_t> out(2);
  EXPECT_THROW(sample_multinomial(gen, 10, std::vector<double>{0.5}, out),
               std::invalid_argument);
  EXPECT_THROW(sample_multinomial(gen, 10, std::vector<double>{-1.0, 2.0}, out),
               std::invalid_argument);
  EXPECT_THROW(sample_multinomial(gen, 10, std::vector<double>{0.0, 0.0}, out),
               std::invalid_argument);
}

// --- categorical ----------------------------------------------------------------

TEST(categorical_sampler, frequencies_match_weights) {
  rng gen{16};
  const std::vector<double> w{1.0, 3.0, 6.0};
  std::vector<std::uint64_t> counts(3, 0);
  constexpr int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[sample_categorical(gen, w)];
  const std::vector<double> expected{0.1, 0.3, 0.6};
  EXPECT_GT(chi_square_test(counts, expected).p_value, k_reject_level);
}

TEST(categorical_sampler, skips_zero_weights) {
  rng gen{17};
  const std::vector<double> w{0.0, 1.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sample_categorical(gen, w), 1U);
}

// --- discrete_sampler (alias) ------------------------------------------------------

TEST(discrete_sampler, normalizes_probabilities) {
  const std::vector<double> w{2.0, 6.0};
  const discrete_sampler sampler{w};
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
  EXPECT_EQ(sampler.size(), 2U);
}

TEST(discrete_sampler, chi_square_fit) {
  rng gen{18};
  const std::vector<double> w{0.05, 0.15, 0.45, 0.05, 0.30};
  const discrete_sampler sampler{w};
  std::vector<std::uint64_t> counts(w.size(), 0);
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(gen)];
  EXPECT_GT(chi_square_test(counts, w).p_value, k_reject_level);
}

TEST(discrete_sampler, handles_zero_weight_entries) {
  rng gen{19};
  const std::vector<double> w{0.0, 0.0, 1.0, 0.0};
  const discrete_sampler sampler{w};
  for (int i = 0; i < 500; ++i) EXPECT_EQ(sampler.sample(gen), 2U);
}

TEST(discrete_sampler, single_entry) {
  rng gen{20};
  const discrete_sampler sampler{std::vector<double>{5.0}};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.sample(gen), 0U);
}

TEST(discrete_sampler, rejects_bad_weights) {
  EXPECT_THROW((discrete_sampler{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((discrete_sampler{std::vector<double>{-1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW((discrete_sampler{std::vector<double>{0.0, 0.0}}), std::invalid_argument);
}

// --- gamma / beta ----------------------------------------------------------------

TEST(gamma_sampler, moments_shape_above_one) {
  rng gen{21};
  constexpr double shape = 4.5;
  running_stats s;
  for (int i = 0; i < 100000; ++i) s.add(sample_gamma(gen, shape));
  EXPECT_NEAR(s.mean(), shape, 0.05);
  EXPECT_NEAR(s.variance(), shape, 0.15);
}

TEST(gamma_sampler, moments_shape_below_one) {
  rng gen{22};
  constexpr double shape = 0.4;
  running_stats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = sample_gamma(gen, shape);
    EXPECT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), shape, 0.02);
}

TEST(beta_sampler, moments) {
  rng gen{23};
  constexpr double a = 2.0;
  constexpr double b = 5.0;
  running_stats s;
  for (int i = 0; i < 100000; ++i) {
    const double x = sample_beta(gen, a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), a / (a + b), 0.005);
  EXPECT_NEAR(s.variance(), a * b / ((a + b) * (a + b) * (a + b + 1)), 0.002);
}

TEST(beta_sampler, uniform_special_case) {
  rng gen{24};
  running_stats s;
  for (int i = 0; i < 50000; ++i) s.add(sample_beta(gen, 1.0, 1.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

// --- shuffle ------------------------------------------------------------------

TEST(shuffle, permutes_uniformly) {
  rng gen{25};
  // 3 elements -> 6 permutations; chi-square over permutation ids.
  std::vector<std::uint64_t> counts(6, 0);
  constexpr int n = 60000;
  for (int i = 0; i < n; ++i) {
    std::vector<int> items{0, 1, 2};
    shuffle(gen, std::span<int>{items});
    const std::size_t id = static_cast<std::size_t>(items[0] * 2 +
                                                    (items[1] > items[2] ? 1 : 0));
    ++counts[id];
  }
  const std::vector<double> expected(6, 1.0 / 6.0);
  EXPECT_GT(chi_square_test(counts, expected).p_value, k_reject_level);
}

TEST(shuffle, preserves_elements) {
  rng gen{26};
  std::vector<int> items{5, 6, 7, 8, 9};
  shuffle(gen, std::span<int>{items});
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<int>{5, 6, 7, 8, 9}));
}

TEST(shuffle, empty_and_singleton_are_fine) {
  rng gen{27};
  std::vector<int> empty;
  shuffle(gen, std::span<int>{empty});
  std::vector<int> one{42};
  shuffle(gen, std::span<int>{one});
  EXPECT_EQ(one[0], 42);
}

}  // namespace
}  // namespace sgl
