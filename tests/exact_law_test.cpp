// Exact-law and pinning tests.
//
// 1. Golden RNG outputs: the determinism contract (README: "results are
//    bit-reproducible ... across platforms") is pinned to literal values so
//    any change to the generator or samplers is caught loudly.
// 2. Exact one-step law: for a small population the full joint distribution
//    of (stage counts, adopter counts) is enumerable in closed form; the
//    aggregate engine's samples must chi-square-match the exact pmf — this
//    validates the whole stage-1/stage-2 factorization against hand math,
//    not just against the agent-based engine.
// 3. Sampler regime-boundary regressions (inversion vs BTRS threshold).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/params.h"
#include "support/distributions.h"
#include "support/gof.h"
#include "support/rng.h"

namespace sgl {
namespace {

// --- golden values ----------------------------------------------------------------

TEST(golden, xoshiro_outputs_are_pinned) {
  rng gen{12345};
  EXPECT_EQ(gen.next_u64(), 0xbe6a36374160d49bULL);
  EXPECT_EQ(gen.next_u64(), 0x214aaa0637a688c6ULL);
  EXPECT_EQ(gen.next_u64(), 0xf69d16de9954d388ULL);
  EXPECT_EQ(gen.next_u64(), 0x0c60048c4e96e033ULL);
}

TEST(golden, stream_outputs_are_pinned) {
  rng gen = rng::from_stream(42, 7);
  EXPECT_EQ(gen.next_u64(), 0x6ac27502cb24d3faULL);
  EXPECT_EQ(gen.next_u64(), 0x17aa9151fc95c761ULL);
}

TEST(golden, doubles_are_pinned) {
  rng gen{99};
  EXPECT_DOUBLE_EQ(gen.next_double(), 0.34870385642514956);
  EXPECT_DOUBLE_EQ(gen.next_double(), 0.56400002473842115);
  EXPECT_DOUBLE_EQ(gen.next_double(), 0.37821456048755686);
}

TEST(golden, binomial_draws_are_pinned) {
  rng gen{5};
  EXPECT_EQ(sample_binomial(gen, 1000, 0.3), 291U);
  EXPECT_EQ(sample_binomial(gen, 1000, 0.3), 306U);
  EXPECT_EQ(sample_binomial(gen, 1000, 0.3), 301U);
  EXPECT_EQ(sample_binomial(gen, 1000, 0.3), 300U);
  EXPECT_EQ(sample_binomial(gen, 1000, 0.3), 294U);
}

// --- exact one-step law --------------------------------------------------------------

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = std::lgamma(static_cast<double>(n + 1)) -
                         std::lgamma(static_cast<double>(k + 1)) -
                         std::lgamma(static_cast<double>(n - k + 1)) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

TEST(exact_law, aggregate_one_step_matches_enumerated_pmf) {
  // N = 4, m = 2, start from adopter counts (3, 1), signals R = (1, 0).
  //   p0 = (1-mu) * 3/4 + mu/2,   S0 ~ Binomial(4, p0),
  //   D0 | S0 ~ Binomial(S0, beta),   D1 | S0 ~ Binomial(4 - S0, alpha).
  core::dynamics_params params;
  params.num_options = 2;
  params.mu = 0.2;
  params.beta = 0.7;  // alpha = 0.3
  constexpr std::uint64_t n = 4;
  const double p0 = (1.0 - params.mu) * 0.75 + params.mu / 2.0;
  const double alpha = params.resolved_alpha();
  const std::vector<std::uint8_t> rewards{1, 0};
  const std::vector<std::uint64_t> start{3, 1};

  // Enumerate the exact pmf over outcomes keyed (S0, D0, D1).
  std::map<std::uint64_t, double> exact;
  for (std::uint64_t s0 = 0; s0 <= n; ++s0) {
    for (std::uint64_t d0 = 0; d0 <= s0; ++d0) {
      for (std::uint64_t d1 = 0; d1 <= n - s0; ++d1) {
        const double prob = binomial_pmf(n, s0, p0) *
                            binomial_pmf(s0, d0, params.beta) *
                            binomial_pmf(n - s0, d1, alpha);
        exact[(s0 * 8 + d0) * 8 + d1] += prob;
      }
    }
  }

  // Sample the engine.
  std::map<std::uint64_t, std::uint64_t> observed;
  constexpr int reps = 40000;
  for (int rep = 0; rep < reps; ++rep) {
    rng gen = rng::from_stream(777, static_cast<std::uint64_t>(rep));
    core::aggregate_dynamics dyn{params, n};
    dyn.reset(start);
    dyn.step(rewards, gen);
    const std::uint64_t key =
        (dyn.stage_counts()[0] * 8 + dyn.adopter_counts()[0]) * 8 +
        dyn.adopter_counts()[1];
    ++observed[key];
  }

  // Chi-square of observed counts against the exact probabilities.
  std::vector<std::uint64_t> counts;
  std::vector<double> probabilities;
  for (const auto& [key, prob] : exact) {
    probabilities.push_back(prob);
    const auto it = observed.find(key);
    counts.push_back(it == observed.end() ? 0 : it->second);
  }
  // Every observed key must be an enumerated (possible) outcome.
  std::uint64_t covered = 0;
  for (const std::uint64_t c : counts) covered += c;
  EXPECT_EQ(covered, static_cast<std::uint64_t>(reps));

  const gof_result res = chi_square_test(counts, probabilities);
  EXPECT_GT(res.p_value, 1e-4) << "stat=" << res.statistic;
}

TEST(exact_law, empty_start_uses_uniform_stage_probabilities) {
  // From the fresh (nobody committed) state, stage-1 sampling must be
  // exactly uniform: S0 ~ Binomial(N, 1/2) regardless of mu.
  core::dynamics_params params;
  params.num_options = 2;
  params.mu = 0.3;
  params.beta = 0.6;
  constexpr std::uint64_t n = 6;
  const std::vector<std::uint8_t> rewards{1, 1};

  std::vector<std::uint64_t> counts(n + 1, 0);
  constexpr int reps = 30000;
  for (int rep = 0; rep < reps; ++rep) {
    rng gen = rng::from_stream(888, static_cast<std::uint64_t>(rep));
    core::aggregate_dynamics dyn{params, n};
    dyn.step(rewards, gen);
    ++counts[dyn.stage_counts()[0]];
  }
  std::vector<double> expected(n + 1);
  for (std::uint64_t k = 0; k <= n; ++k) expected[k] = binomial_pmf(n, k, 0.5);
  EXPECT_GT(chi_square_test(counts, expected).p_value, 1e-4);
}

// --- sampler regime boundaries ----------------------------------------------------------

TEST(binomial_boundary, inversion_and_btrs_agree_across_threshold) {
  // n*p = 9.9 uses inversion, n*p = 10.2 uses BTRS; both must match the
  // exact pmf (regression for the dispatch threshold).
  for (const auto& [n, p] : std::vector<std::pair<std::uint64_t, double>>{
           {33, 0.3}, {34, 0.3}, {99, 0.101}, {101, 0.099}}) {
    rng gen{n * 31 + 1};
    std::vector<std::uint64_t> counts(n + 1, 0);
    constexpr int reps = 30000;
    for (int rep = 0; rep < reps; ++rep) ++counts[sample_binomial(gen, n, p)];
    std::vector<double> expected(n + 1);
    for (std::uint64_t k = 0; k <= n; ++k) expected[k] = binomial_pmf(n, k, p);
    EXPECT_GT(chi_square_test(counts, expected).p_value, 1e-4)
        << "n=" << n << " p=" << p;
  }
}

}  // namespace
}  // namespace sgl
