// The store-audit contract, at both levels: the result_store fsck/repair
// API (quarantine-then-recompute round trip) and the `sociolearn_cli fsck`
// subcommand's exit codes — 2 for usage errors, 1 for findings (even when
// repaired), 0 for a clean store.  The CLI half drives the real binary via
// SGL_CLI_PATH (set by CMake when SGL_BUILD_TOOLS is on; skipped when the
// tools are not built).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "service/digest.h"
#include "service/result_store.h"

namespace {

using namespace sgl;
namespace fs = std::filesystem;

class fsck_cli_test : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("sgl-fsck-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  [[nodiscard]] fs::path store_dir() const { return root_ / "store"; }

  /// The single object file in objects/, failing if there is not exactly one.
  [[nodiscard]] fs::path only_object() const {
    fs::path found;
    std::size_t count = 0;
    for (const auto& entry : fs::recursive_directory_iterator(store_dir() / "objects")) {
      if (entry.is_regular_file()) {
        found = entry.path();
        ++count;
      }
    }
    EXPECT_EQ(count, 1U);
    return found;
  }

  fs::path root_;
};

service::digest128 test_digest() {
  return service::fnv1a_128("fsck round-trip payload key");
}

TEST_F(fsck_cli_test, quarantine_then_recompute_round_trip) {
  const std::string payload = R"({"probe":"regret","value":0.25})";
  {
    service::result_store store{store_dir()};
    store.put(test_digest(), payload);
    ASSERT_EQ(store.get(test_digest()), payload);
  }

  // Corrupt the object bytes in place (checksum trailer now lies).
  {
    const fs::path object = only_object();
    std::ofstream out{object, std::ios::binary};
    out << "garbage that is definitely not the framed payload\n";
  }

  service::store_options no_gc;
  no_gc.gc_stale_tmp = false;
  {
    // Report-only fsck: findings listed, nothing touched.
    service::result_store store{store_dir(), no_gc};
    const service::fsck_report report = store.fsck(/*repair=*/false);
    EXPECT_FALSE(report.clean());
    ASSERT_EQ(report.corrupt.size(), 1U);
    EXPECT_FALSE(report.repaired);
    EXPECT_TRUE(fs::exists(only_object())) << "report-only fsck must not move objects";
  }
  {
    // Repair: the corrupt object is quarantined, the digest becomes a miss.
    service::result_store store{store_dir(), no_gc};
    const service::fsck_report report = store.fsck(/*repair=*/true);
    EXPECT_TRUE(report.repaired);
    ASSERT_EQ(report.corrupt.size(), 1U);
    EXPECT_EQ(store.get(test_digest()), std::nullopt)
        << "a quarantined object must never be served";
    EXPECT_FALSE(fs::is_empty(store_dir() / "quarantine"));

    // Recompute: put() the payload again; the store serves it and audits
    // clean (the quarantined copy stays in quarantine/, which is not a
    // finding — it is the record of past repairs).
    store.put(test_digest(), payload);
    EXPECT_EQ(store.get(test_digest()), payload);
    const service::fsck_report after = store.fsck(/*repair=*/false);
    EXPECT_TRUE(after.clean());
    EXPECT_EQ(after.objects_ok, 1U);
    EXPECT_EQ(after.quarantined, 1U);
  }
}

// --- the CLI subcommand ------------------------------------------------------

/// Runs `sociolearn_cli fsck <args>` and returns its exit code, or nullopt
/// when the binary is not available (tools not built).
std::optional<int> run_fsck_cli(const std::string& args) {
  const char* cli = std::getenv("SGL_CLI_PATH");
  if (cli == nullptr || *cli == '\0') return std::nullopt;
  const std::string command =
      std::string{cli} + " fsck " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status < 0) return std::nullopt;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

#define REQUIRE_CLI(result)                                              \
  if (!(result)) GTEST_SKIP() << "SGL_CLI_PATH not set (tools not built)"

TEST_F(fsck_cli_test, usage_errors_exit_2) {
  const std::optional<int> missing_store = run_fsck_cli("");
  REQUIRE_CLI(missing_store);
  EXPECT_EQ(*missing_store, 2) << "--store is required";
  EXPECT_EQ(*run_fsck_cli("--store " + (root_ / "nonexistent").string()), 2)
      << "a missing directory must not be created-and-audited-clean";
  EXPECT_EQ(*run_fsck_cli("--store " + root_.string() + " --no-such-flag"), 2);
}

TEST_F(fsck_cli_test, clean_store_exits_0_findings_exit_1) {
  const std::string payload = "cached result bytes";
  {
    service::result_store store{store_dir()};
    store.put(test_digest(), payload);
  }
  const std::optional<int> clean = run_fsck_cli("--store " + store_dir().string());
  REQUIRE_CLI(clean);
  EXPECT_EQ(*clean, 0);

  // Corrupt the object: fsck reports (exit 1) without --repair, still
  // exits 1 with --repair (findings were found), then audits clean.
  {
    std::ofstream out{only_object(), std::ios::binary};
    out << "flipped bits";
  }
  EXPECT_EQ(*run_fsck_cli("--store " + store_dir().string()), 1);
  EXPECT_TRUE(fs::exists(only_object())) << "no --repair, no quarantine move";
  EXPECT_EQ(*run_fsck_cli("--store " + store_dir().string() + " --repair"), 1)
      << "repaired findings still exit 1 so scripts notice the event";
  EXPECT_EQ(*run_fsck_cli("--store " + store_dir().string()), 0)
      << "after repair the store audits clean";

  // The round trip closes: recompute the object, still clean.
  {
    service::store_options no_gc;
    no_gc.gc_stale_tmp = false;
    service::result_store store{store_dir(), no_gc};
    EXPECT_EQ(store.get(test_digest()), std::nullopt);
    store.put(test_digest(), payload);
  }
  EXPECT_EQ(*run_fsck_cli("--store " + store_dir().string()), 0);
}

}  // namespace
