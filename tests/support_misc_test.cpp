// Tests for table/CSV formatting, flag parsing, and the parallel runners.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/flags.h"
#include "support/json.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/table.h"

namespace sgl {
namespace {

// --- formatting -----------------------------------------------------------------

TEST(fmt, fixed_precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(0.0, 3), "0.000");
}

TEST(fmt, scientific) {
  EXPECT_EQ(fmt_sci(1250000.0, 2), "1.25e+06");
  EXPECT_EQ(fmt_sci(0.004, 1), "4.0e-03");
}

TEST(fmt, plus_minus) {
  EXPECT_EQ(fmt_pm(0.5, 0.01, 2), "0.50 ± 0.01");
}

// --- text_table -----------------------------------------------------------------

TEST(text_table, aligns_columns) {
  text_table t{{"name", "value"}};
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
  EXPECT_EQ(t.columns(), 2U);
}

TEST(text_table, csv_round_trip_simple) {
  text_table t{{"a", "b"}};
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(text_table, csv_escapes_special_cells) {
  text_table t{{"a"}};
  t.add_row({"x,y"});
  t.add_row({"quote\"inside"});
  std::ostringstream out;
  t.write_csv(out);
  EXPECT_EQ(out.str(), "a\n\"x,y\"\n\"quote\"\"inside\"\n");
}

TEST(text_table, rejects_mismatched_rows) {
  text_table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(text_table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(text_table, utf8_width_alignment) {
  // The ± glyph must count as one column, not two bytes.
  text_table t{{"x"}};
  t.add_row({fmt_pm(1.0, 0.5, 1)});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("±"), std::string::npos);
}

// --- flag_set -------------------------------------------------------------------

TEST(flag_set, parses_all_types) {
  flag_set flags{"prog", "test"};
  flags.add_int64("reps", 10, "replications");
  flags.add_double("beta", 0.6, "adopt prob");
  flags.add_bool("quick", false, "fast mode");
  flags.add_string("out", "none", "output file");

  const char* argv[] = {"prog", "--reps", "25", "--beta=0.7", "--quick", "--out", "x.csv"};
  ASSERT_EQ(flags.parse(7, argv), parse_status::ok);
  EXPECT_EQ(flags.get_int64("reps"), 25);
  EXPECT_DOUBLE_EQ(flags.get_double("beta"), 0.7);
  EXPECT_TRUE(flags.get_bool("quick"));
  EXPECT_EQ(flags.get_string("out"), "x.csv");
}

TEST(flag_set, defaults_without_arguments) {
  flag_set flags{"prog", "test"};
  flags.add_int64("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_EQ(flags.parse(1, argv), parse_status::ok);
  EXPECT_EQ(flags.get_int64("n"), 5);
}

TEST(flag_set, get_double_promotes_int_flags) {
  flag_set flags{"prog", "test"};
  flags.add_int64("n", 5, "count");
  const char* argv[] = {"prog"};
  ASSERT_EQ(flags.parse(1, argv), parse_status::ok);
  EXPECT_DOUBLE_EQ(flags.get_double("n"), 5.0);
}

TEST(flag_set, bool_accepts_explicit_values) {
  flag_set flags{"prog", "test"};
  flags.add_bool("x", true, "");
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_EQ(flags.parse(2, argv), parse_status::ok);
  EXPECT_FALSE(flags.get_bool("x"));
}

TEST(flag_set, unknown_flag_is_error) {
  flag_set flags{"prog", "test"};
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_EQ(flags.parse(3, argv), parse_status::error);
}

TEST(flag_set, equals_form_parses_every_type) {
  flag_set flags{"prog", "test"};
  flags.add_int64("reps", 10, "");
  flags.add_double("beta", 0.6, "");
  flags.add_bool("quick", false, "");
  flags.add_string("out", "none", "");
  const char* argv[] = {"prog", "--reps=25", "--beta=0.7", "--quick=true", "--out=x.csv"};
  ASSERT_EQ(flags.parse(5, argv), parse_status::ok);
  EXPECT_EQ(flags.get_int64("reps"), 25);
  EXPECT_DOUBLE_EQ(flags.get_double("beta"), 0.7);
  EXPECT_TRUE(flags.get_bool("quick"));
  EXPECT_EQ(flags.get_string("out"), "x.csv");
}

TEST(flag_set, string_list_flags_accumulate) {
  flag_set flags{"prog", "test"};
  flags.add_string_list("set", "override");
  const char* argv[] = {"prog", "--set", "a=1", "--set=b=2", "--set", "c=3"};
  ASSERT_EQ(flags.parse(6, argv), parse_status::ok);
  const std::vector<std::string> expected{"a=1", "b=2", "c=3"};
  EXPECT_EQ(flags.get_string_list("set"), expected);
}

TEST(flag_set, string_list_defaults_empty) {
  flag_set flags{"prog", "test"};
  flags.add_string_list("set", "override");
  const char* argv[] = {"prog"};
  ASSERT_EQ(flags.parse(1, argv), parse_status::ok);
  EXPECT_TRUE(flags.get_string_list("set").empty());
}

TEST(flag_set, suggests_nearest_flag_for_typos) {
  flag_set flags{"prog", "test"};
  flags.add_int64("horizon", 100, "");
  flags.add_int64("reps", 10, "");
  flags.add_string("name", "x", "");
  EXPECT_EQ(flags.closest_flag("horzon"), "horizon");
  EXPECT_EQ(flags.closest_flag("nme"), "name");
  EXPECT_EQ(flags.closest_flag("repss"), "reps");
  // Nothing close enough: no suggestion.
  EXPECT_EQ(flags.closest_flag("zzzzzzzzzz"), "");
  const char* argv[] = {"prog", "--horzon", "5"};
  EXPECT_EQ(flags.parse(3, argv), parse_status::error);
}

TEST(edit_distance, counts_single_edits) {
  EXPECT_EQ(edit_distance("", ""), 0U);
  EXPECT_EQ(edit_distance("abc", "abc"), 0U);
  EXPECT_EQ(edit_distance("abc", "abd"), 1U);   // substitute
  EXPECT_EQ(edit_distance("abc", "ab"), 1U);    // delete
  EXPECT_EQ(edit_distance("abc", "xabc"), 1U);  // insert
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3U);
  EXPECT_EQ(edit_distance("", "abc"), 3U);
}

TEST(flag_set, bad_value_is_error) {
  flag_set flags{"prog", "test"};
  flags.add_int64("n", 1, "");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_EQ(flags.parse(3, argv), parse_status::error);
}

TEST(flag_set, missing_value_is_error) {
  flag_set flags{"prog", "test"};
  flags.add_int64("n", 1, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_EQ(flags.parse(2, argv), parse_status::error);
}

TEST(flag_set, positional_argument_is_error) {
  flag_set flags{"prog", "test"};
  const char* argv[] = {"prog", "stray"};
  EXPECT_EQ(flags.parse(2, argv), parse_status::error);
}

TEST(flag_set, help_short_circuits) {
  flag_set flags{"prog", "test"};
  const char* argv[] = {"prog", "--help"};
  EXPECT_EQ(flags.parse(2, argv), parse_status::help);
}

TEST(flag_set, duplicate_registration_throws) {
  flag_set flags{"prog", "test"};
  flags.add_int64("n", 1, "");
  EXPECT_THROW(flags.add_double("n", 1.0, ""), std::invalid_argument);
  EXPECT_THROW(flags.add_int64("--bad", 1, ""), std::invalid_argument);
}

TEST(flag_set, unregistered_get_throws) {
  flag_set flags{"prog", "test"};
  EXPECT_THROW(flags.get_int64("ghost"), std::invalid_argument);
}

// --- json -----------------------------------------------------------------------

TEST(json, escape_handles_specials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(json, number_is_shortest_exact_round_trip) {
  EXPECT_EQ(json_number(0.65), "0.65");
  EXPECT_EQ(json_number(1000000.0), "1000000");
  EXPECT_EQ(json_number(1e300), "1e+300");
  EXPECT_EQ(json_number(0.0), "0");
  // A value needing all 17 digits survives the round trip.
  const double awkward = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(awkward)), awkward);
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(json, writer_produces_valid_nested_documents) {
  std::ostringstream out;
  json_writer json{out, 0};  // compact
  json.begin_object();
  json.key("name").value("x");
  json.key("values").begin_array().value(1.5).value(std::uint64_t{2}).end_array();
  json.key("nested").begin_object().key("flag").value(true).end_object();
  json.key("none").null();
  json.key("raw").raw("[0.85, 0.35]");
  json.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"x\",\"values\":[1.5,2],\"nested\":{\"flag\":true},"
            "\"none\":null,\"raw\":[0.85, 0.35]}");
}

TEST(json, writer_rejects_malformed_sequences) {
  std::ostringstream out;
  json_writer json{out};
  json.begin_object();
  EXPECT_THROW(json.value(1.0), std::logic_error);  // value without key
  json.key("k");
  EXPECT_THROW(json.key("k2"), std::logic_error);  // key after key
  json.value(1.0);
  EXPECT_THROW(json.end_array(), std::logic_error);  // mismatched close
}

TEST(text_table, json_is_an_array_of_row_objects) {
  text_table t{{"a", "b"}};
  t.add_row({"1", "x\"y"});
  std::ostringstream out;
  t.write_json(out);
  EXPECT_EQ(out.str(), "[\n  {\n    \"a\": \"1\",\n    \"b\": \"x\\\"y\"\n  }\n]\n");
}

// --- parallel_for ---------------------------------------------------------------

TEST(parallel_for, visits_every_index_once) {
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(parallel_for, empty_range_is_noop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(parallel_for, single_thread_fallback) {
  std::vector<int> order;
  parallel_for(0, 5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(parallel_for, propagates_exceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 37) throw std::runtime_error{"boom"};
                   },
                   4),
      std::runtime_error);
}

// --- parallel_reduce -------------------------------------------------------------

TEST(parallel_reduce, deterministic_across_thread_counts) {
  const auto run = [](unsigned threads) {
    return parallel_reduce<running_stats>(
        1000, [] { return running_stats{}; },
        [](running_stats& s, std::size_t i) {
          // A value that depends on i in a nonlinear way.
          s.add(std::sin(static_cast<double>(i)) * 10.0);
        },
        [](running_stats& into, const running_stats& from) { into.merge(from); },
        threads);
  };
  const running_stats one = run(1);
  const running_stats two = run(2);
  const running_stats eight = run(8);
  EXPECT_DOUBLE_EQ(one.mean(), two.mean());
  EXPECT_DOUBLE_EQ(one.mean(), eight.mean());
  EXPECT_DOUBLE_EQ(one.variance(), eight.variance());
  EXPECT_EQ(one.count(), eight.count());
}

TEST(parallel_reduce, handles_count_smaller_than_shards) {
  const auto result = parallel_reduce<running_stats>(
      3, [] { return running_stats{}; },
      [](running_stats& s, std::size_t i) { s.add(static_cast<double>(i)); },
      [](running_stats& into, const running_stats& from) { into.merge(from); }, 8, 64);
  EXPECT_EQ(result.count(), 3U);
  EXPECT_NEAR(result.mean(), 1.0, 1e-12);
}

TEST(parallel_reduce, propagates_exceptions) {
  EXPECT_THROW(
      (parallel_reduce<int>(
          100, [] { return 0; },
          [](int&, std::size_t i) {
            if (i == 50) throw std::logic_error{"bad"};
          },
          [](int&, const int&) {}, 4)),
      std::logic_error);
}

TEST(default_thread_count, is_positive) { EXPECT_GE(default_thread_count(), 1U); }

// --- the persistent worker pool --------------------------------------------------

TEST(parallel_tasks, runs_every_task_exactly_once) {
  constexpr std::size_t n = 257;
  std::vector<std::atomic<int>> visits(n);
  parallel_tasks(n, [&](std::size_t i) { visits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(parallel_tasks, propagates_first_exception_and_stops_claiming) {
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_tasks(
                   1000,
                   [&](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 3) throw std::runtime_error{"boom"};
                   },
                   2),
               std::runtime_error);
  // Unstarted tasks are skipped after the failure; only a bounded prefix
  // (plus in-flight tasks) ran.
  EXPECT_LT(ran.load(), 1000);
}

TEST(parallel_tasks, nested_submissions_do_not_deadlock) {
  // An engine fanning out inside a replication that is itself a pool task:
  // the inner job must drain even when every worker is busy with the outer
  // one.  (On a single-core host everything runs inline, which is the same
  // contract.)
  constexpr std::size_t outer = 6;
  constexpr std::size_t inner = 8;
  std::atomic<int> total{0};
  parallel_tasks(
      outer,
      [&](std::size_t) {
        parallel_for(0, inner, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), static_cast<int>(outer * inner));
}

TEST(parallel_tasks, reentrant_after_many_submissions) {
  // The pool is a process-wide singleton: thousands of short jobs must not
  // leak or wedge it (this is the sweep scheduler's usage pattern).
  std::atomic<std::size_t> sum{0};
  for (int round = 0; round < 2000; ++round) {
    parallel_tasks(4, [&](std::size_t i) { sum.fetch_add(i); }, 2);
  }
  EXPECT_EQ(sum.load(), 2000U * (0 + 1 + 2 + 3));
}

}  // namespace
}  // namespace sgl
