// Tests for the scenario text format: round-trip over the ENTIRE registry
// (field-exact and run-bit-identical), the --set override grammar, and the
// --sweep axis grammar, including the error paths.

#include "scenario/serialize.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"

namespace sgl::scenario {
namespace {

TEST(serialize, round_trip_is_field_exact_over_the_whole_registry) {
  for (const auto& spec : all_scenarios()) {
    const std::string text = serialize_scenario(spec);
    const scenario_spec parsed = parse_scenario(text);
    EXPECT_EQ(scenario_fields(spec), scenario_fields(parsed)) << spec.name;
    // Serialization is canonical: a second round trip is textually stable.
    EXPECT_EQ(text, serialize_scenario(parsed)) << spec.name;
  }
}

TEST(serialize, round_trip_runs_bit_identically_over_the_whole_registry) {
  for (const auto& spec : all_scenarios()) {
    core::run_config config;
    config.seed = 19;
    config.threads = 2;
    // Large populations get a minimal config so the full-registry sweep
    // stays fast; bit-identicality is config-independent.
    const bool large = spec.num_agents >= 100000;
    config.horizon = large ? 4 : 12;
    config.replications = large ? 1 : 2;

    const scenario_spec parsed = parse_scenario(serialize_scenario(spec));
    const core::run_result original = run(spec, config);
    const core::run_result reparsed = run(parsed, config);
    EXPECT_EQ(original.scalars.regret.mean, reparsed.scalars.regret.mean) << spec.name;
    EXPECT_EQ(original.scalars.regret.half_width, reparsed.scalars.regret.half_width)
        << spec.name;
    EXPECT_EQ(original.scalars.average_reward.mean, reparsed.scalars.average_reward.mean)
        << spec.name;
    EXPECT_EQ(original.scalars.best_mass.mean, reparsed.scalars.best_mass.mean)
        << spec.name;
    EXPECT_EQ(original.scalars.final_best_mass.mean,
              reparsed.scalars.final_best_mass.mean)
        << spec.name;
  }
}

TEST(serialize, groups_and_rules_round_trip) {
  scenario_spec spec;
  spec.name = "grouped";
  spec.params = core::theorem_params(2, 0.65);
  spec.environment.etas = {0.8, 0.4};
  spec.groups = {{60, {0.2, 0.8}}, {40, {0.35, 0.65}}};
  spec.agent_rules = {{0.1, 0.9}, {0.3, 0.7}};
  const scenario_spec parsed = parse_scenario(serialize_scenario(spec));
  ASSERT_EQ(parsed.groups.size(), 2U);
  EXPECT_EQ(parsed.groups[0].size, 60U);
  EXPECT_EQ(parsed.groups[0].rule.alpha, 0.2);
  EXPECT_EQ(parsed.groups[1].rule.beta, 0.65);
  ASSERT_EQ(parsed.agent_rules.size(), 2U);
  EXPECT_EQ(parsed.agent_rules[1].alpha, 0.3);
}

TEST(parse_scenario, partial_specs_keep_defaults_and_allow_comments) {
  const scenario_spec parsed = parse_scenario(
      "# comment-only line\n"
      "name = \"partial\"   # trailing comment\n"
      "\n"
      "params.beta = 0.7\n"
      "environment.etas = [0.9, 0.3]\n");
  EXPECT_EQ(parsed.name, "partial");
  EXPECT_EQ(parsed.params.beta, 0.7);
  ASSERT_EQ(parsed.environment.etas.size(), 2U);
  // Untouched fields keep scenario_spec defaults.
  EXPECT_EQ(parsed.num_agents, 1000U);
  EXPECT_EQ(parsed.engine, engine_kind::auto_select);
}

TEST(parse_scenario, quoted_strings_handle_escapes_exactly) {
  // An escaped backslash before the closing quote must not hide the quote
  // from the comment stripper.
  const scenario_spec parsed = parse_scenario("name = \"a\\\\\" # note\n");
  EXPECT_EQ(parsed.name, "a\\");

  // A backslash that escapes the would-be closing quote leaves the string
  // unterminated.
  EXPECT_THROW((void)parse_scenario("name = \"abc\\\"\n"), std::invalid_argument);
  // Text after the closing quote is an error, not silently dropped.
  EXPECT_THROW((void)parse_scenario("name = \"abc\" def\n"), std::invalid_argument);
  // A lone trailing backslash is a dangling escape.
  scenario_spec spec;
  EXPECT_THROW(apply_override(spec, "name", "\"abc\\"), std::invalid_argument);

  // Escaped quotes and separators survive an array round trip.
  spec.probes = {"with \"quote\"", "with, comma"};
  const scenario_spec round = parse_scenario(serialize_scenario(spec));
  EXPECT_EQ(round.probes, spec.probes);

  // \uXXXX escapes parse (json_escape emits them for control characters,
  // and ensure_ascii JSON encoders emit them for everything non-ASCII).
  EXPECT_EQ(parse_scenario("name = \"\\u0041\\u00e9\"\n").name, "A\xc3\xa9");
  scenario_spec control;
  control.name = std::string{"a\x01z"};
  EXPECT_EQ(parse_scenario(serialize_scenario(control)).name, control.name);
  EXPECT_THROW((void)parse_scenario("name = \"\\u00\"\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("name = \"\\ud800x\"\n"), std::invalid_argument);
}

TEST(parse_scenario, errors_carry_line_numbers) {
  try {
    (void)parse_scenario("name = \"x\"\nnot a key value line\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos);
  }
}

TEST(apply_override, typed_values_and_scientific_integers) {
  scenario_spec spec;
  apply_override(spec, "num_agents=1e5");
  EXPECT_EQ(spec.num_agents, 100000U);
  apply_override(spec, "params.num_options", "10");
  EXPECT_EQ(spec.params.num_options, 10U);
  apply_override(spec, "params.beta=0.72");
  EXPECT_EQ(spec.params.beta, 0.72);
  apply_override(spec, "engine", "\"agent_based\"");
  EXPECT_EQ(spec.engine, engine_kind::agent_based);
  apply_override(spec, "topology.family=watts_strogatz");
  EXPECT_EQ(spec.topology.family, topology_spec::family_kind::watts_strogatz);
  apply_override(spec, "engine=infinite");  // bare enum token also accepted
  EXPECT_EQ(spec.engine, engine_kind::infinite);
  apply_override(spec, "environment.etas=[0.9, 0.5, 0.1]");
  ASSERT_EQ(spec.environment.etas.size(), 3U);
  EXPECT_EQ(spec.environment.etas[2], 0.1);
  apply_override(spec, "probes=[\"regret\", \"hitting_time(eps=0.2)\"]");
  ASSERT_EQ(spec.probes.size(), 2U);
  EXPECT_EQ(spec.probes[1], "hitting_time(eps=0.2)");
}

TEST(apply_override, indexed_keys_append_in_order) {
  scenario_spec spec;
  apply_override(spec, "groups.0.size=300");
  apply_override(spec, "groups.0.alpha=0.05");
  apply_override(spec, "groups.0.beta=0.95");
  apply_override(spec, "groups.1.size=700");
  ASSERT_EQ(spec.groups.size(), 2U);
  EXPECT_EQ(spec.groups[0].size, 300U);
  EXPECT_EQ(spec.groups[0].rule.beta, 0.95);
  EXPECT_EQ(spec.groups[1].size, 700U);
  // Addressing far past the end is an error (no silent gaps).
  EXPECT_THROW(apply_override(spec, "groups.5.size=1"), std::invalid_argument);
}

TEST(apply_override, rejects_bad_keys_and_values) {
  scenario_spec spec;
  EXPECT_THROW(apply_override(spec, "params.beta"), std::invalid_argument);  // no '='
  EXPECT_THROW(apply_override(spec, "params.beta=abc"), std::invalid_argument);
  EXPECT_THROW(apply_override(spec, "num_agents=-5"), std::invalid_argument);
  EXPECT_THROW(apply_override(spec, "num_agents=2.5"), std::invalid_argument);
  EXPECT_THROW(apply_override(spec, "engine=warp_drive"), std::invalid_argument);
  EXPECT_THROW(apply_override(spec, "environment.etas=0.5"), std::invalid_argument);
  EXPECT_THROW(apply_override(spec, "groups.0.gamma=1"), std::invalid_argument);
  EXPECT_THROW(apply_override(spec, "no.such.key=1"), std::invalid_argument);

  try {
    apply_override(spec, "params.bta=0.7");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("params.beta"), std::string::npos)
        << "should suggest the nearest key, got: " << error.what();
  }
}

TEST(sweep_grammar, range_axis_expands_inclusively) {
  const sweep_axis axis = parse_sweep_axis("params.beta=0.55:0.75:0.05");
  EXPECT_EQ(axis.key, "params.beta");
  ASSERT_EQ(axis.values.size(), 5U);
  EXPECT_EQ(axis.values.front(), "0.55");
  EXPECT_EQ(axis.values[2], "0.65");  // rounded to clean decimals
  EXPECT_EQ(axis.values.back(), "0.75");
}

TEST(sweep_grammar, list_axis_keeps_value_texts) {
  const sweep_axis axis = parse_sweep_axis("num_agents=1e3,1e4,1e5");
  EXPECT_EQ(axis.key, "num_agents");
  ASSERT_EQ(axis.values.size(), 3U);
  EXPECT_EQ(axis.values[0], "1e3");
  EXPECT_EQ(axis.values[2], "1e5");

  // Non-numeric lists sweep enum-valued keys.
  const sweep_axis families = parse_sweep_axis("topology.family=ring,torus");
  ASSERT_EQ(families.values.size(), 2U);
  EXPECT_EQ(families.values[1], "torus");
}

TEST(sweep_grammar, rejects_non_finite_range_endpoints) {
  // Regression (found by fuzzing parse_sweep_axis with generated hostile
  // inputs): a NaN endpoint sailed past every ordered comparison — lo > hi
  // is false for NaN, and so is count > 10000 — so the expansion loop ran
  // on a NaN-derived count cast to ~2^63 and the call never returned.
  // Non-finite lo/hi/step must throw like any other malformed axis.
  EXPECT_THROW((void)parse_sweep_axis("params.beta=nan:1:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0:nan:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0:1:nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=inf:1:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0:inf:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0:1:inf"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=-inf:inf:1"),
               std::invalid_argument);
}

TEST(sweep_grammar, grid_is_cartesian_last_axis_fastest) {
  const std::vector<sweep_axis> axes{parse_sweep_axis("params.beta=0.6,0.7"),
                                     parse_sweep_axis("num_agents=100,200,300")};
  const auto grid = expand_sweep(axes);
  ASSERT_EQ(grid.size(), 6U);
  EXPECT_EQ(grid[0][0].second, "0.6");
  EXPECT_EQ(grid[0][1].second, "100");
  EXPECT_EQ(grid[1][1].second, "200");  // last axis varies fastest
  EXPECT_EQ(grid[2][1].second, "300");
  EXPECT_EQ(grid[3][0].second, "0.7");
  EXPECT_EQ(grid[3][1].second, "100");
  EXPECT_EQ(grid[5][1].second, "300");

  // No axes = exactly one run with no assignments.
  const auto single = expand_sweep({});
  ASSERT_EQ(single.size(), 1U);
  EXPECT_TRUE(single[0].empty());
}

TEST(sweep_grammar, rejects_malformed_axes) {
  EXPECT_THROW((void)parse_sweep_axis("params.beta"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("=0.5,0.6"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta="), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0.6:0.5:0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0.5:0.6:0"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0.5:0.6:-0.1"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0.5:0.6"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0:1:1e-9"), std::invalid_argument);
  EXPECT_THROW((void)parse_sweep_axis("params.beta=0.5,,0.6"), std::invalid_argument);
}

TEST(sweep_grammar, overrides_from_sweep_values_apply) {
  const sweep_axis axis = parse_sweep_axis("params.beta=0.55:0.65:0.05");
  scenario_spec spec = get_scenario("mixed_baseline");
  apply_override(spec, axis.key, axis.values[1]);
  EXPECT_EQ(spec.params.beta, 0.6);
}

TEST(serialize, protocol_keys_round_trip_and_are_engine_scoped) {
  scenario_spec spec = get_scenario("gossip_lossy_sweep");
  apply_override(spec, "protocol.drop_probability=0.25");
  apply_override(spec, "protocol.jitter_mean=0.5");
  apply_override(spec, "protocol.max_retries=0");
  apply_override(spec, "protocol.sticky=true");
  apply_override(spec, "protocol.lockstep", "true");
  EXPECT_EQ(spec.protocol.drop_probability, 0.25);
  EXPECT_EQ(spec.protocol.max_retries, 0U);
  EXPECT_TRUE(spec.protocol.sticky);
  EXPECT_TRUE(spec.protocol.lockstep);

  const std::string text = serialize_scenario(spec);
  EXPECT_NE(text.find("protocol.drop_probability = 0.25"), std::string::npos);
  const scenario_spec parsed = parse_scenario(text);
  EXPECT_EQ(scenario_fields(spec), scenario_fields(parsed));

  // Non-protocol specs never emit protocol.* keys (they could not be
  // parsed back: the family is rejected for their engines).
  EXPECT_EQ(serialize_scenario(get_scenario("mixed_baseline")).find("protocol."),
            std::string::npos);

  EXPECT_THROW(apply_override(spec, "protocol.sticky=maybe"), std::invalid_argument);
}

TEST(apply_override, rejects_family_keys_the_engine_does_not_use) {
  // protocol.* on a non-protocol spec: rejected with the engine named.
  scenario_spec aggregate = get_scenario("mixed_baseline");
  try {
    apply_override(aggregate, "protocol.drop_probability=0.5");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("protocol"), std::string::npos) << what;
    EXPECT_NE(what.find("aggregate"), std::string::npos) << what;
  }
  // Same for a default (auto_select) spec: protocol is never auto-selected.
  scenario_spec blank;
  EXPECT_THROW(apply_override(blank, "protocol.drop_probability=0.5"),
               std::invalid_argument);
  // Setting the engine first makes the same key legal.
  apply_override(blank, "engine=protocol");
  EXPECT_NO_THROW(apply_override(blank, "protocol.drop_probability=0.5"));

  // A typo'd protocol key still gets the nearest-key suggestion (and is
  // reported as unknown even when the engine family would not match).
  try {
    apply_override(aggregate, "protocol.drop_probabilty=0.5");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("protocol.drop_probability"),
              std::string::npos)
        << error.what();
  }

  // start / groups / agent_rules / topology.family are likewise rejected
  // when an explicitly chosen engine cannot read them...
  EXPECT_THROW(apply_override(aggregate, "start=[0.5, 0.5]"), std::invalid_argument);
  EXPECT_THROW(apply_override(aggregate, "groups.0.size=10"), std::invalid_argument);
  EXPECT_THROW(apply_override(aggregate, "agent_rules.0.beta=0.9"),
               std::invalid_argument);
  EXPECT_THROW(apply_override(aggregate, "topology.family=ring"),
               std::invalid_argument);
  // ...but stay legal while the engine is auto (they flip auto-selection),
  // and `start = []` (the serialized empty default) is always accepted.
  scenario_spec auto_spec;
  EXPECT_NO_THROW(apply_override(auto_spec, "groups.0.size=10"));
  EXPECT_NO_THROW(apply_override(aggregate, "start=[]"));
}

TEST(validate_spec, protocol_engine_cross_checks) {
  scenario_spec spec = get_scenario("gossip_sync_ideal");
  EXPECT_NO_THROW(validate_spec(spec));
  spec.protocol.drop_probability = 2.0;
  try {
    validate_spec(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("gossip_sync_ideal"), std::string::npos)
        << error.what();
  }

  // A retry budget past the engine's 32-bit field must be rejected, not
  // silently truncated (2^32 would wrap to 0 and disable retries).
  scenario_spec retries = get_scenario("gossip_sync_ideal");
  retries.protocol.max_retries = (1ULL << 32);
  EXPECT_THROW(validate_spec(retries), std::invalid_argument);
}

TEST(validate_spec, engine_flip_cannot_strand_protocol_keys) {
  // apply_override gates protocol.* at assignment time, but "later lines
  // win" lets the engine change afterwards; validate_spec must then refuse
  // to run a spec whose non-default protocol knobs the engine would
  // silently ignore.
  scenario_spec spec = get_scenario("gossip_lossy_sweep");
  apply_override(spec, "engine=aggregate");
  EXPECT_THROW(validate_spec(spec), std::invalid_argument);
  core::run_config config;
  config.horizon = 5;
  config.replications = 1;
  EXPECT_THROW((void)run(spec, config), std::invalid_argument);

  // Default protocol knobs on a non-protocol spec stay legal (every
  // non-protocol spec carries them).
  EXPECT_NO_THROW(validate_spec(get_scenario("mixed_baseline")));
}

TEST(validate_spec, names_both_sides_of_an_etas_mismatch) {
  scenario_spec spec = get_scenario("ring");
  spec.environment.etas = {0.8, 0.4, 0.2};
  try {
    validate_spec(spec);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("3"), std::string::npos) << what;
    EXPECT_NE(what.find("num_options = 2"), std::string::npos) << what;
    EXPECT_NE(what.find("ring"), std::string::npos) << what;
  }
  core::run_config config;
  config.horizon = 5;
  config.replications = 1;
  EXPECT_THROW((void)run(spec, config), std::invalid_argument);
}

TEST(validate_spec, drifting_checks_end_etas_too) {
  scenario_spec spec = get_scenario("drifting-crossover");
  EXPECT_NO_THROW(validate_spec(spec));
  spec.environment.end_etas.pop_back();
  EXPECT_THROW(validate_spec(spec), std::invalid_argument);
}

}  // namespace
}  // namespace sgl::scenario
