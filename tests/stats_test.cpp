#include "support/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"

namespace sgl {
namespace {

// --- running_stats ---------------------------------------------------------------

TEST(running_stats, matches_naive_computation) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  running_stats s;
  for (const double x : xs) s.add(x);

  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_NEAR(s.sum(), mean * static_cast<double>(xs.size()), 1e-12);
}

TEST(running_stats, empty_and_singleton) {
  running_stats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderror(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(running_stats, merge_equals_single_pass) {
  rng gen{1};
  running_stats whole;
  running_stats left;
  running_stats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = gen.next_double() * 10.0 - 5.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(running_stats, merge_with_empty_is_identity) {
  running_stats s;
  s.add(1.0);
  s.add(2.0);
  running_stats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2U);
  EXPECT_NEAR(s.mean(), 1.5, 1e-12);

  running_stats other;
  other.merge(s);
  EXPECT_EQ(other.count(), 2U);
  EXPECT_NEAR(other.mean(), 1.5, 1e-12);
}

TEST(running_stats, numerically_stable_around_large_offset) {
  running_stats s;
  constexpr double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.001, 0.01);  // ±1 alternating
}

// --- confidence intervals -----------------------------------------------------

TEST(confidence_interval, width_shrinks_with_samples) {
  rng gen{2};
  running_stats small;
  running_stats large;
  for (int i = 0; i < 100; ++i) small.add(gen.next_double());
  for (int i = 0; i < 10000; ++i) large.add(gen.next_double());
  EXPECT_GT(confidence_interval(small).half_width,
            confidence_interval(large).half_width);
}

TEST(confidence_interval, rejects_bad_confidence) {
  running_stats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW(confidence_interval(s, 0.0), std::invalid_argument);
  EXPECT_THROW(confidence_interval(s, 1.0), std::invalid_argument);
}

TEST(confidence_interval, coverage_is_near_nominal) {
  // 500 experiments estimating the mean of Uniform(0,1); the 95% CI should
  // cover 0.5 roughly 95% of the time.
  rng gen{3};
  int covered = 0;
  constexpr int experiments = 500;
  for (int e = 0; e < experiments; ++e) {
    running_stats s;
    for (int i = 0; i < 400; ++i) s.add(gen.next_double());
    const mean_ci ci = confidence_interval(s);
    if (ci.lo() <= 0.5 && 0.5 <= ci.hi()) ++covered;
  }
  EXPECT_GE(covered, 440);  // ~88%+ allows Monte-Carlo slack
  EXPECT_LE(covered, experiments);
}

// --- normal quantile / cdf -------------------------------------------------------

TEST(normal_quantile, known_values) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829304, 1e-6);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(1e-6), -4.753424, 1e-4);
}

TEST(normal_quantile, inverts_cdf) {
  for (const double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8);
  }
}

TEST(normal_quantile, rejects_boundary) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-0.5), std::invalid_argument);
}

TEST(normal_cdf, symmetry_and_known_values) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0) + normal_cdf(-1.0), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
}

// --- quantile -----------------------------------------------------------------

TEST(quantile, interpolates_type7) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(quantile(xs, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(quantile, unsorted_input_is_fine) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(quantile, rejects_bad_input) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

// --- histogram ----------------------------------------------------------------

TEST(histogram, bins_and_clamping) {
  histogram h{0.0, 1.0, 4};
  h.add(0.1);    // bin 0
  h.add(0.3);    // bin 1
  h.add(0.55);   // bin 2
  h.add(0.99);   // bin 3
  h.add(-5.0);   // clamped to bin 0
  h.add(7.0);    // clamped to bin 3
  EXPECT_EQ(h.total(), 6U);
  EXPECT_EQ(h.bin_count(0), 2U);
  EXPECT_EQ(h.bin_count(1), 1U);
  EXPECT_EQ(h.bin_count(2), 1U);
  EXPECT_EQ(h.bin_count(3), 2U);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
  EXPECT_NEAR(h.bin_mass(3), 2.0 / 6.0, 1e-12);
}

TEST(histogram, rejects_bad_construction) {
  EXPECT_THROW(histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --- series_stats --------------------------------------------------------------

TEST(series_stats, per_index_means) {
  series_stats s{3};
  s.add_series(std::vector<double>{1.0, 2.0, 3.0});
  s.add_series(std::vector<double>{3.0, 4.0, 5.0});
  EXPECT_EQ(s.replications(), 2U);
  EXPECT_NEAR(s.mean(0), 2.0, 1e-12);
  EXPECT_NEAR(s.mean(1), 3.0, 1e-12);
  EXPECT_NEAR(s.mean(2), 4.0, 1e-12);
}

TEST(series_stats, merge_matches_combined) {
  series_stats a{2};
  series_stats b{2};
  a.add_series(std::vector<double>{1.0, 10.0});
  b.add_series(std::vector<double>{3.0, 30.0});
  b.add_series(std::vector<double>{5.0, 50.0});
  a.merge(b);
  EXPECT_EQ(a.replications(), 3U);
  EXPECT_NEAR(a.mean(0), 3.0, 1e-12);
  EXPECT_NEAR(a.mean(1), 30.0, 1e-12);
}

TEST(series_stats, rejects_mismatches) {
  series_stats s{2};
  EXPECT_THROW(s.add_series(std::vector<double>{1.0}), std::invalid_argument);
  series_stats other{3};
  EXPECT_THROW(s.merge(other), std::invalid_argument);
  EXPECT_THROW(series_stats{0}, std::invalid_argument);
}

// --- OLS ---------------------------------------------------------------------

TEST(fit_ols, exact_line) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{5.0, 7.0, 9.0, 11.0};  // y = 2x + 3
  const ols_fit fit = fit_ols(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(fit_ols, noisy_line_recovers_slope) {
  rng gen{4};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xv = static_cast<double>(i) / 100.0;
    x.push_back(xv);
    y.push_back(-1.5 * xv + 0.25 + 0.01 * (gen.next_double() - 0.5));
  }
  const ols_fit fit = fit_ols(x, y);
  EXPECT_NEAR(fit.slope, -1.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(fit_ols, rejects_degenerate_input) {
  EXPECT_THROW(fit_ols(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_ols(std::vector<double>{1.0, 1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_ols(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgl
