// Property and invariant tests for the dynamics_engine interface: every
// engine, driven polymorphically, must keep popularity on the simplex,
// keep adopter counts consistent with popularity, and honour reset();
// and the aggregate and agent-based engines must produce *identical*
// trajectories from a shared stream in the homogeneous mixed case (they
// sample the same multinomial/binomial factorization in the same order).

#include "core/dynamics_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/experiment.h"
#include "core/finite_dynamics.h"
#include "core/grouped_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

dynamics_params make_params(std::size_t m, double mu, double beta, double alpha = -1.0) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

/// One instance of every engine over the same (m, mu, beta) model.
std::vector<std::unique_ptr<dynamics_engine>> all_engines(const dynamics_params& params,
                                                          std::uint64_t num_agents) {
  std::vector<std::unique_ptr<dynamics_engine>> engines;
  engines.push_back(std::make_unique<aggregate_dynamics>(params, num_agents));
  engines.push_back(std::make_unique<finite_dynamics>(
      params, static_cast<std::size_t>(num_agents)));
  engines.push_back(std::make_unique<infinite_dynamics>(params));
  engines.push_back(std::make_unique<grouped_dynamics>(
      params, std::vector<rule_group>{{num_agents / 2, {0.1, 0.9}},
                                      {num_agents - num_agents / 2, {0.35, 0.65}}}));
  return engines;
}

TEST(dynamics_engine, popularity_stays_on_the_simplex) {
  const dynamics_params params = make_params(5, 0.1, 0.65);
  rng env_gen{3};
  for (auto& engine : all_engines(params, 200)) {
    rng gen{7};
    std::vector<std::uint8_t> rewards(5);
    for (int t = 0; t < 200; ++t) {
      for (auto& x : rewards) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
      engine->step(rewards, gen);
      const auto q = engine->popularity();
      ASSERT_EQ(q.size(), 5U);
      double total = 0.0;
      for (const double x : q) {
        ASSERT_GE(x, 0.0);
        ASSERT_LE(x, 1.0 + 1e-12);
        total += x;
      }
      ASSERT_NEAR(total, 1.0, 1e-9);
    }
    EXPECT_EQ(engine->steps(), 200U);
  }
}

TEST(dynamics_engine, adopter_counts_match_popularity) {
  const dynamics_params params = make_params(4, 0.2, 0.7);
  rng env_gen{5};
  for (auto& engine : all_engines(params, 300)) {
    rng gen{11};
    std::vector<std::uint8_t> rewards(4);
    for (int t = 0; t < 150; ++t) {
      for (auto& x : rewards) x = env_gen.next_bernoulli(0.4) ? 1 : 0;
      engine->step(rewards, gen);
      const auto counts = engine->adopter_counts();
      if (counts.empty()) continue;  // infinite engine: no individuals
      ASSERT_EQ(counts.size(), 4U);
      const std::uint64_t total =
          std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
      ASSERT_LE(total, 300U);
      const auto q = engine->popularity();
      if (total == 0) {
        for (const double x : q) ASSERT_DOUBLE_EQ(x, 0.25);  // uniform rule
      } else {
        for (std::size_t j = 0; j < counts.size(); ++j) {
          ASSERT_DOUBLE_EQ(q[j], static_cast<double>(counts[j]) /
                                     static_cast<double>(total));
        }
      }
    }
  }
}

TEST(dynamics_engine, empty_steps_counted_and_uniform) {
  // beta = 1, alpha = 0, all-bad signals: nobody can ever adopt.  The
  // grouped engine takes its rules from the groups, so it gets the same
  // (0, 1) rule explicitly.
  const dynamics_params params = make_params(3, 0.5, 1.0, 0.0);
  const std::vector<std::uint8_t> all_bad{0, 0, 0};
  std::vector<std::unique_ptr<dynamics_engine>> engines;
  engines.push_back(std::make_unique<aggregate_dynamics>(params, 50));
  engines.push_back(std::make_unique<finite_dynamics>(params, 50));
  engines.push_back(std::make_unique<infinite_dynamics>(params));
  engines.push_back(std::make_unique<grouped_dynamics>(
      params, std::vector<rule_group>{{50, {0.0, 1.0}}}));
  for (auto& engine : engines) {
    rng gen{13};
    for (int t = 0; t < 10; ++t) engine->step(all_bad, gen);
    EXPECT_EQ(engine->empty_steps(), 10U);
    for (const double q : engine->popularity()) EXPECT_DOUBLE_EQ(q, 1.0 / 3.0);
  }
}

TEST(dynamics_engine, reset_restores_the_initial_state) {
  const dynamics_params params = make_params(3, 0.1, 0.6);
  const std::vector<std::uint8_t> rewards{1, 0, 1};
  for (auto& engine : all_engines(params, 80)) {
    rng gen{17};
    for (int t = 0; t < 5; ++t) engine->step(rewards, gen);
    engine->reset();
    EXPECT_EQ(engine->steps(), 0U);
    EXPECT_EQ(engine->empty_steps(), 0U);
    for (const double q : engine->popularity()) ASSERT_DOUBLE_EQ(q, 1.0 / 3.0);
    const auto counts = engine->adopter_counts();
    for (const std::uint64_t d : counts) ASSERT_EQ(d, 0U);
  }
}

TEST(dynamics_engine, aggregate_and_agent_based_share_the_law_exactly) {
  // Homogeneous + fully mixed: the agent-based engine takes the batched
  // multinomial/binomial path, which consumes the generator identically to
  // the aggregate engine — same seed, same rewards, bit-identical
  // popularity trajectory *through the interface*.
  const dynamics_params params = make_params(6, 0.08, 0.64);
  constexpr std::uint64_t n = 1234;
  std::unique_ptr<dynamics_engine> agg = std::make_unique<aggregate_dynamics>(params, n);
  std::unique_ptr<dynamics_engine> fin =
      std::make_unique<finite_dynamics>(params, static_cast<std::size_t>(n));

  rng gen_a{2024};
  rng gen_f{2024};
  rng env_gen{99};
  std::vector<std::uint8_t> rewards(6);
  for (int t = 0; t < 400; ++t) {
    for (auto& x : rewards) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
    agg->step(rewards, gen_a);
    fin->step(rewards, gen_f);
    ASSERT_EQ(gen_a, gen_f) << "engines consumed the stream differently at t=" << t;
    const auto qa = agg->popularity();
    const auto qf = fin->popularity();
    const auto da = agg->adopter_counts();
    const auto df = fin->adopter_counts();
    for (std::size_t j = 0; j < 6; ++j) {
      ASSERT_EQ(da[j], df[j]) << "adopter counts diverged at t=" << t;
      ASSERT_DOUBLE_EQ(qa[j], qf[j]) << "popularity diverged at t=" << t;
    }
    EXPECT_EQ(agg->empty_steps(), fin->empty_steps());
  }
}

TEST(dynamics_engine, batched_choices_are_consistent_with_counts) {
  // The batched path materializes per-agent choices from the sampled
  // counts; they must tally exactly and respect stage counts.
  const dynamics_params params = make_params(4, 0.1, 0.65);
  finite_dynamics dyn{params, 5000};
  rng gen{21};
  rng env_gen{22};
  std::vector<std::uint8_t> rewards(4);
  for (int t = 0; t < 100; ++t) {
    for (auto& x : rewards) x = env_gen.next_bernoulli(0.5) ? 1 : 0;
    dyn.step(rewards, gen);
    std::vector<std::uint64_t> tally(4, 0);
    std::uint64_t sitting_out = 0;
    for (const std::int32_t c : dyn.choices()) {
      if (c >= 0) {
        ++tally[static_cast<std::size_t>(c)];
      } else {
        ++sitting_out;
      }
    }
    std::uint64_t stage_total = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      ASSERT_EQ(tally[j], dyn.adopter_counts()[j]);
      ASSERT_LE(dyn.adopter_counts()[j], dyn.stage_counts()[j]);
      stage_total += dyn.stage_counts()[j];
    }
    ASSERT_EQ(stage_total, 5000U);
    ASSERT_EQ(sitting_out + dyn.adopters(), 5000U);
  }
}

TEST(dynamics_engine, run_scenario_accepts_any_engine_factory) {
  // The generic runner only sees dynamics_engine; every engine kind must
  // run through it, scalars always, curves exactly when requested.
  const dynamics_params params = make_params(3, 0.1, 0.65);
  const std::vector<double> etas{0.8, 0.4, 0.4};
  const env_factory env = [&] { return std::make_unique<env::bernoulli_rewards>(etas); };

  const std::vector<engine_factory> factories{
      [&] { return std::make_unique<infinite_dynamics>(params); },
      [&] { return std::make_unique<aggregate_dynamics>(params, 500); },
      [&] { return std::make_unique<finite_dynamics>(params, 500); },
      [&] {
        return std::make_unique<grouped_dynamics>(
            params, std::vector<rule_group>{{500, {0.35, 0.65}}});
      },
  };

  run_config config;
  config.horizon = 60;
  config.replications = 8;
  config.seed = 5;
  for (const auto& factory : factories) {
    const run_result plain = run_scenario(factory, env, config);
    EXPECT_EQ(plain.scalars.replications, 8U);
    EXPECT_FALSE(plain.curves.has_value());
    EXPECT_NEAR(plain.scalars.average_reward.mean + plain.scalars.regret.mean, 0.8,
                1e-9);

    run_config curved = config;
    curved.collect_curves = true;
    const run_result with_curves = run_scenario(factory, env, curved);
    ASSERT_TRUE(with_curves.curves.has_value());
    EXPECT_EQ(with_curves.curves->best_mass.length(), 60U);
    // Same seed => identical scalar estimates with or without curves.
    EXPECT_DOUBLE_EQ(with_curves.scalars.regret.mean, plain.scalars.regret.mean);
  }
}

TEST(dynamics_engine, infinite_engine_adapters) {
  const dynamics_params params = make_params(4, 0.1, 0.6);
  infinite_dynamics dyn{params};
  const dynamics_engine& engine = dyn;
  EXPECT_TRUE(engine.adopter_counts().empty());
  EXPECT_EQ(engine.num_options(), 4U);
  rng gen{1};
  std::vector<std::uint8_t> rewards{1, 0, 0, 1};
  dyn.step(rewards, gen);  // engine-interface step ignores the generator
  EXPECT_EQ(engine.steps(), 1U);
  const auto p = dyn.distribution();
  const auto q = engine.popularity();
  for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(p[j], q[j]);
}

}  // namespace
}  // namespace sgl::core
