#include "core/infinite_dynamics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algo/full_info.h"
#include "core/params.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

dynamics_params make_params(std::size_t m, double mu, double beta, double alpha = -1.0) {
  dynamics_params p;
  p.num_options = m;
  p.mu = mu;
  p.beta = beta;
  p.alpha = alpha;
  return p;
}

/// Reference implementation: evolve raw weights exactly as eq. (1) states.
std::vector<double> raw_weights_reference(const dynamics_params& params,
                                          const std::vector<std::vector<std::uint8_t>>& rs) {
  const std::size_t m = params.num_options;
  std::vector<double> w(m, 1.0);
  for (const auto& r : rs) {
    double total = 0.0;
    for (const double x : w) total += x;
    std::vector<double> next(m);
    for (std::size_t j = 0; j < m; ++j) {
      const double mult = r[j] != 0 ? params.beta : params.resolved_alpha();
      next[j] = ((1.0 - params.mu) * w[j] + params.mu / static_cast<double>(m) * total) *
                mult;
    }
    w = next;
  }
  return w;
}

TEST(infinite_dynamics, starts_uniform) {
  const infinite_dynamics dyn{make_params(4, 0.1, 0.6)};
  for (const double p : dyn.distribution()) EXPECT_DOUBLE_EQ(p, 0.25);
  EXPECT_NEAR(dyn.log_potential(), std::log(4.0), 1e-12);
  EXPECT_EQ(dyn.steps(), 0U);
}

TEST(infinite_dynamics, matches_raw_weight_recursion) {
  const dynamics_params params = make_params(3, 0.07, 0.65);
  infinite_dynamics dyn{params};
  const std::vector<std::vector<std::uint8_t>> rewards{
      {1, 0, 0}, {0, 1, 0}, {1, 1, 0}, {0, 0, 0}, {1, 0, 1}};
  for (const auto& r : rewards) dyn.step(r);

  const std::vector<double> w = raw_weights_reference(params, rewards);
  double total = 0.0;
  for (const double x : w) total += x;
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(dyn.distribution()[j], w[j] / total, 1e-12);
  }
  // The log-potential tracks ln Σ_j W^t_j of the same recursion.
  EXPECT_NEAR(dyn.log_potential(), std::log(total), 1e-10);
  EXPECT_EQ(dyn.steps(), 5U);
}

TEST(infinite_dynamics, single_step_closed_form) {
  // m = 2, mu = 0.2, beta = 0.6, alpha = 0.4, R = (1, 0) from uniform:
  // pre-mix: (0.5, 0.5) -> stays (0.5, 0.5); multipliers (0.6, 0.4).
  infinite_dynamics dyn{make_params(2, 0.2, 0.6)};
  dyn.step(std::vector<std::uint8_t>{1, 0});
  EXPECT_NEAR(dyn.distribution()[0], 0.6, 1e-12);
  EXPECT_NEAR(dyn.distribution()[1], 0.4, 1e-12);
}

TEST(infinite_dynamics, stays_on_simplex_for_long_runs) {
  infinite_dynamics dyn{make_params(5, 0.02, 0.7)};
  rng gen{1};
  std::vector<std::uint8_t> r(5);
  for (int t = 0; t < 20000; ++t) {
    for (auto& x : r) x = gen.next_bernoulli(0.5) ? 1 : 0;
    dyn.step(r);
    double total = 0.0;
    for (const double p : dyn.distribution()) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(infinite_dynamics, exploration_keeps_probability_floor) {
  // With mu > 0, after the mix every option has pre-adoption mass >= mu/m;
  // after multiplying by alpha >= (1-beta) and normalizing by at most beta,
  // P_j >= (mu/m) * (1-beta) / beta.
  const dynamics_params params = make_params(4, 0.1, 0.6);
  infinite_dynamics dyn{params};
  const std::vector<std::uint8_t> worst{0, 1, 1, 1};  // option 0 always bad
  const double floor = (params.mu / 4.0) * 0.4 / 0.6;
  for (int t = 0; t < 2000; ++t) {
    dyn.step(worst);
    EXPECT_GE(dyn.distribution()[0], floor * 0.999);
  }
}

TEST(infinite_dynamics, mu_zero_equals_hedge_with_rate_delta) {
  // With mu = 0 and alpha = 1-beta the update is P_j ∝ P_j e^{δ R_j}:
  // exactly Hedge with learning rate δ.
  const dynamics_params params = make_params(3, 0.0, 0.65);
  infinite_dynamics dyn{params};
  algo::hedge reference{3, params.delta()};
  rng gen{2};
  std::vector<std::uint8_t> r(3);
  for (int t = 0; t < 200; ++t) {
    for (auto& x : r) x = gen.next_bernoulli(0.4) ? 1 : 0;
    dyn.step(r);
    reference.update(r);
    for (std::size_t j = 0; j < 3; ++j) {
      ASSERT_NEAR(dyn.distribution()[j], reference.distribution()[j], 1e-9);
    }
  }
}

TEST(infinite_dynamics, reset_uniform) {
  infinite_dynamics dyn{make_params(2, 0.1, 0.6)};
  dyn.step(std::vector<std::uint8_t>{1, 0});
  dyn.reset();
  EXPECT_DOUBLE_EQ(dyn.distribution()[0], 0.5);
  EXPECT_EQ(dyn.steps(), 0U);
  EXPECT_NEAR(dyn.log_potential(), std::log(2.0), 1e-12);
}

TEST(infinite_dynamics, nonuniform_reset) {
  infinite_dynamics dyn{make_params(3, 0.1, 0.6)};
  const std::vector<double> start{0.2, 0.3, 0.5};
  dyn.reset(start);
  EXPECT_DOUBLE_EQ(dyn.distribution()[2], 0.5);
  dyn.step(std::vector<std::uint8_t>{0, 0, 1});
  EXPECT_GT(dyn.distribution()[2], 0.5);  // winner gains
}

TEST(infinite_dynamics, nonuniform_reset_validation) {
  infinite_dynamics dyn{make_params(3, 0.1, 0.6)};
  EXPECT_THROW(dyn.reset(std::vector<double>{0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(dyn.reset(std::vector<double>{0.5, 0.5, 0.5}), std::invalid_argument);
  EXPECT_THROW(dyn.reset(std::vector<double>{-0.1, 0.6, 0.5}), std::invalid_argument);
}

TEST(infinite_dynamics, rejects_mismatched_rewards) {
  infinite_dynamics dyn{make_params(3, 0.1, 0.6)};
  EXPECT_THROW(dyn.step(std::vector<std::uint8_t>{1, 0}), std::invalid_argument);
}

TEST(infinite_dynamics, degenerate_step_restarts_uniform) {
  // alpha = 0 and all-bad signals annihilate every option.
  infinite_dynamics dyn{make_params(2, 0.0, 1.0, 0.0)};
  dyn.step(std::vector<std::uint8_t>{1, 0});
  EXPECT_DOUBLE_EQ(dyn.distribution()[0], 1.0);
  dyn.step(std::vector<std::uint8_t>{0, 0});
  EXPECT_DOUBLE_EQ(dyn.distribution()[0], 0.5);
  EXPECT_EQ(dyn.degenerate_steps(), 1U);
}

TEST(infinite_dynamics, converges_to_best_option_statistically) {
  const dynamics_params params = theorem_params(4, 0.6);
  infinite_dynamics dyn{params};
  rng gen{3};
  const std::vector<double> etas{0.9, 0.3, 0.3, 0.3};
  std::vector<std::uint8_t> r(4);
  double late_mass = 0.0;
  int late_steps = 0;
  for (int t = 0; t < 3000; ++t) {
    for (std::size_t j = 0; j < 4; ++j) r[j] = gen.next_bernoulli(etas[j]) ? 1 : 0;
    dyn.step(r);
    if (t >= 1500) {
      late_mass += dyn.distribution()[0];
      ++late_steps;
    }
  }
  EXPECT_GT(late_mass / late_steps, 0.8);
}

TEST(infinite_dynamics, m_equals_one_is_trivial) {
  infinite_dynamics dyn{make_params(1, 0.1, 0.6)};
  dyn.step(std::vector<std::uint8_t>{1});
  EXPECT_DOUBLE_EQ(dyn.distribution()[0], 1.0);
}

TEST(infinite_dynamics, potential_decreases_by_at_most_log_beta_range) {
  // Per step, Φ shrinks by a factor in [alpha, beta] (each weight is
  // multiplied by alpha or beta after a mass-preserving mix).
  const dynamics_params params = make_params(3, 0.05, 0.6);
  infinite_dynamics dyn{params};
  rng gen{4};
  std::vector<std::uint8_t> r(3);
  double previous = dyn.log_potential();
  for (int t = 0; t < 200; ++t) {
    for (auto& x : r) x = gen.next_bernoulli(0.5) ? 1 : 0;
    dyn.step(r);
    const double drop = previous - dyn.log_potential();
    EXPECT_GE(drop, -std::log(params.beta) - 1e-9);
    EXPECT_LE(drop, -std::log(params.resolved_alpha()) + 1e-9);
    previous = dyn.log_potential();
  }
}

}  // namespace
}  // namespace sgl::core
