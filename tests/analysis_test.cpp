// Tests for the analysis module: autocorrelation machinery, block
// bootstrap, hitting times / burn-in, and the regret decomposition.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "analysis/decomposition.h"
#include "analysis/timeseries.h"
#include "core/params.h"
#include "support/rng.h"

namespace sgl::analysis {
namespace {

std::vector<double> iid_series(std::size_t n, std::uint64_t seed) {
  rng gen{seed};
  std::vector<double> xs(n);
  for (double& x : xs) x = gen.next_double();
  return xs;
}

/// AR(1) with coefficient phi: strong, known autocorrelation rho(k) = phi^k.
std::vector<double> ar1_series(std::size_t n, double phi, std::uint64_t seed) {
  rng gen{seed};
  std::vector<double> xs(n);
  double x = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    x = phi * x + (gen.next_double() - 0.5);
    xs[t] = x;
  }
  return xs;
}

// --- autocorrelation ----------------------------------------------------------

TEST(autocorrelation, lag_zero_is_one_and_iid_decays) {
  const auto xs = iid_series(20000, 1);
  const auto rho = autocorrelation(xs, 10);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (std::size_t k = 1; k <= 10; ++k) EXPECT_NEAR(rho[k], 0.0, 0.03);
}

TEST(autocorrelation, ar1_matches_phi_power) {
  const double phi = 0.8;
  const auto xs = ar1_series(50000, phi, 2);
  const auto rho = autocorrelation(xs, 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_NEAR(rho[k], std::pow(phi, static_cast<double>(k)), 0.04) << "k=" << k;
  }
}

TEST(autocorrelation, constant_series_is_zero_beyond_lag_zero) {
  const std::vector<double> xs(100, 3.5);
  const auto rho = autocorrelation(xs, 5);
  EXPECT_DOUBLE_EQ(rho[0], 1.0);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_DOUBLE_EQ(rho[k], 0.0);
}

TEST(autocorrelation, validates_input) {
  EXPECT_THROW(autocorrelation(std::vector<double>{1.0}, 0), std::invalid_argument);
  EXPECT_THROW(autocorrelation(std::vector<double>{1.0, 2.0}, 2), std::invalid_argument);
}

// --- integrated autocorrelation time / ESS -----------------------------------------

TEST(integrated_autocorrelation_time, iid_is_about_one) {
  const auto xs = iid_series(20000, 3);
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 1.0, 0.25);
}

TEST(integrated_autocorrelation_time, ar1_matches_theory) {
  // For AR(1): tau = (1 + phi) / (1 - phi) = 9 at phi = 0.8.
  const auto xs = ar1_series(200000, 0.8, 4);
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 9.0, 1.5);
}

TEST(effective_sample_size, shrinks_with_correlation) {
  const auto iid = iid_series(10000, 5);
  const auto corr = ar1_series(10000, 0.9, 6);
  EXPECT_GT(effective_sample_size(iid), 5.0 * effective_sample_size(corr));
  EXPECT_DOUBLE_EQ(effective_sample_size(std::vector<double>{}), 0.0);
}

// --- block bootstrap ----------------------------------------------------------------

TEST(block_bootstrap, mean_matches_and_interval_covers) {
  const auto xs = iid_series(5000, 7);
  const mean_ci ci = block_bootstrap_mean(xs, 0.95);
  EXPECT_NEAR(ci.mean, 0.5, 0.02);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LE(ci.lo(), 0.5);
  EXPECT_GE(ci.hi(), 0.5);
}

TEST(block_bootstrap, wider_for_correlated_series) {
  // Same marginal variance scale, but AR(1) correlations must widen the CI
  // relative to a naive i.i.d. resample of the same length.
  const auto corr = ar1_series(4000, 0.9, 8);
  const auto iid = iid_series(4000, 9);
  const mean_ci ci_corr = block_bootstrap_mean(corr, 0.95, 0, 1500, 1);
  const mean_ci ci_iid = block_bootstrap_mean(iid, 0.95, 0, 1500, 1);
  // AR(1) with phi=0.9 has ~19x the asymptotic variance of its innovations;
  // the block bootstrap must reflect a decisively wider interval.
  EXPECT_GT(ci_corr.half_width, 2.0 * ci_iid.half_width);
}

TEST(block_bootstrap, deterministic_given_seed) {
  const auto xs = ar1_series(1000, 0.5, 10);
  const mean_ci a = block_bootstrap_mean(xs, 0.95, 16, 500, 42);
  const mean_ci b = block_bootstrap_mean(xs, 0.95, 16, 500, 42);
  EXPECT_DOUBLE_EQ(a.half_width, b.half_width);
}

TEST(block_bootstrap, validates_input) {
  EXPECT_THROW(block_bootstrap_mean(std::vector<double>{1.0}), std::invalid_argument);
  const auto xs = iid_series(100, 11);
  EXPECT_THROW(block_bootstrap_mean(xs, 1.5), std::invalid_argument);
  EXPECT_THROW(block_bootstrap_mean(xs, 0.95, 0, 5), std::invalid_argument);
}

// --- hitting time / burn-in -----------------------------------------------------------

TEST(hitting_time, finds_first_crossing) {
  const std::vector<double> xs{0.1, 0.4, 0.3, 0.9, 0.95};
  EXPECT_EQ(hitting_time(xs, 0.5), 3U);
  EXPECT_EQ(hitting_time(xs, 0.05), 0U);
  EXPECT_EQ(hitting_time(xs, 2.0), xs.size());
}

TEST(burn_in, detects_settling_point) {
  // Ramp for 50 steps, then flat at 1.0.
  std::vector<double> xs;
  for (int t = 0; t < 50; ++t) xs.push_back(static_cast<double>(t) / 50.0);
  for (int t = 0; t < 150; ++t) xs.push_back(1.0);
  const std::size_t b = burn_in(xs, 0.05);
  EXPECT_GE(b, 45U);
  EXPECT_LE(b, 55U);
}

TEST(burn_in, already_stationary_is_zero) {
  const std::vector<double> xs(100, 0.7);
  EXPECT_EQ(burn_in(xs, 0.01), 0U);
}

TEST(burn_in, validates_band) {
  const std::vector<double> xs(10, 0.0);
  EXPECT_THROW(burn_in(xs, 0.0), std::invalid_argument);
}

// --- regret decomposition ---------------------------------------------------------------

core::dynamics_params decomposition_params(double mu) {
  core::dynamics_params p;
  p.num_options = 3;
  p.mu = mu;
  p.beta = 0.65;
  return p;
}

TEST(decompose_regret, per_option_contributions_sum_to_total) {
  const std::vector<double> mass{0.8, 0.15, 0.05};
  const std::vector<double> etas{0.9, 0.5, 0.3};
  const regret_breakdown b = decompose_regret(mass, etas, decomposition_params(0.05));
  EXPECT_NEAR(b.total, 0.15 * 0.4 + 0.05 * 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(b.per_option[0], 0.0);  // best contributes nothing
  double sum = 0.0;
  for (const double x : b.per_option) sum += x;
  EXPECT_NEAR(sum, b.total, 1e-12);
}

TEST(decompose_regret, exploration_floor_scales_with_mu) {
  const std::vector<double> mass{0.9, 0.05, 0.05};
  const std::vector<double> etas{0.9, 0.5, 0.3};
  const regret_breakdown lo = decompose_regret(mass, etas, decomposition_params(0.01));
  const regret_breakdown hi = decompose_regret(mass, etas, decomposition_params(0.10));
  EXPECT_NEAR(hi.exploration_floor, 10.0 * lo.exploration_floor, 1e-12);
  EXPECT_NEAR(lo.exploration_floor, 0.01 * (0.4 + 0.6) / 3.0, 1e-12);
}

TEST(decompose_regret, converged_population_has_small_excess) {
  // All non-floor mass on the best option: excess ~ 0.
  const double mu = 0.06;
  const std::vector<double> etas{0.9, 0.5, 0.3};
  const std::vector<double> mass{0.98, 0.012, 0.008};
  const regret_breakdown b = decompose_regret(mass, etas, decomposition_params(mu));
  EXPECT_LT(b.convergence_excess, b.total);
  EXPECT_GE(b.convergence_excess, 0.0);
}

TEST(decompose_regret, validates_input) {
  const auto params = decomposition_params(0.05);
  EXPECT_THROW(
      decompose_regret(std::vector<double>{0.5, 0.5}, std::vector<double>{0.5}, params),
      std::invalid_argument);
  EXPECT_THROW(decompose_regret(std::vector<double>{0.9, 0.4},
                                std::vector<double>{0.5, 0.5}, params),
               std::invalid_argument);  // mass does not sum to 1
}

}  // namespace
}  // namespace sgl::analysis
