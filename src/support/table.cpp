#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "support/json.h"

namespace sgl {

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string fmt_sci(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*e", precision, value);
  return buffer;
}

std::string fmt_pm(double mean, double half_width, int precision) {
  return fmt(mean, precision) + " ± " + fmt(half_width, precision);
}

text_table::text_table(std::vector<std::string> header) : header_{std::move(header)} {
  if (header_.empty()) throw std::invalid_argument{"text_table: empty header"};
}

void text_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument{"text_table: row width mismatch"};
  }
  rows_.push_back(std::move(cells));
}

namespace {

/// Display width in code points (the ± glyph is 2 bytes of UTF-8 but one
/// column); counting non-continuation bytes is enough for our cells.
std::size_t display_width(const std::string& s) noexcept {
  std::size_t w = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xc0U) != 0x80U) ++w;
  }
  return w;
}

}  // namespace

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = display_width(header_[c]);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], display_width(row[c]));
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - display_width(row[c]);
      os << (c == 0 ? "" : "  ") << std::string(pad, ' ') << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void text_table::write_json(std::ostream& os) const {
  json_writer json{os};
  json.begin_array();
  for (const auto& row : rows_) {
    json.begin_object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      json.key(header_[c]).value(row[c]);
    }
    json.end_object();
  }
  json.end_array();
  os << '\n';
}

void text_table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace sgl
