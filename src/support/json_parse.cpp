#include "support/json_parse.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace sgl {
namespace {

constexpr std::size_t k_max_depth = 64;

class parser {
 public:
  explicit parser(std::string_view text) : text_{text} {}

  json_value run() {
    json_value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after the JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument{"JSON parse error at offset " + std::to_string(pos_) +
                                ": " + what};
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char expected) {
    if (!consume(expected)) {
      fail(std::string{"expected '"} + expected + "'");
    }
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("expected '" + std::string{word} + "'");
    }
    pos_ += word.size();
  }

  json_value parse_value(std::size_t depth) {
    if (depth > k_max_depth) fail("nesting deeper than 64 levels");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        json_value value;
        value.type = json_value::kind::string;
        value.text = parse_string();
        return value;
      }
      case 't': {
        expect_word("true");
        json_value value;
        value.type = json_value::kind::boolean;
        value.boolean = true;
        return value;
      }
      case 'f': {
        expect_word("false");
        json_value value;
        value.type = json_value::kind::boolean;
        value.boolean = false;
        return value;
      }
      case 'n': {
        expect_word("null");
        return json_value{};
      }
      default: return parse_number();
    }
  }

  json_value parse_object(std::size_t depth) {
    expect('{');
    json_value value;
    value.type = json_value::kind::object;
    skip_whitespace();
    if (consume('}')) return value;
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected a quoted object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect('}');
      return value;
    }
  }

  json_value parse_array(std::size_t depth) {
    expect('[');
    json_value value;
    value.type = json_value::kind::array;
    skip_whitespace();
    if (consume(']')) return value;
    while (true) {
      value.items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char escaped = text_[pos_++];
      switch (escaped) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int digit = 0; digit < 4; ++digit) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // Surrogate pair: the low half must follow as another \uXXXX.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("high surrogate without a following \\u low surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected a value");
    }
    const bool leading_zero = text_[pos_] == '0';
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (leading_zero && pos_ - start > (text_[start] == '-' ? 2U : 1U)) {
      fail("numbers may not have leading zeros");
    }
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits must follow the decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digits must follow the exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    json_value value;
    value.type = json_value::kind::number;
    value.text = std::string{text_.substr(start, pos_ - start)};
    const char* begin = value.text.data();
    const char* end = begin + value.text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value.number);
    if (ec != std::errc{} || ptr != end) fail("unparseable number");
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_fail(std::string_view what, const char* expected) {
  throw std::invalid_argument{std::string{what} + ": expected " + expected};
}

}  // namespace

const json_value* json_value::find(std::string_view key) const noexcept {
  if (type != kind::object) return nullptr;
  // Last key wins on duplicates — the usual JSON-parser convention
  // (RFC 8259 leaves it open), and the safer one on an untrusted wire:
  // what this parser acts on is what a conventional reader would see, so
  // a client can't smuggle one value past validation and have a different
  // one take effect.
  const json_value* found = nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) found = &value;
  }
  return found;
}

const std::string& json_value::as_string(std::string_view what) const {
  if (type != kind::string) type_fail(what, "a string");
  return text;
}

double json_value::as_double(std::string_view what) const {
  if (type != kind::number) type_fail(what, "a number");
  return number;
}

std::int64_t json_value::as_int64(std::string_view what) const {
  if (type != kind::number) type_fail(what, "an integer");
  // Reparse the raw token so values past 2^53 stay exact.
  std::int64_t exact = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, exact);
  if (ec == std::errc{} && ptr == end) return exact;
  if (number != std::floor(number) || std::abs(number) > 9.007199254740992e15) {
    type_fail(what, "an integer");
  }
  return static_cast<std::int64_t>(number);
}

std::uint64_t json_value::as_uint64(std::string_view what) const {
  if (type != kind::number) type_fail(what, "a non-negative integer");
  std::uint64_t exact = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, exact);
  if (ec == std::errc{} && ptr == end) return exact;
  if (number < 0.0 || number != std::floor(number) || number > 9.007199254740992e15) {
    type_fail(what, "a non-negative integer");
  }
  return static_cast<std::uint64_t>(number);
}

bool json_value::as_bool(std::string_view what) const {
  if (type != kind::boolean) type_fail(what, "a boolean");
  return boolean;
}

json_value parse_json(std::string_view text) { return parser{text}.run(); }

}  // namespace sgl
