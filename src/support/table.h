#pragma once

/// \file table.h
/// Column-aligned text tables and CSV export.  Every bench binary prints the
/// table/figure series it reproduces through this, so the console output and
/// the machine-readable artifact always agree.

#include <iosfwd>
#include <string>
#include <vector>

namespace sgl {

/// Fixed-precision decimal formatting ("0.0427").
[[nodiscard]] std::string fmt(double value, int precision = 4);

/// Scientific formatting ("1.25e+06").
[[nodiscard]] std::string fmt_sci(double value, int precision = 2);

/// "mean ± half_width" with a fixed precision.
[[nodiscard]] std::string fmt_pm(double mean, double half_width, int precision = 4);

/// RFC-4180-ish escaping for one CSV cell (quotes cells containing
/// separators/quotes/newlines).  Shared by text_table::write_csv and
/// callers that stream CSV row by row.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// A simple right-aligned table with a header row.
class text_table {
 public:
  explicit text_table(std::vector<std::string> header);

  /// Adds one row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Pretty-prints with aligned columns and a rule under the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing separators/quotes).
  void write_csv(std::ostream& os) const;

  /// JSON: an array of objects, one per row, keyed by the header cells.
  /// Cell values are emitted as JSON strings (the table layer is untyped).
  void write_json(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgl
