#include "support/distributions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgl {
namespace {

/// Stirling tail correction f_c(k) = ln k! - [k ln k - k + 0.5 ln(2 pi k)],
/// as tabulated in Hormann (1993) for the BTRS binomial sampler.
[[nodiscard]] double stirling_correction(double k) noexcept {
  static constexpr double table[] = {
      0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
      0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
      0.01189670994589177, 0.01041126526197209, 0.009255462182712733,
      0.008330563433362871};
  if (k < 10.0) return table[static_cast<int>(k)];
  const double kp1_sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1_sq) / kp1_sq) / (k + 1.0);
}

/// Binomial(n, p) by sequential inversion; requires n * p = O(10) so the
/// expected scan length (and the pmf ratio recurrence) stays well behaved.
[[nodiscard]] std::uint64_t binomial_inversion(rng& gen, std::uint64_t n, double p) noexcept {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));  // pmf at 0
  double u = gen.next_double();
  std::uint64_t k = 0;
  while (u > r && k < n) {
    u -= r;
    ++k;
    r *= (a / static_cast<double>(k)) - s;
  }
  return k;
}

/// Binomial(n, p) by Hormann's BTRS transformed rejection.
/// Preconditions: p <= 0.5 and n * p >= 10.
[[nodiscard]] std::uint64_t binomial_btrs(rng& gen, std::uint64_t n, double p) noexcept {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((nd + 1.0) * p);

  for (;;) {
    const double u = gen.next_double() - 0.5;
    double v = gen.next_double();
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);

    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) +
        stirling_correction(m) + stirling_correction(nd - m) -
        stirling_correction(kd) - stirling_correction(nd - kd);
    if (v <= upper) return static_cast<std::uint64_t>(kd);
  }
}

}  // namespace

double sample_standard_normal(rng& gen) noexcept {
  for (;;) {
    const double x = 2.0 * gen.next_double() - 1.0;
    const double y = 2.0 * gen.next_double() - 1.0;
    const double s = x * x + y * y;
    if (s > 0.0 && s < 1.0) return x * std::sqrt(-2.0 * std::log(s) / s);
  }
}

double sample_normal(rng& gen, double mean, double sd) noexcept {
  return mean + sd * sample_standard_normal(gen);
}

double sample_exponential(rng& gen, double rate) noexcept {
  // 1 - U in (0, 1], so the log is finite.
  return -std::log(1.0 - gen.next_double()) / rate;
}

std::uint64_t sample_geometric(rng& gen, double p) noexcept {
  if (p >= 1.0) return 0;
  const double u = 1.0 - gen.next_double();  // (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t sample_binomial(rng& gen, std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - sample_binomial(gen, n, 1.0 - p);
  if (static_cast<double>(n) * p < 10.0) return binomial_inversion(gen, n, p);
  return binomial_btrs(gen, n, p);
}

double sample_gamma(rng& gen, double shape) noexcept {
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = 1.0 - gen.next_double();  // (0, 1]
    return sample_gamma(gen, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = sample_standard_normal(gen);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - gen.next_double();  // (0, 1]
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double sample_beta(rng& gen, double a, double b) noexcept {
  const double x = sample_gamma(gen, a);
  const double y = sample_gamma(gen, b);
  const double total = x + y;
  if (total <= 0.0) return 0.5;  // degenerate numerical corner
  return x / total;
}

void sample_multinomial(rng& gen, std::uint64_t n, std::span<const double> weights,
                        std::span<std::uint64_t> out) {
  if (weights.size() != out.size()) {
    throw std::invalid_argument{"sample_multinomial: size mismatch"};
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument{"sample_multinomial: weights must be finite and >= 0"};
    }
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"sample_multinomial: weights sum to zero"};

  std::uint64_t remaining = n;
  double mass_left = total;
  for (std::size_t j = 0; j + 1 < weights.size(); ++j) {
    if (remaining == 0 || mass_left <= 0.0) {
      out[j] = 0;
      continue;
    }
    const double cond = std::clamp(weights[j] / mass_left, 0.0, 1.0);
    const std::uint64_t draw = sample_binomial(gen, remaining, cond);
    out[j] = draw;
    remaining -= draw;
    mass_left -= weights[j];
  }
  if (!out.empty()) out[out.size() - 1] = remaining;
}

std::size_t sample_categorical(rng& gen, std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  double u = gen.next_double() * total;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    u -= weights[j];
    if (u < 0.0) return j;
  }
  // Floating-point slack: fall back to the last positive-weight category.
  for (std::size_t j = weights.size(); j-- > 0;) {
    if (weights[j] > 0.0) return j;
  }
  return weights.size() - 1;
}

void discrete_sampler::rebuild(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument{"discrete_sampler: empty weights"};
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument{"discrete_sampler: weights must be finite and >= 0"};
    }
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument{"discrete_sampler: weights sum to zero"};

  const std::size_t m = weights.size();
  normalized_.resize(m);
  probability_.assign(m, 0.0);
  alias_.assign(m, 0);

  // Vose's stable alias construction over scaled probabilities m * p_i.
  scaled_.resize(m);
  small_.clear();
  large_.clear();
  small_.reserve(m);
  large_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    normalized_[i] = weights[i] / total;
    scaled_[i] = normalized_[i] * static_cast<double>(m);
    (scaled_[i] < 1.0 ? small_ : large_).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small_.empty() && !large_.empty()) {
    const std::uint32_t s = small_.back();
    small_.pop_back();
    const std::uint32_t l = large_.back();
    large_.pop_back();
    probability_[s] = scaled_[s];
    alias_[s] = l;
    scaled_[l] = (scaled_[l] + scaled_[s]) - 1.0;
    (scaled_[l] < 1.0 ? small_ : large_).push_back(l);
  }
  for (const std::uint32_t i : large_) probability_[i] = 1.0;
  for (const std::uint32_t i : small_) probability_[i] = 1.0;  // numeric slack
}

std::size_t discrete_sampler::sample(rng& gen) const noexcept {
  const std::size_t column = static_cast<std::size_t>(gen.next_below(probability_.size()));
  return gen.next_double() < probability_[column] ? column : alias_[column];
}

}  // namespace sgl
