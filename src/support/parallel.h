#pragma once

/// \file parallel.h
/// Deterministic replication-level parallelism over a persistent worker
/// pool.  The experiment harnesses run thousands of short Monte-Carlo
/// replications and sweep points; each replication derives its own RNG
/// stream from (master seed, replication index), and reductions run over a
/// *fixed* shard decomposition merged in shard order — so results are
/// bit-identical regardless of thread count or scheduling.  Parallelism
/// only changes wall-clock time.
///
/// Execution model (new in PR 4 — see DESIGN.md "Harness execution model"):
/// instead of spawning and joining std::jthreads on every call, all three
/// entry points below submit a *job* (a fixed list of tasks claimed via one
/// atomic counter) to a lazily started process-wide pool of
/// `default_thread_count() - 1` workers.  The submitting thread always
/// participates, so a machine with one hardware thread never pays any
/// queueing at all (jobs run inline), and nested submissions — an engine
/// fanning out inside a replication that is itself a pool task — cannot
/// deadlock: the inner caller helps drain its own job while it waits.
/// The `threads` argument caps the number of *participants* (caller +
/// helpers) per job, preserving the old oversubscription semantics.
///
/// The callables are templated end to end: the only type erasure is one
/// indirect call per *task* (a whole chunk / shard), never per item, so the
/// per-item fold stays inlineable.

#include <cstddef>
#include <utility>

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <type_traits>
#include <vector>

namespace sgl {

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
[[nodiscard]] unsigned default_thread_count() noexcept;

namespace detail {

/// One submission to the worker pool: `task_count` tasks claimed via a
/// shared atomic cursor and executed by at most `max_helpers` pool workers
/// plus the submitting thread.  POD-ish by design; lives on the submitting
/// thread's stack for the duration of the call.
struct pool_job {
  void (*invoke)(void*, std::size_t) = nullptr;  ///< run task i on ctx
  void* ctx = nullptr;
  std::size_t task_count = 0;
  unsigned max_helpers = 0;  ///< pool workers allowed to join (caller always runs)

  std::atomic<std::size_t> next{0};        ///< next unclaimed task
  std::atomic<std::size_t> unfinished{0};  ///< tasks not yet executed/skipped
  std::atomic<unsigned> helpers{0};        ///< pool workers currently inside
  std::exception_ptr error;                ///< first failure (under error_mutex)
  std::mutex error_mutex;
  pool_job* queue_next = nullptr;  ///< intrusive pending-queue link
};

/// Runs the job to completion: enqueues it for the pool (when helpers are
/// allowed and the pool has workers), executes tasks on the calling thread,
/// waits for stragglers, and rethrows the first task exception.  After an
/// exception no further tasks start; tasks already running complete.
void run_on_pool(pool_job& job);

}  // namespace detail

/// Executes fn(i) exactly once for every task index i in [0, task_count),
/// dynamically distributed over the worker pool; at most `threads`
/// participants run concurrently (0 = hardware concurrency).  Tasks should
/// be coarse (a chunk of work, not one item).  Rethrows the first
/// exception; remaining unstarted tasks are skipped.
template <typename Fn>
void parallel_tasks(std::size_t task_count, Fn&& fn, unsigned threads = 0) {
  if (task_count == 0) return;
  if (threads == 0) threads = default_thread_count();
  using body = std::remove_reference_t<Fn>;
  detail::pool_job job;
  job.invoke = [](void* ctx, std::size_t i) { (*static_cast<body*>(ctx))(i); };
  job.ctx = const_cast<void*>(static_cast<const void*>(std::addressof(fn)));
  job.task_count = task_count;
  job.unfinished.store(task_count, std::memory_order_relaxed);
  const std::size_t cap = std::min<std::size_t>(threads, task_count);
  job.max_helpers = cap > 0 ? static_cast<unsigned>(cap - 1) : 0U;
  detail::run_on_pool(job);
}

/// Runs fn(i) for every i in [begin, end), statically partitioned into (at
/// most) `threads` contiguous chunks executed over the worker pool
/// (0 = auto).  Rethrows the first exception thrown by any invocation.
/// fn must be safe to call concurrently for distinct i.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn, unsigned threads = 0) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (threads == 0) threads = default_thread_count();
  const auto chunks = std::min<std::size_t>(threads, count);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (count + chunks - 1) / chunks;
  parallel_tasks(
      chunks,
      [&](std::size_t c) {
        const std::size_t lo = begin + c * chunk;
        const std::size_t hi = std::min(end, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      threads);
}

/// The default shard count of parallel_reduce — and therefore of every
/// deterministic reduction in the repo.  Part of the output contract:
/// changing it changes which replication folds into which accumulator.
inline constexpr std::size_t default_shard_count = 64;

/// parallel_reduce's fixed decomposition of [0, count) into contiguous
/// blocks: `shard_count` blocks of `chunk` indices (the last ones may be
/// short or empty).  A pure function of (count, shard_count) — never of
/// the thread count — shared with the sweep scheduler (scenario/sweep.cpp)
/// so its per-point shards are bit-identical to parallel_reduce's.
struct shard_layout {
  std::size_t shard_count = 1;
  std::size_t chunk = 0;
};
[[nodiscard]] constexpr shard_layout reduce_layout(
    std::size_t count, std::size_t shard_count = default_shard_count) noexcept {
  if (shard_count == 0) shard_count = 1;
  shard_count = std::min(shard_count, std::max<std::size_t>(count, 1));
  return {shard_count, (count + shard_count - 1) / shard_count};
}

/// Sharded map-reduce over [0, count): the index range is split into
/// `shard_count` contiguous blocks (independent of the thread count), each
/// block is folded sequentially into its own Shard with fold(shard, i), and
/// the shards are combined in block order with merge(accumulator, shard).
/// Because the decomposition and merge order are fixed, the result is
/// deterministic for any number of threads.
template <typename Shard, typename MakeShard, typename Fold, typename Merge>
[[nodiscard]] Shard parallel_reduce(std::size_t count, MakeShard make_shard, Fold fold,
                                    Merge merge, unsigned threads = 0,
                                    std::size_t shard_count = default_shard_count) {
  const shard_layout layout = reduce_layout(count, shard_count);
  shard_count = layout.shard_count;
  if (threads == 0) threads = default_thread_count();

  std::vector<Shard> shards;
  shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards.push_back(make_shard());

  parallel_tasks(
      shard_count,
      [&](std::size_t s) {
        const std::size_t lo = s * layout.chunk;
        const std::size_t hi = std::min(count, lo + layout.chunk);
        for (std::size_t i = lo; i < hi; ++i) fold(shards[s], i);
      },
      threads);

  Shard result = std::move(shards[0]);
  for (std::size_t s = 1; s < shards.size(); ++s) merge(result, shards[s]);
  return result;
}

}  // namespace sgl
