#pragma once

/// \file parallel.h
/// Deterministic replication-level parallelism.  The experiment harnesses
/// run hundreds of independent Monte-Carlo replications; each replication
/// derives its own RNG stream from (master seed, replication index), and
/// reductions run over a *fixed* shard decomposition merged in shard order —
/// so results are bit-identical regardless of thread count or scheduling.
/// Parallelism only changes wall-clock time.

#include <cstddef>
#include <functional>

namespace sgl {

/// Number of worker threads to use by default (hardware concurrency,
/// at least 1).
[[nodiscard]] unsigned default_thread_count() noexcept;

/// Runs fn(i) for every i in [begin, end), statically partitioned into
/// contiguous chunks across `threads` workers (0 = auto).  Rethrows the
/// first exception thrown by any invocation.  fn must be safe to call
/// concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, unsigned threads = 0);

/// Sharded map-reduce over [0, count): the index range is split into
/// `shard_count` contiguous blocks (independent of the thread count), each
/// block is folded sequentially into its own Shard with fold(shard, i), and
/// the shards are combined in block order with merge(accumulator, shard).
/// Because the decomposition and merge order are fixed, the result is
/// deterministic for any number of threads.
template <typename Shard, typename MakeShard, typename Fold, typename Merge>
[[nodiscard]] Shard parallel_reduce(std::size_t count, MakeShard make_shard, Fold fold,
                                    Merge merge, unsigned threads = 0,
                                    std::size_t shard_count = 64);

}  // namespace sgl

// --- implementation --------------------------------------------------------

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sgl {

template <typename Shard, typename MakeShard, typename Fold, typename Merge>
Shard parallel_reduce(std::size_t count, MakeShard make_shard, Fold fold, Merge merge,
                      unsigned threads, std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shard_count = std::min(shard_count, std::max<std::size_t>(count, 1));
  if (threads == 0) threads = default_thread_count();
  threads = static_cast<unsigned>(
      std::min<std::size_t>({threads, shard_count, std::max<std::size_t>(count, 1)}));

  std::vector<Shard> shards;
  shards.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards.push_back(make_shard());

  const std::size_t chunk = (count + shard_count - 1) / shard_count;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    std::atomic<std::size_t> next_shard{0};
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
          if (s >= shard_count) return;
          const std::size_t lo = s * chunk;
          const std::size_t hi = std::min(count, lo + chunk);
          try {
            for (std::size_t i = lo; i < hi; ++i) fold(shards[s], i);
          } catch (...) {
            const std::scoped_lock lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
  }  // join
  if (first_error) std::rethrow_exception(first_error);

  Shard result = std::move(shards[0]);
  for (std::size_t s = 1; s < shards.size(); ++s) merge(result, shards[s]);
  return result;
}

}  // namespace sgl
