#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// We implement our own generator (xoshiro256** seeded through splitmix64)
/// and our own samplers (see distributions.h) instead of using the
/// `<random>` distributions because the standard leaves distribution
/// algorithms implementation-defined: the same seed yields different
/// streams on different standard libraries.  Every experiment in this
/// repository must be bit-reproducible across platforms and across thread
/// counts, so all stochastic behaviour flows through this header.

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace sgl {

/// One step of the splitmix64 generator; also the recommended seeding
/// function for xoshiro-family generators.  Advances `state` in place and
/// returns the next 64-bit output.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based (position-addressable) variant of splitmix64: the word the
/// sequential generator seeded at `seed` would emit on its (counter+1)-th
/// call, computed directly from the counter instead of by iterating.  This
/// is what makes the SIMD step kernels (stream derivation v3, DESIGN.md)
/// possible: every vector lane evaluates its own counter independently, so
/// draws have no sequential dependency and the scalar remainder loop can
/// reproduce any lane's word bit for bit.
[[nodiscard]] constexpr std::uint64_t counter_word(std::uint64_t seed,
                                                  std::uint64_t counter) noexcept {
  std::uint64_t z = seed + (counter + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Probability p ∈ [0,1] as a 64-bit comparison threshold: a uniform word
/// u satisfies u < prob_to_u64(p) with probability p up to 2^-64.  The
/// endpoints are exact-by-convention: p <= 0 maps to 0 (u < 0 never holds)
/// and p >= 1 maps to 2^64-1, which consumers must treat as "always" (the
/// kernels OR in a threshold==max comparison) — that is the only value the
/// open-interval cast below can never produce, since for p < 1 the product
/// p·2^64 rounds to at most 2^64 - 2048.
[[nodiscard]] constexpr std::uint64_t prob_to_u64(double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(p * 0x1.0p64);
}

/// floor(word · bound / 2^64) via 32-bit halves — the bounded draw of
/// stream derivation v3.  Equivalent to the high word of the 128-bit
/// product (exact for bound < 2^32), i.e. Lemire's multiply-shift without
/// the rejection step: each value's probability deviates from 1/bound by
/// less than 2^-64, and the draw always costs exactly one word, which the
/// vector lanes require.
[[nodiscard]] constexpr std::uint64_t scale_bounded(std::uint64_t word,
                                                    std::uint32_t bound) noexcept {
  const std::uint64_t lo = (word & 0xFFFFFFFFULL) * bound;
  const std::uint64_t hi = (word >> 32) * bound;
  return (hi + (lo >> 32)) >> 32;
}

/// Stateless 64-bit mix of two words; used to derive independent stream
/// seeds from (master seed, stream index) pairs.
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL + (stream << 1));
  std::uint64_t a = splitmix64_next(s);
  std::uint64_t b = splitmix64_next(s);
  return a ^ std::rotr(b, 23) ^ stream;
}

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference
/// implementation) — a small, fast, high-quality 256-bit-state generator.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can also drive
/// standard facilities when determinism across platforms is not required
/// (we never rely on that in library code).
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from `seed` via splitmix64, per the authors'
  /// recommendation.  Any seed (including 0) is valid.
  explicit constexpr rng(std::uint64_t seed = 0) noexcept : state_{} {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64_next(s);
  }

  /// An independent generator for logical stream `stream` under a master
  /// `seed`.  Used to give every replication / agent / node its own
  /// deterministic stream regardless of scheduling.
  [[nodiscard]] static constexpr rng from_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
    return rng{mix_seed(seed, stream)};
  }

  /// Derives a child generator from this generator's current state.
  /// Advances this generator.
  [[nodiscard]] constexpr rng split() noexcept { return rng{next_u64() ^ 0xd2b74407b1ce6e93ULL}; }

  /// Next raw 64-bit word.
  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (mask rejection).
  /// Precondition: bound > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t mask = ~std::uint64_t{0} >> std::countl_zero(bound | 1ULL);
    std::uint64_t x = next_u64() & mask;
    while (x >= bound) x = next_u64() & mask;
    return x;
  }

  /// Uniform integer in [0, bound) without modulo bias, via Lemire's
  /// multiply-shift rejection: exactly one 64-bit word except with
  /// probability < bound / 2^64.  Same law as next_below but a different
  /// consumption pattern — used by the network-mode dynamics (stream
  /// derivation v2), where the near-constant word count per draw keeps the
  /// hot loop free of data-dependent rejection loops.  Precondition:
  /// bound > 0.
  constexpr std::uint64_t next_below_mul(std::uint64_t bound) noexcept {
    unsigned __int128 prod =
        static_cast<unsigned __int128>(next_u64()) * bound;
    auto low = static_cast<std::uint64_t>(prod);
    if (low < bound) {  // rare: only then can the draw be biased
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        prod = static_cast<unsigned __int128>(next_u64()) * bound;
        low = static_cast<std::uint64_t>(prod);
      }
    }
    return static_cast<std::uint64_t>(prod >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1ULL));
  }

  /// Bernoulli(p) draw.  p outside [0,1] is clamped by construction:
  /// p <= 0 always returns false, p >= 1 always returns true.
  constexpr bool next_bernoulli(double p) noexcept { return next_double() < p; }

  // --- std::uniform_random_bit_generator interface -----------------------
  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  constexpr result_type operator()() noexcept { return next_u64(); }

  friend constexpr bool operator==(const rng&, const rng&) noexcept = default;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sgl
