#pragma once

/// \file gof.h
/// Goodness-of-fit machinery backing the statistical test suite: chi-square
/// tests that the samplers in distributions.h produce the distributions they
/// claim, Kolmogorov–Smirnov tests for continuous laws, and the special
/// functions (regularized incomplete gamma) they need.

#include <cstdint>
#include <span>

namespace sgl {

/// Regularized lower incomplete gamma P(a, x) (series + continued fraction,
/// Numerical-Recipes style).  Preconditions: a > 0, x >= 0.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Chi-square CDF with k degrees of freedom.
[[nodiscard]] double chi_square_cdf(double x, double dof);

/// Result of a hypothesis test: the statistic and its asymptotic p-value.
struct gof_result {
  double statistic = 0.0;
  double p_value = 1.0;
};

/// Pearson chi-square test of observed counts against expected *probabilities*
/// (which must sum to ~1).  Bins with expected count below `min_expected`
/// are pooled into their right neighbour to keep the asymptotics honest.
/// Preconditions: observed.size() == expected_probability.size() >= 2.
[[nodiscard]] gof_result chi_square_test(std::span<const std::uint64_t> observed,
                                         std::span<const double> expected_probability,
                                         double min_expected = 5.0);

/// One-sample Kolmogorov–Smirnov test against a CDF sampled at the data
/// points: caller supplies `cdf_at_data[i]` = F(sorted_data[i]).
/// Uses the asymptotic Kolmogorov distribution for the p-value.
[[nodiscard]] gof_result ks_test_from_cdf(std::span<const double> cdf_at_sorted_data);

}  // namespace sgl
