#pragma once

/// \file failpoint.h
/// Deterministic fail-point injection — the service layer's nemesis.
///
/// A fail point is a *named site* compiled into production code at an I/O
/// or scheduling edge (`store.rename`, `socket.read_short`, ...).  The
/// site asks the framework "should I fail right now?"; the framework
/// answers from a per-site trigger scripted by hit count or by a seeded
/// Bernoulli stream.  The call site owns the *meaning* of a firing — throw,
/// return a short count, pretend EINTR — so one framework covers every
/// failure shape without knowing any of them.
///
/// Cost when off: `check()` is one relaxed atomic load and a predicted
/// branch (no string hashing, no locks) whenever no site at all is
/// configured — the framework stays compiled into release binaries and the
/// perf gate (BENCH_PR6.json) is unaffected.  Configured sites pay a
/// shared-lock map lookup per hit, which only fault-injection runs see.
///
/// Triggers (the `SGL_FAILPOINTS` DSL, also `set()`):
///
///   SGL_FAILPOINTS="store.rename=2;socket.read_short=3..(1);queue.point=p=0.1@42"
///
///   entries   :=  entry (';' entry)*
///   entry     :=  site '=' spec
///   spec      :=  mode [ '(' arg ')' ]
///   mode      :=  'off'            count hits, never fire (A/B baseline)
///              |  N                fire on exactly the Nth hit (1-based)
///              |  N '..'           fire on every hit from the Nth on
///              |  N '..' M         fire on hits N through M inclusive
///              |  'p=' P '@' SEED  fire each hit with probability P,
///                                  decided by a counter-based stream
///                                  keyed on (site, SEED, hit index) — the
///                                  same hits fire for a given seed no
///                                  matter how threads interleave
///   arg       :=  unsigned integer handed to the site when it fires
///                 (site-defined; e.g. the byte cap of a short read)
///
/// The same schedule philosophy as the `faults.*` nemesis DSL of the
/// netsim layer (DESIGN.md "Fault schedules and trace invariants"), aimed
/// at the serving stack instead of the simulated network.
///
/// Thread-safety: `check()`/`hit_count()` may race freely with each other;
/// `configure()`/`set()`/`clear()` swap configuration under an exclusive
/// lock and are meant for test setup / process start, not steady state.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sgl::failpoints {

namespace detail {
/// Number of configured sites; the fast gate for check().
extern std::atomic<int> g_configured_sites;
[[nodiscard]] std::optional<std::uint64_t> check_slow(std::string_view site);
}  // namespace detail

/// True when any site is configured (including `off` sites).
[[nodiscard]] inline bool active() noexcept {
  return detail::g_configured_sites.load(std::memory_order_relaxed) != 0;
}

/// The per-site query compiled into call sites.  Returns nullopt when the
/// site must not fire (the overwhelmingly common case), or the site's
/// configured argument (default 0) when it must.  Counts a hit against
/// `site` whenever that site is configured.
[[nodiscard]] inline std::optional<std::uint64_t> check(std::string_view site) {
  if (!active()) return std::nullopt;
  return detail::check_slow(site);
}

/// Replaces the whole configuration with the parsed DSL string (see the
/// grammar above; empty string = everything off).  Throws
/// std::invalid_argument naming the offending entry on a parse error, in
/// which case the previous configuration is left untouched.
void configure(std::string_view dsl);

/// Configures (or replaces) one site from its spec, e.g. set("store.rename", "2").
void set(std::string_view site, std::string_view spec);

/// Removes every site (check() returns to the one-load fast path).
void clear();

/// Removes one site; returns false when it was not configured.
bool clear(std::string_view site);

/// Hits recorded against a site since it was configured (0 when not
/// configured — unconfigured sites are never counted).
[[nodiscard]] std::uint64_t hit_count(std::string_view site);

/// The configured site names, sorted (diagnostics, daemon startup log).
[[nodiscard]] std::vector<std::string> configured_sites();

/// Reads `SGL_FAILPOINTS` from the environment and configure()s it.
/// No-op when unset or empty.  Tools call this once at startup; a bad
/// value throws like configure().
void init_from_env();

}  // namespace sgl::failpoints
