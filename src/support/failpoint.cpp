#include "support/failpoint.h"

#include <charconv>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

namespace sgl::failpoints {
namespace detail {

std::atomic<int> g_configured_sites{0};

namespace {

struct site_config {
  enum class mode { off, range, bernoulli };
  mode kind = mode::off;
  std::uint64_t from = 0;  // range: first firing hit (1-based)
  std::uint64_t to = 0;    // range: last firing hit, inclusive
  double p = 0.0;          // bernoulli: per-hit probability
  std::uint64_t seed = 0;  // bernoulli: stream seed
  std::uint64_t arg = 0;   // handed to the site on a firing
  std::atomic<std::uint64_t> hits{0};
};

// The registry: rarely written (test setup / process start), read on every
// hit of a configured site.  Sites hold their hit counters, so readers
// only need the shared lock.
std::shared_mutex g_mutex;
std::map<std::string, std::unique_ptr<site_config>, std::less<>>& registry() {
  static auto* sites = new std::map<std::string, std::unique_ptr<site_config>, std::less<>>;
  return *sites;
}

/// 64-bit FNV-1a — the per-hit Bernoulli stream is counter-based: the
/// decision for hit `index` depends only on (site, seed, index), never on
/// which thread got there first or what fired before.
std::uint64_t fnv1a_64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// splitmix64 finalizer: FNV-1a's high bits barely avalanche on short
/// keys (the trailing index digits only reach the low ~48 bits), so mix
/// before cutting a uniform double from the top.
std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool bernoulli_fires(std::string_view site, std::uint64_t seed, std::uint64_t index,
                     double p) {
  std::string key{site};
  key += '#';
  key += std::to_string(seed);
  key += '#';
  key += std::to_string(index);
  // Top 53 bits -> uniform double in [0, 1).
  const double u =
      static_cast<double>(mix(fnv1a_64(key)) >> 11) * 0x1.0p-53;
  return u < p;
}

[[noreturn]] void parse_fail(std::string_view what, std::string_view text) {
  throw std::invalid_argument{"failpoints: " + std::string{what} + " in '" +
                              std::string{text} + "'"};
}

std::uint64_t parse_uint(std::string_view text, std::string_view context) {
  std::uint64_t out = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) parse_fail("expected an unsigned integer", context);
  return out;
}

/// Parses one trigger spec (the part after '=').  See the header grammar.
std::unique_ptr<site_config> parse_spec(std::string_view spec, std::string_view entry) {
  auto config = std::make_unique<site_config>();

  // Optional trailing '(arg)'.
  if (!spec.empty() && spec.back() == ')') {
    const std::size_t open = spec.rfind('(');
    if (open == std::string_view::npos) parse_fail("unmatched ')'", entry);
    config->arg = parse_uint(spec.substr(open + 1, spec.size() - open - 2), entry);
    spec = spec.substr(0, open);
    while (!spec.empty() && (spec.back() == ' ' || spec.back() == '\t')) {
      spec.remove_suffix(1);  // allow "2..3 (9)"
    }
  }
  if (spec.empty()) parse_fail("empty trigger spec", entry);

  if (spec == "off") {
    config->kind = site_config::mode::off;
    return config;
  }
  if (spec.substr(0, 2) == "p=") {
    const std::size_t at = spec.find('@');
    if (at == std::string_view::npos) {
      parse_fail("bernoulli spec needs a seed: p=PROB@SEED", entry);
    }
    const std::string prob{spec.substr(2, at - 2)};
    char* end = nullptr;
    config->p = std::strtod(prob.c_str(), &end);
    if (end != prob.c_str() + prob.size() || !(config->p >= 0.0) || config->p > 1.0) {
      parse_fail("bernoulli probability must be in [0, 1]", entry);
    }
    config->seed = parse_uint(spec.substr(at + 1), entry);
    config->kind = site_config::mode::bernoulli;
    return config;
  }

  // N | N.. | N..M
  config->kind = site_config::mode::range;
  const std::size_t dots = spec.find("..");
  if (dots == std::string_view::npos) {
    config->from = config->to = parse_uint(spec, entry);
  } else {
    config->from = parse_uint(spec.substr(0, dots), entry);
    const std::string_view rest = spec.substr(dots + 2);
    config->to = rest.empty() ? std::numeric_limits<std::uint64_t>::max()
                              : parse_uint(rest, entry);
  }
  if (config->from == 0) parse_fail("hit counts are 1-based; 0 never fires", entry);
  if (config->to < config->from) parse_fail("empty hit range", entry);
  return config;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::optional<std::uint64_t> check_slow(std::string_view site) {
  const std::shared_lock<std::shared_mutex> lock{g_mutex};
  const auto it = registry().find(site);
  if (it == registry().end()) return std::nullopt;
  site_config& config = *it->second;
  const std::uint64_t index = config.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  switch (config.kind) {
    case site_config::mode::off: return std::nullopt;
    case site_config::mode::range:
      if (index >= config.from && index <= config.to) return config.arg;
      return std::nullopt;
    case site_config::mode::bernoulli:
      if (bernoulli_fires(site, config.seed, index, config.p)) return config.arg;
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace detail

void configure(std::string_view dsl) {
  // Parse everything before touching the registry: a bad entry leaves the
  // previous configuration in place.
  std::map<std::string, std::unique_ptr<detail::site_config>, std::less<>> parsed;
  std::string_view rest = dsl;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view entry = detail::trim(
        semi == std::string_view::npos ? rest : rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    // `p=` lives in the spec, so the site/spec split is the FIRST '='.
    if (eq == 0 || eq == std::string_view::npos) {
      detail::parse_fail("expected site=spec", entry);
    }
    const std::string_view site = detail::trim(entry.substr(0, eq));
    parsed.insert_or_assign(std::string{site},
                            detail::parse_spec(detail::trim(entry.substr(eq + 1)), entry));
  }
  const std::unique_lock<std::shared_mutex> lock{detail::g_mutex};
  detail::registry() = std::move(parsed);
  detail::g_configured_sites.store(static_cast<int>(detail::registry().size()),
                                   std::memory_order_relaxed);
}

void set(std::string_view site, std::string_view spec) {
  auto config = detail::parse_spec(detail::trim(spec),
                                   std::string{site} + "=" + std::string{spec});
  const std::unique_lock<std::shared_mutex> lock{detail::g_mutex};
  detail::registry().insert_or_assign(std::string{detail::trim(site)}, std::move(config));
  detail::g_configured_sites.store(static_cast<int>(detail::registry().size()),
                                   std::memory_order_relaxed);
}

void clear() {
  const std::unique_lock<std::shared_mutex> lock{detail::g_mutex};
  detail::registry().clear();
  detail::g_configured_sites.store(0, std::memory_order_relaxed);
}

bool clear(std::string_view site) {
  const std::unique_lock<std::shared_mutex> lock{detail::g_mutex};
  const auto it = detail::registry().find(site);
  if (it == detail::registry().end()) return false;
  detail::registry().erase(it);
  detail::g_configured_sites.store(static_cast<int>(detail::registry().size()),
                                   std::memory_order_relaxed);
  return true;
}

std::uint64_t hit_count(std::string_view site) {
  const std::shared_lock<std::shared_mutex> lock{detail::g_mutex};
  const auto it = detail::registry().find(site);
  if (it == detail::registry().end()) return 0;
  return it->second->hits.load(std::memory_order_relaxed);
}

std::vector<std::string> configured_sites() {
  const std::shared_lock<std::shared_mutex> lock{detail::g_mutex};
  std::vector<std::string> out;
  out.reserve(detail::registry().size());
  for (const auto& [name, config] : detail::registry()) out.push_back(name);
  return out;
}

void init_from_env() {
  const char* dsl = std::getenv("SGL_FAILPOINTS");
  if (dsl == nullptr || *dsl == '\0') return;
  configure(dsl);
}

}  // namespace sgl::failpoints
