#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sgl {

void running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double running_stats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double running_stats::stderror() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

mean_ci confidence_interval(const running_stats& s, double confidence) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument{"confidence_interval: confidence must be in (0,1)"};
  }
  const double z = normal_quantile(0.5 + confidence / 2.0);
  return {.mean = s.mean(), .half_width = z * s.stderror()};
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument{"normal_quantile: p must be in (0,1)"};
  }
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double normal_cdf(double x) noexcept { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument{"quantile: empty sample"};
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument{"quantile: q must be in [0,1]"};
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double h = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

histogram::histogram(double lo, double hi, std::size_t bins) : lo_{lo} {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument{"histogram: need hi > lo and bins > 0"};
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void histogram::add(double x) noexcept {
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double histogram::bin_center(std::size_t i) const noexcept {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double histogram::bin_mass(std::size_t i) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

series_stats::series_stats(std::size_t length) : per_index_(length) {
  if (length == 0) throw std::invalid_argument{"series_stats: zero length"};
}

void series_stats::add_series(std::span<const double> series) {
  if (series.size() != per_index_.size()) {
    throw std::invalid_argument{"series_stats: length mismatch"};
  }
  for (std::size_t i = 0; i < series.size(); ++i) per_index_[i].add(series[i]);
}

void series_stats::merge(const series_stats& other) {
  if (other.per_index_.size() != per_index_.size()) {
    throw std::invalid_argument{"series_stats: merge length mismatch"};
  }
  for (std::size_t i = 0; i < per_index_.size(); ++i) per_index_[i].merge(other.per_index_[i]);
}

std::uint64_t series_stats::replications() const noexcept { return per_index_[0].count(); }

mean_ci series_stats::ci(std::size_t i, double confidence) const {
  return confidence_interval(per_index_[i], confidence);
}

ols_fit fit_ols(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument{"fit_ols: need matching sizes >= 2"};
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) throw std::invalid_argument{"fit_ols: x is constant"};
  ols_fit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy <= 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace sgl
