#pragma once

/// \file text.h
/// Small shared string utilities: trimming, strict number parsing, and the
/// edit-distance machinery behind every "did you mean" suggestion (unknown
/// flags, scenario keys, probe names).  Kept out of flags.h so the core
/// library does not depend on the command-line flag parser.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace sgl {

/// `text` without leading/trailing ASCII whitespace (space, tab, CR).
[[nodiscard]] std::string_view trim_ascii(std::string_view text) noexcept;

/// `text` (trimmed) as a double if the whole string parses; nullopt
/// otherwise.  The one number-acceptance rule shared by flag values, probe
/// arguments, and scenario fields.
[[nodiscard]] std::optional<double> parse_full_double(std::string_view text);

/// Levenshtein edit distance (insert / delete / substitute).
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by edit distance, or "" when nothing is
/// close enough to be a plausible typo (within max(2, |name|/3) edits).
[[nodiscard]] std::string closest_name(std::string_view name,
                                       std::span<const std::string_view> candidates);

}  // namespace sgl
