#include "support/text.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace sgl {

std::string_view trim_ascii(std::string_view text) noexcept {
  while (!text.empty() &&
         (text.front() == ' ' || text.front() == '\t' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

std::optional<double> parse_full_double(std::string_view text) {
  const std::string owned{trim_ascii(text)};
  if (owned.empty()) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) return std::nullopt;
  return parsed;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // One-row dynamic program; distances are small (flag-name length).
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

std::string closest_name(std::string_view name,
                         std::span<const std::string_view> candidates) {
  std::string_view best;
  std::size_t best_distance = static_cast<std::size_t>(-1);
  for (const std::string_view candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  // Only suggest plausible typos: a third of the name, at least 2 edits.
  const std::size_t limit = std::max<std::size_t>(2, name.size() / 3);
  return best_distance <= limit ? std::string{best} : std::string{};
}

}  // namespace sgl
