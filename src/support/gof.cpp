#include "support/gof.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sgl {
namespace {

constexpr int k_max_iterations = 500;
constexpr double k_epsilon = 1e-14;

/// P(a, x) by the power series, good for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < k_max_iterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * k_epsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Q(a, x) by the continued fraction (modified Lentz), good for x >= a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= k_max_iterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < k_epsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument{"regularized_gamma_p: need a > 0, x >= 0"};
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_continued_fraction(a, x);
}

double chi_square_cdf(double x, double dof) {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(dof / 2.0, x / 2.0);
}

gof_result chi_square_test(std::span<const std::uint64_t> observed,
                           std::span<const double> expected_probability,
                           double min_expected) {
  if (observed.size() != expected_probability.size() || observed.size() < 2) {
    throw std::invalid_argument{"chi_square_test: need matching sizes >= 2"};
  }
  std::uint64_t n = 0;
  for (const std::uint64_t o : observed) n += o;
  if (n == 0) throw std::invalid_argument{"chi_square_test: no observations"};

  // Pool sparse bins left-to-right so every pooled bin has expected mass
  // >= min_expected (the last pool absorbs any remainder).
  std::vector<double> pooled_expected;
  std::vector<double> pooled_observed;
  double acc_e = 0.0;
  double acc_o = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    acc_e += expected_probability[i] * static_cast<double>(n);
    acc_o += static_cast<double>(observed[i]);
    if (acc_e >= min_expected) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
      acc_e = 0.0;
      acc_o = 0.0;
    }
  }
  if (acc_e > 0.0 || acc_o > 0.0) {
    if (pooled_expected.empty()) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
    } else {
      pooled_expected.back() += acc_e;
      pooled_observed.back() += acc_o;
    }
  }
  if (pooled_expected.size() < 2) {
    // Everything pooled into one bin: the test is vacuous.
    return {.statistic = 0.0, .p_value = 1.0};
  }

  double stat = 0.0;
  for (std::size_t i = 0; i < pooled_expected.size(); ++i) {
    const double diff = pooled_observed[i] - pooled_expected[i];
    stat += diff * diff / pooled_expected[i];
  }
  const double dof = static_cast<double>(pooled_expected.size() - 1);
  return {.statistic = stat, .p_value = 1.0 - chi_square_cdf(stat, dof)};
}

gof_result ks_test_from_cdf(std::span<const double> cdf_at_sorted_data) {
  const std::size_t n = cdf_at_sorted_data.size();
  if (n == 0) throw std::invalid_argument{"ks_test_from_cdf: empty sample"};
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = cdf_at_sorted_data[i];
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max({d, std::abs(f - lo), std::abs(hi - f)});
  }
  // Asymptotic Kolmogorov p-value with the Stephens finite-n correction.
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * lambda * lambda * static_cast<double>(j) *
                                 static_cast<double>(j));
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  return {.statistic = d, .p_value = std::clamp(2.0 * p, 0.0, 1.0)};
}

}  // namespace sgl
