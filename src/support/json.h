#pragma once

/// \file json.h
/// A minimal streaming JSON writer for machine-readable results — no DOM,
/// no allocation beyond the nesting stack.  Numbers are emitted with the
/// shortest representation that round-trips exactly (json_number), so a
/// JSON result file carries full double precision.  Used by the CLI's
/// `--format json` paths and the scenario serializer's spec echo.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sgl {

/// `value` escaped for a JSON string literal, without the quotes.
[[nodiscard]] std::string json_escape(std::string_view value);

/// The shortest decimal text that parses back to exactly `value`
/// ("0.65", "1e+06", "0.55000000000000004"); non-finite values become
/// "null" (JSON has no NaN/Inf).
[[nodiscard]] std::string json_number(double value);

/// Streaming writer with well-formedness checks (mismatched begin/end,
/// value without key inside an object, and so on throw std::logic_error).
class json_writer {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit json_writer(std::ostream& os, int indent = 2);

  json_writer& begin_object();
  json_writer& end_object();
  json_writer& begin_array();
  json_writer& end_array();

  /// Emits the key of the next object member.
  json_writer& key(std::string_view k);

  json_writer& value(double v);
  json_writer& value(std::int64_t v);
  json_writer& value(std::uint64_t v);
  json_writer& value(bool v);
  json_writer& value(std::string_view v);
  json_writer& value(const char* v) { return value(std::string_view{v}); }
  json_writer& null();

  /// Emits pre-formatted JSON text verbatim as the next value.  The caller
  /// guarantees `text` is itself valid JSON.
  json_writer& raw(std::string_view text);

 private:
  struct level {
    bool is_array = false;
    bool first = true;
  };

  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  bool have_key_ = false;  // inside an object, key() was just written
  std::vector<level> stack_;
};

}  // namespace sgl
