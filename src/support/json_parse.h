#pragma once

/// \file json_parse.h
/// A small recursive-descent JSON reader — the inbound half of support/json
/// (json.h is write-only).  The service wire protocol (src/service/) speaks
/// newline-delimited JSON, so the daemon needs to *parse* arbitrary request
/// documents: nested objects, arrays, every escape json_escape can emit.
/// The netsim trace reader keeps its own strict flat-object parser
/// (analysis/trace_check.cpp) because it validates a fixed shape; this one
/// is general.
///
/// Numbers keep their raw token alongside the converted double, so 64-bit
/// integers (seeds, job ids) round-trip exactly through as_uint64/as_int64
/// instead of losing precision past 2^53.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgl {

/// One parsed JSON value.  A plain tagged struct rather than a class
/// hierarchy: requests are small, and the accessors below give call sites
/// the "must be a string" / "must be an integer" checks with a useful
/// message.
struct json_value {
  enum class kind { null, boolean, number, string, array, object };

  kind type = kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string text;  ///< string payload, or the raw number token
  std::vector<json_value> items;  ///< array elements
  std::vector<std::pair<std::string, json_value>> members;  ///< object, in order

  [[nodiscard]] bool is_null() const noexcept { return type == kind::null; }
  [[nodiscard]] bool is_object() const noexcept { return type == kind::object; }
  [[nodiscard]] bool is_array() const noexcept { return type == kind::array; }
  [[nodiscard]] bool is_string() const noexcept { return type == kind::string; }
  [[nodiscard]] bool is_number() const noexcept { return type == kind::number; }

  /// Object member by key; nullptr when absent (or not an object).  The
  /// LAST member wins when a document repeats a key — the convention of
  /// mainstream parsers, so a hostile client cannot make this parser act
  /// on a different value than a conventional reader of the same bytes
  /// (`members` still holds every duplicate, in document order, for
  /// callers that care).
  [[nodiscard]] const json_value* find(std::string_view key) const noexcept;

  /// Checked accessors: throw std::invalid_argument naming `what` (the
  /// request field being read) when the value has the wrong type or, for
  /// the integer forms, is not an exact integer in range.
  [[nodiscard]] const std::string& as_string(std::string_view what) const;
  [[nodiscard]] double as_double(std::string_view what) const;
  [[nodiscard]] std::int64_t as_int64(std::string_view what) const;
  [[nodiscard]] std::uint64_t as_uint64(std::string_view what) const;
  [[nodiscard]] bool as_bool(std::string_view what) const;
};

/// Parses one complete JSON document.  Throws std::invalid_argument with
/// the byte offset on malformed input, trailing garbage, or nesting deeper
/// than 64 levels.
[[nodiscard]] json_value parse_json(std::string_view text);

}  // namespace sgl
