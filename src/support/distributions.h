#pragma once

/// \file distributions.h
/// Exact samplers for the distributions the simulators need, implemented
/// from scratch for cross-platform reproducibility (see rng.h).
///
/// The aggregate finite-population simulator advances a whole population in
/// O(m) per step by sampling one multinomial (stage 1: who considers which
/// option) and m binomials (stage 2: who commits).  Binomial sampling
/// therefore has to be exact *and* O(1)-ish for n up to 10^7: we use
/// inversion for small n·p and Hormann's BTRS transformed-rejection
/// algorithm for the rest.

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace sgl {

/// Standard normal draw (Marsaglia polar method; the spare value is
/// discarded so the sampler is stateless).
[[nodiscard]] double sample_standard_normal(rng& gen) noexcept;

/// Normal(mean, sd) draw.  Precondition: sd >= 0.
[[nodiscard]] double sample_normal(rng& gen, double mean, double sd) noexcept;

/// Exponential(rate) draw by inversion.  Precondition: rate > 0.
[[nodiscard]] double sample_exponential(rng& gen, double rate) noexcept;

/// Geometric: number of failures before the first success, support {0,1,...}.
/// Precondition: 0 < p <= 1.
[[nodiscard]] std::uint64_t sample_geometric(rng& gen, double p) noexcept;

/// Binomial(n, p) draw, exact for all 0 <= p <= 1 and n >= 0.
/// Uses inversion when n·min(p,1-p) < 10 and BTRS otherwise.
[[nodiscard]] std::uint64_t sample_binomial(rng& gen, std::uint64_t n, double p) noexcept;

/// Gamma(shape, 1) draw (Marsaglia–Tsang squeeze, with the standard boost
/// for shape < 1).  Precondition: shape > 0.
[[nodiscard]] double sample_gamma(rng& gen, double shape) noexcept;

/// Beta(a, b) draw via two gammas.  Preconditions: a > 0, b > 0.
/// Used by the Thompson-sampling baseline's Beta-Bernoulli posterior.
[[nodiscard]] double sample_beta(rng& gen, double a, double b) noexcept;

/// Multinomial(n, weights): fills `out[j]` with the number of the n trials
/// that landed in category j.  `weights` need not be normalized but must be
/// non-negative with a positive sum.  out.size() must equal weights.size().
void sample_multinomial(rng& gen, std::uint64_t n, std::span<const double> weights,
                        std::span<std::uint64_t> out);

/// Categorical draw proportional to `weights` (linear scan; use
/// discrete_sampler for repeated draws from the same weights).
/// Precondition: weights non-negative with positive sum.
[[nodiscard]] std::size_t sample_categorical(rng& gen, std::span<const double> weights) noexcept;

/// Walker/Vose alias method: O(m) construction, O(1) per draw from a fixed
/// discrete distribution.  Used for popularity-proportional sampling in the
/// agent-based simulator, where every agent draws from the same Q^t.
class discrete_sampler {
 public:
  /// An empty sampler; rebuild() before the first draw.
  discrete_sampler() = default;

  /// Builds the alias table for a distribution proportional to `weights`.
  /// Throws std::invalid_argument on empty, negative, or all-zero weights.
  explicit discrete_sampler(std::span<const double> weights) { rebuild(weights); }

  /// Rebuilds the table for new weights, reusing all internal storage —
  /// allocation-free when the size is unchanged (the simulators rebuild
  /// once per step from the evolving popularity).  Same validation as the
  /// constructor.
  void rebuild(std::span<const double> weights);

  /// Draws one index in [0, size()).  Precondition: size() > 0.
  [[nodiscard]] std::size_t sample(rng& gen) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return probability_.size(); }

  /// The normalized probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const noexcept { return normalized_[i]; }

 private:
  std::vector<double> probability_;   // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // alias index per column
  std::vector<double> normalized_;    // the input distribution, normalized
  std::vector<double> scaled_;        // rebuild scratch: m * p_i
  std::vector<std::uint32_t> small_;  // rebuild worklists
  std::vector<std::uint32_t> large_;
};

/// Fisher–Yates shuffle driven by our rng (std::shuffle's draw pattern is
/// implementation-defined).
template <typename T>
void shuffle(rng& gen, std::span<T> items) noexcept {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(gen.next_below(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace sgl
