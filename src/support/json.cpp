#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace sgl {

std::string json_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  // Shortest round-trip: try increasing precision until parsing the text
  // back yields the exact double (17 significant digits always suffice).
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

json_writer::json_writer(std::ostream& os, int indent) : os_{os}, indent_{indent} {}

void json_writer::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) {
    os_ << ' ';
  }
}

void json_writer::before_value() {
  if (stack_.empty()) return;  // top-level value
  level& top = stack_.back();
  if (!top.is_array && !have_key_) {
    throw std::logic_error{"json_writer: object member written without a key"};
  }
  if (top.is_array) {
    if (!top.first) os_ << ',';
    top.first = false;
    newline_indent();
  }
  have_key_ = false;
}

json_writer& json_writer::key(std::string_view k) {
  if (stack_.empty() || stack_.back().is_array || have_key_) {
    throw std::logic_error{"json_writer: key() outside an object"};
  }
  if (!stack_.back().first) os_ << ',';
  stack_.back().first = false;
  newline_indent();
  os_ << '"' << json_escape(k) << "\":" << (indent_ > 0 ? " " : "");
  have_key_ = true;
  return *this;
}

json_writer& json_writer::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({.is_array = false});
  return *this;
}

json_writer& json_writer::end_object() {
  if (stack_.empty() || stack_.back().is_array || have_key_) {
    throw std::logic_error{"json_writer: mismatched end_object"};
  }
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << '}';
  return *this;
}

json_writer& json_writer::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({.is_array = true});
  return *this;
}

json_writer& json_writer::end_array() {
  if (stack_.empty() || !stack_.back().is_array) {
    throw std::logic_error{"json_writer: mismatched end_array"};
  }
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << ']';
  return *this;
}

json_writer& json_writer::value(double v) {
  before_value();
  os_ << json_number(v);
  return *this;
}

json_writer& json_writer::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

json_writer& json_writer::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

json_writer& json_writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

json_writer& json_writer::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

json_writer& json_writer::null() {
  before_value();
  os_ << "null";
  return *this;
}

json_writer& json_writer::raw(std::string_view text) {
  before_value();
  os_ << text;
  return *this;
}

}  // namespace sgl
