#pragma once

/// \file stats.h
/// Streaming statistics used by the experiment harnesses: every regret /
/// trajectory quantity in the paper is an expectation, which we estimate
/// over independent replications and report with confidence intervals.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sgl {

/// Numerically stable streaming moments (Welford), mergeable across
/// parallel shards (Chan et al. pairwise update).
class running_stats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator into this one (order-independent up to
  /// floating-point rounding).
  void merge(const running_stats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  /// Unbiased sample variance; 0 when count < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when count < 2.
  [[nodiscard]] double stderror() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A mean with a symmetric normal-approximation confidence interval.
struct mean_ci {
  double mean = 0.0;
  double half_width = 0.0;
  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
};

/// Two-sided normal CI at `confidence` (e.g. 0.95) for the mean of `s`.
[[nodiscard]] mean_ci confidence_interval(const running_stats& s, double confidence = 0.95);

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9).  Precondition: 0 < p < 1.
[[nodiscard]] double normal_quantile(double p);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Type-7 (linear interpolation) sample quantile, q in [0, 1].
/// Copies and sorts; intended for end-of-run reporting, not hot loops.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin so mass is never silently dropped.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Midpoint of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  /// Empirical probability mass of bin i.
  [[nodiscard]] double bin_mass(std::size_t i) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Per-time-index statistics across replications: replication r contributes
/// a whole series x_r[0..len), and we expose mean/CI at each index.  This is
/// how E[Q^t_j], Regret(T) curves, and coupling ratios are aggregated.
class series_stats {
 public:
  explicit series_stats(std::size_t length);

  /// Adds one replication's series (must have exactly `length()` entries).
  void add_series(std::span<const double> series);

  /// Merges a shard built over the same length.
  void merge(const series_stats& other);

  [[nodiscard]] std::size_t length() const noexcept { return per_index_.size(); }
  [[nodiscard]] std::uint64_t replications() const noexcept;
  [[nodiscard]] double mean(std::size_t i) const noexcept { return per_index_[i].mean(); }
  [[nodiscard]] mean_ci ci(std::size_t i, double confidence = 0.95) const;
  [[nodiscard]] const running_stats& at(std::size_t i) const noexcept { return per_index_[i]; }

 private:
  std::vector<running_stats> per_index_;
};

/// Ordinary least squares y = slope * x + intercept.
struct ols_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Fits OLS; requires x.size() == y.size() >= 2 and non-constant x.
[[nodiscard]] ols_fit fit_ols(std::span<const double> x, std::span<const double> y);

}  // namespace sgl
