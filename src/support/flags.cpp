#include "support/flags.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace sgl {
namespace {

using flag_value =
    std::variant<std::int64_t, double, bool, std::string, std::vector<std::string>>;

const char* type_name(const flag_value& v) {
  switch (v.index()) {
    case 0: return "int";
    case 1: return "float";
    case 2: return "bool";
    case 3: return "string";
    default: return "list";
  }
}

std::string value_to_string(const flag_value& v) {
  switch (v.index()) {
    case 0: return std::to_string(std::get<std::int64_t>(v));
    case 1: {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%g", std::get<double>(v));
      return buffer;
    }
    case 2: return std::get<bool>(v) ? "true" : "false";
    case 3: return std::get<std::string>(v);
    default: {
      const auto& items = std::get<std::vector<std::string>>(v);
      return items.empty() ? "empty, repeatable"
                           : std::accumulate(std::next(items.begin()), items.end(),
                                             items.front(),
                                             [](std::string acc, const std::string& s) {
                                               return std::move(acc) + "," + s;
                                             });
    }
  }
}

}  // namespace

flag_set::flag_set(std::string program_name, std::string description)
    : program_name_{std::move(program_name)}, description_{std::move(description)} {}

void flag_set::add(const std::string& name, value default_value, const std::string& help) {
  if (name.empty() || name.starts_with("-")) {
    throw std::invalid_argument{"flag_set: bad flag name '" + name + "'"};
  }
  const auto [it, inserted] =
      entries_.emplace(name, entry{default_value, default_value, help});
  if (!inserted) throw std::invalid_argument{"flag_set: duplicate flag '" + name + "'"};
}

void flag_set::add_int64(const std::string& name, std::int64_t default_value,
                         const std::string& help) {
  add(name, default_value, help);
}
void flag_set::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  add(name, default_value, help);
}
void flag_set::add_bool(const std::string& name, bool default_value, const std::string& help) {
  add(name, default_value, help);
}
void flag_set::add_string(const std::string& name, std::string default_value,
                          const std::string& help) {
  add(name, std::move(default_value), help);
}
void flag_set::add_string_list(const std::string& name, const std::string& help) {
  add(name, std::vector<std::string>{}, help);
}

const flag_set::entry& flag_set::find(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument{"flag_set: unregistered flag '" + name + "'"};
  }
  return it->second;
}

std::int64_t flag_set::get_int64(const std::string& name) const {
  return std::get<std::int64_t>(find(name).current);
}
double flag_set::get_double(const std::string& name) const {
  const auto& v = find(name).current;
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  return std::get<double>(v);
}
bool flag_set::get_bool(const std::string& name) const {
  return std::get<bool>(find(name).current);
}
const std::string& flag_set::get_string(const std::string& name) const {
  return std::get<std::string>(find(name).current);
}
const std::vector<std::string>& flag_set::get_string_list(const std::string& name) const {
  return std::get<std::vector<std::string>>(find(name).current);
}

std::string flag_set::closest_flag(const std::string& name) const {
  std::vector<std::string_view> known;
  known.reserve(entries_.size());
  for (const auto& [flag, e] : entries_) known.push_back(flag);
  return closest_name(name, known);
}

bool flag_set::assign(entry& e, const std::string& text) {
  switch (e.current.index()) {
    case 0: {
      std::int64_t parsed = 0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), parsed);
      if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
      e.current = parsed;
      return true;
    }
    case 1: {
      try {
        std::size_t consumed = 0;
        const double parsed = std::stod(text, &consumed);
        if (consumed != text.size()) return false;
        e.current = parsed;
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    case 2: {
      if (text == "true" || text == "1" || text == "yes") {
        e.current = true;
        return true;
      }
      if (text == "false" || text == "0" || text == "no") {
        e.current = false;
        return true;
      }
      return false;
    }
    case 3:
      e.current = text;
      return true;
    default:
      std::get<std::vector<std::string>>(e.current).push_back(text);
      return true;
  }
}

parse_status flag_set::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return parse_status::help;
    }
    if (!arg.starts_with("--")) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n", program_name_.c_str(),
                   arg.c_str());
      return parse_status::error;
    }
    arg.erase(0, 2);
    std::string text;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      text = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    const auto it = entries_.find(arg);
    if (it == entries_.end()) {
      const std::string suggestion = closest_flag(arg);
      if (suggestion.empty()) {
        std::fprintf(stderr, "%s: unknown flag '--%s' (try --help)\n",
                     program_name_.c_str(), arg.c_str());
      } else {
        std::fprintf(stderr, "%s: unknown flag '--%s' (did you mean '--%s'? try --help)\n",
                     program_name_.c_str(), arg.c_str(), suggestion.c_str());
      }
      return parse_status::error;
    }
    entry& e = it->second;
    if (!has_value) {
      if (std::holds_alternative<bool>(e.current)) {
        e.current = true;  // bare boolean flag
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--%s' expects a value\n", program_name_.c_str(),
                     arg.c_str());
        return parse_status::error;
      }
      text = argv[++i];
    }
    if (!assign(e, text)) {
      std::fprintf(stderr, "%s: bad %s value '%s' for flag '--%s'\n", program_name_.c_str(),
                   type_name(e.current), text.c_str(), arg.c_str());
      return parse_status::error;
    }
  }
  return parse_status::ok;
}

void flag_set::print_usage() const {
  std::printf("%s — %s\n\nflags:\n", program_name_.c_str(), description_.c_str());
  for (const auto& [name, e] : entries_) {
    std::printf("  --%-18s %-7s %s (default: %s)\n", name.c_str(), type_name(e.default_value),
                e.help.c_str(), value_to_string(e.default_value).c_str());
  }
}

}  // namespace sgl
