#pragma once

/// \file flags.h
/// A small command-line flag parser for the bench and example binaries.
/// Supports `--name value`, `--name=value`, bare boolean `--name`,
/// repeatable list flags, and `--help`.  Unknown flags are an error (with a
/// nearest-name suggestion) so typos never silently fall back to defaults.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "support/text.h"  // edit_distance / closest_name for suggestions

namespace sgl {

enum class parse_status {
  ok,          ///< Parsed; run the program.
  help,        ///< --help was requested; usage already printed.
  error,       ///< Bad input; message already printed to stderr.
};

class flag_set {
 public:
  flag_set(std::string program_name, std::string description);

  /// Registers a flag.  Names must be unique and non-empty (no leading "--").
  void add_int64(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_bool(const std::string& name, bool default_value, const std::string& help);
  void add_string(const std::string& name, std::string default_value, const std::string& help);
  /// A repeatable flag: every `--name value` occurrence appends to the list.
  void add_string_list(const std::string& name, const std::string& help);

  /// Parses argv.  Returns parse_status; on `error` / `help` the caller
  /// should exit.
  [[nodiscard]] parse_status parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& get_string_list(const std::string& name) const;

  /// The registered flag name closest to `name` by edit distance, or ""
  /// when nothing is close enough to be a plausible typo.
  [[nodiscard]] std::string closest_flag(const std::string& name) const;

  /// Prints usage to stdout.
  void print_usage() const;

 private:
  using value =
      std::variant<std::int64_t, double, bool, std::string, std::vector<std::string>>;

  struct entry {
    value current;
    value default_value;
    std::string help;
  };

  void add(const std::string& name, value default_value, const std::string& help);
  [[nodiscard]] const entry& find(const std::string& name) const;
  [[nodiscard]] bool assign(entry& e, const std::string& text);

  std::string program_name_;
  std::string description_;
  std::map<std::string, entry> entries_;
};

}  // namespace sgl
