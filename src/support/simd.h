#pragma once

/// \file simd.h
/// Lane-parallel portability layer for the vectorized step kernels (stream
/// derivation v3, DESIGN.md).
///
/// The wrappers are built on the GNU vector extensions rather than on raw
/// intrinsics: one kernel implementation (core/step_kernel_impl.h) is
/// written against fixed-width lane types and compiled once per ISA —
/// core/step_kernel_avx2.cpp gets -mavx2, core/step_kernel_neon.cpp relies
/// on the AArch64 baseline, core/step_kernel_generic.cpp takes whatever the
/// build's default target provides — and the compiler lowers the lane
/// operations (including the 64-bit multiplies and unsigned compares AVX2
/// lacks as single instructions) to the best sequence for each target.
/// Every operation here is integer-exact, so all three translation units
/// compute bit-identical results by construction; the per-ISA builds differ
/// in speed only, which is what lets the runtime dispatcher pick freely and
/// lets a test pin the generic path against the vector path lane for lane.
///
/// ODR note: the lane types below change meaning with the translation
/// unit's target flags, so they live in a per-ABI `inline namespace` —
/// definitions made under -mavx2 mangle differently from baseline ones and
/// never collide at link time.

#include <cstddef>
#include <cstdint>
#include <cstring>

// The helpers below pass and return wide vectors by value, which GCC flags
// with -Wpsabi on baseline targets (the calling convention for such values
// depends on the target flags).  That would matter only if they were
// called across translation units compiled with different flags — the
// per-ABI inline namespaces make that impossible (distinct mangled names),
// and in practice everything inlines anyway.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace sgl::simd {

/// Instruction sets the step kernels are (potentially) compiled for.
/// `generic` is the portable fallback translation unit — always present,
/// vectorized only as far as the build's baseline target allows.
enum class isa {
  generic,
  avx2,
  avx512,
  neon,
};

[[nodiscard]] constexpr const char* isa_name(isa which) noexcept {
  switch (which) {
    case isa::avx512: return "avx512";
    case isa::avx2: return "avx2";
    case isa::neon: return "neon";
    case isa::generic: break;
  }
  return "generic";
}

/// Does the *running CPU* support `which`?  Pure capability check — whether
/// a kernel for it was actually compiled in is the dispatcher's business
/// (core/step_kernel.h), not this header's.
[[nodiscard]] inline bool cpu_supports(isa which) noexcept {
  switch (which) {
    case isa::generic:
      return true;
    case isa::avx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case isa::avx512:
#if defined(__x86_64__) || defined(__i386__)
      // F for the 512-bit lanes, DQ for the native 64-bit lane multiply
      // (vpmullq) the counter hash leans on.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#else
      return false;
#endif
    case isa::neon:
#if defined(__ARM_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

#if defined(__AVX512F__) && defined(__AVX512DQ__)
inline namespace abi_avx512 {
inline constexpr isa compiled_abi = isa::avx512;
#elif defined(__AVX2__)
inline namespace abi_avx2 {
inline constexpr isa compiled_abi = isa::avx2;
#elif defined(__ARM_NEON)
inline namespace abi_neon {
inline constexpr isa compiled_abi = isa::neon;
#else
inline namespace abi_generic {
inline constexpr isa compiled_abi = isa::generic;
#endif

/// Logical lanes per batch: the compiled target's native 64-bit vector
/// width.  Wider-than-native was measured 3× *slower* on AVX2 (the doubled
/// logical vectors keep twice the values live and the 64↔32-bit mask
/// conversions then cross registers, so GCC spills).  The kernels' results
/// do not depend on this number: draws are counter-addressed per agent, so
/// any lane width — including the scalar remainder — produces the same
/// bits.
inline constexpr std::size_t lane_count = compiled_abi == isa::avx512 ? 8 : 4;

typedef std::uint64_t vu64 __attribute__((vector_size(lane_count * sizeof(std::uint64_t))));
typedef std::int64_t vi64 __attribute__((vector_size(lane_count * sizeof(std::int64_t))));
typedef std::uint32_t vu32 __attribute__((vector_size(lane_count * sizeof(std::uint32_t))));
typedef std::int32_t vi32 __attribute__((vector_size(lane_count * sizeof(std::int32_t))));

// --- unaligned loads / stores ----------------------------------------------

[[nodiscard]] inline vu32 load_u32(const std::uint32_t* p) noexcept {
  vu32 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[nodiscard]] inline vi32 load_i32(const std::int32_t* p) noexcept {
  vi32 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[nodiscard]] inline vu64 load_u64(const std::uint64_t* p) noexcept {
  vu64 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_i32(std::int32_t* p, vi32 v) noexcept { std::memcpy(p, &v, sizeof v); }
inline void store_u32(std::uint32_t* p, vu32 v) noexcept { std::memcpy(p, &v, sizeof v); }

// --- mask plumbing ----------------------------------------------------------
//
// Comparisons on GNU vectors yield signed masks (-1 true / 0 false) of the
// operand width; selects are the vector ternary.  The only glue the kernels
// need is moving masks between the 64-bit domain (RNG words, thresholds)
// and the 32-bit domain (view rows, choices).

[[nodiscard]] inline vi32 narrow_mask(vi64 m) noexcept {
  return __builtin_convertvector(m, vi32);
}

[[nodiscard]] inline vi64 widen_mask(vi32 m) noexcept {
  return __builtin_convertvector(m, vi64);  // sign-extends: masks survive
}

[[nodiscard]] inline vu64 widen_u32(vu32 v) noexcept {
  return __builtin_convertvector(v, vu64);  // zero-extends
}

[[nodiscard]] inline vu32 narrow_u64(vu64 v) noexcept {
  return __builtin_convertvector(v, vu32);  // truncates (caller guarantees fit)
}

/// Lane k = base + k * step; the counter ramp of the position-addressable
/// RNG (support/rng.h, counter_word).
[[nodiscard]] inline vu64 lane_ramp(std::uint64_t base, std::uint64_t step) noexcept {
  vu64 v;
  for (std::size_t k = 0; k < lane_count; ++k) {
    v[k] = base + static_cast<std::uint64_t>(k) * step;
  }
  return v;
}

/// Horizontal sum of the 32-bit lanes (tally flushes — not hot).
[[nodiscard]] inline std::uint64_t reduce_add(vu32 v) noexcept {
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < lane_count; ++k) sum += v[k];
  return sum;
}

}  // namespace (per-ABI inline namespace)

}  // namespace sgl::simd

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
