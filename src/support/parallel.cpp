#include "support/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sgl {

unsigned default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : hw;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, unsigned threads) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (threads == 0) threads = default_thread_count();
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, count));
  if (threads <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t chunk = (count + threads - 1) / threads;
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t lo = begin + static_cast<std::size_t>(t) * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      workers.emplace_back([&, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) fn(i);
        } catch (...) {
          const std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  }  // join
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sgl
