#include "support/parallel.h"

#include <condition_variable>
#include <thread>

namespace sgl {
namespace {

using detail::pool_job;

/// Claims and executes tasks of `job` until none remain.  On an exception
/// the first error is recorded and the claim cursor jumps past the end, so
/// no *further* tasks start (tasks already claimed by other participants
/// finish normally); the skipped tasks are retired from the unfinished
/// count by whoever performed the jump.
void execute_tasks(pool_job& job) noexcept {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.task_count) return;
    bool failed = false;
    try {
      job.invoke(job.ctx, i);
    } catch (...) {
      const std::scoped_lock lock{job.error_mutex};
      if (!job.error) job.error = std::current_exception();
      failed = true;
    }
    std::size_t done = 1;
    if (failed) {
      // Abort the remaining unclaimed tasks: [claimed, task_count) never
      // ran and never will, so retire them here in one subtraction.
      // A concurrent aborter sees `claimed == task_count` and retires 0.
      const std::size_t claimed =
          job.next.exchange(job.task_count, std::memory_order_relaxed);
      if (claimed < job.task_count) done += job.task_count - claimed;
    }
    if (job.unfinished.fetch_sub(done, std::memory_order_acq_rel) == done) {
      job.unfinished.notify_all();
    }
  }
}

/// The process-wide persistent pool.  Workers are spawned lazily on the
/// first job that allows helpers, and live until process exit (jthread stop
/// tokens); an idle pool costs nothing but parked threads.  The pending
/// queue is an intrusive list of stack-resident pool_jobs; a job leaves the
/// queue once its tasks are all claimed (its submitter may still be
/// executing the last ones).
class worker_pool {
 public:
  static worker_pool& instance() {
    static worker_pool pool;
    return pool;
  }

  void submit(pool_job& job) {
    {
      const std::scoped_lock lock{mutex_};
      if (!started_) start_workers();
      if (workers_.empty()) return;  // single-core: the caller runs it all
      job.queue_next = nullptr;
      (tail_ ? tail_->queue_next : head_) = &job;
      tail_ = &job;
    }
    cv_.notify_all();
  }

  /// Unlinks `job` if it is still queued.  Called by the submitter after
  /// the job completed; afterwards no worker can observe the job.
  void retire(pool_job& job) {
    const std::scoped_lock lock{mutex_};
    pool_job* prev = nullptr;
    for (pool_job* j = head_; j != nullptr; prev = j, j = j->queue_next) {
      if (j != &job) continue;
      (prev ? prev->queue_next : head_) = j->queue_next;
      if (tail_ == j) tail_ = prev;
      return;
    }
  }

  [[nodiscard]] bool has_workers() {
    const std::scoped_lock lock{mutex_};
    if (!started_) start_workers();
    return !workers_.empty();
  }

 private:
  worker_pool() = default;
  ~worker_pool() {
    {
      const std::scoped_lock lock{mutex_};
      for (auto& worker : workers_) worker.request_stop();
    }
    cv_.notify_all();
  }  // jthread destructors join

  void start_workers() {
    started_ = true;
    const unsigned helpers = default_thread_count() - 1;
    workers_.reserve(helpers);
    for (unsigned t = 0; t < helpers; ++t) {
      workers_.emplace_back([this](const std::stop_token& stop) { worker_loop(stop); });
    }
  }

  /// A queued job this worker may join: skips (and unlinks) exhausted jobs
  /// and skips jobs already at their participant cap.
  pool_job* pick_job() {
    pool_job* prev = nullptr;
    pool_job* j = head_;
    while (j != nullptr) {
      if (j->next.load(std::memory_order_relaxed) >= j->task_count) {
        pool_job* dead = j;
        j = j->queue_next;
        (prev ? prev->queue_next : head_) = j;
        if (tail_ == dead) tail_ = prev;
        continue;
      }
      if (j->helpers.load(std::memory_order_relaxed) < j->max_helpers) return j;
      prev = j;
      j = j->queue_next;
    }
    return nullptr;
  }

  void worker_loop(const std::stop_token& stop) {
    std::unique_lock lock{mutex_};
    for (;;) {
      pool_job* job = nullptr;
      cv_.wait(lock, [&] {
        if (stop.stop_requested()) return true;
        job = pick_job();
        return job != nullptr;
      });
      if (stop.stop_requested()) return;
      // Reserve a helper slot under the lock (pick_job saw spare capacity;
      // re-check because slots are released outside the lock).
      if (job->helpers.fetch_add(1, std::memory_order_relaxed) >= job->max_helpers) {
        job->helpers.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      lock.unlock();
      execute_tasks(*job);
      job->helpers.fetch_sub(1, std::memory_order_release);
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  pool_job* head_ = nullptr;
  pool_job* tail_ = nullptr;
  std::vector<std::jthread> workers_;
  bool started_ = false;
};

}  // namespace

unsigned default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : hw;
}

namespace detail {

void run_on_pool(pool_job& job) {
  const bool shared =
      job.max_helpers > 0 && job.task_count > 1 && worker_pool::instance().has_workers();
  if (shared) worker_pool::instance().submit(job);

  execute_tasks(job);  // the submitting thread always participates

  if (shared) {
    // Wait for helpers still running claimed tasks.  The atomic wait parks
    // the submitter only when a helper really holds work; in the common
    // case the submitter executed the final task and falls straight through.
    std::size_t left = job.unfinished.load(std::memory_order_acquire);
    while (left != 0) {
      job.unfinished.wait(left, std::memory_order_acquire);
      left = job.unfinished.load(std::memory_order_acquire);
    }
    worker_pool::instance().retire(job);
    // Helpers may still be between their last claim check and the helper
    // count decrement; they touch nothing but the counters after that, and
    // the job outlives this call only on the submitter's stack — spin the
    // few cycles until the count drains so the stack frame can die.
    while (job.helpers.load(std::memory_order_acquire) != 0) std::this_thread::yield();
  }

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace detail

}  // namespace sgl
