#include "netsim/trace.h"

#include <array>
#include <utility>

namespace sgl::netsim {
namespace {

constexpr std::array<std::pair<std::string_view, trace_kind>, 12> k_kind_names{{
    {"send", trace_kind::send},
    {"deliver", trace_kind::deliver},
    {"drop", trace_kind::drop},
    {"crash", trace_kind::crash},
    {"restart", trace_kind::restart},
    {"partition", trace_kind::partition},
    {"heal", trace_kind::heal},
    {"degrade", trace_kind::degrade},
    {"restore", trace_kind::restore},
    {"post", trace_kind::post},
    {"commit", trace_kind::commit},
    {"adopt", trace_kind::adopt},
}};

}  // namespace

std::string_view trace_kind_name(trace_kind kind) noexcept {
  for (const auto& [name, k] : k_kind_names) {
    if (k == kind) return name;
  }
  return "unknown";
}

bool parse_trace_kind(std::string_view name, trace_kind& out) noexcept {
  for (const auto& [known, k] : k_kind_names) {
    if (known == name) {
      out = k;
      return true;
    }
  }
  return false;
}

void trace_recorder::append(const trace_record& record) {
  if (capacity_ == 0) {
    records_.push_back(record);
    return;
  }
  if (records_.size() < capacity_) {
    records_.push_back(record);
    return;
  }
  records_[head_] = record;
  head_ = (head_ + 1) % capacity_;
  ++evicted_;
}

std::vector<trace_record> trace_recorder::snapshot() const {
  std::vector<trace_record> out;
  out.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out.push_back(records_[(head_ + i) % records_.size()]);
  }
  return out;
}

void trace_recorder::clear() noexcept {
  records_.clear();
  head_ = 0;
  evicted_ = 0;
}

}  // namespace sgl::netsim
