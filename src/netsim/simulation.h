#pragma once

/// \file simulation.h
/// A deterministic discrete-event network simulator.
///
/// The paper's converse reading (§1, §6) is that the social dynamics is a
/// distributed, essentially memoryless implementation of MWU "perhaps
/// appropriate for low-power devices in distributed settings such as sensor
/// networks or the internet-of-things".  This module is the substrate that
/// claim is tested on: nodes exchanging small messages over lossy,
/// latency-ridden asynchronous links, with crash/restart fault injection —
/// ad hoc (crash_node/partition calls) or scripted (a fault_schedule of
/// timed partitions, churn waves, and per-link-class degradations executed
/// as first-class events in the same (time, seq) queue).
///
/// Determinism: events are ordered by (time, sequence number); every node
/// owns an RNG stream derived from (seed, 2^32 + node id) and the network
/// owns its own sub-2^32 stream for latency/drops — disjoint for every
/// 32-bit node id — so runs are reproducible bit-for-bit.  Scheduled fault
/// events are enqueued before any node runs, so they carry the smallest
/// sequence numbers and dispatch before same-time node events, in schedule
/// order; fraction-based waves draw from a dedicated fault stream.

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "netsim/trace.h"
#include "support/rng.h"

namespace sgl::netsim {

using node_id = std::uint32_t;

/// A small fixed-layout message.  Protocols define `kind` and the operand
/// meanings; `wire_bytes` approximates the on-air cost of one message
/// (src + dst + kind + two operands).
struct message {
  node_id src = 0;
  node_id dst = 0;
  std::int32_t kind = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  static constexpr std::uint64_t wire_bytes = 28;
};

/// Per-link behaviour: delivery latency = base + Exponential(jitter_mean)
/// (jitter_mean = 0 disables jitter), and i.i.d. Bernoulli loss.
struct link_model {
  double base_latency = 1.0;
  double jitter_mean = 0.0;
  double drop_probability = 0.0;

  /// Throws std::invalid_argument on negative latencies or p outside [0,1].
  void validate() const;
};

/// Which links a degrade action covers, relative to the action's `targets`
/// node set: every link, links within one side of the set (both endpoints
/// in it or both outside), links crossing the set boundary, or links
/// touching a listed node at either endpoint.
enum class link_class : std::uint8_t { all, intra, cross, nodes };

/// One scripted fault.  Times are simulated seconds; `until < 0` means
/// "never" where a window is optional (degrade) and is rejected by
/// validate() where the window is the point (partition auto-heals).
struct fault_action {
  enum class kind : std::uint8_t { partition, crash_wave, restart_wave, degrade };

  kind which = kind::partition;
  double at = 0.0;     ///< activation time
  double until = -1.0; ///< end time (partition heal / degrade restore)

  /// partition: side A.  crash_wave/restart_wave: explicit victims (used
  /// when `fraction` is unset).  degrade: the link-class reference set.
  std::vector<node_id> targets;

  /// crash_wave: each alive node crashes i.i.d. with this probability;
  /// restart_wave: each crashed node restarts with it.  < 0 = unset (use
  /// `targets`; an unset restart_wave with empty targets restarts every
  /// crashed node).
  double fraction = -1.0;

  link_class degrade_class = link_class::all;  ///< degrade only
  link_model link;                             ///< degrade override model
};

/// A declarative nemesis schedule, validated against the node count and
/// expanded into queue events at start().  Empty schedules are free: no
/// events, no extra RNG draws, bit-identical traces to a run without one.
struct fault_schedule {
  std::vector<fault_action> actions;

  [[nodiscard]] bool empty() const noexcept { return actions.empty(); }

  /// Throws std::invalid_argument naming the offending action index on:
  /// negative times, a window with until <= at, a partition without a
  /// window or with an empty/complete/out-of-range side, overlapping
  /// partition windows, fractions outside [0,1], waves with neither
  /// targets nor fraction (crash only), target ids >= num_nodes, or an
  /// invalid degrade link model.
  void validate(std::size_t num_nodes) const;
};

/// Counters exposed by simulation::stats().
struct network_stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   ///< lost in transit or dst crashed
  std::uint64_t timers_fired = 0;

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return messages_sent * message::wire_bytes;
  }
};

class simulation;

/// The capability surface a node sees during a callback.
class context {
 public:
  /// Simulated time now.
  [[nodiscard]] double now() const noexcept;
  /// The node being called.
  [[nodiscard]] node_id self() const noexcept;
  /// This node's private RNG stream.
  [[nodiscard]] rng& gen() noexcept;
  /// Sends to `dst` (must be a topology neighbour when a topology is set;
  /// throws std::logic_error otherwise).  src is filled in automatically.
  void send(node_id dst, message msg);
  /// Schedules on_timer(timer_id) after `delay` (> 0) simulated seconds.
  void set_timer(double delay, std::int32_t timer_id);
  /// Appends an application-level trace record stamped (now, self) when a
  /// recorder is attached; free otherwise.  Protocol code uses it for the
  /// commit/adopt marks the offline invariant checker replays.
  void record(trace_kind kind, std::int32_t detail, std::int64_t a, std::int64_t b);
  /// Neighbour list under the current topology (all other nodes if none).
  [[nodiscard]] std::span<const node_id> neighbors() const noexcept;
  [[nodiscard]] std::size_t num_nodes() const noexcept;

 private:
  friend class simulation;
  context(simulation& sim, node_id self) noexcept : sim_{sim}, self_{self} {}
  simulation& sim_;
  node_id self_;
};

/// Base class for protocol participants.
class node {
 public:
  virtual ~node() = default;
  /// Called at simulation start and on restart after a crash.
  virtual void on_start(context& ctx) = 0;
  virtual void on_message(context& ctx, const message& msg) = 0;
  virtual void on_timer(context& ctx, std::int32_t timer_id) = 0;
};

class simulation {
 public:
  explicit simulation(std::uint64_t seed);

  simulation(const simulation&) = delete;
  simulation& operator=(const simulation&) = delete;

  /// Adds a node before start(); returns its id (dense, starting at 0).
  node_id add_node(std::unique_ptr<node> n);

  /// Restricts connectivity (borrowed; vertex count must match node count
  /// at start()).  Without a topology every node can reach every other.
  void set_topology(const graph::graph* topology) noexcept { topology_ = topology; }

  void set_link_model(const link_model& links);

  /// Installs a scripted fault schedule, validated and expanded into queue
  /// events at start().  Must be called before start().
  void set_fault_schedule(fault_schedule schedule);

  /// Attaches a structured event recorder (borrowed; nullptr detaches).
  /// Recording costs one branch per event when detached — the recorder-off
  /// path is the same code as before recorders existed.
  void set_trace_recorder(trace_recorder* recorder) noexcept { recorder_ = recorder; }

  /// Calls on_start on every node.  Must be called exactly once, after all
  /// add_node calls.
  void start();

  /// Processes events until the queue is empty or the next event is later
  /// than `t_end`; the clock then advances to exactly t_end.
  void run_until(double t_end);

  /// Processes a single event; returns false when the queue is empty.
  bool step_one();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] const network_stats& stats() const noexcept { return stats_; }

  /// FNV-1a fold of every dispatched event (time, kind, destination,
  /// payload).  Two runs that dispatched the same events in the same order
  /// have equal hashes, so replays / thread-count / engine-reuse invariance
  /// can be asserted on the full event trace without recording it.
  /// Scheduled fault events fold in too (kind code 2 + schedule index), so
  /// the hash also pins *when* every scripted fault fired.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept { return trace_hash_; }

  /// Fault injection.  Crashing drops the node's queued timers and any
  /// messages delivered while down; restart re-runs on_start.  Both are
  /// documented no-ops when the node is already in the requested state:
  /// crash_node on a crashed node does not bump the epoch again, and
  /// restart_node on an alive node does not re-run on_start (tested in
  /// tests/netsim_test.cpp).
  void crash_node(node_id id);
  void restart_node(node_id id);
  [[nodiscard]] bool is_alive(node_id id) const;

  /// Network partition: messages crossing between `group_a` and its
  /// complement are dropped at delivery time (in-flight ones included).
  /// Nodes keep running and can talk within their side.  heal_partition()
  /// restores full connectivity.  Throws std::logic_error when already
  /// partitioned — overlapping cuts would silently overwrite the side
  /// assignment; heal first.
  void partition(std::span<const node_id> group_a);
  void heal_partition();
  [[nodiscard]] bool is_partitioned() const noexcept { return partitioned_; }

  /// Side assignment of the most recent partition (kept after heal, so
  /// post-heal re-convergence across the former cut stays measurable).
  [[nodiscard]] bool has_partition_sides() const noexcept {
    return side_a_.size() == nodes_.size() && !side_a_.empty();
  }
  /// True when `id` was on side A of the most recent partition.  Only
  /// meaningful while has_partition_sides().
  [[nodiscard]] bool on_side_a(node_id id) const;

  /// Direct access for inspection/tests (caller downcasts).
  [[nodiscard]] node& get_node(node_id id);
  [[nodiscard]] const node& get_node(node_id id) const;

 private:
  friend class context;

  enum class event_kind : std::uint8_t { deliver, timer, fault };

  struct event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for simultaneous events
    event_kind kind = event_kind::deliver;
    node_id dst = 0;
    std::uint64_t epoch = 0;  ///< timers die when the node's epoch changes
    message msg;
    std::int32_t timer_id = 0;
    std::int32_t fault_index = -1;  ///< fault events: schedule action index
    bool fault_end = false;         ///< fault events: window end (heal/restore)
  };

  struct event_later {
    bool operator()(const event& x, const event& y) const noexcept {
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };

  /// One activated degrade override: the link model plus a per-node
  /// membership bitmap precomputed from the action's targets.
  struct link_override {
    link_class which = link_class::all;
    link_model link;
    std::vector<bool> in_set;
    bool active = false;
  };

  void dispatch(const event& ev);
  void dispatch_fault(const event& ev);
  void trace(std::uint64_t word) noexcept;
  void record(const trace_record& rec);
  void enqueue_message(node_id src, node_id dst, const message& msg);
  void enqueue_timer(node_id dst, double delay, std::int32_t timer_id);
  void require_started(bool started, const char* who) const;
  /// The link model governing src->dst right now: the most recently
  /// activated matching override, else the base model.
  [[nodiscard]] const link_model& resolve_link(node_id src, node_id dst) const noexcept;

  std::vector<std::unique_ptr<node>> nodes_;
  std::vector<rng> node_gens_;
  std::vector<bool> alive_;
  std::vector<bool> side_a_;  ///< partition membership (meaningful when partitioned_)
  bool partitioned_ = false;
  std::vector<std::uint64_t> epoch_;  ///< bumped on crash; stale timers ignored
  std::vector<std::vector<node_id>> all_others_;  ///< neighbour lists sans topology
  const graph::graph* topology_ = nullptr;
  link_model links_;
  rng net_gen_;
  rng fault_gen_;  ///< fraction-based wave draws (stream 0xfa17)
  fault_schedule schedule_;
  std::vector<link_override> overrides_;   ///< one per degrade action
  std::vector<std::int32_t> override_order_;  ///< activation order, most recent last
  std::priority_queue<event, std::vector<event>, event_later> queue_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  bool started_ = false;
  network_stats stats_;
  trace_recorder* recorder_ = nullptr;  ///< borrowed; nullptr = recording off
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  std::uint64_t seed_;
};

}  // namespace sgl::netsim
