#pragma once

/// \file simulation.h
/// A deterministic discrete-event network simulator.
///
/// The paper's converse reading (§1, §6) is that the social dynamics is a
/// distributed, essentially memoryless implementation of MWU "perhaps
/// appropriate for low-power devices in distributed settings such as sensor
/// networks or the internet-of-things".  This module is the substrate that
/// claim is tested on: nodes exchanging small messages over lossy,
/// latency-ridden asynchronous links, with crash/restart fault injection.
///
/// Determinism: events are ordered by (time, sequence number); every node
/// owns an RNG stream derived from (seed, 2^32 + node id) and the network
/// owns its own sub-2^32 stream for latency/drops — disjoint for every
/// 32-bit node id — so runs are reproducible bit-for-bit.

#include <cstdint>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace sgl::netsim {

using node_id = std::uint32_t;

/// A small fixed-layout message.  Protocols define `kind` and the operand
/// meanings; `wire_bytes` approximates the on-air cost of one message
/// (src + dst + kind + two operands).
struct message {
  node_id src = 0;
  node_id dst = 0;
  std::int32_t kind = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  static constexpr std::uint64_t wire_bytes = 28;
};

/// Per-link behaviour: delivery latency = base + Exponential(jitter_mean)
/// (jitter_mean = 0 disables jitter), and i.i.d. Bernoulli loss.
struct link_model {
  double base_latency = 1.0;
  double jitter_mean = 0.0;
  double drop_probability = 0.0;

  /// Throws std::invalid_argument on negative latencies or p outside [0,1].
  void validate() const;
};

/// Counters exposed by simulation::stats().
struct network_stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   ///< lost in transit or dst crashed
  std::uint64_t timers_fired = 0;

  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return messages_sent * message::wire_bytes;
  }
};

class simulation;

/// The capability surface a node sees during a callback.
class context {
 public:
  /// Simulated time now.
  [[nodiscard]] double now() const noexcept;
  /// The node being called.
  [[nodiscard]] node_id self() const noexcept;
  /// This node's private RNG stream.
  [[nodiscard]] rng& gen() noexcept;
  /// Sends to `dst` (must be a topology neighbour when a topology is set;
  /// throws std::logic_error otherwise).  src is filled in automatically.
  void send(node_id dst, message msg);
  /// Schedules on_timer(timer_id) after `delay` (> 0) simulated seconds.
  void set_timer(double delay, std::int32_t timer_id);
  /// Neighbour list under the current topology (all other nodes if none).
  [[nodiscard]] std::span<const node_id> neighbors() const noexcept;
  [[nodiscard]] std::size_t num_nodes() const noexcept;

 private:
  friend class simulation;
  context(simulation& sim, node_id self) noexcept : sim_{sim}, self_{self} {}
  simulation& sim_;
  node_id self_;
};

/// Base class for protocol participants.
class node {
 public:
  virtual ~node() = default;
  /// Called at simulation start and on restart after a crash.
  virtual void on_start(context& ctx) = 0;
  virtual void on_message(context& ctx, const message& msg) = 0;
  virtual void on_timer(context& ctx, std::int32_t timer_id) = 0;
};

class simulation {
 public:
  explicit simulation(std::uint64_t seed);

  simulation(const simulation&) = delete;
  simulation& operator=(const simulation&) = delete;

  /// Adds a node before start(); returns its id (dense, starting at 0).
  node_id add_node(std::unique_ptr<node> n);

  /// Restricts connectivity (borrowed; vertex count must match node count
  /// at start()).  Without a topology every node can reach every other.
  void set_topology(const graph::graph* topology) noexcept { topology_ = topology; }

  void set_link_model(const link_model& links);

  /// Calls on_start on every node.  Must be called exactly once, after all
  /// add_node calls.
  void start();

  /// Processes events until the queue is empty or the next event is later
  /// than `t_end`; the clock then advances to exactly t_end.
  void run_until(double t_end);

  /// Processes a single event; returns false when the queue is empty.
  bool step_one();

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] const network_stats& stats() const noexcept { return stats_; }

  /// FNV-1a fold of every dispatched event (time, kind, destination,
  /// payload).  Two runs that dispatched the same events in the same order
  /// have equal hashes, so replays / thread-count / engine-reuse invariance
  /// can be asserted on the full event trace without recording it.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept { return trace_hash_; }

  /// Fault injection.  Crashing drops the node's queued timers and any
  /// messages delivered while down; restart re-runs on_start.
  void crash_node(node_id id);
  void restart_node(node_id id);
  [[nodiscard]] bool is_alive(node_id id) const;

  /// Network partition: messages crossing between `group_a` and its
  /// complement are dropped at delivery time (in-flight ones included).
  /// Nodes keep running and can talk within their side.  heal_partition()
  /// restores full connectivity.
  void partition(std::span<const node_id> group_a);
  void heal_partition() noexcept;
  [[nodiscard]] bool is_partitioned() const noexcept { return partitioned_; }

  /// Direct access for inspection/tests (caller downcasts).
  [[nodiscard]] node& get_node(node_id id);
  [[nodiscard]] const node& get_node(node_id id) const;

 private:
  friend class context;

  enum class event_kind : std::uint8_t { deliver, timer };

  struct event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for simultaneous events
    event_kind kind = event_kind::deliver;
    node_id dst = 0;
    std::uint64_t epoch = 0;  ///< timers die when the node's epoch changes
    message msg;
    std::int32_t timer_id = 0;
  };

  struct event_later {
    bool operator()(const event& x, const event& y) const noexcept {
      if (x.time != y.time) return x.time > y.time;
      return x.seq > y.seq;
    }
  };

  void dispatch(const event& ev);
  void trace(std::uint64_t word) noexcept;
  void enqueue_message(node_id src, node_id dst, const message& msg);
  void enqueue_timer(node_id dst, double delay, std::int32_t timer_id);
  void require_started(bool started, const char* who) const;

  std::vector<std::unique_ptr<node>> nodes_;
  std::vector<rng> node_gens_;
  std::vector<bool> alive_;
  std::vector<bool> side_a_;  ///< partition membership (meaningful when partitioned_)
  bool partitioned_ = false;
  std::vector<std::uint64_t> epoch_;  ///< bumped on crash; stale timers ignored
  std::vector<std::vector<node_id>> all_others_;  ///< neighbour lists sans topology
  const graph::graph* topology_ = nullptr;
  link_model links_;
  rng net_gen_;
  std::priority_queue<event, std::vector<event>, event_later> queue_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  bool started_ = false;
  network_stats stats_;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
  std::uint64_t seed_;
};

}  // namespace sgl::netsim
