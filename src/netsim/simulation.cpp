#include "netsim/simulation.h"

#include <bit>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::netsim {

void link_model::validate() const {
  if (!(base_latency >= 0.0)) throw std::invalid_argument{"link_model: negative latency"};
  if (!(jitter_mean >= 0.0)) throw std::invalid_argument{"link_model: negative jitter"};
  if (!(drop_probability >= 0.0 && drop_probability <= 1.0)) {
    throw std::invalid_argument{"link_model: drop probability outside [0,1]"};
  }
}

// --- context ----------------------------------------------------------------

double context::now() const noexcept { return sim_.now_; }
node_id context::self() const noexcept { return self_; }
rng& context::gen() noexcept { return sim_.node_gens_[self_]; }

void context::send(node_id dst, message msg) {
  msg.src = self_;
  msg.dst = dst;
  sim_.enqueue_message(self_, dst, msg);
}

void context::set_timer(double delay, std::int32_t timer_id) {
  sim_.enqueue_timer(self_, delay, timer_id);
}

std::span<const node_id> context::neighbors() const noexcept {
  if (sim_.topology_ != nullptr) {
    const auto nbrs = sim_.topology_->neighbors(self_);
    return {nbrs.data(), nbrs.size()};
  }
  return sim_.all_others_[self_];
}

std::size_t context::num_nodes() const noexcept { return sim_.nodes_.size(); }

// --- simulation ---------------------------------------------------------------

simulation::simulation(std::uint64_t seed)
    : net_gen_{rng::from_stream(seed, 0xfeedULL)}, seed_{seed} {}

node_id simulation::add_node(std::unique_ptr<node> n) {
  require_started(false, "add_node");
  if (n == nullptr) throw std::invalid_argument{"simulation::add_node: null node"};
  const node_id id = static_cast<node_id>(nodes_.size());
  nodes_.push_back(std::move(n));
  // Node streams live above 2^32 so they can never collide with the
  // network stream (0xfeed) or any other sub-2^32 auxiliary stream for
  // any 32-bit node id (the old 0x1000 + id base met 0xfeed at id 61165).
  node_gens_.push_back(rng::from_stream(seed_, (1ULL << 32) + id));
  alive_.push_back(true);
  epoch_.push_back(0);
  return id;
}

void simulation::set_link_model(const link_model& links) {
  links.validate();
  links_ = links;
}

void simulation::require_started(bool started, const char* who) const {
  if (started_ != started) {
    throw std::logic_error{std::string{"simulation::"} + who +
                           (started ? ": not started yet" : ": already started")};
  }
}

void simulation::start() {
  require_started(false, "start");
  if (nodes_.empty()) throw std::logic_error{"simulation::start: no nodes"};
  if (topology_ != nullptr && topology_->num_vertices() != nodes_.size()) {
    throw std::invalid_argument{"simulation::start: topology vertex count != node count"};
  }
  if (topology_ == nullptr) {
    all_others_.resize(nodes_.size());
    for (node_id v = 0; v < nodes_.size(); ++v) {
      all_others_[v].reserve(nodes_.size() - 1);
      for (node_id w = 0; w < nodes_.size(); ++w) {
        if (w != v) all_others_[v].push_back(w);
      }
    }
  }
  started_ = true;
  for (node_id id = 0; id < nodes_.size(); ++id) {
    context ctx{*this, id};
    nodes_[id]->on_start(ctx);
  }
}

void simulation::enqueue_message(node_id src, node_id dst, const message& msg) {
  require_started(true, "send");
  if (dst >= nodes_.size()) throw std::out_of_range{"simulation::send: bad destination"};
  if (dst == src) throw std::logic_error{"simulation::send: self-send"};
  if (topology_ != nullptr && !topology_->has_edge(src, dst)) {
    throw std::logic_error{"simulation::send: destination is not a neighbour"};
  }
  ++stats_.messages_sent;
  if (net_gen_.next_bernoulli(links_.drop_probability)) {
    ++stats_.messages_dropped;
    return;
  }
  double latency = links_.base_latency;
  if (links_.jitter_mean > 0.0) {
    latency += sample_exponential(net_gen_, 1.0 / links_.jitter_mean);
  }
  event ev;
  ev.time = now_ + latency;
  ev.seq = next_seq_++;
  ev.kind = event_kind::deliver;
  ev.dst = dst;
  ev.msg = msg;
  queue_.push(ev);
}

void simulation::enqueue_timer(node_id dst, double delay, std::int32_t timer_id) {
  require_started(true, "set_timer");
  if (!(delay > 0.0)) throw std::invalid_argument{"simulation::set_timer: delay must be > 0"};
  event ev;
  ev.time = now_ + delay;
  ev.seq = next_seq_++;
  ev.kind = event_kind::timer;
  ev.dst = dst;
  ev.epoch = epoch_[dst];
  ev.timer_id = timer_id;
  queue_.push(ev);
}

void simulation::partition(std::span<const node_id> group_a) {
  side_a_.assign(nodes_.size(), false);
  for (const node_id id : group_a) {
    if (id >= nodes_.size()) throw std::out_of_range{"simulation::partition: bad id"};
    side_a_[id] = true;
  }
  partitioned_ = true;
}

void simulation::heal_partition() noexcept { partitioned_ = false; }

void simulation::trace(std::uint64_t word) noexcept {
  trace_hash_ ^= word;
  trace_hash_ *= 0x100000001b3ULL;
}

void simulation::dispatch(const event& ev) {
  now_ = ev.time;
  trace(std::bit_cast<std::uint64_t>(ev.time));
  trace((static_cast<std::uint64_t>(ev.dst) << 8) |
        static_cast<std::uint64_t>(ev.kind));
  if (ev.kind == event_kind::deliver) {
    trace((static_cast<std::uint64_t>(ev.msg.src) << 32) |
          static_cast<std::uint32_t>(ev.msg.kind));
    trace(static_cast<std::uint64_t>(ev.msg.a));
    trace(static_cast<std::uint64_t>(ev.msg.b));
    if (!alive_[ev.dst]) {
      ++stats_.messages_dropped;
      return;
    }
    if (partitioned_ && side_a_[ev.msg.src] != side_a_[ev.dst]) {
      ++stats_.messages_dropped;  // crosses the cut
      return;
    }
    ++stats_.messages_delivered;
    context ctx{*this, ev.dst};
    nodes_[ev.dst]->on_message(ctx, ev.msg);
  } else {
    trace(static_cast<std::uint32_t>(ev.timer_id));
    // Timers set before a crash are stale in the new epoch.
    if (!alive_[ev.dst] || ev.epoch != epoch_[ev.dst]) return;
    ++stats_.timers_fired;
    context ctx{*this, ev.dst};
    nodes_[ev.dst]->on_timer(ctx, ev.timer_id);
  }
}

bool simulation::step_one() {
  require_started(true, "step_one");
  if (queue_.empty()) return false;
  const event ev = queue_.top();
  queue_.pop();
  dispatch(ev);
  return true;
}

void simulation::run_until(double t_end) {
  require_started(true, "run_until");
  if (t_end < now_) throw std::invalid_argument{"simulation::run_until: time moves forward"};
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  now_ = t_end;
}

void simulation::crash_node(node_id id) {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::crash_node: bad id"};
  if (!alive_[id]) return;
  alive_[id] = false;
  ++epoch_[id];
}

void simulation::restart_node(node_id id) {
  require_started(true, "restart_node");
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::restart_node: bad id"};
  if (alive_[id]) return;
  alive_[id] = true;
  context ctx{*this, id};
  nodes_[id]->on_start(ctx);
}

bool simulation::is_alive(node_id id) const {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::is_alive: bad id"};
  return alive_[id];
}

node& simulation::get_node(node_id id) {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::get_node: bad id"};
  return *nodes_[id];
}

const node& simulation::get_node(node_id id) const {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::get_node: bad id"};
  return *nodes_[id];
}

}  // namespace sgl::netsim
