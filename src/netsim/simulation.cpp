#include "netsim/simulation.h"

#include <bit>
#include <stdexcept>
#include <string>

#include "support/distributions.h"

namespace sgl::netsim {
namespace {

[[noreturn]] void bad_action(std::size_t index, const std::string& what) {
  throw std::invalid_argument{"fault_schedule: action " + std::to_string(index) + ": " + what};
}

}  // namespace

void link_model::validate() const {
  if (!(base_latency >= 0.0)) throw std::invalid_argument{"link_model: negative latency"};
  if (!(jitter_mean >= 0.0)) throw std::invalid_argument{"link_model: negative jitter"};
  if (!(drop_probability >= 0.0 && drop_probability <= 1.0)) {
    throw std::invalid_argument{"link_model: drop probability outside [0,1]"};
  }
}

void fault_schedule::validate(std::size_t num_nodes) const {
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const fault_action& act = actions[i];
    if (!(act.at >= 0.0)) bad_action(i, "'at' must be >= 0");
    if (act.until >= 0.0 && !(act.until > act.at)) {
      bad_action(i, "'until' (" + std::to_string(act.until) + ") must be > 'at' (" +
                        std::to_string(act.at) + ")");
    }
    for (const node_id id : act.targets) {
      if (id >= num_nodes) {
        bad_action(i, "target id " + std::to_string(id) + " >= num nodes (" +
                          std::to_string(num_nodes) + ")");
      }
    }
    if (act.fraction != -1.0 && !(act.fraction >= 0.0 && act.fraction <= 1.0)) {
      bad_action(i, "'fraction' (" + std::to_string(act.fraction) + ") outside [0,1]");
    }
    switch (act.which) {
      case fault_action::kind::partition: {
        if (act.until < 0.0) bad_action(i, "partition needs 'until' (it heals automatically)");
        if (act.targets.empty()) bad_action(i, "partition needs a non-empty target side");
        if (act.targets.size() >= num_nodes) {
          bad_action(i, "partition side must leave at least one node on the other side");
        }
        if (act.fraction != -1.0) bad_action(i, "partition does not take 'fraction'");
        // Overlapping cuts are ill-defined (netsim supports one cut at a
        // time); catch the conflict here instead of mid-run.
        for (std::size_t j = 0; j < i; ++j) {
          const fault_action& other = actions[j];
          if (other.which != fault_action::kind::partition) continue;
          if (act.at < other.until && other.at < act.until) {
            bad_action(i, "partition window [" + std::to_string(act.at) + ", " +
                              std::to_string(act.until) + ") overlaps action " +
                              std::to_string(j) + "'s window [" + std::to_string(other.at) +
                              ", " + std::to_string(other.until) + ")");
          }
        }
        break;
      }
      case fault_action::kind::crash_wave:
        if (act.until >= 0.0) bad_action(i, "crash_wave is a point event; 'until' not allowed");
        if (act.targets.empty() && act.fraction == -1.0) {
          bad_action(i, "crash_wave needs 'targets' or 'fraction'");
        }
        if (!act.targets.empty() && act.fraction != -1.0) {
          bad_action(i, "crash_wave takes 'targets' or 'fraction', not both");
        }
        break;
      case fault_action::kind::restart_wave:
        // No targets and no fraction = restart every crashed node.
        if (act.until >= 0.0) bad_action(i, "restart_wave is a point event; 'until' not allowed");
        if (!act.targets.empty() && act.fraction != -1.0) {
          bad_action(i, "restart_wave takes 'targets' or 'fraction', not both");
        }
        break;
      case fault_action::kind::degrade:
        if (act.degrade_class != link_class::all && act.targets.empty()) {
          bad_action(i, "degrade with a non-'all' link class needs targets");
        }
        if (act.fraction != -1.0) bad_action(i, "degrade does not take 'fraction'");
        try {
          act.link.validate();
        } catch (const std::invalid_argument& e) {
          bad_action(i, e.what());
        }
        break;
    }
  }
}

// --- context ----------------------------------------------------------------

double context::now() const noexcept { return sim_.now_; }
node_id context::self() const noexcept { return self_; }
rng& context::gen() noexcept { return sim_.node_gens_[self_]; }

void context::send(node_id dst, message msg) {
  msg.src = self_;
  msg.dst = dst;
  sim_.enqueue_message(self_, dst, msg);
}

void context::set_timer(double delay, std::int32_t timer_id) {
  sim_.enqueue_timer(self_, delay, timer_id);
}

void context::record(trace_kind kind, std::int32_t detail, std::int64_t a, std::int64_t b) {
  if (sim_.recorder_ == nullptr) return;
  trace_record rec;
  rec.time = sim_.now_;
  rec.kind = kind;
  rec.node = self_;
  rec.detail = detail;
  rec.a = a;
  rec.b = b;
  sim_.recorder_->append(rec);
}

std::span<const node_id> context::neighbors() const noexcept {
  if (sim_.topology_ != nullptr) {
    const auto nbrs = sim_.topology_->neighbors(self_);
    return {nbrs.data(), nbrs.size()};
  }
  return sim_.all_others_[self_];
}

std::size_t context::num_nodes() const noexcept { return sim_.nodes_.size(); }

// --- simulation ---------------------------------------------------------------

simulation::simulation(std::uint64_t seed)
    : net_gen_{rng::from_stream(seed, 0xfeedULL)},
      // 0xfa17 sits below 2^32 alongside 0xfeed (network) — disjoint from
      // both it and every node stream (those live above 2^32).
      fault_gen_{rng::from_stream(seed, 0xfa17ULL)},
      seed_{seed} {}

node_id simulation::add_node(std::unique_ptr<node> n) {
  require_started(false, "add_node");
  if (n == nullptr) throw std::invalid_argument{"simulation::add_node: null node"};
  const node_id id = static_cast<node_id>(nodes_.size());
  nodes_.push_back(std::move(n));
  // Node streams live above 2^32 so they can never collide with the
  // network stream (0xfeed) or any other sub-2^32 auxiliary stream for
  // any 32-bit node id (the old 0x1000 + id base met 0xfeed at id 61165).
  node_gens_.push_back(rng::from_stream(seed_, (1ULL << 32) + id));
  alive_.push_back(true);
  epoch_.push_back(0);
  return id;
}

void simulation::set_link_model(const link_model& links) {
  links.validate();
  links_ = links;
}

void simulation::set_fault_schedule(fault_schedule schedule) {
  require_started(false, "set_fault_schedule");
  schedule_ = std::move(schedule);
}

void simulation::require_started(bool started, const char* who) const {
  if (started_ != started) {
    throw std::logic_error{std::string{"simulation::"} + who +
                           (started ? ": not started yet" : ": already started")};
  }
}

void simulation::start() {
  require_started(false, "start");
  if (nodes_.empty()) throw std::logic_error{"simulation::start: no nodes"};
  if (topology_ != nullptr && topology_->num_vertices() != nodes_.size()) {
    throw std::invalid_argument{"simulation::start: topology vertex count != node count"};
  }
  if (topology_ == nullptr) {
    all_others_.resize(nodes_.size());
    for (node_id v = 0; v < nodes_.size(); ++v) {
      all_others_[v].reserve(nodes_.size() - 1);
      for (node_id w = 0; w < nodes_.size(); ++w) {
        if (w != v) all_others_[v].push_back(w);
      }
    }
  }
  schedule_.validate(nodes_.size());
  // Expand the schedule before any node runs: fault events take the lowest
  // sequence numbers, so at any tied time they dispatch before node events,
  // in schedule order, and action i's window end precedes action i+1's
  // begin.  An empty schedule pushes nothing — bit-identical to a run
  // without one.
  overrides_.assign(schedule_.actions.size(), link_override{});
  for (std::size_t i = 0; i < schedule_.actions.size(); ++i) {
    const fault_action& act = schedule_.actions[i];
    if (act.which == fault_action::kind::degrade) {
      link_override& ov = overrides_[i];
      ov.which = act.degrade_class;
      ov.link = act.link;
      ov.in_set.assign(nodes_.size(), false);
      for (const node_id id : act.targets) ov.in_set[id] = true;
    }
    event begin;
    begin.time = act.at;
    begin.seq = next_seq_++;
    begin.kind = event_kind::fault;
    begin.fault_index = static_cast<std::int32_t>(i);
    queue_.push(begin);
    const bool windowed = act.which == fault_action::kind::partition ||
                          act.which == fault_action::kind::degrade;
    if (windowed && act.until >= 0.0) {
      event end = begin;
      end.seq = next_seq_++;
      end.time = act.until;
      end.fault_end = true;
      queue_.push(end);
    }
  }
  started_ = true;
  for (node_id id = 0; id < nodes_.size(); ++id) {
    context ctx{*this, id};
    nodes_[id]->on_start(ctx);
  }
}

const link_model& simulation::resolve_link(node_id src, node_id dst) const noexcept {
  // Most recently activated matching override wins; the common case
  // (no active overrides) is one empty-vector check.
  for (auto it = override_order_.rbegin(); it != override_order_.rend(); ++it) {
    const link_override& ov = overrides_[static_cast<std::size_t>(*it)];
    bool match = false;
    switch (ov.which) {
      case link_class::all: match = true; break;
      case link_class::intra: match = ov.in_set[src] == ov.in_set[dst]; break;
      case link_class::cross: match = ov.in_set[src] != ov.in_set[dst]; break;
      case link_class::nodes: match = ov.in_set[src] || ov.in_set[dst]; break;
    }
    if (match) return ov.link;
  }
  return links_;
}

void simulation::record(const trace_record& rec) {
  if (recorder_ != nullptr) recorder_->append(rec);
}

void simulation::enqueue_message(node_id src, node_id dst, const message& msg) {
  require_started(true, "send");
  if (dst >= nodes_.size()) throw std::out_of_range{"simulation::send: bad destination"};
  if (dst == src) throw std::logic_error{"simulation::send: self-send"};
  if (topology_ != nullptr && !topology_->has_edge(src, dst)) {
    throw std::logic_error{"simulation::send: destination is not a neighbour"};
  }
  const link_model& link = resolve_link(src, dst);
  ++stats_.messages_sent;
  record({now_, trace_kind::send, src, dst, msg.kind, msg.a, msg.b});
  if (net_gen_.next_bernoulli(link.drop_probability)) {
    ++stats_.messages_dropped;
    record({now_, trace_kind::drop, dst, src, msg.kind,
            static_cast<std::int64_t>(drop_reason::loss), 0});
    return;
  }
  double latency = link.base_latency;
  if (link.jitter_mean > 0.0) {
    latency += sample_exponential(net_gen_, 1.0 / link.jitter_mean);
  }
  event ev;
  ev.time = now_ + latency;
  ev.seq = next_seq_++;
  ev.kind = event_kind::deliver;
  ev.dst = dst;
  ev.msg = msg;
  queue_.push(ev);
}

void simulation::enqueue_timer(node_id dst, double delay, std::int32_t timer_id) {
  require_started(true, "set_timer");
  if (!(delay > 0.0)) throw std::invalid_argument{"simulation::set_timer: delay must be > 0"};
  event ev;
  ev.time = now_ + delay;
  ev.seq = next_seq_++;
  ev.kind = event_kind::timer;
  ev.dst = dst;
  ev.epoch = epoch_[dst];
  ev.timer_id = timer_id;
  queue_.push(ev);
}

void simulation::partition(std::span<const node_id> group_a) {
  if (partitioned_) {
    throw std::logic_error{
        "simulation::partition: already partitioned; heal_partition() first "
        "(overlapping cuts would silently overwrite side assignments)"};
  }
  side_a_.assign(nodes_.size(), false);
  for (const node_id id : group_a) {
    if (id >= nodes_.size()) throw std::out_of_range{"simulation::partition: bad id"};
    side_a_[id] = true;
  }
  partitioned_ = true;
  for (const node_id id : group_a) {
    record({now_, trace_kind::partition, id, 0, 0, 0, 0});
  }
}

void simulation::heal_partition() {
  if (!partitioned_) return;
  partitioned_ = false;
  record({now_, trace_kind::heal, 0, 0, 0, 0, 0});
}

bool simulation::on_side_a(node_id id) const {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::on_side_a: bad id"};
  return side_a_[id];
}

void simulation::trace(std::uint64_t word) noexcept {
  trace_hash_ ^= word;
  trace_hash_ *= 0x100000001b3ULL;
}

void simulation::dispatch_fault(const event& ev) {
  const auto index = static_cast<std::size_t>(ev.fault_index);
  const fault_action& act = schedule_.actions[index];
  switch (act.which) {
    case fault_action::kind::partition:
      if (ev.fault_end) {
        heal_partition();
      } else {
        partition(act.targets);
      }
      break;
    case fault_action::kind::crash_wave:
      if (act.targets.empty()) {
        // Deterministic regardless of which nodes are alive: one draw per
        // node, applied only to the live ones.
        for (node_id id = 0; id < nodes_.size(); ++id) {
          const bool hit = fault_gen_.next_bernoulli(act.fraction);
          if (hit && alive_[id]) crash_node(id);
        }
      } else {
        for (const node_id id : act.targets) crash_node(id);
      }
      break;
    case fault_action::kind::restart_wave:
      if (!act.targets.empty()) {
        for (const node_id id : act.targets) restart_node(id);
      } else if (act.fraction != -1.0) {
        for (node_id id = 0; id < nodes_.size(); ++id) {
          const bool hit = fault_gen_.next_bernoulli(act.fraction);
          if (hit && !alive_[id]) restart_node(id);
        }
      } else {
        for (node_id id = 0; id < nodes_.size(); ++id) {
          if (!alive_[id]) restart_node(id);
        }
      }
      break;
    case fault_action::kind::degrade:
      if (ev.fault_end) {
        overrides_[index].active = false;
        std::erase(override_order_, ev.fault_index);
        record({now_, trace_kind::restore, 0, 0, ev.fault_index, 0, 0});
      } else {
        overrides_[index].active = true;
        override_order_.push_back(ev.fault_index);
        record({now_, trace_kind::degrade, 0, 0, ev.fault_index, 0, 0});
      }
      break;
  }
}

void simulation::dispatch(const event& ev) {
  now_ = ev.time;
  trace(std::bit_cast<std::uint64_t>(ev.time));
  trace((static_cast<std::uint64_t>(ev.dst) << 8) |
        static_cast<std::uint64_t>(ev.kind));
  if (ev.kind == event_kind::deliver) {
    trace((static_cast<std::uint64_t>(ev.msg.src) << 32) |
          static_cast<std::uint32_t>(ev.msg.kind));
    trace(static_cast<std::uint64_t>(ev.msg.a));
    trace(static_cast<std::uint64_t>(ev.msg.b));
    if (!alive_[ev.dst]) {
      ++stats_.messages_dropped;
      record({now_, trace_kind::drop, ev.dst, ev.msg.src, ev.msg.kind,
              static_cast<std::int64_t>(drop_reason::dst_crashed), 0});
      return;
    }
    if (partitioned_ && side_a_[ev.msg.src] != side_a_[ev.dst]) {
      ++stats_.messages_dropped;  // crosses the cut
      record({now_, trace_kind::drop, ev.dst, ev.msg.src, ev.msg.kind,
              static_cast<std::int64_t>(drop_reason::partitioned), 0});
      return;
    }
    ++stats_.messages_delivered;
    record({now_, trace_kind::deliver, ev.dst, ev.msg.src, ev.msg.kind, ev.msg.a, ev.msg.b});
    context ctx{*this, ev.dst};
    nodes_[ev.dst]->on_message(ctx, ev.msg);
  } else if (ev.kind == event_kind::timer) {
    trace(static_cast<std::uint32_t>(ev.timer_id));
    // Timers set before a crash are stale in the new epoch.
    if (!alive_[ev.dst] || ev.epoch != epoch_[ev.dst]) return;
    ++stats_.timers_fired;
    context ctx{*this, ev.dst};
    nodes_[ev.dst]->on_timer(ctx, ev.timer_id);
  } else {
    // Pin *which* scheduled fault fired (and which phase) into the hash,
    // so a replay that re-timed or re-ordered any fault cannot collide.
    trace((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.fault_index)) << 1) |
          static_cast<std::uint64_t>(ev.fault_end));
    dispatch_fault(ev);
  }
}

bool simulation::step_one() {
  require_started(true, "step_one");
  if (queue_.empty()) return false;
  const event ev = queue_.top();
  queue_.pop();
  dispatch(ev);
  return true;
}

void simulation::run_until(double t_end) {
  require_started(true, "run_until");
  if (t_end < now_) throw std::invalid_argument{"simulation::run_until: time moves forward"};
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  now_ = t_end;
}

void simulation::crash_node(node_id id) {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::crash_node: bad id"};
  if (!alive_[id]) return;  // documented no-op: epoch bumps exactly once
  alive_[id] = false;
  ++epoch_[id];
  record({now_, trace_kind::crash, id, 0, 0, 0, 0});
}

void simulation::restart_node(node_id id) {
  require_started(true, "restart_node");
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::restart_node: bad id"};
  if (alive_[id]) return;  // documented no-op: on_start runs exactly once
  alive_[id] = true;
  record({now_, trace_kind::restart, id, 0, 0, 0, 0});
  context ctx{*this, id};
  nodes_[id]->on_start(ctx);
}

bool simulation::is_alive(node_id id) const {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::is_alive: bad id"};
  return alive_[id];
}

node& simulation::get_node(node_id id) {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::get_node: bad id"};
  return *nodes_[id];
}

const node& simulation::get_node(node_id id) const {
  if (id >= nodes_.size()) throw std::out_of_range{"simulation::get_node: bad id"};
  return *nodes_[id];
}

}  // namespace sgl::netsim
