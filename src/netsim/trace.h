#pragma once

/// \file trace.h
/// Structured event traces for the network simulator.
///
/// trace_hash() (simulation.h) folds every dispatched event into one FNV
/// word — perfect for bit-identity assertions, useless for asking *what*
/// happened.  The trace_recorder is the structured sibling: an optional,
/// bounded buffer of typed records (sends, deliveries, drops, faults, and
/// application-level commit/adopt marks) that the offline invariant checker
/// (analysis/trace_check.h) replays.  Recording is off by default and must
/// be free when off: the simulator holds a nullable pointer and every
/// record site is a single branch.
///
/// Records carry a fixed small layout instead of per-kind structs so the
/// ring buffer is a flat vector and JSONL serialization is one schema.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sgl::netsim {

/// What one trace record describes.  Message records (send/deliver/drop)
/// come from the simulator core; fault records (crash/restart/partition/
/// heal/degrade/restore) from fault injection — scheduled or direct; the
/// application records (post/commit/adopt) from protocol code via
/// context::record / an engine holding the recorder.
enum class trace_kind : std::uint8_t {
  send,       ///< node=src, peer=dst, detail=msg.kind, a/b=payload
  deliver,    ///< node=dst, peer=src, detail=msg.kind, a/b=payload
  drop,       ///< node=dst, peer=src, detail=msg.kind, a=reason (drop_reason)
  crash,      ///< node=crashed id
  restart,    ///< node=restarted id
  partition,  ///< node=a side-A member (one record per member opens a cut)
  heal,       ///< the cut closed
  degrade,    ///< a link-class override activated; detail=schedule index
  restore,    ///< that override deactivated; detail=schedule index
  post,       ///< a=round, b=signal bitmask (options 0..63), detail=num options
  commit,     ///< node adopted while uncommitted; a=option, b=round
  adopt,      ///< node adopted (committed or not before); a=option, b=round
};

/// Why a message was dropped (trace_kind::drop, field `a`).
enum class drop_reason : std::int64_t {
  loss = 0,          ///< Bernoulli link loss at send time
  dst_crashed = 1,   ///< destination was down at delivery time
  partitioned = 2,   ///< src and dst were on opposite sides of the cut
};

/// One trace record.  Field meanings depend on `kind` (see trace_kind);
/// unused fields are zero.
struct trace_record {
  double time = 0.0;
  trace_kind kind = trace_kind::send;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::int32_t detail = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;

  friend bool operator==(const trace_record&, const trace_record&) = default;
};

/// Stable lowercase name of a record kind ("send", "deliver", ...).
[[nodiscard]] std::string_view trace_kind_name(trace_kind kind) noexcept;

/// Parses a trace_kind name; returns false on unknown names.
[[nodiscard]] bool parse_trace_kind(std::string_view name, trace_kind& out) noexcept;

/// A bounded event recorder.  capacity == 0 keeps every record (full mode);
/// capacity > 0 keeps the most recent `capacity` records (ring mode) and
/// counts what fell off the front.  Not thread-safe — one recorder belongs
/// to one simulation, which is single-threaded by construction.
class trace_recorder {
 public:
  explicit trace_recorder(std::size_t capacity = 0) : capacity_{capacity} {}

  void append(const trace_record& record);

  /// Records in arrival order (ring mode unrotates the buffer).
  [[nodiscard]] std::vector<trace_record> snapshot() const;

  /// Records currently held.
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  /// Records evicted from the front of the ring (0 in full mode).
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< ring mode: index of the oldest record
  std::uint64_t evicted_ = 0;
  std::vector<trace_record> records_;
};

}  // namespace sgl::netsim
