/// \file step_kernel_neon.cpp
/// NEON build of the shared kernel implementation.  AArch64 bakes NEON
/// into the baseline ABI, so no extra target flags are needed; on other
/// platforms this TU degrades to a forwarder so the symbols always exist.

#include "core/step_kernel.h"

#if defined(__ARM_NEON)

#include "core/step_kernel_impl.h"

namespace sgl::core::kernel {

void net2_step_neon(const net2_args& args) { net2_body(args); }
void mixed_step_neon(const mixed_args& args) { mixed_body(args); }
bool neon_kernels_compiled() noexcept { return true; }

}  // namespace sgl::core::kernel

#else  // no NEON target: keep the symbols, report not-compiled

namespace sgl::core::kernel {

void net2_step_neon(const net2_args& args) { net2_step_generic(args); }
void mixed_step_neon(const mixed_args& args) { mixed_step_generic(args); }
bool neon_kernels_compiled() noexcept { return false; }

}  // namespace sgl::core::kernel

#endif
