#include "core/coupling.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/aggregate_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/theory.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

struct coupling_shard {
  explicit coupling_shard(std::size_t horizon)
      : deviation{horizon}, within_bound{horizon} {}
  series_stats deviation;
  series_stats within_bound;
  running_stats capped;
};

}  // namespace

coupling_estimate estimate_coupling(const dynamics_params& params,
                                    std::uint64_t num_agents, const env_factory& make_env,
                                    const run_config& config, double deviation_cap) {
  if (config.horizon == 0 || config.replications == 0) {
    throw std::invalid_argument{"estimate_coupling: empty run"};
  }
  if (!(deviation_cap > 0.0)) {
    throw std::invalid_argument{"estimate_coupling: cap must be positive"};
  }

  const std::size_t horizon = static_cast<std::size_t>(config.horizon);
  coupling_estimate estimate{horizon};
  estimate.deviation_cap = deviation_cap;
  // Outside the lemma's regime (β = 1, or no exploration) δ″ is undefined;
  // record a vacuous (infinite) bound instead of failing the measurement.
  const bool in_regime = params.beta > 0.0 && params.beta < 1.0 && params.mu > 0.0;
  for (std::size_t t = 1; t <= horizon; ++t) {
    estimate.bound[t - 1] =
        in_regime ? theory::coupling_bound(t, params.num_options, params.mu, params.beta,
                                           static_cast<double>(num_agents))
                  : std::numeric_limits<double>::infinity();
  }

  auto shard = parallel_reduce<coupling_shard>(
      config.replications, [&] { return coupling_shard{horizon}; },
      [&](coupling_shard& s, std::size_t replication) {
        const auto environment = make_env();
        if (environment->num_options() != params.num_options) {
          throw std::invalid_argument{"estimate_coupling: option-count mismatch"};
        }
        rng reward_gen = rng::from_stream(config.seed, 2 * replication);
        rng process_gen = rng::from_stream(config.seed, 2 * replication + 1);

        infinite_dynamics infinite{params};
        aggregate_dynamics finite{params, num_agents};
        std::vector<std::uint8_t> rewards(params.num_options, 0);
        std::vector<double> dev_curve(horizon, 0.0);
        std::vector<double> ok_curve(horizon, 0.0);

        for (std::size_t t = 1; t <= horizon; ++t) {
          environment->sample(t, reward_gen, rewards);
          infinite.step(rewards);        // shared reward realization —
          finite.step(rewards, process_gen);  // — this is the coupling.

          const auto p = infinite.distribution();
          const auto q = finite.popularity();
          double dev = 0.0;
          for (std::size_t j = 0; j < p.size(); ++j) {
            double ratio;
            if (q[j] <= 0.0 || p[j] <= 0.0) {
              ratio = std::numeric_limits<double>::infinity();
            } else {
              ratio = std::max(p[j] / q[j], q[j] / p[j]);
            }
            dev = std::max(dev, ratio - 1.0);
          }
          const bool capped = dev > deviation_cap;
          if (capped) s.capped.add(1.0); else s.capped.add(0.0);
          dev_curve[t - 1] = std::min(dev, deviation_cap);
          ok_curve[t - 1] = dev <= estimate.bound[t - 1] ? 1.0 : 0.0;
        }
        s.deviation.add_series(dev_curve);
        s.within_bound.add_series(ok_curve);
      },
      [](coupling_shard& into, const coupling_shard& from) {
        into.deviation.merge(from.deviation);
        into.within_bound.merge(from.within_bound);
        into.capped.merge(from.capped);
      },
      config.threads);

  estimate.deviation = std::move(shard.deviation);
  estimate.within_bound = std::move(shard.within_bound);
  estimate.capped_fraction = shard.capped.mean();
  estimate.replications = estimate.deviation.replications();
  return estimate;
}

}  // namespace sgl::core
