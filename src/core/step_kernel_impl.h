// \file step_kernel_impl.h
// The single implementation behind every per-ISA step-kernel translation
// unit.  NOT a normal header: it defines internal-linkage functions and is
// included exactly once per kernel TU (step_kernel_generic.cpp,
// step_kernel_avx2.cpp, step_kernel_neon.cpp), each compiled with its own
// target flags.  The lane types from support/simd.h resolve to that TU's
// ABI, so the same source lowers to AVX2, NEON or baseline code — with
// bit-identical results, because every operation below is integer-exact.
//
// Law and counter layout are specified in core/step_kernel.h; the exact
// arithmetic (fused stage-2 thresholds, the copy-branch rescale
// t_mu + mulhi(2^64 − t_mu, P), endpoint conventions) is documented at the
// point of use.  The scalar remainder loops repeat the vector formulas
// verbatim on one agent at a time — same counter addressing, same
// fixed-point products — so where the tail starts (a function of N and the
// lane width only) can never change a trajectory.

#include <cstddef>
#include <cstdint>

#include "core/step_kernel.h"
#include "support/rng.h"
#include "support/simd.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)
// Only the changed-list compaction drops to intrinsics (vpcompressq has no
// GNU-vector spelling); everything else stays on the portable lane types.
#include <immintrin.h>
#endif

// Same -Wpsabi note as support/simd.h: by-value vector parameters are fine
// because nothing here crosses a translation-unit boundary.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace {

using namespace sgl;
using namespace sgl::core::kernel;
using simd::lane_count;
using simd::vi32;
using simd::vi64;
using simd::vu32;
using simd::vu64;

constexpr std::uint64_t k_gamma = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t k_max = ~std::uint64_t{0};

[[nodiscard]] inline vu64 splat64(std::uint64_t x) noexcept { return vu64{} + x; }
[[nodiscard]] inline vi64 splat_mask64(bool b) noexcept {
  return vi64{} + (b ? std::int64_t{-1} : std::int64_t{0});
}

/// The output mix of counter_word (rng.h) on eight pre-advanced states:
/// callers hand in S + (c+1)·γ per lane and get the lane's word.
[[nodiscard]] inline vu64 mix_lanes(vu64 z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// High 64 bits of the 128-bit product, lane-wise, via 32-bit halves.
/// Every partial product is a 32×32→64 multiply (pmuludq-class on x86),
/// and the half recombination is exact — equal to the scalar
/// (unsigned __int128) reference for all inputs.
[[nodiscard]] inline vu64 mulhi64_lanes(vu64 a, vu64 b) noexcept {
  const vu64 a_lo = a & 0xFFFFFFFFULL;
  const vu64 a_hi = a >> 32;
  const vu64 b_lo = b & 0xFFFFFFFFULL;
  const vu64 b_hi = b >> 32;
  const vu64 t = a_hi * b_lo + ((a_lo * b_lo) >> 32);
  const vu64 u = a_lo * b_hi + (t & 0xFFFFFFFFULL);
  return a_hi * b_hi + (t >> 32) + (u >> 32);
}

/// floor(w · bound / 2^64) lane-wise — the vector twin of
/// sgl::scale_bounded (bound < 2^32, so two half products suffice).
[[nodiscard]] inline vu64 scale_bounded_lanes(vu64 w, vu64 bound) noexcept {
  const vu64 lo = (w & 0xFFFFFFFFULL) * bound;
  const vu64 hi = (w >> 32) * bound;
  return (hi + (lo >> 32)) >> 32;
}

[[nodiscard]] inline std::uint64_t mulhi64_scalar(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}

/// 2^64 − t_mu as the copy-branch rescale factor; t_mu == 0 wraps, so it
/// saturates to max (error 2^-64 — only reachable when mu == 0, where the
/// explore branch never fires anyway).
[[nodiscard]] constexpr std::uint64_t not_mu_scale(std::uint64_t t_mu) noexcept {
  return t_mu == 0 ? k_max : std::uint64_t{0} - t_mu;
}

/// Packed changed-list entry, identical to derivation v2's layout:
/// agent | (was+1) << 32 | (now+1) << 48.
[[nodiscard]] inline std::uint64_t pack_changed(std::size_t i, std::int32_t was,
                                                std::int32_t now) noexcept {
  return static_cast<std::uint64_t>(i) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(was + 1)) << 32) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(now + 1)) << 48);
}

// ---------------------------------------------------------------------------
// net2: sparse network step, m == 2, packed view rows
// ---------------------------------------------------------------------------

inline void net2_body(const net2_args& a) {
  const std::uint64_t t_mu = a.t_mu;
  const std::uint64_t t_not_mu = not_mu_scale(t_mu);
  const bool mu_always = t_mu == k_max;
  const bool heterogeneous = a.p_reward0 != nullptr;

  const vu64 t_mu_v = splat64(t_mu);
  const vu64 t_not_mu_v = splat64(t_not_mu);
  const vu64 max_v = splat64(k_max);
  const vi64 explore_force = splat_mask64(mu_always);
  const vu64 te0 = splat64(a.thr_explore[0]);
  const vu64 te1 = splat64(a.thr_explore[1]);
  const vu64 tc0 = splat64(a.thr_copy[0]);
  const vu64 tc1 = splat64(a.thr_copy[1]);

  // Per-lane tallies; a shard is at most 8192 agents, so u32 cannot wrap.
  vu32 acc_stage1{};
  vu32 acc_adopt0{};
  vu32 acc_adopt1{};
  std::uint64_t tail_stage1 = 0;
  std::uint64_t tail_adopt0 = 0;
  std::uint64_t tail_adopt1 = 0;
  std::size_t changed_len = 0;

  // Counter states, advanced incrementally: lane k of the batch starting
  // at agent g holds S + (2(g+k)+1)·γ — the pre-mix state of the w0
  // counter; the matching w1 state is one γ further.  All counter
  // arithmetic wraps mod 2^64, exactly like counter_word's (c+1)·γ.
  std::size_t i = a.lo;
  const std::size_t vec_end = a.lo + ((a.hi - a.lo) & ~(lane_count - 1));
  vu64 s0 = simd::lane_ramp(
      a.step_seed + (2 * static_cast<std::uint64_t>(a.lo) + 1) * k_gamma,
      2 * k_gamma);
  constexpr std::uint64_t batch_stride =
      2 * static_cast<std::uint64_t>(lane_count) * k_gamma;

  // Unrolled ×2: the splitmix chain is ~20 cycles of latency on one
  // register of work, so a single batch leaves the multiply ports mostly
  // idle; two independent batches in flight roughly double throughput.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC unroll 2
#endif
  for (; i < vec_end; i += lane_count, s0 += batch_stride) {
    const vu64 w0 = mix_lanes(s0);
    const vu64 w1 = mix_lanes(s0 + k_gamma);

    // --- Stage 1: explore, or copy a uniform committed neighbour. ---
    const vu32 packed = simd::load_u32(a.rows + i);
    const vu32 c0 = packed & 0xFFFFU;
    const vu32 total = c0 + (packed >> 16);
    const vi64 explore = (w0 < t_mu_v) | explore_force;
    const vi32 explore32 = simd::narrow_mask(explore);
    const vi32 by_view32 = ~explore32 & (total != 0);
    const vu32 bound32 = by_view32 ? total : (vu32{} + 2);
    const vu64 r = scale_bounded_lanes(w1, simd::widen_u32(bound32));
    const vu32 r32 = simd::narrow_u64(r);
    // by-view: option 1 iff the draw falls past the option-0 block;
    // otherwise the draw itself is the uniform option.
    const vu32 considered = by_view32 ? (vu32)((r32 >= c0) & 1) : r32;

    // --- Stage 2: adopt or sit out, reusing w0 (fused thresholds). ---
    const vi32 c_mask32 = (considered != 0);
    const vi64 c_mask = simd::widen_mask(c_mask32);
    vu64 thr;
    vi64 always;
    if (heterogeneous) {
      const vu64 p0 = simd::load_u64(a.p_reward0 + i);
      const vu64 p1 = simd::load_u64(a.p_reward1 + i);
      const vu64 p = c_mask ? p1 : p0;
      thr = explore ? mulhi64_lanes(t_mu_v, p)
                    : t_mu_v + mulhi64_lanes(t_not_mu_v, p);
      always = (p == max_v);
    } else {
      const vu64 thr_e = c_mask ? te1 : te0;
      const vu64 thr_c = c_mask ? tc1 : tc0;
      thr = explore ? thr_e : thr_c;
      always = (thr == max_v);
    }
    const vi32 adopted32 = simd::narrow_mask((w0 < thr) | always);
    const vi32 now32 = adopted32 ? (vi32)considered : (vi32{} - 1);
    simd::store_i32(a.choices + i, now32);

    const vu32 adopted01 = (vu32)adopted32 & 1;
    acc_stage1 += considered;
    acc_adopt1 += adopted01 & considered;
    acc_adopt0 += adopted01 & ~considered & 1;
  }

  // --- Scalar remainder: the identical formulas, one agent at a time. ---
  for (; i < a.hi; ++i) {
    const std::uint64_t w0 = counter_word(a.step_seed, 2 * i);
    const std::uint64_t w1 = counter_word(a.step_seed, 2 * i + 1);
    const std::uint32_t packed = a.rows[i];
    const std::uint32_t c0 = packed & 0xFFFFU;
    const std::uint32_t total = c0 + (packed >> 16);
    const bool explore = mu_always || w0 < t_mu;
    const bool by_view = !explore && total != 0;
    const std::uint64_t r = scale_bounded(w1, by_view ? total : 2);
    const std::size_t considered = by_view ? (r >= c0) : static_cast<std::size_t>(r);
    std::uint64_t thr;
    bool adopt_always;
    if (heterogeneous) {
      const std::uint64_t p = considered != 0 ? a.p_reward1[i] : a.p_reward0[i];
      thr = explore ? mulhi64_scalar(t_mu, p)
                    : t_mu + mulhi64_scalar(t_not_mu, p);
      adopt_always = p == k_max;
    } else {
      thr = explore ? a.thr_explore[considered] : a.thr_copy[considered];
      adopt_always = thr == k_max;
    }
    const bool adopted = adopt_always || w0 < thr;
    a.choices[i] = adopted ? static_cast<std::int32_t>(considered) : -1;
    tail_stage1 += considered;
    tail_adopt1 += adopted && considered != 0;
    tail_adopt0 += adopted && considered == 0;
  }

  // --- Changed-list pass: reading back the freshly written choices.
  // Kept out of the main loop on purpose — interleaving a per-lane
  // extraction there keeps every vector value live across scalar code and
  // the register spills cost more than this second sweep (the two arrays
  // are sequential and still cache-hot). ---
  std::size_t g = a.lo;
#if defined(__AVX512F__) && defined(__AVX512DQ__)
  // Order-preserving masked compress: each batch packs its changed
  // entries with vpcompressq, so the list is byte-for-byte the scalar
  // loop's output.  (lane_count == 8 in this TU: one zmm per batch.)
  for (; g + lane_count <= a.hi; g += lane_count) {
    const vi64 wasq = __builtin_convertvector(simd::load_i32(a.previous + g), vi64);
    const vi64 nowq = __builtin_convertvector(simd::load_i32(a.choices + g), vi64);
    const vu64 entry = simd::lane_ramp(g, 1) |
                       ((vu64)(wasq + 1) << 32) | ((vu64)(nowq + 1) << 48);
    const __mmask8 mk =
        _mm512_cmpneq_epi64_mask((__m512i)wasq, (__m512i)nowq);
    _mm512_mask_compressstoreu_epi64(a.changed + changed_len, mk,
                                     (__m512i)entry);
    changed_len += static_cast<unsigned>(__builtin_popcount(mk));
  }
#endif
  for (; g < a.hi; ++g) {
    const std::int32_t was = a.previous[g];
    const std::int32_t now = a.choices[g];
    a.changed[changed_len] = pack_changed(g, was, now);
    changed_len += now != was;
  }

  const std::uint64_t stage1 = simd::reduce_add(acc_stage1) + tail_stage1;
  a.stage[0] += (a.hi - a.lo) - stage1;
  a.stage[1] += stage1;
  a.adopt[0] += simd::reduce_add(acc_adopt0) + tail_adopt0;
  a.adopt[1] += simd::reduce_add(acc_adopt1) + tail_adopt1;
  *a.changed_len = static_cast<std::uint32_t>(changed_len);
}

// ---------------------------------------------------------------------------
// mixed: fully mixed heterogeneous per-agent step, m <= 64
// ---------------------------------------------------------------------------

inline void mixed_body(const mixed_args& a) {
  const std::uint64_t t_mu = a.t_mu;
  const std::uint64_t t_not_mu = not_mu_scale(t_mu);
  const bool mu_always = t_mu == k_max;
  const std::size_t m = a.m;

  const vu64 t_mu_v = splat64(t_mu);
  const vu64 t_not_mu_v = splat64(t_not_mu);
  const vu64 max_v = splat64(k_max);
  const vi64 explore_force = splat_mask64(mu_always);
  const vu64 m_v = splat64(m);
  const vu64 reward_bits_v = splat64(a.reward_bits);

  std::size_t g = 0;
  const std::size_t vec_end = a.n & ~(lane_count - 1);
  vu64 s0 = simd::lane_ramp(a.step_seed + k_gamma, 2 * k_gamma);
  constexpr std::uint64_t batch_stride =
      2 * static_cast<std::uint64_t>(lane_count) * k_gamma;

  for (; g < vec_end; g += lane_count, s0 += batch_stride) {
    const vu64 w0 = mix_lanes(s0);
    const vu64 w1 = mix_lanes(s0 + k_gamma);

    // --- Stage 1: uniform option on the explore branch, CDF-ladder
    // popularity draw on the copy branch (both functions of w1, selected
    // exclusively by the w0 explore test — one draw either way). ---
    const vi64 explore = (w0 < t_mu_v) | explore_force;
    const vu64 r_uniform = scale_bounded_lanes(w1, m_v);
    vu64 r_ladder{};
    for (std::size_t j = 0; j + 1 < m; ++j) {
      // each satisfied rung contributes −(−1) = +1
      r_ladder -= (vu64)(w1 >= splat64(a.pop_cdf[j]));
    }
    const vu64 considered = explore ? r_uniform : r_ladder;

    // --- Stage 2: per-agent rule, signal looked up branch-free from the
    // reward bitmask. ---
    const vi64 sig = (((reward_bits_v >> considered) & 1) != 0);
    const vu64 p_alpha = simd::load_u64(a.alpha_thr + g);
    const vu64 p_beta = simd::load_u64(a.beta_thr + g);
    const vu64 p = sig ? p_beta : p_alpha;
    const vu64 thr = explore ? mulhi64_lanes(t_mu_v, p)
                             : t_mu_v + mulhi64_lanes(t_not_mu_v, p);
    const vi32 adopted32 = simd::narrow_mask((w0 < thr) | (p == max_v));
    const vu32 considered32 = simd::narrow_u64(considered);
    const vi32 now32 = adopted32 ? (vi32)considered32 : (vi32{} - 1);
    simd::store_i32(a.choices + g, now32);
    simd::store_u32(a.considered + g, considered32);
  }

  // --- Scalar remainder: identical formulas. ---
  for (; g < a.n; ++g) {
    const std::uint64_t w0 = counter_word(a.step_seed, 2 * g);
    const std::uint64_t w1 = counter_word(a.step_seed, 2 * g + 1);
    const bool explore = mu_always || w0 < t_mu;
    std::size_t considered;
    if (explore) {
      considered = static_cast<std::size_t>(
          scale_bounded(w1, static_cast<std::uint32_t>(m)));
    } else {
      considered = 0;
      for (std::size_t j = 0; j + 1 < m; ++j) considered += w1 >= a.pop_cdf[j];
    }
    const bool sig = (a.reward_bits >> considered) & 1;
    const std::uint64_t p = sig ? a.beta_thr[g] : a.alpha_thr[g];
    const std::uint64_t thr = explore
                                  ? mulhi64_scalar(t_mu, p)
                                  : t_mu + mulhi64_scalar(t_not_mu, p);
    const bool adopted = p == k_max || w0 < thr;
    a.choices[g] = adopted ? static_cast<std::int32_t>(considered) : -1;
    a.considered[g] = static_cast<std::uint32_t>(considered);
  }
}

}  // namespace

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
