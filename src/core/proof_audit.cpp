#include "core/proof_audit.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sgl::core {

proof_auditor::proof_auditor(const dynamics_params& params) : params_{params} {
  params_.validate();
  if (!(params_.beta > 0.5 && params_.beta < 1.0)) {
    throw std::invalid_argument{"proof_auditor: needs 1/2 < beta < 1"};
  }
  if (std::abs(params_.resolved_alpha() - (1.0 - params_.beta)) > 1e-12) {
    throw std::invalid_argument{"proof_auditor: needs alpha = 1 - beta"};
  }
  if (!(params_.mu > 0.0 && params_.mu <= 0.5)) {
    throw std::invalid_argument{"proof_auditor: needs 0 < mu <= 1/2"};
  }
  delta_ = params_.delta();
  if (delta_ > 1.0 + 1e-12) {
    // The combined inequality's constants use e^delta - 1 <= delta + delta^2,
    // valid only up to beta = e/(e+1).
    throw std::invalid_argument{"proof_auditor: needs beta <= e/(e+1)"};
  }
  const double exp_delta_minus_one = std::expm1(delta_);
  delta_prime_ = (1.0 - params_.mu) * exp_delta_minus_one / (1.0 + params_.mu * delta_);
}

void proof_auditor::observe(std::span<const double> pre_step_distribution,
                            std::span<const std::uint8_t> rewards,
                            double log_potential_after) {
  const std::size_t m = params_.num_options;
  if (pre_step_distribution.size() != m || rewards.size() != m) {
    throw std::invalid_argument{"proof_auditor::observe: width mismatch"};
  }
  ++steps_;
  comparator_reward_ += static_cast<double>(rewards[0]);
  double inner = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    inner += pre_step_distribution[j] * static_cast<double>(rewards[j]);
  }
  group_reward_ += inner;

  const double t = static_cast<double>(steps_);
  const double mu = params_.mu;
  const double beta = params_.beta;
  const double log_m = std::log(static_cast<double>(m));
  const double exp_delta_minus_one = std::expm1(delta_);

  // Upper potential bound (§5, the chain ending in Φ^0 = m):
  //   ln Φ^T <= ln m + T [ln(1-β) + ln(1 + μ(e^δ − 1))] + δ' Σ ⟨P, R⟩.
  const double upper = log_m +
                       t * (std::log(1.0 - beta) + std::log1p(mu * exp_delta_minus_one)) +
                       delta_prime_ * group_reward_;
  // Lower potential bound (keep only option 1's weight):
  //   ln Φ^T >= T [ln(1-β) + ln(1-μ)] + δ Σ R^t_1.
  const double lower = t * (std::log(1.0 - beta) + std::log1p(-mu)) +
                       delta_ * comparator_reward_;
  // Combined pathwise regret inequality:
  //   δ (Σ R^t_1 − Σ ⟨P,R⟩) <= ln m + (δ² + 6μ) T.
  const double lhs = delta_ * (comparator_reward_ - group_reward_);
  const double rhs = log_m + (delta_ * delta_ + 6.0 * mu) * t;

  slacks_.upper_potential = upper - log_potential_after;
  slacks_.lower_potential = log_potential_after - lower;
  slacks_.regret_inequality = rhs - lhs;

  worst_slack_ = steps_ == 1
                     ? std::min({slacks_.upper_potential, slacks_.lower_potential,
                                 slacks_.regret_inequality})
                     : std::min({worst_slack_, slacks_.upper_potential,
                                 slacks_.lower_potential, slacks_.regret_inequality});
}

}  // namespace sgl::core
