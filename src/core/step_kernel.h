#pragma once

/// \file step_kernel.h
/// Vectorized step kernels for finite_dynamics — stream derivation v3.
///
/// Two hot paths are implemented as lane-parallel kernels (DESIGN.md, "SoA
/// state layout and stream derivation v3"):
///
///   * `net2` — the sparse network step for the canonical two-option case
///     (packed committed-neighbour view, one u32 row per vertex), covering
///     both the homogeneous fused-threshold form and heterogeneous
///     per-agent rules;
///   * `mixed` — the fully mixed heterogeneous per-agent step (no
///     topology), with a CDF-ladder popularity draw for m ≤ 64 options.
///
/// Unlike derivation v2 (sequential per-(step, shard) generator streams),
/// v3 consumes *position-addressable* draws: one step seed S is drawn from
/// the caller's stream (exactly one word — the same consumption as v2's
/// step_network, so callers cannot tell the derivations apart by generator
/// state), and agent g reads words w0 = counter_word(S, 2g) and
/// w1 = counter_word(S, 2g+1).  Draws therefore depend only on (S, g):
/// never on the shard decomposition, the thread count, the lane width, or
/// whether the agent lands in a vector batch or the scalar remainder loop.
/// Every ISA variant computes bit-identical results by construction (all
/// arithmetic is integer-exact; see support/simd.h).
///
/// All stage-2 thresholds arrive as u64 comparison scales (rng.h,
/// prob_to_u64).  The endpoint conventions make p = 0 ("never adopt") and
/// p = 1 ("always adopt") exact, not merely 2^-64-close: kernels OR the
/// `w0 < threshold` lane test with a threshold==max (homogeneous) or
/// P==max (per-agent) comparison.
///
/// Dispatch: the four translation units (generic / avx2 / avx512 / neon)
/// compile one shared implementation under different target flags;
/// `active_isa()` picks once per process from CPU capability and what was
/// compiled in.
/// Setting the environment variable SGL_KERNEL=scalar makes
/// `vector_isa_available()` report false, which downgrades `kernel = auto`
/// engines to the scalar v2 path — CI uses this to exercise the fallback
/// on the same binary.

#include <cstddef>
#include <cstdint>

#include "support/simd.h"

namespace sgl::core::kernel {

/// Arguments for the sparse two-option network kernel.  All array
/// pointers are global-base (indexed by absolute agent index) except
/// `changed`, which the caller pre-offsets to the shard.
struct net2_args {
  std::uint64_t step_seed = 0;  ///< S: seeds every counter_word draw
  std::size_t lo = 0;           ///< first agent (inclusive)
  std::size_t hi = 0;           ///< last agent (exclusive)
  const std::uint32_t* rows = nullptr;      ///< packed view: c0 | c1 << 16
  const std::int32_t* previous = nullptr;   ///< last step's choices
  std::int32_t* choices = nullptr;          ///< out: this step's choices
  std::uint64_t t_mu = 0;                   ///< prob_to_u64(mu)
  std::uint64_t thr_explore[2] = {0, 0};    ///< homogeneous: prob_to_u64(mu·p_j)
  std::uint64_t thr_copy[2] = {0, 0};       ///< homogeneous: prob_to_u64(mu+(1−mu)p_j)
  /// Heterogeneous per-agent adoption thresholds, already selected by this
  /// step's rewards: p_reward0[g] applies when agent g considered option 0,
  /// p_reward1[g] when it considered option 1.  Null = homogeneous (use
  /// thr_explore/thr_copy instead).
  const std::uint64_t* p_reward0 = nullptr;
  const std::uint64_t* p_reward1 = nullptr;
  std::uint64_t* changed = nullptr;      ///< out: packed (i, was, now) entries
  std::uint32_t* changed_len = nullptr;  ///< out: entries appended
  std::uint64_t* stage = nullptr;        ///< in/out: stage[2] tallies (+=)
  std::uint64_t* adopt = nullptr;        ///< in/out: adopt[2] tallies (+=)
};

/// Arguments for the fully mixed heterogeneous per-agent kernel.
struct mixed_args {
  std::uint64_t step_seed = 0;
  std::size_t n = 0;  ///< agents (kernel covers [0, n))
  std::size_t m = 0;  ///< options; kernel requires 1 <= m <= 64
  std::uint64_t t_mu = 0;
  /// CDF ladder of the previous step's popularity: m−1 rungs,
  /// pop_cdf[j] = prob_to_u64(q_0 + … + q_j).  The copy branch considers
  /// option #{j : w1 >= pop_cdf[j]}.
  const std::uint64_t* pop_cdf = nullptr;
  std::uint64_t reward_bits = 0;  ///< bit j = reward of option j
  const std::uint64_t* alpha_thr = nullptr;  ///< prob_to_u64(alpha_i) per agent
  const std::uint64_t* beta_thr = nullptr;   ///< prob_to_u64(beta_i) per agent
  std::int32_t* choices = nullptr;           ///< out
  std::uint32_t* considered = nullptr;       ///< out: stage-1 option per agent
};

using net2_fn = void (*)(const net2_args&);
using mixed_fn = void (*)(const mixed_args&);

// Per-ISA entry points.  The avx2/avx512/neon translation units always
// define their symbols; when built without the matching target flags they
// forward to the generic implementation and report not-compiled, so the
// dispatcher below never selects them.
void net2_step_generic(const net2_args& args);
void mixed_step_generic(const mixed_args& args);
void net2_step_avx2(const net2_args& args);
void mixed_step_avx2(const mixed_args& args);
[[nodiscard]] bool avx2_kernels_compiled() noexcept;
void net2_step_avx512(const net2_args& args);
void mixed_step_avx512(const mixed_args& args);
[[nodiscard]] bool avx512_kernels_compiled() noexcept;
void net2_step_neon(const net2_args& args);
void mixed_step_neon(const mixed_args& args);
[[nodiscard]] bool neon_kernels_compiled() noexcept;

/// The ISA the dispatcher resolved to, decided once per process: the best
/// of {avx512, avx2, neon} that is both compiled in and supported by the
/// running CPU, else generic.  SGL_KERNEL=scalar in the environment forces
/// generic (and thus the scalar-v2 fallback for `kernel = auto` engines).
[[nodiscard]] simd::isa active_isa() noexcept;

/// True when active_isa() is a real vector ISA — the condition for
/// `kernel = auto` to take the v3 path and for `kernel = simd` to be
/// accepted at all (scenario::validate_spec rejects it otherwise).
[[nodiscard]] bool vector_isa_available() noexcept;

/// Kernel entry for the active ISA (valid to call under any ISA including
/// generic — the result is bit-identical everywhere, only speed differs).
[[nodiscard]] net2_fn net2_step() noexcept;
[[nodiscard]] mixed_fn mixed_step() noexcept;

}  // namespace sgl::core::kernel
