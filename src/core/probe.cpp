#include "core/probe.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "support/text.h"  // trim_ascii / parse_full_double / closest_name

namespace sgl::core {
namespace {

probe_scalar ci_scalar(std::string key, const running_stats& s) {
  const mean_ci ci = confidence_interval(s);
  return {.key = std::move(key), .value = ci.mean, .half_width = ci.half_width, .has_ci = true};
}

probe_scalar plain_scalar(std::string key, double value) {
  return {.key = std::move(key), .value = value};
}

std::vector<double> series_means(const series_stats& s) {
  std::vector<double> out(s.length());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = s.mean(i);
  return out;
}

std::vector<double> series_half_widths(const series_stats& s) {
  std::vector<double> out(s.length());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = s.ci(i).half_width;
  return out;
}

}  // namespace

void best_option_cache::refresh(const probe_step_view& step) {
  if (step.t == 1) cached = false;  // new replication: revalidate
  if (cached) return;
  best = step.environment.best_option(step.t);
  best_mean = step.environment.mean(step.t, best);
  cached = step.environment.is_stationary();
}

const probe_scalar* probe_report::find_scalar(std::string_view key) const noexcept {
  for (const auto& s : scalars) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

const probe_series* probe_report::find_series(std::string_view key) const noexcept {
  for (const auto& s : series) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

// --- regret_probe -----------------------------------------------------------

std::unique_ptr<probe> regret_probe::clone() const { return std::make_unique<regret_probe>(); }

void regret_probe::begin_replication(std::uint64_t /*horizon*/) {
  reward_sum_ = 0.0;
  best_mean_sum_ = 0.0;
  best_mass_sum_ = 0.0;
}

void regret_probe::on_step(const probe_step_view& step) {
  // Group reward of step t uses the pre-step popularity Q^{t-1} (§2.2).
  double group_reward = 0.0;
  for (std::size_t j = 0; j < step.rewards.size(); ++j) {
    group_reward += step.popularity_before[j] * static_cast<double>(step.rewards[j]);
  }
  reward_sum_ += group_reward;
  best_cache_.refresh(step);
  best_mean_sum_ += best_cache_.best_mean;
  best_mass_sum_ += step.popularity_before[best_cache_.best];
}

void regret_probe::end_replication(const dynamics_engine& engine,
                                   const env::reward_model& environment,
                                   std::uint64_t horizon) {
  const double h = static_cast<double>(horizon);
  regret_.add((best_mean_sum_ - reward_sum_) / h);
  average_reward_.add(reward_sum_ / h);
  best_mass_.add(best_mass_sum_ / h);
  const auto q_final = engine.popularity();
  final_best_mass_.add(q_final[environment.best_option(horizon)]);
  empty_fraction_.add(static_cast<double>(engine.empty_steps()) / h);
}

void regret_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const regret_probe&>(other);
  regret_.merge(o.regret_);
  average_reward_.merge(o.average_reward_);
  best_mass_.merge(o.best_mass_);
  final_best_mass_.merge(o.final_best_mass_);
  empty_fraction_.merge(o.empty_fraction_);
}

probe_report regret_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(ci_scalar("regret", regret_));
  out.scalars.push_back(ci_scalar("average_reward", average_reward_));
  out.scalars.push_back(ci_scalar("best_mass", best_mass_));
  out.scalars.push_back(ci_scalar("final_best_mass", final_best_mass_));
  out.scalars.push_back(plain_scalar("empty_step_fraction", empty_fraction_.mean()));
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(regret_.count())));
  return out;
}

// --- trajectory_probe -------------------------------------------------------

std::unique_ptr<probe> trajectory_probe::clone() const {
  return std::make_unique<trajectory_probe>();
}

void trajectory_probe::ensure_length(std::size_t horizon) {
  if (!running_regret_ || running_regret_->length() != horizon) {
    running_regret_.emplace(horizon);
    best_mass_.emplace(horizon);
    min_popularity_.emplace(horizon);
  }
}

void trajectory_probe::begin_replication(std::uint64_t horizon) {
  ensure_length(static_cast<std::size_t>(horizon));
  reward_sum_ = 0.0;
  best_mean_sum_ = 0.0;
  regret_curve_.clear();
  best_curve_.clear();
  min_pop_curve_.clear();
  regret_curve_.reserve(horizon);
  best_curve_.reserve(horizon);
  min_pop_curve_.reserve(horizon);
}

void trajectory_probe::on_step(const probe_step_view& step) {
  double group_reward = 0.0;
  for (std::size_t j = 0; j < step.rewards.size(); ++j) {
    group_reward += step.popularity_before[j] * static_cast<double>(step.rewards[j]);
  }
  reward_sum_ += group_reward;
  best_cache_.refresh(step);
  const std::size_t best = best_cache_.best;
  best_mean_sum_ += best_cache_.best_mean;

  const double td = static_cast<double>(step.t);
  regret_curve_.push_back((best_mean_sum_ - reward_sum_) / td);
  const auto q_now = step.engine.popularity();
  best_curve_.push_back(q_now[best]);
  min_pop_curve_.push_back(*std::min_element(q_now.begin(), q_now.end()));
}

void trajectory_probe::end_replication(const dynamics_engine& /*engine*/,
                                       const env::reward_model& /*environment*/,
                                       std::uint64_t /*horizon*/) {
  running_regret_->add_series(regret_curve_);
  best_mass_->add_series(best_curve_);
  min_popularity_->add_series(min_pop_curve_);
}

void trajectory_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const trajectory_probe&>(other);
  if (!o.running_regret_) return;
  if (!running_regret_) {
    running_regret_ = o.running_regret_;
    best_mass_ = o.best_mass_;
    min_popularity_ = o.min_popularity_;
    return;
  }
  running_regret_->merge(*o.running_regret_);
  best_mass_->merge(*o.best_mass_);
  min_popularity_->merge(*o.min_popularity_);
}

probe_report trajectory_probe::report() const {
  probe_report out;
  out.probe = name();
  if (!running_regret_) return out;
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(running_regret_->replications())));
  out.series.push_back({"running_regret_mean", series_means(*running_regret_)});
  out.series.push_back({"running_regret_half_width", series_half_widths(*running_regret_)});
  out.series.push_back({"best_mass_mean", series_means(*best_mass_)});
  out.series.push_back({"best_mass_half_width", series_half_widths(*best_mass_)});
  out.series.push_back({"min_popularity_mean", series_means(*min_popularity_)});
  out.series.push_back({"min_popularity_half_width", series_half_widths(*min_popularity_)});
  return out;
}

// --- hitting_time_probe -----------------------------------------------------

hitting_time_probe::hitting_time_probe(double eps) : threshold_{1.0 - eps} {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument{"hitting_time: eps must be in (0,1)"};
  }
}

std::unique_ptr<probe> hitting_time_probe::clone() const {
  return std::make_unique<hitting_time_probe>(1.0 - threshold_);
}

void hitting_time_probe::begin_replication(std::uint64_t /*horizon*/) { hit_at_ = 0; }

void hitting_time_probe::on_step(const probe_step_view& step) {
  if (hit_at_ != 0) return;
  best_cache_.refresh(step);
  if (step.engine.popularity()[best_cache_.best] >= threshold_) hit_at_ = step.t;
}

void hitting_time_probe::end_replication(const dynamics_engine& /*engine*/,
                                         const env::reward_model& /*environment*/,
                                         std::uint64_t /*horizon*/) {
  hit_fraction_.add(hit_at_ != 0 ? 1.0 : 0.0);
  if (hit_at_ != 0) time_.add(static_cast<double>(hit_at_));
}

void hitting_time_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const hitting_time_probe&>(other);
  hit_fraction_.merge(o.hit_fraction_);
  time_.merge(o.time_);
}

probe_report hitting_time_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(plain_scalar("threshold", threshold_));
  out.scalars.push_back(ci_scalar("hit_fraction", hit_fraction_));
  out.scalars.push_back(ci_scalar("hitting_time", time_));
  out.scalars.push_back(plain_scalar("hits", static_cast<double>(time_.count())));
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(hit_fraction_.count())));
  return out;
}

// --- popularity_floor_probe -------------------------------------------------

popularity_floor_probe::popularity_floor_probe(double floor) : floor_{floor} {
  if (!(floor >= 0.0 && floor < 1.0)) {
    throw std::invalid_argument{"popularity_floor: floor must be in [0,1)"};
  }
}

std::unique_ptr<probe> popularity_floor_probe::clone() const {
  return std::make_unique<popularity_floor_probe>(floor_);
}

void popularity_floor_probe::begin_replication(std::uint64_t /*horizon*/) {
  worst_ = 1.0;
  violations_ = 0;
}

void popularity_floor_probe::on_step(const probe_step_view& step) {
  const auto q = step.engine.popularity();
  const double min_q = *std::min_element(q.begin(), q.end());
  worst_ = std::min(worst_, min_q);
  if (min_q < floor_) ++violations_;
}

void popularity_floor_probe::end_replication(const dynamics_engine& /*engine*/,
                                             const env::reward_model& /*environment*/,
                                             std::uint64_t horizon) {
  min_.add(worst_);
  violation_rate_.add(static_cast<double>(violations_) / static_cast<double>(horizon));
}

void popularity_floor_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const popularity_floor_probe&>(other);
  min_.merge(o.min_);
  violation_rate_.merge(o.violation_rate_);
}

probe_report popularity_floor_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(plain_scalar("floor", floor_));
  out.scalars.push_back(ci_scalar("min_popularity", min_));
  out.scalars.push_back(plain_scalar("min_popularity_worst", min_.min()));
  out.scalars.push_back(ci_scalar("violation_rate", violation_rate_));
  out.scalars.push_back(plain_scalar("replications", static_cast<double>(min_.count())));
  return out;
}

// --- final_histogram_probe --------------------------------------------------

std::unique_ptr<probe> final_histogram_probe::clone() const {
  return std::make_unique<final_histogram_probe>();
}

void final_histogram_probe::begin_replication(std::uint64_t /*horizon*/) {}

void final_histogram_probe::on_step(const probe_step_view& /*step*/) {}

void final_histogram_probe::end_replication(const dynamics_engine& engine,
                                            const env::reward_model& /*environment*/,
                                            std::uint64_t /*horizon*/) {
  const auto q = engine.popularity();
  if (per_option_.size() != q.size()) per_option_.assign(q.size(), running_stats{});
  for (std::size_t j = 0; j < q.size(); ++j) per_option_[j].add(q[j]);
}

void final_histogram_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const final_histogram_probe&>(other);
  if (o.per_option_.empty()) return;
  if (per_option_.empty()) {
    per_option_ = o.per_option_;
    return;
  }
  for (std::size_t j = 0; j < per_option_.size(); ++j) per_option_[j].merge(o.per_option_[j]);
}

probe_report final_histogram_probe::report() const {
  probe_report out;
  out.probe = name();
  const std::uint64_t reps = per_option_.empty() ? 0 : per_option_.front().count();
  out.scalars.push_back(plain_scalar("replications", static_cast<double>(reps)));
  probe_series means{"final_popularity_mean", {}};
  probe_series widths{"final_popularity_half_width", {}};
  for (const auto& s : per_option_) {
    const mean_ci ci = confidence_interval(s);
    means.values.push_back(ci.mean);
    widths.values.push_back(ci.half_width);
  }
  out.series.push_back(std::move(means));
  out.series.push_back(std::move(widths));
  return out;
}

// --- recovery_probe ---------------------------------------------------------

recovery_probe::recovery_probe(double eps) : threshold_{1.0 - eps} {
  if (!(eps > 0.0 && eps < 1.0)) {
    throw std::invalid_argument{"recovery: eps must be in (0,1)"};
  }
}

std::unique_ptr<probe> recovery_probe::clone() const {
  return std::make_unique<recovery_probe>(1.0 - threshold_);
}

void recovery_probe::begin_replication(std::uint64_t /*horizon*/) {
  prev_best_ = static_cast<std::size_t>(-1);
  pending_since_ = 0;
}

void recovery_probe::on_step(const probe_step_view& step) {
  best_cache_.refresh(step);
  const std::size_t best = best_cache_.best;
  if (prev_best_ != static_cast<std::size_t>(-1) && best != prev_best_) {
    if (pending_since_ != 0) ++unrecovered_;  // next switch arrived first
    pending_since_ = step.t;
    ++switches_;
  }
  prev_best_ = best;
  if (pending_since_ != 0 && step.engine.popularity()[best] >= threshold_) {
    times_.add(static_cast<double>(step.t - pending_since_));
    pending_since_ = 0;
  }
}

void recovery_probe::end_replication(const dynamics_engine& /*engine*/,
                                     const env::reward_model& /*environment*/,
                                     std::uint64_t /*horizon*/) {
  if (pending_since_ != 0) {
    ++unrecovered_;
    pending_since_ = 0;
  }
}

void recovery_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const recovery_probe&>(other);
  times_.merge(o.times_);
  switches_ += o.switches_;
  unrecovered_ += o.unrecovered_;
}

probe_report recovery_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(plain_scalar("threshold", threshold_));
  out.scalars.push_back(plain_scalar("switches", static_cast<double>(switches_)));
  out.scalars.push_back(plain_scalar("recovered", static_cast<double>(times_.count())));
  out.scalars.push_back(plain_scalar("unrecovered", static_cast<double>(unrecovered_)));
  out.scalars.push_back(ci_scalar("recovery_time", times_));
  return out;
}

// --- message_cost_probe -----------------------------------------------------

namespace {

/// The net-instrumented view of an engine, or nullptr when it has none.
const net_instrumented* net_view(const dynamics_engine& engine) {
  return dynamic_cast<const net_instrumented*>(&engine);
}

}  // namespace

std::unique_ptr<probe> message_cost_probe::clone() const {
  return std::make_unique<message_cost_probe>();
}

void message_cost_probe::begin_replication(std::uint64_t /*horizon*/) {}

void message_cost_probe::on_step(const probe_step_view& /*step*/) {}

void message_cost_probe::end_replication(const dynamics_engine& engine,
                                         const env::reward_model& /*environment*/,
                                         std::uint64_t horizon) {
  const net_instrumented* net = net_view(engine);
  if (net == nullptr) return;
  const net_metrics metrics = net->sample_net();
  const double h = static_cast<double>(horizon);
  const double sent = static_cast<double>(metrics.messages_sent);
  messages_per_round_.add(sent / h);
  messages_per_node_round_.add(
      metrics.nodes == 0 ? 0.0 : sent / h / static_cast<double>(metrics.nodes));
  bytes_per_round_.add(static_cast<double>(metrics.bytes_sent) / h);
  timers_per_round_.add(static_cast<double>(metrics.timers_fired) / h);
  drop_rate_.add(metrics.messages_sent == 0
                     ? 0.0
                     : static_cast<double>(metrics.messages_dropped) / sent);
}

void message_cost_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const message_cost_probe&>(other);
  messages_per_round_.merge(o.messages_per_round_);
  messages_per_node_round_.merge(o.messages_per_node_round_);
  bytes_per_round_.merge(o.bytes_per_round_);
  timers_per_round_.merge(o.timers_per_round_);
  drop_rate_.merge(o.drop_rate_);
}

probe_report message_cost_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(ci_scalar("messages_per_round", messages_per_round_));
  out.scalars.push_back(ci_scalar("messages_per_node_round", messages_per_node_round_));
  out.scalars.push_back(ci_scalar("bytes_per_round", bytes_per_round_));
  out.scalars.push_back(ci_scalar("timers_per_round", timers_per_round_));
  out.scalars.push_back(ci_scalar("drop_rate", drop_rate_));
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(messages_per_round_.count())));
  return out;
}

// --- commit_latency_probe ---------------------------------------------------

std::unique_ptr<probe> commit_latency_probe::clone() const {
  return std::make_unique<commit_latency_probe>();
}

void commit_latency_probe::begin_replication(std::uint64_t /*horizon*/) {}

void commit_latency_probe::on_step(const probe_step_view& /*step*/) {}

void commit_latency_probe::end_replication(const dynamics_engine& engine,
                                           const env::reward_model& /*environment*/,
                                           std::uint64_t horizon) {
  const net_instrumented* net = net_view(engine);
  if (net == nullptr) return;
  const net_metrics metrics = net->sample_net();
  if (metrics.commit_events > 0) {
    latency_.add(metrics.commit_latency_rounds /
                 static_cast<double>(metrics.commit_events));
  }
  commits_per_round_.add(static_cast<double>(metrics.commit_events) /
                         static_cast<double>(horizon));
}

void commit_latency_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const commit_latency_probe&>(other);
  latency_.merge(o.latency_);
  commits_per_round_.merge(o.commits_per_round_);
}

probe_report commit_latency_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(ci_scalar("commit_latency_rounds", latency_));
  out.scalars.push_back(ci_scalar("commits_per_round", commits_per_round_));
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(commits_per_round_.count())));
  return out;
}

// --- adoption_probe ---------------------------------------------------------

std::unique_ptr<probe> adoption_probe::clone() const {
  return std::make_unique<adoption_probe>();
}

void adoption_probe::begin_replication(std::uint64_t /*horizon*/) {
  committed_fraction_sum_ = 0.0;
  observed_steps_ = 0;
}

void adoption_probe::on_step(const probe_step_view& step) {
  const net_instrumented* net = net_view(step.engine);
  if (net == nullptr) return;
  const net_metrics metrics = net->sample_net();
  committed_fraction_sum_ += metrics.alive == 0
                                 ? 0.0
                                 : static_cast<double>(metrics.committed) /
                                       static_cast<double>(metrics.alive);
  ++observed_steps_;
}

void adoption_probe::end_replication(const dynamics_engine& engine,
                                     const env::reward_model& /*environment*/,
                                     std::uint64_t /*horizon*/) {
  const net_instrumented* net = net_view(engine);
  if (net == nullptr || observed_steps_ == 0) return;
  committed_fraction_.add(committed_fraction_sum_ /
                          static_cast<double>(observed_steps_));
  const net_metrics metrics = net->sample_net();
  final_committed_fraction_.add(metrics.alive == 0
                                    ? 0.0
                                    : static_cast<double>(metrics.committed) /
                                          static_cast<double>(metrics.alive));
  final_alive_fraction_.add(metrics.nodes == 0
                                ? 0.0
                                : static_cast<double>(metrics.alive) /
                                      static_cast<double>(metrics.nodes));
}

void adoption_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const adoption_probe&>(other);
  committed_fraction_.merge(o.committed_fraction_);
  final_committed_fraction_.merge(o.final_committed_fraction_);
  final_alive_fraction_.merge(o.final_alive_fraction_);
}

probe_report adoption_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(ci_scalar("committed_fraction", committed_fraction_));
  out.scalars.push_back(ci_scalar("final_committed_fraction", final_committed_fraction_));
  out.scalars.push_back(ci_scalar("final_alive_fraction", final_alive_fraction_));
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(committed_fraction_.count())));
  return out;
}

// --- partition_divergence_probe ---------------------------------------------

namespace {

/// The partition-instrumented view of an engine, or nullptr when it has none.
const partition_instrumented* partition_view(const dynamics_engine& engine) {
  return dynamic_cast<const partition_instrumented*>(&engine);
}

/// ½ · Σ_j |p^A_j − p^B_j| — total variation distance between the two
/// sides' committed-option histograms.  Only meaningful when both sides
/// have committed nodes (the caller checks).
double side_divergence(const partition_sample& sample) {
  double sum = 0.0;
  for (std::size_t j = 0; j < sample.side_a_popularity.size(); ++j) {
    sum += std::abs(sample.side_a_popularity[j] - sample.side_b_popularity[j]);
  }
  return 0.5 * sum;
}

}  // namespace

partition_divergence_probe::partition_divergence_probe(double eps) : eps_{eps} {}

std::unique_ptr<probe> partition_divergence_probe::clone() const {
  return std::make_unique<partition_divergence_probe>(eps_);
}

void partition_divergence_probe::begin_replication(std::uint64_t /*horizon*/) {
  steps_partitioned_ = 0;
  div_sum_ = 0.0;
  div_steps_ = 0;
  div_max_ = 0.0;
  was_partitioned_ = false;
  heal_step_ = 0;
  reconverge_at_ = 0;
  reconverged_ = false;
}

void partition_divergence_probe::on_step(const probe_step_view& step) {
  const partition_instrumented* view = partition_view(step.engine);
  if (view == nullptr) return;
  const partition_sample sample = view->sample_partition();
  if (!sample.has_sides) return;
  const bool measurable =
      sample.side_a_committed > 0 && sample.side_b_committed > 0;
  const double div = measurable ? side_divergence(sample) : 0.0;
  if (sample.partitioned) {
    ++steps_partitioned_;
    was_partitioned_ = true;
    heal_step_ = 0;  // a later cut restarts the re-convergence clock
    reconverged_ = false;
    if (measurable) {
      div_sum_ += div;
      ++div_steps_;
      div_max_ = std::max(div_max_, div);
    }
  } else if (was_partitioned_) {
    if (heal_step_ == 0) heal_step_ = step.t;  // first post-heal step
    if (!reconverged_ && measurable && div <= eps_) {
      reconverged_ = true;
      reconverge_at_ = step.t;
    }
  }
}

void partition_divergence_probe::end_replication(const dynamics_engine& engine,
                                                 const env::reward_model& /*environment*/,
                                                 std::uint64_t /*horizon*/) {
  if (partition_view(engine) == nullptr || !was_partitioned_) return;
  partition_steps_.add(static_cast<double>(steps_partitioned_));
  if (div_steps_ > 0) {
    divergence_.add(div_sum_ / static_cast<double>(div_steps_));
    divergence_max_.add(div_max_);
  }
  if (heal_step_ != 0) {
    if (reconverged_) {
      reconvergence_.add(static_cast<double>(reconverge_at_ - heal_step_));
    } else {
      ++unrecovered_;
    }
  }
}

void partition_divergence_probe::merge(const probe& other) {
  const auto& o = dynamic_cast<const partition_divergence_probe&>(other);
  partition_steps_.merge(o.partition_steps_);
  divergence_.merge(o.divergence_);
  divergence_max_.merge(o.divergence_max_);
  reconvergence_.merge(o.reconvergence_);
  unrecovered_ += o.unrecovered_;
}

probe_report partition_divergence_probe::report() const {
  probe_report out;
  out.probe = name();
  out.scalars.push_back(ci_scalar("partition_steps", partition_steps_));
  out.scalars.push_back(ci_scalar("divergence", divergence_));
  out.scalars.push_back(ci_scalar("divergence_max", divergence_max_));
  out.scalars.push_back(ci_scalar("reconvergence_steps", reconvergence_));
  out.scalars.push_back(plain_scalar("unrecovered", static_cast<double>(unrecovered_)));
  out.scalars.push_back(
      plain_scalar("replications", static_cast<double>(partition_steps_.count())));
  return out;
}

// --- probe spec grammar -----------------------------------------------------

namespace {

constexpr std::array<std::string_view, 10> k_probe_names{
    "regret",          "trajectory",      "hitting_time",
    "popularity_floor", "final_histogram", "recovery",
    "message_cost",    "commit_latency",  "adoption",
    "partition_divergence"};

double parse_probe_number(std::string_view spec, std::string_view text) {
  const std::optional<double> parsed = parse_full_double(text);
  if (!parsed) {
    throw std::invalid_argument{"probe '" + std::string{spec} + "': bad numeric value '" +
                                std::string{trim_ascii(text)} + "'"};
  }
  return *parsed;
}

/// Parses `key=value, key=value` into pairs; values are numbers.
std::vector<std::pair<std::string, double>> parse_probe_args(std::string_view spec,
                                                             std::string_view args) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t start = 0;
  while (start <= args.size()) {
    std::size_t comma = args.find(',', start);
    if (comma == std::string_view::npos) comma = args.size();
    const std::string_view item = trim_ascii(args.substr(start, comma - start));
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument{"probe '" + std::string{spec} +
                                    "': arguments must be key=value"};
      }
      out.emplace_back(std::string{trim_ascii(item.substr(0, eq))},
                       parse_probe_number(spec, item.substr(eq + 1)));
    }
    start = comma + 1;
  }
  return out;
}

void no_args(std::string_view spec,
             const std::vector<std::pair<std::string, double>>& args) {
  if (!args.empty()) {
    throw std::invalid_argument{"probe '" + std::string{spec} + "' takes no arguments"};
  }
}

double only_arg(std::string_view spec,
                const std::vector<std::pair<std::string, double>>& args,
                std::string_view key, double fallback) {
  double value = fallback;
  for (const auto& [k, v] : args) {
    if (k != key) {
      throw std::invalid_argument{"probe '" + std::string{spec} + "': unknown argument '" +
                                  k + "' (expected '" + std::string{key} + "')"};
    }
    value = v;
  }
  return value;
}

}  // namespace

std::unique_ptr<probe> make_probe(std::string_view spec) {
  const std::string_view trimmed = trim_ascii(spec);
  std::string_view name = trimmed;
  std::string_view args;
  if (const std::size_t open = trimmed.find('('); open != std::string_view::npos) {
    if (trimmed.back() != ')') {
      throw std::invalid_argument{"probe '" + std::string{trimmed} +
                                  "': missing closing ')'"};
    }
    name = trim_ascii(trimmed.substr(0, open));
    args = trimmed.substr(open + 1, trimmed.size() - open - 2);
  }
  const auto parsed = parse_probe_args(trimmed, args);

  if (name == "regret") {
    no_args(trimmed, parsed);
    return std::make_unique<regret_probe>();
  }
  if (name == "trajectory") {
    no_args(trimmed, parsed);
    return std::make_unique<trajectory_probe>();
  }
  if (name == "final_histogram") {
    no_args(trimmed, parsed);
    return std::make_unique<final_histogram_probe>();
  }
  if (name == "message_cost") {
    no_args(trimmed, parsed);
    return std::make_unique<message_cost_probe>();
  }
  if (name == "commit_latency") {
    no_args(trimmed, parsed);
    return std::make_unique<commit_latency_probe>();
  }
  if (name == "adoption") {
    no_args(trimmed, parsed);
    return std::make_unique<adoption_probe>();
  }
  if (name == "hitting_time") {
    return std::make_unique<hitting_time_probe>(only_arg(trimmed, parsed, "eps", 0.1));
  }
  if (name == "recovery") {
    return std::make_unique<recovery_probe>(only_arg(trimmed, parsed, "eps", 0.5));
  }
  if (name == "popularity_floor") {
    return std::make_unique<popularity_floor_probe>(
        only_arg(trimmed, parsed, "floor", 0.0));
  }
  if (name == "partition_divergence") {
    return std::make_unique<partition_divergence_probe>(
        only_arg(trimmed, parsed, "eps", 0.1));
  }

  std::string message{"unknown probe '"};
  message += name;
  message += "'";
  const std::string suggestion = closest_name(name, k_probe_names);
  if (!suggestion.empty()) {
    message += " (did you mean '";
    message += suggestion;
    message += "'?)";
  }
  message += "; known:";
  for (const std::string_view known : k_probe_names) {
    message += ' ';
    message += known;
  }
  throw std::invalid_argument{message};
}

std::vector<std::string> split_probe_specs(std::string_view text) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] == '(') ++depth;
    if (i < text.size() && text[i] == ')') --depth;
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      const std::string_view item = trim_ascii(text.substr(start, i - start));
      if (!item.empty()) out.emplace_back(item);
      start = i + 1;
    }
  }
  return out;
}

probe_list parse_probe_list(std::string_view text) {
  probe_list out;
  for (const std::string& spec : split_probe_specs(text)) {
    out.push_back(make_probe(spec));
  }
  if (out.empty()) throw std::invalid_argument{"empty probe list"};
  return out;
}

probe_list make_probes(std::span<const std::string> specs) {
  probe_list out;
  out.reserve(specs.size());
  for (const std::string& spec : specs) out.push_back(make_probe(spec));
  return out;
}

std::span<const std::string_view> known_probe_names() { return k_probe_names; }

std::vector<probe_report> collect_reports(const probe_list& probes) {
  std::vector<probe_report> out;
  out.reserve(probes.size());
  for (const auto& p : probes) out.push_back(p->report());
  return out;
}

}  // namespace sgl::core
