#pragma once

/// \file grouped_dynamics.h
/// Exact aggregate simulation of *heterogeneous* populations.
///
/// finite_dynamics supports arbitrary per-agent adoption rules at O(N) per
/// step.  When the heterogeneity is a mixture of G rule groups (the case in
/// every study we know of — discerning/average/credulous types, conformist
/// fractions, etc.), the step law factors by group exactly as the
/// homogeneous case does by population:
///
///   stage 1, group g:  S_g ~ Multinomial(N_g, (1−μ)Q + μ/m)   (shared Q!)
///   stage 2:           D_{g,j} ~ Binomial(S_{g,j}, β_g^{R_j} α_g^{1−R_j})
///   popularity:        Q_j = Σ_g D_{g,j} / Σ_{g,j} D_{g,j}.
///
/// grouped_dynamics samples this directly: O(G·m) per step, independent of
/// N — the heterogeneous analogue of aggregate_dynamics, distribution-equal
/// to the agent-based engine with the same group assignment (tested).

#include <cstdint>
#include <span>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/finite_dynamics.h"  // adoption_rule
#include "core/params.h"
#include "support/rng.h"

namespace sgl::core {

/// One rule group: how many agents follow which (α, β).
struct rule_group {
  std::uint64_t size = 0;
  adoption_rule rule;
};

class grouped_dynamics final : public dynamics_engine {
 public:
  /// `params` supplies m and μ (its β/α are ignored — the groups carry the
  /// adoption rules).  Throws std::invalid_argument on invalid parameters,
  /// empty groups, zero total population, or rules with α > β etc.
  grouped_dynamics(const dynamics_params& params, std::vector<rule_group> groups);

  /// Back to the initial state (nobody committed, uniform popularity).
  void reset() override;

  /// reset() restores the constructed state exactly (the group mixture is
  /// fixed at construction), so the harness may reuse one instance.
  [[nodiscard]] bool reusable() const noexcept override { return true; }

  /// Advances one step given the realized signals R^{t+1} (size m).
  void step(std::span<const std::uint8_t> rewards, rng& gen) override;

  /// Q^t over options (uniform before the first step / after empty steps).
  [[nodiscard]] std::span<const double> popularity() const noexcept override {
    return popularity_;
  }

  /// D^t_{g,j}: adopters of option j within group g after the last step.
  [[nodiscard]] std::span<const std::uint64_t> group_adopters(std::size_t group) const;

  /// Σ_g D^t_{g,j}.
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept override {
    return total_adopters_;
  }

  [[nodiscard]] std::uint64_t adopters() const noexcept { return committed_; }
  [[nodiscard]] std::uint64_t empty_steps() const noexcept override { return empty_steps_; }
  [[nodiscard]] std::uint64_t steps() const noexcept override { return steps_; }
  [[nodiscard]] std::size_t num_groups() const noexcept { return groups_.size(); }
  [[nodiscard]] std::uint64_t num_agents() const noexcept { return num_agents_; }
  [[nodiscard]] const dynamics_params& params() const noexcept { return params_; }

 private:
  dynamics_params params_;
  std::vector<rule_group> groups_;
  std::uint64_t num_agents_ = 0;
  std::vector<double> popularity_;
  std::vector<double> stage_weights_;
  std::vector<std::uint64_t> stage_scratch_;
  std::vector<std::vector<std::uint64_t>> adopters_by_group_;
  std::vector<std::uint64_t> total_adopters_;
  std::uint64_t committed_ = 0;
  std::uint64_t empty_steps_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace sgl::core
