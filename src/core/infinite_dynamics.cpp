#include "core/infinite_dynamics.h"

#include <cmath>
#include <stdexcept>

namespace sgl::core {

infinite_dynamics::infinite_dynamics(const dynamics_params& params) : params_{params} {
  params_.validate();
  p_.assign(params_.num_options, 0.0);
  scratch_.assign(params_.num_options, 0.0);
  reset();
}

void infinite_dynamics::reset() {
  const double uniform = 1.0 / static_cast<double>(p_.size());
  for (double& x : p_) x = uniform;
  log_potential_ = std::log(static_cast<double>(p_.size()));
  steps_ = 0;
  degenerate_steps_ = 0;
}

void infinite_dynamics::reset(std::span<const double> start) {
  if (start.size() != p_.size()) {
    throw std::invalid_argument{"infinite_dynamics::reset: size mismatch"};
  }
  double total = 0.0;
  for (const double x : start) {
    if (!(x >= 0.0)) {
      throw std::invalid_argument{"infinite_dynamics::reset: negative mass"};
    }
    total += x;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument{"infinite_dynamics::reset: not a probability vector"};
  }
  for (std::size_t j = 0; j < p_.size(); ++j) p_[j] = start[j] / total;
  custom_start_ = true;
  log_potential_ = std::log(static_cast<double>(p_.size()));
  steps_ = 0;
  degenerate_steps_ = 0;
}

void infinite_dynamics::step(std::span<const std::uint8_t> rewards) {
  if (rewards.size() != p_.size()) {
    throw std::invalid_argument{"infinite_dynamics::step: reward width mismatch"};
  }
  const double m = static_cast<double>(p_.size());
  const double alpha = params_.resolved_alpha();
  const double beta = params_.beta;
  const double mu = params_.mu;

  double z = 0.0;
  for (std::size_t j = 0; j < p_.size(); ++j) {
    const double sampled = (1.0 - mu) * p_[j] + mu / m;
    const double multiplier = rewards[j] != 0 ? beta : alpha;
    scratch_[j] = sampled * multiplier;
    z += scratch_[j];
  }

  if (z <= 0.0) {
    // Only reachable with alpha = 0 and an all-bad signal vector: the whole
    // population sits out.  Restart from uniform (empty-population rule).
    const double uniform = 1.0 / m;
    for (double& x : p_) x = uniform;
    ++degenerate_steps_;
  } else {
    for (std::size_t j = 0; j < p_.size(); ++j) p_[j] = scratch_[j] / z;
    // Φ^{t+1} = Φ^t · Σ_j ((1−μ)P_j + μ/m) · g_j = Φ^t · z  (since Σ P = 1).
    log_potential_ += std::log(z);
  }
  ++steps_;
}

}  // namespace sgl::core
