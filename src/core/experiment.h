#pragma once

/// \file experiment.h
/// Monte-Carlo estimation of the paper's performance measures, for *any*
/// dynamics_engine.
///
/// Both regret definitions (§2.2) are expectations over the joint law of
/// the process and the rewards:
///
///   Regret_N(T) = η₁ − (1/T) Σ_{t=1..T} Σ_j E[Q^{t−1}_j R^t_j],
///   Regret_∞(T) = η₁ − (1/T) Σ_{t=1..T} Σ_j E[P^{t−1}_j R^t_j],
///
/// estimated here by averaging the realized per-step group reward
/// Σ_j Q^{t−1}_j R^t_j over independent replications (each replication gets
/// its own derived RNG streams; see parallel.h for determinism).  For
/// non-stationary environments the benchmark is the per-step best mean
/// Σ_t η_best(t)/T, which coincides with η₁ in the stationary case.
///
/// The whole harness is one generic runner, run_with_probes(): each worker
/// borrows a replication_context (engine + environment built from the two
/// factories, validated once, reset() between replications when both sides
/// are reusable()), advances it through the horizon, and every installed
/// probe (core/probe.h) observes each step and is reduced deterministically
/// across replications.  run_scenario() is the historical fixed reduction —
/// now a thin wrapper that installs the built-in regret (and, on request,
/// trajectory) probes and converts their accumulators back into
/// regret_estimate / trajectory_estimate, bit-identically to the pre-probe
/// implementation.  The estimate_*/collect_* entry points remain thin
/// wrappers that build the factories.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/aggregate_dynamics.h"
#include "core/dynamics_engine.h"
#include "core/finite_dynamics.h"
#include "core/infinite_dynamics.h"
#include "core/params.h"
#include "core/probe.h"
#include "env/reward_model.h"
#include "graph/graph.h"
#include "support/stats.h"

namespace sgl::core {

/// Builds a fresh environment instance.  Invoked once per worker context —
/// and again per replication only when the instance is not reusable() — so
/// every concurrent worker owns an independent instance.
using env_factory = std::function<std::unique_ptr<env::reward_model>()>;

/// Builds a fresh engine instance in its initial state (same independence
/// contract as env_factory).
using engine_factory = std::function<std::unique_ptr<dynamics_engine>()>;

/// Common Monte-Carlo knobs.
struct run_config {
  std::uint64_t horizon = 1000;     ///< T
  std::uint64_t replications = 100;
  std::uint64_t seed = 1;
  unsigned threads = 0;             ///< 0 = hardware concurrency
  bool collect_curves = false;      ///< also average the per-step curves

  /// Reuse one engine/environment instance per worker across replications
  /// (reset() between) instead of reconstructing, whenever both sides
  /// report reusable().  Trajectories are bit-identical either way — the
  /// switch exists for A/B verification and for exotic factories; leave it
  /// on.  At large N reconstruction is the dominant per-replication cost
  /// (buffer allocation + the committed-neighbour-view rebuild), so
  /// turning this off is a measurable slowdown (bench/harness_bench.cpp).
  bool reuse = true;
};

/// Which finite engine to use (identical law in the homogeneous mixed case).
enum class finite_engine {
  aggregate,    ///< O(m) per step; homogeneous + fully mixed only
  agent_based,  ///< O(N) per step; supports rules/topology
};

/// End-of-horizon scalar estimates with 95% confidence intervals.
struct regret_estimate {
  mean_ci regret;            ///< (1/T)Σ_t η_best(t) − average reward
  mean_ci average_reward;    ///< (1/T)Σ_t Σ_j Q^{t−1}_j R^t_j
  mean_ci best_mass;         ///< (1/T)Σ_t Q^{t−1}_{best(t)}  (Thm 4.3 pt 2)
  mean_ci final_best_mass;   ///< Q^T_{best(T)}
  double empty_step_fraction = 0.0;  ///< fraction of steps nobody adopted
  std::uint64_t replications = 0;
};

/// Per-step curves averaged over replications.  Index t−1 holds the value
/// after step t.
struct trajectory_estimate {
  series_stats running_regret;  ///< regret of the prefix [1..t]
  series_stats best_mass;       ///< Q^t_{best(t)} after step t
  series_stats min_popularity;  ///< min_j Q^t_j after step t

  explicit trajectory_estimate(std::size_t horizon)
      : running_regret{horizon}, best_mass{horizon}, min_popularity{horizon} {}
};

/// Everything run_scenario() produces.
struct run_result {
  regret_estimate scalars;
  std::optional<trajectory_estimate> curves;  ///< engaged iff collect_curves
};

/// The runner's config validation, shared with external schedulers
/// (scenario/sweep.cpp) so they reject exactly what run_with_probes would.
/// Throws std::invalid_argument on a zero horizon or replication count.
void check_run_config(const run_config& config);

/// One worker's run state: engine + environment + per-step scratch
/// buffers, built from the borrowed factories and validated once (engine/
/// environment option-count match; network engines clamped to one internal
/// thread when replications run concurrently).  run() advances one
/// replication through the horizon on the streams derived from
/// (config.seed, replication) while `probes` observe each step; between
/// replications the context reset()s the engine and environment when both
/// report reusable() (and config.reuse allows it), and reconstructs them
/// otherwise — the trajectory is bit-identical either way.  The factories
/// must outlive the context.  Exposed so schedulers outside this file (the
/// sweep scheduler in scenario/sweep.h) drive replications through the
/// exact same code path.
class replication_context {
 public:
  replication_context(const engine_factory& make_engine, const env_factory& make_env,
                      bool clamp_engine_threads);

  /// Runs replication `replication` of the configured horizon, observed by
  /// `probes` (begin_replication / on_step / end_replication).
  void run(const run_config& config, std::uint64_t replication, const probe_list& probes);

 private:
  void rebuild();

  const engine_factory& make_engine_;
  const env_factory& make_env_;
  bool clamp_engine_threads_;
  bool reusable_ = false;  ///< engine && environment both report reusable()
  bool fresh_ = true;      ///< just (re)built: the state is already initial
  std::unique_ptr<env::reward_model> environment_;
  std::unique_ptr<dynamics_engine> engine_;
  std::vector<std::uint8_t> rewards_;  ///< hoisted per-step R^t buffer
  std::vector<double> q_prev_;         ///< hoisted per-step Q^{t-1} buffer
};

/// A checkout pool of replication_contexts: workers borrow one per
/// replication (or per shard) and return it, so the number of live
/// engine/environment instances tracks the *concurrency*, not the
/// replication count.  Thread-safe; the factories must outlive the pool.
class context_pool {
 public:
  context_pool(const engine_factory& make_engine, const env_factory& make_env,
               bool clamp_engine_threads)
      : make_engine_{make_engine},
        make_env_{make_env},
        clamp_engine_threads_{clamp_engine_threads} {}

  /// RAII borrow: releases the context back to the pool on destruction.
  class lease {
   public:
    lease(context_pool& pool, std::unique_ptr<replication_context> context) noexcept
        : pool_{pool}, context_{std::move(context)} {}
    lease(const lease&) = delete;
    lease& operator=(const lease&) = delete;
    ~lease() { pool_.release(std::move(context_)); }
    replication_context* operator->() const noexcept { return context_.get(); }

   private:
    context_pool& pool_;
    std::unique_ptr<replication_context> context_;
  };

  /// Pops a pooled context, or builds (and validates) a fresh one.
  [[nodiscard]] lease borrow();

 private:
  void release(std::unique_ptr<replication_context> context);

  const engine_factory& make_engine_;
  const env_factory& make_env_;
  bool clamp_engine_threads_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<replication_context>> free_;
};

/// THE Monte-Carlo harness: `config.replications` independent replications,
/// each built from the two factories and advanced `config.horizon` steps
/// while every probe in `prototypes` observes it.  Each parallel shard
/// works on clone()s of the prototypes; shards are merged in fixed shard
/// order, so results are bit-identical for any thread count.  Returns the
/// merged probes, one per prototype, in order (the prototypes themselves
/// are not touched).  Throws std::invalid_argument on a zero horizon /
/// replication count or an engine/environment option-count mismatch.
[[nodiscard]] probe_list run_with_probes(const engine_factory& make_engine,
                                         const env_factory& make_env,
                                         const run_config& config,
                                         std::span<const probe* const> prototypes);

/// The historical fixed reduction: scalar estimates (always) and per-step
/// curves (when `config.collect_curves`), via the built-in regret /
/// trajectory probes.
[[nodiscard]] run_result run_scenario(const engine_factory& make_engine,
                                      const env_factory& make_env,
                                      const run_config& config);

/// Converts a merged regret probe into the historical estimate struct.
[[nodiscard]] regret_estimate to_regret_estimate(const regret_probe& probe);

/// Converts a merged trajectory probe into the historical curves struct.
[[nodiscard]] trajectory_estimate to_trajectory_estimate(const trajectory_probe& probe);

/// Regret of the infinite-population dynamics (stochastic MWU).  `start`
/// optionally overrides the uniform initial distribution (Theorem 4.6).
[[nodiscard]] regret_estimate estimate_infinite_regret(const dynamics_params& params,
                                                       const env_factory& make_env,
                                                       const run_config& config,
                                                       std::span<const double> start = {});

/// Regret of the finite-population dynamics.  `topology` (borrowed, may be
/// nullptr) forces the agent-based engine.
[[nodiscard]] regret_estimate estimate_finite_regret(
    const dynamics_params& params, std::uint64_t num_agents, const env_factory& make_env,
    const run_config& config, finite_engine engine = finite_engine::aggregate,
    const graph::graph* topology = nullptr);

/// Full curves for the infinite dynamics.
[[nodiscard]] trajectory_estimate collect_infinite_trajectory(
    const dynamics_params& params, const env_factory& make_env, const run_config& config,
    std::span<const double> start = {});

/// Full curves for the finite dynamics.
[[nodiscard]] trajectory_estimate collect_finite_trajectory(
    const dynamics_params& params, std::uint64_t num_agents, const env_factory& make_env,
    const run_config& config, finite_engine engine = finite_engine::aggregate,
    const graph::graph* topology = nullptr);

/// Engine factory for the infinite dynamics (optionally from a nonuniform
/// start, copied).  Shared by the wrappers above and the scenario layer.
[[nodiscard]] engine_factory make_infinite_engine_factory(const dynamics_params& params,
                                                          std::span<const double> start = {});

/// Engine factory for the finite dynamics.  `topology` (borrowed; must
/// outlive the factory and every engine it builds) forces the agent-based
/// engine, as does `engine == finite_engine::agent_based`.
[[nodiscard]] engine_factory make_finite_engine_factory(
    const dynamics_params& params, std::uint64_t num_agents,
    finite_engine engine = finite_engine::aggregate,
    const graph::graph* topology = nullptr);

}  // namespace sgl::core
