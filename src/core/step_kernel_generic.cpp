/// \file step_kernel_generic.cpp
/// The baseline-target build of the shared kernel implementation (always
/// compiled, whatever the platform), plus the one-time runtime dispatcher —
/// it lives here because this is the only kernel TU guaranteed to exist.

#include "core/step_kernel.h"

#include <cstdlib>
#include <string_view>

#include "core/step_kernel_impl.h"

namespace sgl::core::kernel {

void net2_step_generic(const net2_args& args) { net2_body(args); }
void mixed_step_generic(const mixed_args& args) { mixed_body(args); }

simd::isa active_isa() noexcept {
  static const simd::isa resolved = [] {
    // CI sets SGL_KERNEL=scalar to run the same binary down the scalar-v2
    // fallback: `kernel = auto` engines see no vector ISA and downgrade.
    if (const char* env = std::getenv("SGL_KERNEL");
        env != nullptr && std::string_view{env} == "scalar") {
      return simd::isa::generic;
    }
    if (avx512_kernels_compiled() && simd::cpu_supports(simd::isa::avx512)) {
      return simd::isa::avx512;
    }
    if (avx2_kernels_compiled() && simd::cpu_supports(simd::isa::avx2)) {
      return simd::isa::avx2;
    }
    if (neon_kernels_compiled() && simd::cpu_supports(simd::isa::neon)) {
      return simd::isa::neon;
    }
    return simd::isa::generic;
  }();
  return resolved;
}

bool vector_isa_available() noexcept {
  return active_isa() != simd::isa::generic;
}

net2_fn net2_step() noexcept {
  switch (active_isa()) {
    case simd::isa::avx512: return &net2_step_avx512;
    case simd::isa::avx2: return &net2_step_avx2;
    case simd::isa::neon: return &net2_step_neon;
    case simd::isa::generic: break;
  }
  return &net2_step_generic;
}

mixed_fn mixed_step() noexcept {
  switch (active_isa()) {
    case simd::isa::avx512: return &mixed_step_avx512;
    case simd::isa::avx2: return &mixed_step_avx2;
    case simd::isa::neon: return &mixed_step_neon;
    case simd::isa::generic: break;
  }
  return &mixed_step_generic;
}

}  // namespace sgl::core::kernel
