#include "core/params.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sgl::core {

double dynamics_params::delta() const {
  if (!(beta > 0.0 && beta < 1.0)) {
    throw std::domain_error{"dynamics_params::delta: requires 0 < beta < 1"};
  }
  return std::log(beta / (1.0 - beta));
}

bool dynamics_params::satisfies_theorem_conditions() const noexcept {
  constexpr double beta_cap = std::numbers::e / (std::numbers::e + 1.0);
  if (!(beta > 0.5 && beta <= beta_cap + 1e-12)) return false;
  if (std::abs(resolved_alpha() - (1.0 - beta)) > 1e-12) return false;
  const double d = std::log(beta / (1.0 - beta));
  return mu > 0.0 && 6.0 * mu <= d * d + 1e-12;
}

void dynamics_params::validate() const {
  if (num_options == 0) throw std::invalid_argument{"dynamics_params: need m >= 1"};
  if (!(mu >= 0.0 && mu <= 1.0)) throw std::invalid_argument{"dynamics_params: mu outside [0,1]"};
  if (!(beta >= 0.0 && beta <= 1.0)) {
    throw std::invalid_argument{"dynamics_params: beta outside [0,1]"};
  }
  const double a = resolved_alpha();
  if (!(a >= 0.0 && a <= beta)) {
    throw std::invalid_argument{"dynamics_params: need 0 <= alpha <= beta"};
  }
}

dynamics_params theorem_params(std::size_t num_options, double beta) {
  dynamics_params params;
  params.num_options = num_options;
  params.beta = beta;
  params.alpha = -1.0;
  const double d = params.delta();
  params.mu = d * d / 6.0;
  params.validate();
  if (!params.satisfies_theorem_conditions()) {
    throw std::invalid_argument{"theorem_params: beta outside (1/2, e/(e+1)]"};
  }
  return params;
}

}  // namespace sgl::core
