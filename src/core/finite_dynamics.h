#pragma once

/// \file finite_dynamics.h
/// The agent-based finite-population dynamics — the paper's actual object
/// of study (§2.1).  Every individual is simulated explicitly, so the
/// engine supports the full generality of the model:
///
///   * heterogeneous adoption functions f_i = (α_i, β_i)  (§2.1 keeps them
///     identical "for simplicity in the exposition ... not essential");
///   * sampling restricted to a social network's neighbours (§6, open
///     problem 1) instead of the whole group;
///   * individuals sitting out (adopting nothing) for a step.
///
/// In the homogeneous, fully mixed case the step factors exactly as in
/// aggregate_dynamics (Propositions 4.1/4.2), and this engine takes the
/// batched path: one multinomial for stage 1, m binomials for stage 2,
/// agents materialized from the counts.  The batched path consumes the
/// generator *identically* to aggregate_dynamics, so the two engines
/// produce bit-identical popularity trajectories from the same stream
/// (tested).  Heterogeneous rules without a topology fall back to the O(N)
/// per-agent loop.
///
/// Network mode has its own path: an **incremental committed-neighbour
/// view** — per-vertex, per-option counts of committed neighbours, updated
/// by delta only for agents whose choice changed between steps — makes
/// stage 1 an *exact* O(active options) draw from the neighbour-adopter
/// distribution, and agents step in a fixed shard decomposition with
/// per-(step, shard) RNG streams, so any thread count produces the same
/// trajectory bit for bit (DESIGN.md, "stream derivation v2 — network
/// mode").
///
/// Semantics pinned down beyond the paper's text (documented in DESIGN.md):
///   * If nobody adopted at step t, popularity Q^t is *uniform* (matching
///     the Q⁰ convention); such steps are counted in empty_steps().
///   * In network mode, an individual copies a uniform *committed*
///     neighbour — sampled exactly from the committed-neighbour view (the
///     network analogue of popularity being the distribution among
///     adopters); if it has no committed neighbour (isolated vertex, or
///     the whole neighbourhood sat out), it falls back to a uniform random
///     option, mirroring the uniform empty-population rule.

#include <cstdint>
#include <span>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/params.h"
#include "graph/graph.h"
#include "support/distributions.h"
#include "support/rng.h"

namespace sgl::core {

/// Per-agent adoption probabilities (α_i ≤ β_i enforced at set time).
struct adoption_rule {
  double alpha = 0.0;
  double beta = 1.0;
};

/// Which step kernel finite_dynamics uses on the paths that have a
/// vectorized implementation (the sparse two-option network step and the
/// fully mixed heterogeneous per-agent step):
///   * auto_select — the SIMD kernel (stream derivation v3) when the
///     runtime dispatcher resolved a vector ISA, else the scalar v2 path;
///   * scalar — always the scalar v2 path (this is what pins every golden
///     hash in tests/harness_determinism_test.cpp);
///   * simd — always the v3 kernel; rejected outright when no vector ISA
///     is available, so the choice never silently degrades.
/// Paths without a vector implementation (dense network mode, network rows
/// with m != 2, m > 64 options) run scalar v2 under every setting.
enum class kernel_kind { auto_select, scalar, simd };

class finite_dynamics : public dynamics_engine {
 public:
  /// Homogeneous population of `num_agents` with the rule implied by
  /// `params`.  Throws std::invalid_argument on invalid parameters or
  /// num_agents == 0.
  finite_dynamics(const dynamics_params& params, std::size_t num_agents);

  /// Installs per-agent adoption rules (size must equal num_agents; each
  /// must satisfy 0 ≤ α_i ≤ β_i ≤ 1).  Replaces the homogeneous rule.
  void set_agent_rules(std::vector<adoption_rule> rules);

  /// Restricts sampling to `topology` (num_vertices must equal num_agents).
  /// The graph is borrowed: the caller keeps it alive while in use.
  /// Pass nullptr to return to full mixing.  Rebuilds the committed-
  /// neighbour view from the current choices, so the engine can move in
  /// and out of network mode mid-run.
  void set_topology(const graph::graph* topology);

  /// Worker threads for the sharded network-mode step: 0 = hardware
  /// concurrency, 1 (the default) = serial.  The shard decomposition and
  /// the per-shard RNG streams are fixed by (N, step), so the trajectory
  /// is bit-identical for every setting; threads only change wall-clock
  /// time.  Ignored outside network mode.
  void set_threads(unsigned threads) noexcept { threads_ = threads; }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Selects the step kernel (see kernel_kind).  Like set_threads this is
  /// configuration, surviving reset(); unlike set_threads it changes the
  /// trajectory — v3 consumes position-addressable counter draws, v2
  /// sequential stream draws — though both consume exactly one word of the
  /// *caller's* generator per step, and each is bit-identical across
  /// thread counts.  Throws std::invalid_argument for kernel_kind::simd
  /// when the dispatcher resolved no vector ISA.
  void set_kernel(kernel_kind kind);
  [[nodiscard]] kernel_kind kernel() const noexcept { return kernel_; }

  /// Everybody back to the initial state (no choices, uniform popularity).
  void reset() final;

  /// reset() restores the factory-fresh state exactly (rules, topology and
  /// thread settings are configuration and survive), so the harness may
  /// reuse one instance across replications — which is what spares the
  /// per-replication allocation of the agent/view buffers at large N.
  [[nodiscard]] bool reusable() const noexcept final { return true; }

  /// Advances one step given the realized signals R^{t+1} (size m).
  void step(std::span<const std::uint8_t> rewards, rng& gen) final;

  /// Q^t: popularity over options (uniform before the first step and after
  /// empty steps).
  [[nodiscard]] std::span<const double> popularity() const noexcept final {
    return popularity_;
  }

  /// Current choice of each agent; -1 means sitting out.
  [[nodiscard]] std::span<const std::int32_t> choices() const noexcept { return choices_; }

  /// D^t_j: number of agents committed to option j after the last step.
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept final {
    return adopter_counts_;
  }

  /// S^t_j: number of agents who *considered* option j in stage 1 of the
  /// last step (Proposition 4.1's quantity).
  [[nodiscard]] std::span<const std::uint64_t> stage_counts() const noexcept {
    return stage_counts_;
  }

  /// Total number of committed agents after the last step.
  [[nodiscard]] std::uint64_t adopters() const noexcept { return adopters_; }

  /// Steps on which nobody adopted.
  [[nodiscard]] std::uint64_t empty_steps() const noexcept final { return empty_steps_; }

  [[nodiscard]] std::uint64_t steps() const noexcept final { return steps_; }
  [[nodiscard]] std::size_t num_agents() const noexcept { return choices_.size(); }
  [[nodiscard]] const dynamics_params& params() const noexcept { return params_; }

 private:
  /// Agents per shard of the fixed network-mode decomposition.  A function
  /// of N only — never of the thread count — so shard streams are stable.
  static constexpr std::size_t shard_size = 8192;

  /// Average-degree cutoff between the two exact network samplers: at or
  /// below it, the incremental committed-neighbour view (delta maintenance
  /// costs O(churn · degree) per agent, a win for sparse graphs); above
  /// it, rejection sampling with an exact scan fallback (zero maintained
  /// state — on K_N or two-cliques a per-vertex view would cost O(N) per
  /// changed agent).  Both samplers realize the same law.
  static constexpr double dense_degree_threshold = 24.0;

  /// Attempts before the dense-mode sampler stops rejecting and scans the
  /// neighbourhood exactly; the scan keeps the law exact (no residual
  /// uniform fallback while committed neighbours exist).
  static constexpr int rejection_cap = 64;

  /// Vertices per bucket of the regrouped (serial, m == 2) delta walk:
  /// 2^14 packed view rows = 64 KiB, cache-resident while a bucket drains.
  static constexpr std::size_t delta_bucket_shift = 14;

  /// O(m) step for the homogeneous, fully mixed case: the exact
  /// multinomial/binomial factorization, same generator consumption as
  /// aggregate_dynamics, agents filled in from the counts.
  void step_batched(std::span<const std::uint8_t> rewards, rng& gen);

  /// O(N) per-agent loop: heterogeneous rules, fully mixed (no topology).
  void step_per_agent(std::span<const std::uint8_t> rewards, rng& gen);

  /// Vectorized (derivation v3) replacement for step_per_agent, taken when
  /// the kernel setting resolves to SIMD and m <= 64.
  void step_mixed_vec(std::span<const std::uint8_t> rewards, rng& gen);

  /// Does the kernel setting resolve to the v3 kernels on this host?
  [[nodiscard]] bool use_vector_kernel() const noexcept;

  /// Sharded network-mode step: exact committed-neighbour draws from the
  /// incremental view, per-(step, shard) RNG streams, delta view update.
  void step_network(std::span<const std::uint8_t> rewards, rng& gen);

  /// Recomputes the committed-neighbour view from `choices_` (O(E)); used
  /// by set_topology and reset so engines stay reusable.
  void rebuild_neighbor_view();

  /// Applies agent i's choice change (previous vs current) to its
  /// neighbours' view rows; Atomic selects relaxed-atomic increments for
  /// the concurrent delta pass (integer adds commute, so the result is
  /// identical to the serial pass).
  template <bool Atomic>
  void apply_view_delta(std::uint64_t entry);

  /// Dense-mode stage-1 sampler: the choice of a uniform committed
  /// neighbour of i, or -1 when there is none.
  [[nodiscard]] std::int32_t sample_committed_neighbor(std::size_t i,
                                                       rng& shard_gen) const;

  /// Popularity update + empty-step bookkeeping shared by all paths.
  void finish_step();

  dynamics_params params_;
  const graph::graph* topology_ = nullptr;
  std::vector<adoption_rule> rules_;  // empty = homogeneous params_ rule
  std::vector<std::int32_t> choices_;
  std::vector<std::int32_t> previous_choices_;  // network mode reads these
  std::vector<double> popularity_;
  std::vector<double> stage_weights_;  // batched path: (1−μ)Q + μ/m
  std::vector<std::uint64_t> adopter_counts_;
  std::vector<std::uint64_t> stage_counts_;
  // Network mode: neighbor_view_[v*m + j] = committed neighbours of v on
  // option j, always consistent with choices_; maintained by delta.  Empty
  // when the graph is above dense_degree_threshold (rejection mode).
  std::vector<std::uint32_t> neighbor_view_;
  std::vector<std::uint64_t> shard_counts_;  // per-shard stage/adopter scratch
  std::vector<std::uint64_t> changed_;       // per-shard packed (i, was, now)
  std::vector<std::uint32_t> changed_len_;   // entries used per shard
  std::vector<double> adopt_below_explore_;  // fused stage-2 threshold, μ-branch
  std::vector<double> adopt_below_copy_;     // fused stage-2 threshold, copy branch
  // Bucketed delta walk (scatter graphs, serial, m == 2): per-bucket item
  // streams of v << 4 | transition code.  Kept allocated across steps.
  std::vector<std::vector<std::uint32_t>> delta_buckets_;
  // SoA u64 adoption thresholds (prob_to_u64 of each rule), built once in
  // set_agent_rules; the v3 kernels blend contiguous loads from these
  // instead of gathering adoption_rule structs.
  std::vector<std::uint64_t> alpha_thr_;
  std::vector<std::uint64_t> beta_thr_;
  std::vector<std::uint64_t> pop_cdf_;  // v3 mixed kernel: popularity CDF rungs
  std::vector<std::uint32_t> considered_scratch_;  // v3 mixed kernel stage-1 out
  discrete_sampler by_popularity_;  // per-agent path: rebuilt per step, no alloc
  std::uint64_t adopters_ = 0;
  std::uint64_t empty_steps_ = 0;
  std::uint64_t steps_ = 0;
  unsigned threads_ = 1;
  kernel_kind kernel_ = kernel_kind::auto_select;
  bool network_dense_ = false;  // topology above the degree threshold
  bool scatter_topology_ = false;  // ≥¼ of edges leave their vertex bucket
};

}  // namespace sgl::core
