#pragma once

/// \file finite_dynamics.h
/// The agent-based finite-population dynamics — the paper's actual object
/// of study (§2.1).  Every individual is simulated explicitly, so the
/// engine supports the full generality of the model:
///
///   * heterogeneous adoption functions f_i = (α_i, β_i)  (§2.1 keeps them
///     identical "for simplicity in the exposition ... not essential");
///   * sampling restricted to a social network's neighbours (§6, open
///     problem 1) instead of the whole group;
///   * individuals sitting out (adopting nothing) for a step.
///
/// In the homogeneous, fully mixed case the step factors exactly as in
/// aggregate_dynamics (Propositions 4.1/4.2), and this engine takes the
/// batched path: one multinomial for stage 1, m binomials for stage 2,
/// agents materialized from the counts.  The batched path consumes the
/// generator *identically* to aggregate_dynamics, so the two engines
/// produce bit-identical popularity trajectories from the same stream
/// (tested).  Heterogeneous rules or a topology fall back to the O(N)
/// per-agent loop.
///
/// Semantics pinned down beyond the paper's text (documented in DESIGN.md):
///   * If nobody adopted at step t, popularity Q^t is *uniform* (matching
///     the Q⁰ convention); such steps are counted in empty_steps().
///   * In network mode, an individual samples a uniform *committed*
///     neighbour (bounded rejection over uniform neighbour draws — the
///     network analogue of popularity being the distribution among
///     adopters); if no committed neighbour is found (isolated vertex, or
///     the whole neighbourhood sat out), it falls back to a uniform random
///     option, mirroring the uniform empty-population rule.

#include <cstdint>
#include <span>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/params.h"
#include "graph/graph.h"
#include "support/distributions.h"
#include "support/rng.h"

namespace sgl::core {

/// Per-agent adoption probabilities (α_i ≤ β_i enforced at set time).
struct adoption_rule {
  double alpha = 0.0;
  double beta = 1.0;
};

class finite_dynamics : public dynamics_engine {
 public:
  /// Homogeneous population of `num_agents` with the rule implied by
  /// `params`.  Throws std::invalid_argument on invalid parameters or
  /// num_agents == 0.
  finite_dynamics(const dynamics_params& params, std::size_t num_agents);

  /// Installs per-agent adoption rules (size must equal num_agents; each
  /// must satisfy 0 ≤ α_i ≤ β_i ≤ 1).  Replaces the homogeneous rule.
  void set_agent_rules(std::vector<adoption_rule> rules);

  /// Restricts sampling to `topology` (num_vertices must equal num_agents).
  /// The graph is borrowed: the caller keeps it alive while in use.
  /// Pass nullptr to return to full mixing.
  void set_topology(const graph::graph* topology);

  /// Everybody back to the initial state (no choices, uniform popularity).
  void reset() final;

  /// Advances one step given the realized signals R^{t+1} (size m).
  void step(std::span<const std::uint8_t> rewards, rng& gen) final;

  /// Q^t: popularity over options (uniform before the first step and after
  /// empty steps).
  [[nodiscard]] std::span<const double> popularity() const noexcept final {
    return popularity_;
  }

  /// Current choice of each agent; -1 means sitting out.
  [[nodiscard]] std::span<const std::int32_t> choices() const noexcept { return choices_; }

  /// D^t_j: number of agents committed to option j after the last step.
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept final {
    return adopter_counts_;
  }

  /// S^t_j: number of agents who *considered* option j in stage 1 of the
  /// last step (Proposition 4.1's quantity).
  [[nodiscard]] std::span<const std::uint64_t> stage_counts() const noexcept {
    return stage_counts_;
  }

  /// Total number of committed agents after the last step.
  [[nodiscard]] std::uint64_t adopters() const noexcept { return adopters_; }

  /// Steps on which nobody adopted.
  [[nodiscard]] std::uint64_t empty_steps() const noexcept final { return empty_steps_; }

  [[nodiscard]] std::uint64_t steps() const noexcept final { return steps_; }
  [[nodiscard]] std::size_t num_agents() const noexcept { return choices_.size(); }
  [[nodiscard]] const dynamics_params& params() const noexcept { return params_; }

 private:
  /// O(m) step for the homogeneous, fully mixed case: the exact
  /// multinomial/binomial factorization, same generator consumption as
  /// aggregate_dynamics, agents filled in from the counts.
  void step_batched(std::span<const std::uint8_t> rewards, rng& gen);

  /// O(N) per-agent loop: heterogeneous rules and/or network sampling.
  void step_per_agent(std::span<const std::uint8_t> rewards, rng& gen);

  /// Popularity update + empty-step bookkeeping shared by both paths.
  void finish_step();

  dynamics_params params_;
  const graph::graph* topology_ = nullptr;
  std::vector<adoption_rule> rules_;  // empty = homogeneous params_ rule
  std::vector<std::int32_t> choices_;
  std::vector<std::int32_t> previous_choices_;  // network mode reads these
  std::vector<double> popularity_;
  std::vector<double> stage_weights_;  // batched path: (1−μ)Q + μ/m
  std::vector<std::uint64_t> adopter_counts_;
  std::vector<std::uint64_t> stage_counts_;
  discrete_sampler by_popularity_;  // per-agent path: rebuilt per step, no alloc
  std::uint64_t adopters_ = 0;
  std::uint64_t empty_steps_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace sgl::core
