#pragma once

/// \file finite_dynamics.h
/// The agent-based finite-population dynamics — the paper's actual object
/// of study (§2.1).  Every individual is simulated explicitly, so the
/// engine supports the full generality of the model:
///
///   * heterogeneous adoption functions f_i = (α_i, β_i)  (§2.1 keeps them
///     identical "for simplicity in the exposition ... not essential");
///   * sampling restricted to a social network's neighbours (§6, open
///     problem 1) instead of the whole group;
///   * individuals sitting out (adopting nothing) for a step.
///
/// For the homogeneous, fully mixed case prefer aggregate_dynamics — same
/// distribution over trajectories, O(m) per step instead of O(N).
///
/// Semantics pinned down beyond the paper's text (documented in DESIGN.md):
///   * If nobody adopted at step t, popularity Q^t is *uniform* (matching
///     the Q⁰ convention); such steps are counted in empty_steps().
///   * In network mode, an individual samples a uniform *committed*
///     neighbour (bounded rejection over uniform neighbour draws — the
///     network analogue of popularity being the distribution among
///     adopters); if no committed neighbour is found (isolated vertex, or
///     the whole neighbourhood sat out), it falls back to a uniform random
///     option, mirroring the uniform empty-population rule.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/params.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace sgl::core {

/// Per-agent adoption probabilities (α_i ≤ β_i enforced at set time).
struct adoption_rule {
  double alpha = 0.0;
  double beta = 1.0;
};

class finite_dynamics {
 public:
  /// Homogeneous population of `num_agents` with the rule implied by
  /// `params`.  Throws std::invalid_argument on invalid parameters or
  /// num_agents == 0.
  finite_dynamics(const dynamics_params& params, std::size_t num_agents);

  /// Installs per-agent adoption rules (size must equal num_agents; each
  /// must satisfy 0 ≤ α_i ≤ β_i ≤ 1).  Replaces the homogeneous rule.
  void set_agent_rules(std::vector<adoption_rule> rules);

  /// Restricts sampling to `topology` (num_vertices must equal num_agents).
  /// The graph is borrowed: the caller keeps it alive while in use.
  /// Pass nullptr to return to full mixing.
  void set_topology(const graph::graph* topology);

  /// Everybody back to the initial state (no choices, uniform popularity).
  void reset();

  /// Advances one step given the realized signals R^{t+1} (size m).
  void step(std::span<const std::uint8_t> rewards, rng& gen);

  /// Q^t: popularity over options (uniform before the first step and after
  /// empty steps).
  [[nodiscard]] std::span<const double> popularity() const noexcept { return popularity_; }

  /// Current choice of each agent; -1 means sitting out.
  [[nodiscard]] std::span<const std::int32_t> choices() const noexcept { return choices_; }

  /// D^t_j: number of agents committed to option j after the last step.
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept {
    return adopter_counts_;
  }

  /// S^t_j: number of agents who *considered* option j in stage 1 of the
  /// last step (Proposition 4.1's quantity).
  [[nodiscard]] std::span<const std::uint64_t> stage_counts() const noexcept {
    return stage_counts_;
  }

  /// Total number of committed agents after the last step.
  [[nodiscard]] std::uint64_t adopters() const noexcept { return adopters_; }

  /// Steps on which nobody adopted.
  [[nodiscard]] std::uint64_t empty_steps() const noexcept { return empty_steps_; }

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t num_agents() const noexcept { return choices_.size(); }
  [[nodiscard]] const dynamics_params& params() const noexcept { return params_; }

 private:
  dynamics_params params_;
  const graph::graph* topology_ = nullptr;
  std::vector<adoption_rule> rules_;  // empty = homogeneous params_ rule
  std::vector<std::int32_t> choices_;
  std::vector<std::int32_t> previous_choices_;  // network mode reads these
  std::vector<double> popularity_;
  std::vector<std::uint64_t> adopter_counts_;
  std::vector<std::uint64_t> stage_counts_;
  std::uint64_t adopters_ = 0;
  std::uint64_t empty_steps_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace sgl::core
