#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace sgl::core::theory {
namespace {

void check_beta(double beta) {
  if (!(beta > 0.0 && beta < 1.0)) {
    throw std::invalid_argument{"theory: beta must be in (0,1)"};
  }
}

void check_population(double num_agents) {
  if (!(num_agents > 1.0)) throw std::invalid_argument{"theory: need N > 1"};
}

}  // namespace

double delta(double beta) {
  check_beta(beta);
  return std::log(beta / (1.0 - beta));
}

double beta_cap() noexcept { return std::numbers::e / (std::numbers::e + 1.0); }

double mu_cap(double beta) {
  const double d = delta(beta);
  return d * d / 6.0;
}

double min_horizon(std::size_t num_options, double beta) {
  const double d = delta(beta);
  if (num_options < 2) return 1.0;
  return std::log(static_cast<double>(num_options)) / (d * d);
}

double infinite_regret_bound(double beta) { return 3.0 * delta(beta); }

double finite_regret_bound(double beta) { return 6.0 * delta(beta); }

double best_mass_lower_bound(double beta, double gap) {
  if (!(gap > 0.0)) throw std::invalid_argument{"best_mass_lower_bound: need gap > 0"};
  return std::max(0.0, 1.0 - 3.0 * delta(beta) / gap);
}

double delta_prime(std::size_t num_options, double mu, double num_agents) {
  check_population(num_agents);
  if (!(mu > 0.0)) throw std::invalid_argument{"delta_prime: need mu > 0"};
  return std::sqrt(30.0 * static_cast<double>(num_options) * std::log(num_agents) /
                   (mu * num_agents));
}

double delta_double_prime(std::size_t num_options, double mu, double beta,
                          double num_agents) {
  check_population(num_agents);
  check_beta(beta);
  if (!(mu > 0.0)) throw std::invalid_argument{"delta_double_prime: need mu > 0"};
  return std::sqrt(60.0 * static_cast<double>(num_options) * std::log(num_agents) /
                   ((1.0 - beta) * mu * num_agents));
}

double coupling_bound(std::uint64_t t, std::size_t num_options, double mu, double beta,
                      double num_agents) {
  const double ddp = delta_double_prime(num_options, mu, beta, num_agents);
  // 5^t in log space to dodge overflow for large t.
  const double log_bound = static_cast<double>(t) * std::log(5.0) + std::log(ddp);
  if (log_bound > 700.0) return std::numeric_limits<double>::infinity();
  return std::exp(log_bound);
}

double coupling_failure_probability(std::uint64_t t, std::size_t num_options,
                                    double num_agents) {
  check_population(num_agents);
  const double log_p = std::log(6.0 * static_cast<double>(t) *
                                static_cast<double>(num_options)) -
                       10.0 * std::log(num_agents);
  if (log_p >= 0.0) return 1.0;
  return std::exp(log_p);
}

double popularity_floor(std::size_t num_options, double mu, double beta) {
  check_beta(beta);
  return mu * (1.0 - beta) / (4.0 * static_cast<double>(num_options));
}

double epoch_length(std::size_t num_options, double mu, double beta) {
  const double zeta = popularity_floor(num_options, mu, beta);
  return nonuniform_min_horizon(zeta, beta);
}

double nonuniform_min_horizon(double zeta, double beta) {
  if (!(zeta > 0.0 && zeta <= 1.0)) {
    throw std::invalid_argument{"nonuniform_min_horizon: zeta must be in (0,1]"};
  }
  const double d = delta(beta);
  return std::log(1.0 / zeta) / (d * d);
}

double max_horizon(std::size_t num_options, double beta, double num_agents) {
  check_population(num_agents);
  const double d = delta(beta);
  const double log_cap = 10.0 * std::log(num_agents) -
                         std::log(static_cast<double>(num_options) * d);
  if (log_cap > 700.0) return std::numeric_limits<double>::infinity();
  return std::exp(log_cap);
}

bool horizon_in_window(const dynamics_params& params, double num_agents, double horizon) {
  const double lo = min_horizon(params.num_options, params.beta);
  const double hi = max_horizon(params.num_options, params.beta, num_agents);
  return horizon >= lo && horizon <= hi;
}

bool theorem44_population_condition(const dynamics_params& params, double num_agents) {
  check_population(num_agents);
  const double m = static_cast<double>(params.num_options);
  const double beta = params.beta;
  const double mu = params.mu;
  const double d = delta(beta);

  const double c = 240.0 * m / ((1.0 - beta) * mu);

  // Condition 1.  The paper prints N/lnN >= c (4m/(μ(1−β)))^{2ln5/δ²} / δ″²,
  // but δ″² is itself Θ(lnN/N), which makes the inequality unsatisfiable for
  // every N — an evident typo for δ² (it is exactly the condition that makes
  // the epoch-coupling slack 5^T δ″ at T = ln(1/ζ)/δ² at most δ, cf. the
  // derivation around eq. (4)).  We implement the intended condition:
  //   N / ln N >= c * (4m/(mu(1-beta)))^{2 ln5 / d^2} / d^2,
  // compared in log space.  See DESIGN.md (errata).
  const double lhs1 = std::log(num_agents) - std::log(std::log(num_agents));
  const double rhs1 = std::log(c) +
                      (2.0 * std::log(5.0) / (d * d)) *
                          std::log(4.0 * m / (mu * (1.0 - beta))) -
                      2.0 * std::log(d);
  // Condition 2: N^10 >= 24 m ln m / (mu (1-beta) d^3).
  const double ln_m = std::log(std::max(m, 2.0));
  const double lhs2 = 10.0 * std::log(num_agents);
  const double rhs2 = std::log(24.0 * m * ln_m / (mu * (1.0 - beta) * d * d * d));

  return lhs1 >= rhs1 && lhs2 >= rhs2;
}

}  // namespace sgl::core::theory
