#pragma once

/// \file proof_audit.h
/// Pathwise verification of the Theorem 4.3 proof (§5).
///
/// The proof bounds the potential Φ^T = Σ_j W^T_j between
///
///   upper:  ln Φ^T ≤ T·ln(1−β) + T·ln(1+μ(e^δ−1)) + ln m + δ′·Σ_t⟨P^{t−1},R^t⟩
///   lower:  ln Φ^T ≥ T·ln(1−β) + T·ln(1−μ) + δ·Σ_t R^t_1
///
/// with δ′ = (1−μ)(e^δ−1)/(1+μδ), and combines them into the pathwise
/// regret inequality
///
///   δ·( Σ_t R^t_1 − Σ_t ⟨P^{t−1}, R^t⟩ ) ≤ ln m + (δ² + 6μ)·T.
///
/// These are *deterministic* statements: they hold for every realization of
/// the rewards, not just in expectation.  proof_auditor replays them
/// alongside an infinite_dynamics run and reports the slack in each
/// inequality, so a single failed step pinpoints either a simulator bug or
/// a misreading of the paper.  (Requires the theorem regime: α = 1−β,
/// ½ < β < 1, μ ≤ ½ — checked at construction.)

#include <cstdint>
#include <span>

#include "core/infinite_dynamics.h"
#include "core/params.h"

namespace sgl::core {

/// Slacks (bound minus realized value, ≥ 0 when the inequality holds) after
/// the most recent step.
struct proof_slacks {
  double upper_potential = 0.0;  ///< upper bound − ln Φ^t
  double lower_potential = 0.0;  ///< ln Φ^t − lower bound
  double regret_inequality = 0.0;  ///< rhs − lhs of the combined inequality
  [[nodiscard]] bool all_hold(double tolerance = 1e-9) const noexcept {
    return upper_potential >= -tolerance && lower_potential >= -tolerance &&
           regret_inequality >= -tolerance;
  }
};

/// Replays the proof's three inequalities along a trajectory.  Drive it
/// with the same reward vectors fed to the dynamics, in the same order.
class proof_auditor {
 public:
  /// Throws std::invalid_argument outside the proof's parameter regime
  /// (needs α = 1−β, 0 < β < 1 with β > ½, 0 < μ ≤ ½).
  explicit proof_auditor(const dynamics_params& params);

  /// Observes one step: `pre_step_distribution` is P^{t−1} (before the
  /// update), `rewards` is R^t.  Call infinite_dynamics::step with the same
  /// rewards, then pass its *previous* distribution here — or use audit_run
  /// below which wires the order correctly.
  void observe(std::span<const double> pre_step_distribution,
               std::span<const std::uint8_t> rewards, double log_potential_after);

  /// Slacks after the last observed step.
  [[nodiscard]] const proof_slacks& slacks() const noexcept { return slacks_; }

  /// Worst (most negative) slack seen so far across all steps.
  [[nodiscard]] double worst_slack() const noexcept { return worst_slack_; }

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

  /// Σ_t R^t_1 so far (reward of the best-in-hindsight option index 0 —
  /// the audit follows the paper in designating option 1 as the comparator).
  [[nodiscard]] double comparator_reward() const noexcept { return comparator_reward_; }

  /// Σ_t ⟨P^{t−1}, R^t⟩ so far — the group's realized reward.
  [[nodiscard]] double group_reward() const noexcept { return group_reward_; }

 private:
  dynamics_params params_;
  double delta_ = 0.0;
  double delta_prime_ = 0.0;
  double comparator_reward_ = 0.0;
  double group_reward_ = 0.0;
  proof_slacks slacks_;
  double worst_slack_ = 0.0;
  std::uint64_t steps_ = 0;
};

/// Convenience: runs `dynamics` for `horizon` steps against rewards drawn
/// from `sample_rewards(t, out)` and audits every step.  Returns the worst
/// slack (≥ 0 means every proof inequality held pathwise).
template <typename SampleRewards>
[[nodiscard]] double audit_run(infinite_dynamics& dynamics, proof_auditor& auditor,
                               std::uint64_t horizon, SampleRewards sample_rewards) {
  std::vector<double> previous(dynamics.distribution().begin(),
                               dynamics.distribution().end());
  std::vector<std::uint8_t> rewards(dynamics.params().num_options, 0);
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    previous.assign(dynamics.distribution().begin(), dynamics.distribution().end());
    sample_rewards(t, std::span<std::uint8_t>{rewards});
    dynamics.step(rewards);
    auditor.observe(previous, rewards, dynamics.log_potential());
  }
  return auditor.worst_slack();
}

}  // namespace sgl::core
