#pragma once

/// \file aggregate_dynamics.h
/// The exact aggregate simulator for the homogeneous, fully mixed dynamics.
///
/// Conditioned on the current popularity Q^t, the agent-level randomness of
/// a step factors exactly as
///
///   S^{t+1}            ~ Multinomial(N, p)    with p_j = (1−μ)Q^t_j + μ/m,
///   D^{t+1}_j | S, R   ~ Binomial(S^{t+1}_j, β^{R_j} α^{1−R_j}),
///
/// which is the very decomposition the paper's Propositions 4.1/4.2 analyze.
/// Sampling those laws directly advances the whole population in O(m) work
/// per step (independent of N), enabling the N = 10⁶ sweeps of Theorem 4.4's
/// experiment.  For heterogeneous rules or network sampling use
/// finite_dynamics — for the homogeneous mixed case the two engines induce
/// the *same* distribution over trajectories (tested).

#include <cstdint>
#include <span>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/params.h"
#include "support/rng.h"

namespace sgl::core {

class aggregate_dynamics final : public dynamics_engine {
 public:
  /// Throws std::invalid_argument on invalid parameters or num_agents == 0.
  aggregate_dynamics(const dynamics_params& params, std::uint64_t num_agents);

  /// Back to the initial state (nobody committed, uniform popularity).
  void reset() override;

  /// Restart from given adopter counts (sum may be anything <= N; the
  /// popularity becomes counts/sum, uniform when the sum is 0).  An engine
  /// seeded this way stops reporting reusable(): the plain reset() returns
  /// to the uniform start, not to these counts.
  void reset(std::span<const std::uint64_t> adopter_counts);

  /// reset() restores the constructed state exactly — unless a custom
  /// start was installed via reset(counts) (dynamics_engine.h contract).
  [[nodiscard]] bool reusable() const noexcept override { return !custom_start_; }

  /// Advances one step given the realized signals R^{t+1} (size m).
  void step(std::span<const std::uint8_t> rewards, rng& gen) override;

  /// Q^t (uniform before the first step and after empty steps).
  [[nodiscard]] std::span<const double> popularity() const noexcept override {
    return popularity_;
  }

  /// D^t_j.
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept override {
    return adopter_counts_;
  }

  /// S^t_j (stage-1 counts of the last step).
  [[nodiscard]] std::span<const std::uint64_t> stage_counts() const noexcept {
    return stage_counts_;
  }

  [[nodiscard]] std::uint64_t adopters() const noexcept { return adopters_; }
  [[nodiscard]] std::uint64_t empty_steps() const noexcept override { return empty_steps_; }
  [[nodiscard]] std::uint64_t steps() const noexcept override { return steps_; }
  [[nodiscard]] std::uint64_t num_agents() const noexcept { return num_agents_; }
  [[nodiscard]] const dynamics_params& params() const noexcept { return params_; }

 private:
  dynamics_params params_;
  std::uint64_t num_agents_;
  std::vector<double> popularity_;
  std::vector<double> stage_weights_;
  std::vector<std::uint64_t> stage_counts_;
  std::vector<std::uint64_t> adopter_counts_;
  std::uint64_t adopters_ = 0;
  std::uint64_t empty_steps_ = 0;
  std::uint64_t steps_ = 0;
  bool custom_start_ = false;  // reset(counts) was used: reset() != initial state
};

}  // namespace sgl::core
