#pragma once

/// \file theory.h
/// Every quantitative constant the paper's analysis defines, in one place,
/// so benches can print measured-vs-bound columns and property tests can
/// assert the theorem inequalities.  Section references follow the paper.

#include <cstddef>
#include <cstdint>

#include "core/params.h"

namespace sgl::core::theory {

/// δ = ln(β/(1−β))  (§2.2).  Requires 0 < β < 1.
[[nodiscard]] double delta(double beta);

/// The largest β admitted by the theorems: e/(e+1) ≈ 0.7311.
[[nodiscard]] double beta_cap() noexcept;

/// The largest exploration weight admitted: μ ≤ δ²/6 (Thm 4.3).
[[nodiscard]] double mu_cap(double beta);

/// Minimum horizon of Theorem 4.3: T ≥ ln m / δ².
[[nodiscard]] double min_horizon(std::size_t num_options, double beta);

/// Theorem 4.3 regret bound for the infinite dynamics: 3δ.
[[nodiscard]] double infinite_regret_bound(double beta);

/// Theorem 4.4 regret bound for the finite dynamics: 6δ.
[[nodiscard]] double finite_regret_bound(double beta);

/// Theorem 4.3, part 2: time-averaged mass on the best option is at least
/// 1 − 3δ/(η₁−η₂) (clamped to ≥ 0 — the bound is vacuous for small gaps).
[[nodiscard]] double best_mass_lower_bound(double beta, double gap);

/// Proposition 4.1's stage-1 concentration radius
/// δ′ = √(30 m ln N / (μ N)).
[[nodiscard]] double delta_prime(std::size_t num_options, double mu, double num_agents);

/// Proposition 4.2's stage-2 concentration radius
/// δ″ = √(60 m ln N / ((1−β) μ N)).
[[nodiscard]] double delta_double_prime(std::size_t num_options, double mu, double beta,
                                        double num_agents);

/// Lemma 4.5's coupling radius after t steps: δ_t = 5^t δ″ (the lemma's
/// guarantee is 1/(1+δ_t) ≤ P^t_j/Q^t_j ≤ 1+δ_t w.h.p.).
[[nodiscard]] double coupling_bound(std::uint64_t t, std::size_t num_options, double mu,
                                    double beta, double num_agents);

/// The failure mass of Lemma 4.5 after t steps: 6 t m / N^10 (clamped to 1).
[[nodiscard]] double coupling_failure_probability(std::uint64_t t, std::size_t num_options,
                                                  double num_agents);

/// §4.3.2's popularity floor ζ = μ(1−β)/(4m): w.h.p. every option keeps at
/// least this popularity at every step.
[[nodiscard]] double popularity_floor(std::size_t num_options, double mu, double beta);

/// §4.3.2's epoch length ln(4m/(μ(1−β))) / δ² = ln(1/ζ)/δ².
[[nodiscard]] double epoch_length(std::size_t num_options, double mu, double beta);

/// Theorem 4.6's minimum horizon from a start with min_j P⁰_j ≥ ζ:
/// T ≥ ln(1/ζ)/δ².
[[nodiscard]] double nonuniform_min_horizon(double zeta, double beta);

/// Theorem 4.4's large-T cap: T ≤ N^10 / (m δ).  Returns +inf when the
/// power overflows, which is the practically-always case for N ≥ 10.
[[nodiscard]] double max_horizon(std::size_t num_options, double beta, double num_agents);

/// Convenience: does (params, N, T) sit inside Theorem 4.4's stated window
/// ln m/δ² ≤ T (the N conditions are astronomically conservative; callers
/// check them separately when they care)?
[[nodiscard]] bool horizon_in_window(const dynamics_params& params, double num_agents,
                                     double horizon);

/// The two explicit N conditions of Theorem 4.4 (c = 240m/((1−β)μ)):
/// N/ln N ≥ (c·(4m/(μ(1−β)))^{2·ln5/δ²}) / δ²  and  N¹⁰ ≥ 24 m ln m /(μ(1−β)δ³).
/// NOTE: the paper prints δ″² in the first denominator, but δ″² = Θ(lnN/N)
/// makes that inequality unsatisfiable for every N; the δ² version is the
/// evident intent (it is what bounds the epoch-coupling slack 5^Tδ″ by δ).
/// Evaluated in log-space; returns true when both hold.  These constants
/// are wildly conservative — experiment E3 shows the 6δ bound holds at far
/// smaller N, which is itself a finding worth reporting.
[[nodiscard]] bool theorem44_population_condition(const dynamics_params& params,
                                                  double num_agents);

}  // namespace sgl::core::theory
