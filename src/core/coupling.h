#pragma once

/// \file coupling.h
/// The coupling of Lemma 4.5: run the finite-population dynamics Q^t and
/// the infinite-population dynamics P^t on the *same* realized reward
/// sequence {R^t} and measure how far the trajectories drift apart.
///
/// The lemma guarantees, with probability ≥ 1 − 6tm/N¹⁰, that
///   1/(1+δ_t) ≤ P^t_j / Q^t_j ≤ 1 + δ_t       with δ_t = 5^t δ″,
/// i.e. the ratio deviation  max_j max(P_j/Q_j, Q_j/P_j) − 1  stays below
/// δ_t.  estimate_coupling reports that deviation per step (mean over
/// replications, plus the fraction of replications within the bound).

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "core/params.h"
#include "support/stats.h"

namespace sgl::core {

struct coupling_estimate {
  /// δ_t = 5^t δ″ for t = 1..horizon (index t−1); +inf once it overflows.
  std::vector<double> bound;

  /// Ratio deviation max_j (max(P_j/Q_j, Q_j/P_j) − 1) after step t,
  /// averaged over replications.  Deviations are capped at
  /// `deviation_cap` (a popularity hitting exactly 0 makes the raw ratio
  /// infinite); `capped_fraction` reports how often that happened.
  series_stats deviation;

  /// Fraction of replications whose deviation was within the lemma bound
  /// at step t (1.0 whenever bound[t−1] = +inf).
  series_stats within_bound;

  double deviation_cap = 0.0;
  double capped_fraction = 0.0;
  std::uint64_t replications = 0;

  explicit coupling_estimate(std::size_t horizon)
      : bound(horizon), deviation{horizon}, within_bound{horizon} {}
};

/// Runs the coupled pair.  The finite side uses the aggregate engine
/// (homogeneous mixed case — the lemma's setting).
[[nodiscard]] coupling_estimate estimate_coupling(const dynamics_params& params,
                                                  std::uint64_t num_agents,
                                                  const env_factory& make_env,
                                                  const run_config& config,
                                                  double deviation_cap = 10.0);

}  // namespace sgl::core
