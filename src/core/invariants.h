#pragma once

/// \file invariants.h
/// The universal dynamics_engine state contract, as a checkable predicate.
///
/// dynamics_engine.h documents what every engine promises after
/// construction, after reset(), and after every step():
///
///   * popularity() is a probability vector of size num_options(): every
///     entry finite and in [0, 1], the entries summing to 1;
///   * adopter_counts() is empty (engines without individual counts — the
///     infinite-population dynamics) or has size num_options();
///   * when individual counts exist and anyone is committed, popularity is
///     exactly the normalized counts; when nobody is committed, popularity
///     is exactly uniform (DESIGN.md "Uniform popularity after an empty
///     step");
///   * empty_steps() never exceeds steps().
///
/// state_invariant_error() checks all of it against one live engine and
/// returns the first violation as a message (empty string = clean).  The
/// generator-driven property tier (tests/property/) calls it after every
/// step of every randomly drawn scenario; it is exposed from src/core so
/// in-process debugging tools can assert the same contract.

#include <string>

#include "core/dynamics_engine.h"

namespace sgl::core {

/// First violated state invariant of `engine`, or empty when clean.
/// `popularity_tolerance` bounds |sum(popularity) - 1| and the distance of
/// each popularity entry from its reconstruction (counts_j / total when
/// counts exist, 1/m when empty or nobody committed).  Engines that
/// normalize by plain summation keep the error within a few ulps; the
/// default leaves room for an m in the thousands without masking a real
/// floor violation.
[[nodiscard]] std::string state_invariant_error(const dynamics_engine& engine,
                                                double popularity_tolerance = 1e-9);

}  // namespace sgl::core
