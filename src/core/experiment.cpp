#include "core/experiment.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "support/parallel.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

/// Per-shard accumulators: one clone of every probe prototype.
struct replication_shard {
  probe_list probes;
};

void merge_shards(replication_shard& into, const replication_shard& from) {
  for (std::size_t i = 0; i < into.probes.size(); ++i) {
    into.probes[i]->merge(*from.probes[i]);
  }
}

run_config with_curves(run_config config) {
  config.collect_curves = true;
  return config;
}

}  // namespace

void check_run_config(const run_config& config) {
  if (config.horizon == 0) throw std::invalid_argument{"run_config: horizon must be >= 1"};
  if (config.replications == 0) {
    throw std::invalid_argument{"run_config: need >= 1 replication"};
  }
}

replication_context::replication_context(const engine_factory& make_engine,
                                         const env_factory& make_env,
                                         bool clamp_engine_threads)
    : make_engine_{make_engine},
      make_env_{make_env},
      clamp_engine_threads_{clamp_engine_threads} {
  rebuild();
}

/// (Re)constructs the engine/environment pair.  This is also where the
/// per-replication checks of the old harness ran; they are now paid once
/// per context build — once per worker in the steady reusable state —
/// instead of once per replication.
void replication_context::rebuild() {
  environment_ = make_env_();
  engine_ = make_engine_();
  if (environment_->num_options() != engine_->num_options()) {
    throw std::invalid_argument{"run_scenario: engine/environment option-count mismatch"};
  }
  if (clamp_engine_threads_) {
    // When the runner itself spreads replications across workers, an engine
    // that also fans out internally (finite_dynamics::set_threads) would
    // oversubscribe the machine quadratically; intra-replication
    // parallelism only pays when replications don't already saturate the
    // cores.  The clamp is a pure scheduling decision: network-mode
    // trajectories are bit-identical for every thread count.
    if (auto* agents = dynamic_cast<finite_dynamics*>(engine_.get())) {
      agents->set_threads(1);
    }
  }
  reusable_ = engine_->reusable() && environment_->reusable();
  fresh_ = true;
  const std::size_t m = environment_->num_options();
  rewards_.assign(m, 0);
  q_prev_.assign(m, 0.0);
}

void replication_context::run(const run_config& config, std::uint64_t replication,
                              const probe_list& probes) {
  // Bring the pair back to its initial state.  reset() and reconstruction
  // are state-identical by the reusable() contract (dynamics_engine.h),
  // so config.reuse cannot change a trajectory — only the wall clock.
  if (fresh_) {
    fresh_ = false;
  } else if (config.reuse && reusable_) {
    engine_->reset();
    environment_->reset();
  } else {
    rebuild();
    fresh_ = false;
  }

  env::reward_model& environment = *environment_;
  dynamics_engine& engine = *engine_;
  rng reward_gen = rng::from_stream(config.seed, 2 * replication);
  rng process_gen = rng::from_stream(config.seed, 2 * replication + 1);

  for (const auto& probe : probes) probe->begin_replication(config.horizon);

  for (std::uint64_t t = 1; t <= config.horizon; ++t) {
    // Q^{t-1} must be *copied* out: popularity() is a view into engine
    // storage that step() overwrites in place, so handing the span itself
    // to the probes would alias the post-step Q^t.  Every engine mutates
    // its popularity buffer in place (that is what makes reset() cheap),
    // so there is no engine for which the copy could be dropped; at m
    // doubles it is far below one sampler draw anyway.
    const auto popularity_now = engine.popularity();
    std::copy(popularity_now.begin(), popularity_now.end(), q_prev_.begin());

    environment.sample(t, reward_gen, rewards_);
    engine.step(rewards_, process_gen);

    const probe_step_view view{.t = t,
                               .horizon = config.horizon,
                               .popularity_before = q_prev_,
                               .rewards = rewards_,
                               .engine = engine,
                               .environment = environment};
    for (const auto& probe : probes) probe->on_step(view);
  }

  for (const auto& probe : probes) {
    probe->end_replication(engine, environment, config.horizon);
  }
}

context_pool::lease context_pool::borrow() {
  {
    const std::scoped_lock lock{mutex_};
    if (!free_.empty()) {
      auto context = std::move(free_.back());
      free_.pop_back();
      return lease{*this, std::move(context)};
    }
  }
  return lease{*this, std::make_unique<replication_context>(make_engine_, make_env_,
                                                            clamp_engine_threads_)};
}

void context_pool::release(std::unique_ptr<replication_context> context) {
  if (context == nullptr) return;
  const std::scoped_lock lock{mutex_};
  free_.push_back(std::move(context));
}

probe_list run_with_probes(const engine_factory& make_engine, const env_factory& make_env,
                           const run_config& config,
                           std::span<const probe* const> prototypes) {
  check_run_config(config);
  const unsigned workers = std::min<unsigned>(
      config.threads == 0 ? default_thread_count() : config.threads,
      static_cast<unsigned>(std::min<std::uint64_t>(
          config.replications, std::numeric_limits<unsigned>::max())));
  context_pool contexts{make_engine, make_env, /*clamp_engine_threads=*/workers > 1};
  auto shard = parallel_reduce<replication_shard>(
      config.replications,
      [&] {
        replication_shard s;
        s.probes.reserve(prototypes.size());
        for (const probe* prototype : prototypes) s.probes.push_back(prototype->clone());
        return s;
      },
      [&](replication_shard& s, std::size_t replication) {
        contexts.borrow()->run(config, replication, s.probes);
      },
      merge_shards, config.threads);
  return std::move(shard.probes);
}

regret_estimate to_regret_estimate(const regret_probe& probe) {
  regret_estimate est;
  est.regret = confidence_interval(probe.regret_stats());
  est.average_reward = confidence_interval(probe.average_reward_stats());
  est.best_mass = confidence_interval(probe.best_mass_stats());
  est.final_best_mass = confidence_interval(probe.final_best_mass_stats());
  est.empty_step_fraction = probe.empty_fraction_stats().mean();
  est.replications = probe.regret_stats().count();
  return est;
}

trajectory_estimate to_trajectory_estimate(const trajectory_probe& probe) {
  trajectory_estimate curves{probe.running_regret().length()};
  curves.running_regret = probe.running_regret();
  curves.best_mass = probe.best_mass();
  curves.min_popularity = probe.min_popularity();
  return curves;
}

run_result run_scenario(const engine_factory& make_engine, const env_factory& make_env,
                        const run_config& config) {
  const regret_probe scalars;
  const trajectory_probe curves;
  std::vector<const probe*> prototypes{&scalars};
  if (config.collect_curves) prototypes.push_back(&curves);

  probe_list merged = run_with_probes(make_engine, make_env, config, prototypes);

  run_result result;
  result.scalars = to_regret_estimate(static_cast<const regret_probe&>(*merged[0]));
  if (config.collect_curves) {
    result.curves = to_trajectory_estimate(static_cast<const trajectory_probe&>(*merged[1]));
  }
  return result;
}

engine_factory make_infinite_engine_factory(const dynamics_params& params,
                                            std::span<const double> start) {
  return [params, start = std::vector<double>{start.begin(), start.end()}] {
    auto engine = std::make_unique<infinite_dynamics>(params);
    if (!start.empty()) engine->reset(std::span<const double>{start});
    return engine;
  };
}

engine_factory make_finite_engine_factory(const dynamics_params& params,
                                          std::uint64_t num_agents, finite_engine engine,
                                          const graph::graph* topology) {
  if (topology != nullptr || engine == finite_engine::agent_based) {
    return [params, num_agents, topology] {
      auto process =
          std::make_unique<finite_dynamics>(params, static_cast<std::size_t>(num_agents));
      if (topology != nullptr) process->set_topology(topology);
      return process;
    };
  }
  return [params, num_agents] {
    return std::make_unique<aggregate_dynamics>(params, num_agents);
  };
}

regret_estimate estimate_infinite_regret(const dynamics_params& params,
                                         const env_factory& make_env,
                                         const run_config& config,
                                         std::span<const double> start) {
  return run_scenario(make_infinite_engine_factory(params, start), make_env, config)
      .scalars;
}

regret_estimate estimate_finite_regret(const dynamics_params& params,
                                       std::uint64_t num_agents, const env_factory& make_env,
                                       const run_config& config, finite_engine engine,
                                       const graph::graph* topology) {
  return run_scenario(make_finite_engine_factory(params, num_agents, engine, topology),
                      make_env, config)
      .scalars;
}

trajectory_estimate collect_infinite_trajectory(const dynamics_params& params,
                                                const env_factory& make_env,
                                                const run_config& config,
                                                std::span<const double> start) {
  return std::move(*run_scenario(make_infinite_engine_factory(params, start), make_env,
                                 with_curves(config))
                        .curves);
}

trajectory_estimate collect_finite_trajectory(const dynamics_params& params,
                                              std::uint64_t num_agents,
                                              const env_factory& make_env,
                                              const run_config& config, finite_engine engine,
                                              const graph::graph* topology) {
  return std::move(
      *run_scenario(make_finite_engine_factory(params, num_agents, engine, topology),
                    make_env, with_curves(config))
           .curves);
}

}  // namespace sgl::core
