#include "core/experiment.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "support/parallel.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

/// Per-shard accumulators: scalars always, curves when requested.
struct replication_shard {
  running_stats regret;
  running_stats average_reward;
  running_stats best_mass;
  running_stats final_best_mass;
  running_stats empty_fraction;
  std::optional<trajectory_estimate> curves;
};

void merge_shards(replication_shard& into, const replication_shard& from) {
  into.regret.merge(from.regret);
  into.average_reward.merge(from.average_reward);
  into.best_mass.merge(from.best_mass);
  into.final_best_mass.merge(from.final_best_mass);
  into.empty_fraction.merge(from.empty_fraction);
  if (into.curves && from.curves) {
    into.curves->running_regret.merge(from.curves->running_regret);
    into.curves->best_mass.merge(from.curves->best_mass);
    into.curves->min_popularity.merge(from.curves->min_popularity);
  }
}

run_result finish(replication_shard&& shard) {
  run_result result;
  result.scalars.regret = confidence_interval(shard.regret);
  result.scalars.average_reward = confidence_interval(shard.average_reward);
  result.scalars.best_mass = confidence_interval(shard.best_mass);
  result.scalars.final_best_mass = confidence_interval(shard.final_best_mass);
  result.scalars.empty_step_fraction = shard.empty_fraction.mean();
  result.scalars.replications = shard.regret.count();
  result.curves = std::move(shard.curves);
  return result;
}

/// The single replication loop behind every estimate: advance `engine`
/// through the horizon against a fresh environment, accumulating the §2.2
/// measures into `shard`.
void run_replication(const run_config& config, std::uint64_t replication,
                     env::reward_model& environment, dynamics_engine& engine,
                     replication_shard& shard) {
  const std::size_t m = environment.num_options();
  rng reward_gen = rng::from_stream(config.seed, 2 * replication);
  rng process_gen = rng::from_stream(config.seed, 2 * replication + 1);

  std::vector<std::uint8_t> rewards(m, 0);
  std::vector<double> q_prev(m, 0.0);
  std::vector<double> regret_curve;
  std::vector<double> best_curve;
  std::vector<double> min_pop_curve;
  const bool curves = shard.curves.has_value();
  if (curves) {
    regret_curve.reserve(config.horizon);
    best_curve.reserve(config.horizon);
    min_pop_curve.reserve(config.horizon);
  }

  double reward_sum = 0.0;
  double best_mean_sum = 0.0;
  double best_mass_sum = 0.0;

  for (std::uint64_t t = 1; t <= config.horizon; ++t) {
    const auto popularity_now = engine.popularity();
    std::copy(popularity_now.begin(), popularity_now.end(), q_prev.begin());

    environment.sample(t, reward_gen, rewards);
    engine.step(rewards, process_gen);

    // Group reward of step t uses the pre-step popularity Q^{t−1} (§2.2).
    double group_reward = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      group_reward += q_prev[j] * static_cast<double>(rewards[j]);
    }
    reward_sum += group_reward;
    const std::size_t best = environment.best_option(t);
    best_mean_sum += environment.mean(t, best);
    best_mass_sum += q_prev[best];

    if (curves) {
      const double td = static_cast<double>(t);
      regret_curve.push_back((best_mean_sum - reward_sum) / td);
      const auto q_now = engine.popularity();
      best_curve.push_back(q_now[best]);
      min_pop_curve.push_back(*std::min_element(q_now.begin(), q_now.end()));
    }
  }

  const double horizon = static_cast<double>(config.horizon);
  shard.regret.add((best_mean_sum - reward_sum) / horizon);
  shard.average_reward.add(reward_sum / horizon);
  shard.best_mass.add(best_mass_sum / horizon);
  const auto q_final = engine.popularity();
  shard.final_best_mass.add(q_final[environment.best_option(config.horizon)]);
  shard.empty_fraction.add(static_cast<double>(engine.empty_steps()) / horizon);

  if (curves) {
    shard.curves->running_regret.add_series(regret_curve);
    shard.curves->best_mass.add_series(best_curve);
    shard.curves->min_popularity.add_series(min_pop_curve);
  }
}

void check_config(const run_config& config) {
  if (config.horizon == 0) throw std::invalid_argument{"run_config: horizon must be >= 1"};
  if (config.replications == 0) {
    throw std::invalid_argument{"run_config: need >= 1 replication"};
  }
}

run_config with_curves(run_config config) {
  config.collect_curves = true;
  return config;
}

}  // namespace

run_result run_scenario(const engine_factory& make_engine, const env_factory& make_env,
                        const run_config& config) {
  check_config(config);
  // When the runner itself spreads replications across workers, an engine
  // that also fans out internally (finite_dynamics::set_threads) would
  // oversubscribe the machine quadratically; intra-replication parallelism
  // only pays when replications don't already saturate the cores.  The
  // clamp is a pure scheduling decision: network-mode trajectories are
  // bit-identical for every thread count.
  const unsigned workers = std::min<unsigned>(
      config.threads == 0 ? default_thread_count() : config.threads,
      static_cast<unsigned>(std::min<std::uint64_t>(
          config.replications, std::numeric_limits<unsigned>::max())));
  const bool parallel_replications = workers > 1;
  auto shard = parallel_reduce<replication_shard>(
      config.replications,
      [&] {
        replication_shard s;
        if (config.collect_curves) {
          s.curves.emplace(static_cast<std::size_t>(config.horizon));
        }
        return s;
      },
      [&](replication_shard& s, std::size_t replication) {
        const auto environment = make_env();
        const auto engine = make_engine();
        if (environment->num_options() != engine->num_options()) {
          throw std::invalid_argument{
              "run_scenario: engine/environment option-count mismatch"};
        }
        if (parallel_replications) {
          if (auto* agents = dynamic_cast<finite_dynamics*>(engine.get())) {
            agents->set_threads(1);
          }
        }
        run_replication(config, replication, *environment, *engine, s);
      },
      merge_shards, config.threads);
  return finish(std::move(shard));
}

engine_factory make_infinite_engine_factory(const dynamics_params& params,
                                            std::span<const double> start) {
  return [params, start = std::vector<double>{start.begin(), start.end()}] {
    auto engine = std::make_unique<infinite_dynamics>(params);
    if (!start.empty()) engine->reset(std::span<const double>{start});
    return engine;
  };
}

engine_factory make_finite_engine_factory(const dynamics_params& params,
                                          std::uint64_t num_agents, finite_engine engine,
                                          const graph::graph* topology) {
  if (topology != nullptr || engine == finite_engine::agent_based) {
    return [params, num_agents, topology] {
      auto process =
          std::make_unique<finite_dynamics>(params, static_cast<std::size_t>(num_agents));
      if (topology != nullptr) process->set_topology(topology);
      return process;
    };
  }
  return [params, num_agents] {
    return std::make_unique<aggregate_dynamics>(params, num_agents);
  };
}

regret_estimate estimate_infinite_regret(const dynamics_params& params,
                                         const env_factory& make_env,
                                         const run_config& config,
                                         std::span<const double> start) {
  return run_scenario(make_infinite_engine_factory(params, start), make_env, config)
      .scalars;
}

regret_estimate estimate_finite_regret(const dynamics_params& params,
                                       std::uint64_t num_agents, const env_factory& make_env,
                                       const run_config& config, finite_engine engine,
                                       const graph::graph* topology) {
  return run_scenario(make_finite_engine_factory(params, num_agents, engine, topology),
                      make_env, config)
      .scalars;
}

trajectory_estimate collect_infinite_trajectory(const dynamics_params& params,
                                                const env_factory& make_env,
                                                const run_config& config,
                                                std::span<const double> start) {
  return std::move(*run_scenario(make_infinite_engine_factory(params, start), make_env,
                                 with_curves(config))
                        .curves);
}

trajectory_estimate collect_finite_trajectory(const dynamics_params& params,
                                              std::uint64_t num_agents,
                                              const env_factory& make_env,
                                              const run_config& config, finite_engine engine,
                                              const graph::graph* topology) {
  return std::move(
      *run_scenario(make_finite_engine_factory(params, num_agents, engine, topology),
                    make_env, with_curves(config))
           .curves);
}

}  // namespace sgl::core
