#include "core/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "support/parallel.h"
#include "support/rng.h"

namespace sgl::core {
namespace {

/// Scalar accumulators for one regret estimate.
struct scalar_shard {
  running_stats regret;
  running_stats average_reward;
  running_stats best_mass;
  running_stats final_best_mass;
  running_stats empty_fraction;
};

void merge_scalar(scalar_shard& into, const scalar_shard& from) {
  into.regret.merge(from.regret);
  into.average_reward.merge(from.average_reward);
  into.best_mass.merge(from.best_mass);
  into.final_best_mass.merge(from.final_best_mass);
  into.empty_fraction.merge(from.empty_fraction);
}

regret_estimate finish_scalar(const scalar_shard& shard) {
  regret_estimate estimate;
  estimate.regret = confidence_interval(shard.regret);
  estimate.average_reward = confidence_interval(shard.average_reward);
  estimate.best_mass = confidence_interval(shard.best_mass);
  estimate.final_best_mass = confidence_interval(shard.final_best_mass);
  estimate.empty_step_fraction = shard.empty_fraction.mean();
  estimate.replications = shard.regret.count();
  return estimate;
}

/// Per-replication curves for one trajectory estimate.
struct curve_shard {
  explicit curve_shard(std::size_t horizon) : estimate{horizon} {}
  trajectory_estimate estimate;
};

void merge_curves(curve_shard& into, const curve_shard& from) {
  into.estimate.running_regret.merge(from.estimate.running_regret);
  into.estimate.best_mass.merge(from.estimate.best_mass);
  into.estimate.min_popularity.merge(from.estimate.min_popularity);
}

/// One replication of any process exposing popularity()/distribution().
/// `step_process` advances the process given (rewards, process_gen).
/// `scalars`/`curves` may be nullptr when not wanted.
template <typename StepFn, typename PopularityFn, typename EmptyStepsFn>
void run_replication(const run_config& config, std::uint64_t replication,
                     env::reward_model& environment, StepFn step_process,
                     PopularityFn popularity, scalar_shard* scalars,
                     curve_shard* curves, EmptyStepsFn empty_steps) {
  const std::size_t m = environment.num_options();
  rng reward_gen = rng::from_stream(config.seed, 2 * replication);
  rng process_gen = rng::from_stream(config.seed, 2 * replication + 1);

  std::vector<std::uint8_t> rewards(m, 0);
  std::vector<double> q_prev(m, 0.0);
  std::vector<double> regret_curve;
  std::vector<double> best_curve;
  std::vector<double> min_pop_curve;
  if (curves != nullptr) {
    regret_curve.reserve(config.horizon);
    best_curve.reserve(config.horizon);
    min_pop_curve.reserve(config.horizon);
  }

  double reward_sum = 0.0;
  double best_mean_sum = 0.0;
  double best_mass_sum = 0.0;

  for (std::uint64_t t = 1; t <= config.horizon; ++t) {
    const auto popularity_now = popularity();
    std::copy(popularity_now.begin(), popularity_now.end(), q_prev.begin());

    environment.sample(t, reward_gen, rewards);
    step_process(rewards, process_gen);

    // Group reward of step t uses the pre-step popularity Q^{t−1} (§2.2).
    double group_reward = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      group_reward += q_prev[j] * static_cast<double>(rewards[j]);
    }
    reward_sum += group_reward;
    const std::size_t best = environment.best_option(t);
    best_mean_sum += environment.mean(t, best);
    best_mass_sum += q_prev[best];

    if (curves != nullptr) {
      const double td = static_cast<double>(t);
      regret_curve.push_back((best_mean_sum - reward_sum) / td);
      const auto q_now = popularity();
      best_curve.push_back(q_now[best]);
      min_pop_curve.push_back(*std::min_element(q_now.begin(), q_now.end()));
    }
  }

  const double horizon = static_cast<double>(config.horizon);
  if (scalars != nullptr) {
    scalars->regret.add((best_mean_sum - reward_sum) / horizon);
    scalars->average_reward.add(reward_sum / horizon);
    scalars->best_mass.add(best_mass_sum / horizon);
    const auto q_final = popularity();
    scalars->final_best_mass.add(q_final[environment.best_option(config.horizon)]);
    scalars->empty_fraction.add(static_cast<double>(empty_steps()) / horizon);
  }
  if (curves != nullptr) {
    curves->estimate.running_regret.add_series(regret_curve);
    curves->estimate.best_mass.add_series(best_curve);
    curves->estimate.min_popularity.add_series(min_pop_curve);
  }
}

void check_config(const run_config& config) {
  if (config.horizon == 0) throw std::invalid_argument{"run_config: horizon must be >= 1"};
  if (config.replications == 0) {
    throw std::invalid_argument{"run_config: need >= 1 replication"};
  }
}

void check_env(const dynamics_params& params, const env::reward_model& environment) {
  if (environment.num_options() != params.num_options) {
    throw std::invalid_argument{"experiment: environment/model option-count mismatch"};
  }
}

template <typename Fold>
regret_estimate reduce_scalars(const run_config& config, Fold fold) {
  auto shard = parallel_reduce<scalar_shard>(
      config.replications, [] { return scalar_shard{}; }, fold, merge_scalar,
      config.threads);
  return finish_scalar(shard);
}

template <typename Fold>
trajectory_estimate reduce_curves(const run_config& config, Fold fold) {
  auto shard = parallel_reduce<curve_shard>(
      config.replications,
      [&] { return curve_shard{static_cast<std::size_t>(config.horizon)}; }, fold,
      merge_curves, config.threads);
  return shard.estimate;
}

/// Runs one infinite-dynamics replication into the given sinks.
void one_infinite_replication(const dynamics_params& params, const env_factory& make_env,
                              const run_config& config, std::span<const double> start,
                              std::uint64_t replication, scalar_shard* scalars,
                              curve_shard* curves) {
  const auto environment = make_env();
  check_env(params, *environment);
  infinite_dynamics process{params};
  if (!start.empty()) process.reset(start);
  run_replication(
      config, replication, *environment,
      [&](std::span<const std::uint8_t> rewards, rng&) { process.step(rewards); },
      [&] { return process.distribution(); }, scalars, curves,
      [] { return std::uint64_t{0}; });
}

/// Runs one finite-dynamics replication into the given sinks.
void one_finite_replication(const dynamics_params& params, std::uint64_t num_agents,
                            const env_factory& make_env, const run_config& config,
                            finite_engine engine, const graph::graph* topology,
                            std::uint64_t replication, scalar_shard* scalars,
                            curve_shard* curves) {
  const auto environment = make_env();
  check_env(params, *environment);
  if (topology != nullptr || engine == finite_engine::agent_based) {
    finite_dynamics process{params, static_cast<std::size_t>(num_agents)};
    if (topology != nullptr) process.set_topology(topology);
    run_replication(
        config, replication, *environment,
        [&](std::span<const std::uint8_t> rewards, rng& gen) { process.step(rewards, gen); },
        [&] { return process.popularity(); }, scalars, curves,
        [&] { return process.empty_steps(); });
  } else {
    aggregate_dynamics process{params, num_agents};
    run_replication(
        config, replication, *environment,
        [&](std::span<const std::uint8_t> rewards, rng& gen) { process.step(rewards, gen); },
        [&] { return process.popularity(); }, scalars, curves,
        [&] { return process.empty_steps(); });
  }
}

}  // namespace

regret_estimate estimate_infinite_regret(const dynamics_params& params,
                                         const env_factory& make_env,
                                         const run_config& config,
                                         std::span<const double> start) {
  check_config(config);
  return reduce_scalars(config, [&](scalar_shard& shard, std::size_t replication) {
    one_infinite_replication(params, make_env, config, start, replication, &shard, nullptr);
  });
}

regret_estimate estimate_finite_regret(const dynamics_params& params,
                                       std::uint64_t num_agents, const env_factory& make_env,
                                       const run_config& config, finite_engine engine,
                                       const graph::graph* topology) {
  check_config(config);
  return reduce_scalars(config, [&](scalar_shard& shard, std::size_t replication) {
    one_finite_replication(params, num_agents, make_env, config, engine, topology,
                           replication, &shard, nullptr);
  });
}

trajectory_estimate collect_infinite_trajectory(const dynamics_params& params,
                                                const env_factory& make_env,
                                                const run_config& config,
                                                std::span<const double> start) {
  check_config(config);
  return reduce_curves(config, [&](curve_shard& shard, std::size_t replication) {
    one_infinite_replication(params, make_env, config, start, replication, nullptr, &shard);
  });
}

trajectory_estimate collect_finite_trajectory(const dynamics_params& params,
                                              std::uint64_t num_agents,
                                              const env_factory& make_env,
                                              const run_config& config, finite_engine engine,
                                              const graph::graph* topology) {
  check_config(config);
  return reduce_curves(config, [&](curve_shard& shard, std::size_t replication) {
    one_finite_replication(params, num_agents, make_env, config, engine, topology,
                           replication, nullptr, &shard);
  });
}

}  // namespace sgl::core
