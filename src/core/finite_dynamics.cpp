#include "core/finite_dynamics.h"

#include <algorithm>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::core {

finite_dynamics::finite_dynamics(const dynamics_params& params, std::size_t num_agents)
    : params_{params} {
  params_.validate();
  if (num_agents == 0) throw std::invalid_argument{"finite_dynamics: no agents"};
  choices_.assign(num_agents, -1);
  previous_choices_.assign(num_agents, -1);
  popularity_.assign(params_.num_options, 0.0);
  stage_weights_.assign(params_.num_options, 0.0);
  adopter_counts_.assign(params_.num_options, 0);
  stage_counts_.assign(params_.num_options, 0);
  reset();
}

void finite_dynamics::set_agent_rules(std::vector<adoption_rule> rules) {
  if (rules.size() != choices_.size()) {
    throw std::invalid_argument{"finite_dynamics::set_agent_rules: size mismatch"};
  }
  for (const auto& rule : rules) {
    if (!(rule.alpha >= 0.0 && rule.alpha <= rule.beta && rule.beta <= 1.0)) {
      throw std::invalid_argument{
          "finite_dynamics::set_agent_rules: need 0 <= alpha <= beta <= 1"};
    }
  }
  rules_ = std::move(rules);
}

void finite_dynamics::set_topology(const graph::graph* topology) {
  if (topology != nullptr && topology->num_vertices() != choices_.size()) {
    throw std::invalid_argument{"finite_dynamics::set_topology: vertex count != agents"};
  }
  topology_ = topology;
}

void finite_dynamics::reset() {
  std::fill(choices_.begin(), choices_.end(), -1);
  std::fill(previous_choices_.begin(), previous_choices_.end(), -1);
  const double uniform = 1.0 / static_cast<double>(params_.num_options);
  std::fill(popularity_.begin(), popularity_.end(), uniform);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);
  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  adopters_ = 0;
  empty_steps_ = 0;
  steps_ = 0;
}

void finite_dynamics::step(std::span<const std::uint8_t> rewards, rng& gen) {
  if (rewards.size() != params_.num_options) {
    throw std::invalid_argument{"finite_dynamics::step: reward width mismatch"};
  }
  if (topology_ == nullptr && rules_.empty()) {
    step_batched(rewards, gen);
  } else {
    step_per_agent(rewards, gen);
  }
  finish_step();
}

void finite_dynamics::step_batched(std::span<const std::uint8_t> rewards, rng& gen) {
  // Homogeneous + fully mixed: conditioned on Q^t the agent-level randomness
  // factors exactly (Propositions 4.1/4.2) as
  //   S ~ Multinomial(N, (1−μ)Q + μ/m),  D_j ~ Binomial(S_j, β^{R_j} α^{1−R_j}).
  // The draws below mirror aggregate_dynamics::step word for word so the two
  // engines consume a shared stream identically.
  const std::size_t m = params_.num_options;
  const double mu = params_.mu;
  const double alpha = params_.resolved_alpha();
  const double beta = params_.beta;

  for (std::size_t j = 0; j < m; ++j) {
    stage_weights_[j] = (1.0 - mu) * popularity_[j] + mu / static_cast<double>(m);
  }
  sample_multinomial(gen, choices_.size(), stage_weights_, stage_counts_);

  adopters_ = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double adopt_p = rewards[j] != 0 ? beta : alpha;
    adopter_counts_[j] = sample_binomial(gen, stage_counts_[j], adopt_p);
    adopters_ += adopter_counts_[j];
  }

  // Materialize per-agent choices from the counts: agents are exchangeable
  // under the homogeneous rule, so a block assignment realizes the same law
  // for every count statistic (DESIGN.md §"Batched agent materialization").
  auto* cursor = choices_.data();
  for (std::size_t j = 0; j < m; ++j) {
    const auto committed = static_cast<std::size_t>(adopter_counts_[j]);
    const auto considered = static_cast<std::size_t>(stage_counts_[j]);
    std::fill_n(cursor, committed, static_cast<std::int32_t>(j));
    std::fill_n(cursor + committed, considered - committed, -1);
    cursor += considered;
  }
}

void finite_dynamics::step_per_agent(std::span<const std::uint8_t> rewards, rng& gen) {
  const std::size_t m = params_.num_options;

  // Network mode reads last step's choices while this step's are written.
  if (topology_ != nullptr) previous_choices_ = choices_;

  // Stage 1 sampler for the fully mixed case: popularity-proportional
  // (identical in law to "copy a uniformly random adopter").  Rebuilt in
  // place: allocation-free after the first step.
  if (topology_ == nullptr && m > 1) by_popularity_.rebuild(popularity_);

  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);

  const double mu = params_.mu;
  const adoption_rule homogeneous{params_.resolved_alpha(), params_.beta};

  for (std::size_t i = 0; i < choices_.size(); ++i) {
    // --- Stage 1: pick an option to consider. ---
    std::size_t considered;
    if (m == 1) {
      considered = 0;
    } else if (gen.next_bernoulli(mu)) {
      considered = static_cast<std::size_t>(gen.next_below(m));
    } else if (topology_ == nullptr) {
      considered = by_popularity_.sample(gen);
    } else {
      // Sample a *committed* companion, matching the mean-field rule where
      // popularity is the distribution among adopters: bounded rejection
      // over uniform neighbour draws (16 attempts make the residual
      // fallback probability negligible for any committed fraction that
      // matters), then the uniform-option fallback.
      const auto neighbours = topology_->neighbors(static_cast<graph::graph::vertex>(i));
      std::int32_t observed = -1;
      if (!neighbours.empty()) {
        for (int attempt = 0; attempt < 16 && observed < 0; ++attempt) {
          const auto pick = neighbours[gen.next_below(neighbours.size())];
          observed = previous_choices_[pick];
        }
      }
      considered = observed >= 0 ? static_cast<std::size_t>(observed)
                                 : static_cast<std::size_t>(gen.next_below(m));
    }
    ++stage_counts_[considered];

    // --- Stage 2: adopt or sit out. ---
    const adoption_rule& rule = rules_.empty() ? homogeneous : rules_[i];
    const double adopt_p = rewards[considered] != 0 ? rule.beta : rule.alpha;
    if (gen.next_bernoulli(adopt_p)) {
      choices_[i] = static_cast<std::int32_t>(considered);
      ++adopter_counts_[considered];
    } else {
      choices_[i] = -1;
    }
  }

  adopters_ = 0;
  for (const std::uint64_t d : adopter_counts_) adopters_ += d;
}

void finite_dynamics::finish_step() {
  const std::size_t m = params_.num_options;
  if (adopters_ == 0) {
    const double uniform = 1.0 / static_cast<double>(m);
    std::fill(popularity_.begin(), popularity_.end(), uniform);
    ++empty_steps_;
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      popularity_[j] = static_cast<double>(adopter_counts_[j]) /
                       static_cast<double>(adopters_);
    }
  }
  ++steps_;
}

}  // namespace sgl::core
