#include "core/finite_dynamics.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <type_traits>

#include "core/step_kernel.h"
#include "support/distributions.h"
#include "support/parallel.h"

namespace sgl::core {

finite_dynamics::finite_dynamics(const dynamics_params& params, std::size_t num_agents)
    : params_{params} {
  params_.validate();
  if (num_agents == 0) throw std::invalid_argument{"finite_dynamics: no agents"};
  choices_.assign(num_agents, -1);
  previous_choices_.assign(num_agents, -1);
  popularity_.assign(params_.num_options, 0.0);
  stage_weights_.assign(params_.num_options, 0.0);
  adopter_counts_.assign(params_.num_options, 0);
  stage_counts_.assign(params_.num_options, 0);
  reset();
}

void finite_dynamics::set_agent_rules(std::vector<adoption_rule> rules) {
  if (rules.size() != choices_.size()) {
    throw std::invalid_argument{"finite_dynamics::set_agent_rules: size mismatch"};
  }
  for (const auto& rule : rules) {
    if (!(rule.alpha >= 0.0 && rule.alpha <= rule.beta && rule.beta <= 1.0)) {
      throw std::invalid_argument{
          "finite_dynamics::set_agent_rules: need 0 <= alpha <= beta <= 1"};
    }
  }
  rules_ = std::move(rules);
  // SoA u64 thresholds for the v3 kernels.  prob_to_u64's endpoint
  // conventions keep alpha = 0 / beta = 1 rules exact there too.
  alpha_thr_.resize(rules_.size());
  beta_thr_.resize(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    alpha_thr_[i] = prob_to_u64(rules_[i].alpha);
    beta_thr_[i] = prob_to_u64(rules_[i].beta);
  }
}

void finite_dynamics::set_kernel(kernel_kind kind) {
  if (kind == kernel_kind::simd && !kernel::vector_isa_available()) {
    throw std::invalid_argument{
        "finite_dynamics::set_kernel: kernel=simd but the runtime dispatcher "
        "resolved no vector ISA on this host (or SGL_KERNEL=scalar is set); "
        "use kernel=auto or kernel=scalar"};
  }
  kernel_ = kind;
}

bool finite_dynamics::use_vector_kernel() const noexcept {
  return kernel_ == kernel_kind::simd ||
         (kernel_ == kernel_kind::auto_select && kernel::vector_isa_available());
}

void finite_dynamics::set_topology(const graph::graph* topology) {
  if (topology != nullptr && topology->num_vertices() != choices_.size()) {
    throw std::invalid_argument{"finite_dynamics::set_topology: vertex count != agents"};
  }
  topology_ = topology;
  // The packed two-option view stores per-option counts in 16-bit halves,
  // so a vertex of degree >= 2^16 also takes the stateless rejection path.
  network_dense_ =
      topology != nullptr &&
      (topology->average_degree() > dense_degree_threshold ||
       (params_.num_options == 2 && topology->max_degree() > 0xFFFF));
  // Locality heuristic for the delta pass (one O(E) sweep, amortized over
  // the run): on scatter graphs — a quarter or more of the edges jumping
  // further than a bucket span — the serial delta walk regroups its
  // updates through vertex buckets so the read-modify-writes stay
  // cache-resident; local graphs (ring, torus, unrewired lattices) keep
  // the cheaper direct walk.  The packed item layout spends 4 bits on the
  // transition code, so huge graphs fall back to the direct walk too.
  scatter_topology_ = false;
  if (topology != nullptr && !network_dense_ && params_.num_options == 2 &&
      choices_.size() <= (std::size_t{1} << 28)) {
    const auto adjacency = topology->adjacency();
    const auto offsets = topology->offsets();
    std::size_t nonlocal = 0;
    for (std::size_t u = 0; u + 1 < offsets.size(); ++u) {
      for (std::size_t e = offsets[u]; e < offsets[u + 1]; ++e) {
        const auto d = u > adjacency[e] ? u - adjacency[e] : adjacency[e] - u;
        nonlocal += d >= (std::size_t{1} << delta_bucket_shift);
      }
    }
    scatter_topology_ = nonlocal * 4 >= adjacency.size();
  }
  if (!scatter_topology_) {
    delta_buckets_.clear();
    delta_buckets_.shrink_to_fit();
  }
  rebuild_neighbor_view();
}

void finite_dynamics::reset() {
  std::fill(choices_.begin(), choices_.end(), -1);
  std::fill(previous_choices_.begin(), previous_choices_.end(), -1);
  const double uniform = 1.0 / static_cast<double>(params_.num_options);
  std::fill(popularity_.begin(), popularity_.end(), uniform);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);
  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  adopters_ = 0;
  empty_steps_ = 0;
  steps_ = 0;
  rebuild_neighbor_view();
}

void finite_dynamics::rebuild_neighbor_view() {
  if (topology_ == nullptr || network_dense_) {
    neighbor_view_.clear();
    neighbor_view_.shrink_to_fit();
    return;
  }
  // Layout: for m == 2 one packed word per vertex (count of option 0 in
  // the low half, option 1 in the high half — so a delta is a single add);
  // otherwise m uint32 counts per vertex.
  const std::size_t m = params_.num_options;
  neighbor_view_.assign(m == 2 ? choices_.size() : choices_.size() * m, 0);
  for (std::size_t u = 0; u < choices_.size(); ++u) {
    const std::int32_t c = choices_[u];
    if (c < 0) continue;
    const std::size_t slot_stride = m == 2 ? 1 : m;
    const std::uint32_t bump = m == 2 ? (c == 0 ? 1U : 0x10000U) : 1U;
    const std::size_t offset = m == 2 ? 0 : static_cast<std::size_t>(c);
    for (const auto v : topology_->neighbors(static_cast<graph::graph::vertex>(u))) {
      neighbor_view_[static_cast<std::size_t>(v) * slot_stride + offset] += bump;
    }
  }
}

void finite_dynamics::step(std::span<const std::uint8_t> rewards, rng& gen) {
  if (rewards.size() != params_.num_options) {
    throw std::invalid_argument{"finite_dynamics::step: reward width mismatch"};
  }
  if (topology_ != nullptr) {
    step_network(rewards, gen);
  } else if (rules_.empty()) {
    step_batched(rewards, gen);
  } else {
    step_per_agent(rewards, gen);
  }
  finish_step();
}

void finite_dynamics::step_batched(std::span<const std::uint8_t> rewards, rng& gen) {
  // Homogeneous + fully mixed: conditioned on Q^t the agent-level randomness
  // factors exactly (Propositions 4.1/4.2) as
  //   S ~ Multinomial(N, (1−μ)Q + μ/m),  D_j ~ Binomial(S_j, β^{R_j} α^{1−R_j}).
  // The draws below mirror aggregate_dynamics::step word for word so the two
  // engines consume a shared stream identically.
  const std::size_t m = params_.num_options;
  const double mu = params_.mu;
  const double alpha = params_.resolved_alpha();
  const double beta = params_.beta;

  for (std::size_t j = 0; j < m; ++j) {
    stage_weights_[j] = (1.0 - mu) * popularity_[j] + mu / static_cast<double>(m);
  }
  sample_multinomial(gen, choices_.size(), stage_weights_, stage_counts_);

  adopters_ = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double adopt_p = rewards[j] != 0 ? beta : alpha;
    adopter_counts_[j] = sample_binomial(gen, stage_counts_[j], adopt_p);
    adopters_ += adopter_counts_[j];
  }

  // Materialize per-agent choices from the counts: agents are exchangeable
  // under the homogeneous rule, so a block assignment realizes the same law
  // for every count statistic (DESIGN.md §"Batched agent materialization").
  auto* cursor = choices_.data();
  for (std::size_t j = 0; j < m; ++j) {
    const auto committed = static_cast<std::size_t>(adopter_counts_[j]);
    const auto considered = static_cast<std::size_t>(stage_counts_[j]);
    std::fill_n(cursor, committed, static_cast<std::int32_t>(j));
    std::fill_n(cursor + committed, considered - committed, -1);
    cursor += considered;
  }
}

void finite_dynamics::step_per_agent(std::span<const std::uint8_t> rewards, rng& gen) {
  if (!rules_.empty() && params_.num_options <= 64 && use_vector_kernel()) {
    step_mixed_vec(rewards, gen);
    return;
  }
  const std::size_t m = params_.num_options;

  // Stage 1 sampler for the fully mixed case: popularity-proportional
  // (identical in law to "copy a uniformly random adopter").  Rebuilt in
  // place: allocation-free after the first step.
  if (m > 1) by_popularity_.rebuild(popularity_);

  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);

  const double mu = params_.mu;
  const adoption_rule homogeneous{params_.resolved_alpha(), params_.beta};

  for (std::size_t i = 0; i < choices_.size(); ++i) {
    // --- Stage 1: pick an option to consider. ---
    std::size_t considered;
    if (m == 1) {
      considered = 0;
    } else if (gen.next_bernoulli(mu)) {
      considered = static_cast<std::size_t>(gen.next_below(m));
    } else {
      considered = by_popularity_.sample(gen);
    }
    ++stage_counts_[considered];

    // --- Stage 2: adopt or sit out. ---
    const adoption_rule& rule = rules_.empty() ? homogeneous : rules_[i];
    const double adopt_p = rewards[considered] != 0 ? rule.beta : rule.alpha;
    if (gen.next_bernoulli(adopt_p)) {
      choices_[i] = static_cast<std::int32_t>(considered);
      ++adopter_counts_[considered];
    } else {
      choices_[i] = -1;
    }
  }

  adopters_ = 0;
  for (const std::uint64_t d : adopter_counts_) adopters_ += d;
}

void finite_dynamics::step_mixed_vec(std::span<const std::uint8_t> rewards, rng& gen) {
  const std::size_t m = params_.num_options;
  const std::size_t n = choices_.size();

  // Stage-1 copy branch as a CDF ladder over the previous popularity
  // (uniform after empty steps, so popularity_ is always the right
  // distribution — same source as by_popularity_ on the scalar path).
  pop_cdf_.resize(m - 1);
  double cum = 0.0;
  for (std::size_t j = 0; j + 1 < m; ++j) {
    cum += popularity_[j];
    pop_cdf_[j] = prob_to_u64(cum);
  }
  std::uint64_t reward_bits = 0;
  for (std::size_t j = 0; j < m; ++j) {
    reward_bits |= static_cast<std::uint64_t>(rewards[j] != 0) << j;
  }
  considered_scratch_.resize(n);

  kernel::mixed_args args{};
  args.step_seed = gen.next_u64();
  args.n = n;
  args.m = m;
  args.t_mu = prob_to_u64(params_.mu);
  args.pop_cdf = pop_cdf_.data();
  args.reward_bits = reward_bits;
  args.alpha_thr = alpha_thr_.data();
  args.beta_thr = beta_thr_.data();
  args.choices = choices_.data();
  args.considered = considered_scratch_.data();
  kernel::mixed_step()(args);

  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = considered_scratch_[i];
    ++stage_counts_[j];
    adopter_counts_[j] += choices_[i] >= 0;
  }
  adopters_ = 0;
  for (const std::uint64_t d : adopter_counts_) adopters_ += d;
}

void finite_dynamics::step_network(std::span<const std::uint8_t> rewards, rng& gen) {
  const std::size_t m = params_.num_options;
  const std::size_t n = choices_.size();

  // Double buffer: last step's choices become readable through
  // previous_choices_ with a swap, not an O(N) copy; every slot of
  // choices_ is overwritten below.  The committed-neighbour view is
  // consistent with the swapped-in previous choices (maintained by delta
  // at the end of every network step, rebuilt on reset/set_topology).
  previous_choices_.swap(choices_);

  // Stream derivation v2 (DESIGN.md): one word of the caller's stream
  // seeds the step; shard s then draws from its own derived stream.  The
  // decomposition depends only on N, never on the thread count, so the
  // trajectory is bit-identical for any parallelism.
  const std::uint64_t step_seed = gen.next_u64();
  const std::size_t shards = (n + shard_size - 1) / shard_size;
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      threads_ == 0 ? default_thread_count() : threads_, shards));

  shard_counts_.assign(shards * 2 * m, 0);
  if (!network_dense_) {
    if (m > 0xFFFE) {
      throw std::invalid_argument{
          "finite_dynamics: network mode supports at most 65534 options"};
    }
    if (n > 0xFFFFFFFFULL) {
      // The changed-list entries carry the agent index in 32 bits (and
      // graph vertices are 32-bit anyway).
      throw std::invalid_argument{
          "finite_dynamics: network mode supports at most 2^32 agents"};
    }
    changed_.resize(n);
    changed_len_.assign(shards, 0);
    // Fused stage-2 thresholds (stream derivation v2): the explore word u
    // is reused for the adoption test.  Conditional on {u < mu} the
    // rescaled variable u/mu (resp. (u-mu)/(1-mu)) is uniform and
    // independent of the stage-1 option draw, so "adopt with probability
    // p" becomes u < mu*p (explore) or u < mu + (1-mu)*p (copy) — one
    // generator word fewer per agent, same law.
    adopt_below_explore_.resize(m);
    adopt_below_copy_.resize(m);
    if (rules_.empty()) {
      const double alpha = params_.resolved_alpha();
      const double mu = params_.mu;
      for (std::size_t j = 0; j < m; ++j) {
        const double p = rewards[j] != 0 ? params_.beta : alpha;
        adopt_below_explore_[j] = mu * p;
        adopt_below_copy_[j] = mu + (1.0 - mu) * p;
      }
    }
  }

  const double mu = params_.mu;
  const adoption_rule homogeneous{params_.resolved_alpha(), params_.beta};

  if (!network_dense_ && m == 2 && use_vector_kernel()) {
    // Stream derivation v3: the vectorized kernel over the packed
    // two-option view.  The per-agent draws are counter-addressed from
    // step_seed alone, so the shard decomposition below is pure work
    // splitting — unlike v2 it does not even shape the streams.
    kernel::net2_args base{};
    base.step_seed = step_seed;
    base.rows = neighbor_view_.data();
    base.previous = previous_choices_.data();
    base.choices = choices_.data();
    base.t_mu = prob_to_u64(mu);
    if (rules_.empty()) {
      const double alpha = params_.resolved_alpha();
      for (std::size_t j = 0; j < 2; ++j) {
        const double p = rewards[j] != 0 ? params_.beta : alpha;
        base.thr_explore[j] = prob_to_u64(mu * p);
        base.thr_copy[j] = prob_to_u64(mu + (1.0 - mu) * p);
      }
    } else {
      // Reward-selected per-agent thresholds: one SoA array per option.
      base.p_reward0 = rewards[0] != 0 ? beta_thr_.data() : alpha_thr_.data();
      base.p_reward1 = rewards[1] != 0 ? beta_thr_.data() : alpha_thr_.data();
    }
    const kernel::net2_fn fn = kernel::net2_step();
    parallel_for(
        0, shards,
        [&](std::size_t s) {
          kernel::net2_args args = base;
          args.lo = s * shard_size;
          args.hi = std::min(n, args.lo + shard_size);
          args.changed = changed_.data() + args.lo;
          args.changed_len = &changed_len_[s];
          args.stage = &shard_counts_[s * 2 * m];
          args.adopt = args.stage + m;
          fn(args);
        },
        threads);
  } else if (!network_dense_) {
    // Sparse mode: exact draw from the incremental committed-neighbour
    // view.  The loop has a fixed shape — every agent consumes one word
    // for the fused explore/adopt test plus one bounded draw
    // (next_below_mul resamples only with probability < bound/2^64) — and
    // stage 2 is select-based, so the hot path is nearly branch-free.
    // Changed agents are recorded per shard for the delta pass below.
    parallel_for(
        0, shards,
        [&](std::size_t s) {
          rng shard_gen = rng::from_stream(step_seed, s);
          std::uint64_t* stage = &shard_counts_[s * 2 * m];
          std::uint64_t* adopt = stage + m;
          const std::size_t lo = s * shard_size;
          const std::size_t hi = std::min(n, lo + shard_size);
          std::uint64_t* changed = changed_.data() + lo;
          std::size_t changed_len = 0;
          const std::size_t row_stride = m == 2 ? 1 : m;
          const std::uint32_t* row = &neighbor_view_[lo * row_stride];
          const bool heterogeneous = !rules_.empty();
          for (std::size_t i = lo; i < hi; ++i, row += row_stride) {
            // --- Stage 1: explore, or copy a uniform committed neighbour
            // (uniform option when there is none). ---
            const double u = shard_gen.next_double();
            const bool explore = u < mu;
            std::uint64_t total;
            std::size_t considered;
            if (m == 2) {  // the canonical two-option case: packed word
              const std::uint32_t packed = row[0];
              const std::uint32_t c0 = packed & 0xFFFFU;
              total = c0 + (packed >> 16);
              const bool by_view = !explore && total != 0;
              const std::uint64_t r = shard_gen.next_below_mul(by_view ? total : 2);
              considered = by_view ? (r >= c0) : r;
            } else {
              total = 0;
              for (std::size_t j = 0; j < m; ++j) total += row[j];
              const bool by_view = !explore && total != 0;
              std::uint64_t r = shard_gen.next_below_mul(by_view ? total : m);
              if (by_view) {
                considered = 0;
                while (r >= row[considered]) r -= row[considered++];
              } else {
                considered = static_cast<std::size_t>(r);
              }
            }
            ++stage[considered];

            // --- Stage 2: adopt or sit out, reusing the explore word
            // (selects, not branches; see the threshold comment above). ---
            double threshold;
            if (heterogeneous) {
              const double p = rewards[considered] != 0 ? rules_[i].beta
                                                        : rules_[i].alpha;
              threshold = explore ? mu * p : mu + (1.0 - mu) * p;
            } else {
              threshold = explore ? adopt_below_explore_[considered]
                                  : adopt_below_copy_[considered];
            }
            const bool adopted = u < threshold;
            const std::int32_t now =
                adopted ? static_cast<std::int32_t>(considered) : -1;
            const std::int32_t was = previous_choices_[i];
            choices_[i] = now;
            adopt[considered] += adopted;
            // Entry layout: agent index | was+1 << 32 | now+1 << 48 (16 bits
            // each, -1 mapping to 0) so the delta pass never re-reads the
            // choice buffers.
            changed[changed_len] =
                static_cast<std::uint64_t>(i) |
                (static_cast<std::uint64_t>(static_cast<std::uint16_t>(was + 1))
                 << 32) |
                (static_cast<std::uint64_t>(static_cast<std::uint16_t>(now + 1))
                 << 48);
            changed_len += now != was;
          }
          changed_len_[s] = static_cast<std::uint32_t>(changed_len);
        },
        threads);
  } else {
    // Dense mode (average degree above the threshold): rejection over
    // uniform neighbour draws — expected O(1/committed-fraction) attempts —
    // with an exact neighbourhood scan once the attempt budget is spent,
    // so the law is still exactly "uniform committed neighbour" with a
    // uniform-option fallback only when there is none.
    parallel_for(
        0, shards,
        [&](std::size_t s) {
          rng shard_gen = rng::from_stream(step_seed, s);
          std::uint64_t* stage = &shard_counts_[s * 2 * m];
          std::uint64_t* adopt = stage + m;
          const std::size_t lo = s * shard_size;
          const std::size_t hi = std::min(n, lo + shard_size);
          for (std::size_t i = lo; i < hi; ++i) {
            std::size_t considered;
            if (m == 1) {
              considered = 0;
            } else if (shard_gen.next_bernoulli(mu)) {
              considered = static_cast<std::size_t>(shard_gen.next_below_mul(m));
            } else {
              const std::int32_t copied = sample_committed_neighbor(i, shard_gen);
              considered = copied >= 0
                               ? static_cast<std::size_t>(copied)
                               : static_cast<std::size_t>(shard_gen.next_below_mul(m));
            }
            ++stage[considered];

            const adoption_rule& rule = rules_.empty() ? homogeneous : rules_[i];
            const double adopt_p = rewards[considered] != 0 ? rule.beta : rule.alpha;
            if (shard_gen.next_bernoulli(adopt_p)) {
              choices_[i] = static_cast<std::int32_t>(considered);
              ++adopt[considered];
            } else {
              choices_[i] = -1;
            }
          }
        },
        threads);
  }

  // Merge the shard tallies in shard order.
  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t j = 0; j < m; ++j) {
      stage_counts_[j] += shard_counts_[s * 2 * m + j];
      adopter_counts_[j] += shard_counts_[s * 2 * m + m + j];
    }
  }
  adopters_ = 0;
  for (const std::uint64_t d : adopter_counts_) adopters_ += d;

  // Sparse mode: delta-update the view — only the recorded changed agents
  // touch their neighbours' rows.  Increments commute, so every variant
  // below produces exactly the same counts: the serial direct walk, the
  // serial bucketed walk (regrouping updates by view region so the
  // read-modify-writes hit cache instead of paying a miss each), and the
  // concurrent walk (relaxed atomics).
  if (!network_dense_) {
    if (threads <= 1 && scatter_topology_ && m == 2) {
      // Bucketed serial walk.  Emit: every (changed agent, neighbour)
      // pair becomes one u32 item v << 4 | (was+1) << 2 | (now+1) in
      // bucket v >> delta_bucket_shift (the emit stream reads the CSR
      // arrays forward and appends to ~N/2^14 cache-resident bucket
      // tails).  Apply: draining one bucket touches only its 64 KiB view
      // span, so the scattered read-modify-writes hit cache instead of
      // paying a DRAM round-trip each.  Same adds as the direct walk, in
      // a different commutative order — counts are bit-identical.
      const std::size_t buckets = (n >> delta_bucket_shift) + 1;
      delta_buckets_.resize(buckets);
      const auto adjacency = topology_->adjacency();
      const auto offsets = topology_->offsets();
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t lo = s * shard_size;
        for (std::size_t k = 0; k < changed_len_[s]; ++k) {
          const std::uint64_t entry = changed_[lo + k];
          const auto i = static_cast<std::uint32_t>(entry);
          const std::uint32_t code = static_cast<std::uint32_t>(
              ((entry >> 30) & 0xCU) | ((entry >> 48) & 0x3U));
          for (std::size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
            const std::uint32_t v = adjacency[e];
            delta_buckets_[v >> delta_bucket_shift].push_back(v << 4 | code);
          }
        }
      }
      // encoded[was+1][now+1] as a flat 4-bit-indexed table; unsigned
      // wrap-around makes each entry the exact packed-word subtract.
      static constexpr std::uint32_t encoded[3] = {0U, 1U, 0x10000U};
      std::uint32_t delta_of[16] = {};
      for (std::uint32_t was = 0; was < 3; ++was) {
        for (std::uint32_t now = 0; now < 3; ++now) {
          delta_of[was << 2 | now] = encoded[now] - encoded[was];
        }
      }
      for (auto& bucket : delta_buckets_) {
        for (const std::uint32_t item : bucket) {
          neighbor_view_[item >> 4] += delta_of[item & 0xFU];
        }
        bucket.clear();
      }
    } else if (threads <= 1) {
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t lo = s * shard_size;
        for (std::size_t k = 0; k < changed_len_[s]; ++k) {
          apply_view_delta<false>(changed_[lo + k]);
        }
      }
    } else {
      parallel_for(
          0, shards,
          [&](std::size_t s) {
            const std::size_t lo = s * shard_size;
            for (std::size_t k = 0; k < changed_len_[s]; ++k) {
              apply_view_delta<true>(changed_[lo + k]);
            }
          },
          threads);
    }
  }
}

/// The choice of a uniform committed neighbour of i under the dense-mode
/// sampler, or -1 when i has none (isolated vertex / fully sat-out
/// neighbourhood).
std::int32_t finite_dynamics::sample_committed_neighbor(std::size_t i,
                                                        rng& shard_gen) const {
  const auto nbrs = topology_->neighbors(static_cast<graph::graph::vertex>(i));
  if (nbrs.empty()) return -1;
  for (int attempt = 0; attempt < rejection_cap; ++attempt) {
    const std::int32_t seen =
        previous_choices_[nbrs[shard_gen.next_below_mul(nbrs.size())]];
    if (seen >= 0) return seen;
  }
  std::uint64_t committed = 0;
  for (const auto v : nbrs) committed += previous_choices_[v] >= 0;
  if (committed == 0) return -1;
  std::uint64_t k = shard_gen.next_below_mul(committed);
  for (const auto v : nbrs) {
    if (previous_choices_[v] < 0) continue;
    if (k == 0) return previous_choices_[v];
    --k;
  }
  return -1;  // unreachable: k < committed
}

/// Propagates a changed agent's choice delta (one packed changed-list
/// entry) into its neighbours' view rows.  The was/now tests are hoisted
/// out of the neighbour walk, which is the hottest loop of the sparse
/// network step.
template <bool Atomic>
void finite_dynamics::apply_view_delta(std::uint64_t entry) {
  const auto i = static_cast<std::uint32_t>(entry);
  const std::int32_t was = static_cast<std::int32_t>((entry >> 32) & 0xFFFF) - 1;
  const std::int32_t now = static_cast<std::int32_t>(entry >> 48) - 1;
  const std::size_t m = params_.num_options;
  const auto nbrs = topology_->neighbors(static_cast<graph::graph::vertex>(i));
  const auto bump = [](std::uint32_t& slot, std::uint32_t delta) {
    if constexpr (Atomic) {
      std::atomic_ref<std::uint32_t>{slot}.fetch_add(delta,
                                                     std::memory_order_relaxed);
    } else {
      slot += delta;
    }
  };
  if (m == 2) {
    // Packed word per vertex: both option counts move in one add.  The
    // 16-bit halves cannot carry into each other — each stays within
    // [0, degree] and the packed mode requires degree < 2^16.
    static constexpr std::uint32_t encoded[3] = {0U, 1U, 0x10000U};
    const std::uint32_t delta =
        encoded[now + 1] - encoded[was + 1];  // unsigned wrap = subtract
    for (const auto v : nbrs) bump(neighbor_view_[v], delta);
    return;
  }
  if (was < 0) {
    const auto j = static_cast<std::size_t>(now);
    for (const auto v : nbrs) bump(neighbor_view_[v * m + j], 1);
  } else if (now < 0) {
    const auto j = static_cast<std::size_t>(was);
    for (const auto v : nbrs) bump(neighbor_view_[v * m + j],
                                   static_cast<std::uint32_t>(-1));
  } else {
    const auto from = static_cast<std::size_t>(was);
    const auto to = static_cast<std::size_t>(now);
    for (const auto v : nbrs) {
      std::uint32_t* vrow = &neighbor_view_[v * m];
      bump(vrow[from], static_cast<std::uint32_t>(-1));
      bump(vrow[to], 1);
    }
  }
}

void finite_dynamics::finish_step() {
  const std::size_t m = params_.num_options;
  if (adopters_ == 0) {
    const double uniform = 1.0 / static_cast<double>(m);
    std::fill(popularity_.begin(), popularity_.end(), uniform);
    ++empty_steps_;
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      popularity_[j] = static_cast<double>(adopter_counts_[j]) /
                       static_cast<double>(adopters_);
    }
  }
  ++steps_;
}

}  // namespace sgl::core
