#include "core/mean_field.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgl::core {

mean_field_map::mean_field_map(const dynamics_params& params, std::vector<double> etas)
    : params_{params}, etas_{std::move(etas)} {
  params_.validate();
  if (etas_.size() != params_.num_options) {
    throw std::invalid_argument{"mean_field_map: eta size mismatch"};
  }
  const double alpha = params_.resolved_alpha();
  gains_.resize(etas_.size());
  double peak = 0.0;
  for (std::size_t j = 0; j < etas_.size(); ++j) {
    if (!(etas_[j] >= 0.0 && etas_[j] <= 1.0)) {
      throw std::invalid_argument{"mean_field_map: eta outside [0,1]"};
    }
    gains_[j] = params_.beta * etas_[j] + alpha * (1.0 - etas_[j]);
    peak = std::max(peak, gains_[j]);
  }
  if (peak <= 0.0) throw std::invalid_argument{"mean_field_map: all gains zero"};
  reset();
}

void mean_field_map::reset() {
  state_.assign(etas_.size(), 1.0 / static_cast<double>(etas_.size()));
  steps_ = 0;
}

void mean_field_map::reset(std::span<const double> start) {
  if (start.size() != etas_.size()) {
    throw std::invalid_argument{"mean_field_map: start size mismatch"};
  }
  double total = 0.0;
  for (const double x : start) {
    if (!(x >= 0.0)) throw std::invalid_argument{"mean_field_map: negative mass"};
    total += x;
  }
  if (total <= 0.0) throw std::invalid_argument{"mean_field_map: zero mass"};
  state_.resize(etas_.size());
  for (std::size_t j = 0; j < state_.size(); ++j) state_[j] = start[j] / total;
  steps_ = 0;
}

void mean_field_map::step() {
  const double m = static_cast<double>(state_.size());
  const double mu = params_.mu;
  double z = 0.0;
  for (std::size_t j = 0; j < state_.size(); ++j) {
    state_[j] = ((1.0 - mu) * state_[j] + mu / m) * gains_[j];
    z += state_[j];
  }
  for (double& x : state_) x /= z;
  ++steps_;
}

std::uint64_t mean_field_map::solve_fixed_point(double tolerance,
                                                std::uint64_t max_iterations) {
  std::vector<double> previous(state_.size());
  for (std::uint64_t it = 1; it <= max_iterations; ++it) {
    previous = state_;
    step();
    double change = 0.0;
    for (std::size_t j = 0; j < state_.size(); ++j) {
      change += std::abs(state_[j] - previous[j]);
    }
    if (change < tolerance) return it;
  }
  throw std::runtime_error{"mean_field_map::solve_fixed_point: did not converge"};
}

double mean_field_map::expected_reward() const noexcept {
  double total = 0.0;
  for (std::size_t j = 0; j < state_.size(); ++j) total += state_[j] * etas_[j];
  return total;
}

double mean_field_map::steady_state_regret() const {
  mean_field_map copy{params_, etas_};
  copy.solve_fixed_point();
  const double best = *std::max_element(etas_.begin(), etas_.end());
  return best - copy.expected_reward();
}

}  // namespace sgl::core
