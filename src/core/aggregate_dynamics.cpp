#include "core/aggregate_dynamics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::core {

aggregate_dynamics::aggregate_dynamics(const dynamics_params& params,
                                       std::uint64_t num_agents)
    : params_{params}, num_agents_{num_agents} {
  params_.validate();
  if (num_agents_ == 0) throw std::invalid_argument{"aggregate_dynamics: no agents"};
  popularity_.assign(params_.num_options, 0.0);
  stage_weights_.assign(params_.num_options, 0.0);
  stage_counts_.assign(params_.num_options, 0);
  adopter_counts_.assign(params_.num_options, 0);
  reset();
}

void aggregate_dynamics::reset() {
  const double uniform = 1.0 / static_cast<double>(params_.num_options);
  std::fill(popularity_.begin(), popularity_.end(), uniform);
  std::fill(stage_counts_.begin(), stage_counts_.end(), 0);
  std::fill(adopter_counts_.begin(), adopter_counts_.end(), 0);
  adopters_ = 0;
  empty_steps_ = 0;
  steps_ = 0;
}

void aggregate_dynamics::reset(std::span<const std::uint64_t> adopter_counts) {
  if (adopter_counts.size() != params_.num_options) {
    throw std::invalid_argument{"aggregate_dynamics::reset: size mismatch"};
  }
  const std::uint64_t total = std::accumulate(adopter_counts.begin(), adopter_counts.end(),
                                              std::uint64_t{0});
  if (total > num_agents_) {
    throw std::invalid_argument{"aggregate_dynamics::reset: more adopters than agents"};
  }
  reset();
  custom_start_ = true;
  std::copy(adopter_counts.begin(), adopter_counts.end(), adopter_counts_.begin());
  adopters_ = total;
  if (total > 0) {
    for (std::size_t j = 0; j < popularity_.size(); ++j) {
      popularity_[j] = static_cast<double>(adopter_counts_[j]) / static_cast<double>(total);
    }
  }
}

void aggregate_dynamics::step(std::span<const std::uint8_t> rewards, rng& gen) {
  const std::size_t m = params_.num_options;
  if (rewards.size() != m) {
    throw std::invalid_argument{"aggregate_dynamics::step: reward width mismatch"};
  }
  const double mu = params_.mu;
  const double alpha = params_.resolved_alpha();
  const double beta = params_.beta;

  // Stage 1: S ~ Multinomial(N, (1−μ)Q + μ/m).
  for (std::size_t j = 0; j < m; ++j) {
    stage_weights_[j] = (1.0 - mu) * popularity_[j] + mu / static_cast<double>(m);
  }
  sample_multinomial(gen, num_agents_, stage_weights_, stage_counts_);

  // Stage 2: D_j ~ Binomial(S_j, β^{R_j} α^{1−R_j}).
  adopters_ = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double adopt_p = rewards[j] != 0 ? beta : alpha;
    adopter_counts_[j] = sample_binomial(gen, stage_counts_[j], adopt_p);
    adopters_ += adopter_counts_[j];
  }

  if (adopters_ == 0) {
    const double uniform = 1.0 / static_cast<double>(m);
    std::fill(popularity_.begin(), popularity_.end(), uniform);
    ++empty_steps_;
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      popularity_[j] = static_cast<double>(adopter_counts_[j]) /
                       static_cast<double>(adopters_);
    }
  }
  ++steps_;
}

}  // namespace sgl::core
