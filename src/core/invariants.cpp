#include "core/invariants.h"

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

namespace sgl::core {
namespace {

std::string describe(const char* what, std::size_t index, double value) {
  return std::string{what} + " at option " + std::to_string(index) + " (value " +
         std::to_string(value) + ")";
}

}  // namespace

std::string state_invariant_error(const dynamics_engine& engine,
                                  double popularity_tolerance) {
  const std::span<const double> q = engine.popularity();
  if (q.empty()) return "popularity() is empty";
  double total_mass = 0.0;
  for (std::size_t j = 0; j < q.size(); ++j) {
    if (!std::isfinite(q[j])) return describe("non-finite popularity", j, q[j]);
    if (q[j] < 0.0) return describe("negative popularity", j, q[j]);
    if (q[j] > 1.0) return describe("popularity above 1", j, q[j]);
    total_mass += q[j];
  }
  if (std::abs(total_mass - 1.0) > popularity_tolerance) {
    return "popularity sums to " + std::to_string(total_mass) + ", not 1";
  }

  const std::span<const std::uint64_t> counts = engine.adopter_counts();
  if (!counts.empty()) {
    if (counts.size() != q.size()) {
      return "adopter_counts() has " + std::to_string(counts.size()) +
             " entries but num_options() = " + std::to_string(q.size());
    }
    std::uint64_t committed = 0;
    for (const std::uint64_t c : counts) committed += c;
    for (std::size_t j = 0; j < counts.size(); ++j) {
      const double expected = committed == 0
                                  ? 1.0 / static_cast<double>(q.size())
                                  : static_cast<double>(counts[j]) /
                                        static_cast<double>(committed);
      if (std::abs(q[j] - expected) > popularity_tolerance) {
        return "popularity[" + std::to_string(j) + "] = " + std::to_string(q[j]) +
               " does not match adopter_counts (" + std::to_string(counts[j]) + " of " +
               std::to_string(committed) + " committed)";
      }
    }
  }

  if (engine.empty_steps() > engine.steps()) {
    return "empty_steps() = " + std::to_string(engine.empty_steps()) +
           " exceeds steps() = " + std::to_string(engine.steps());
  }
  return {};
}

}  // namespace sgl::core
