#pragma once

/// \file mean_field.h
/// The fully deterministic limit of the dynamics (§3): "The MWU algorithm
/// ... can also be seen as a special case of our distributed learning
/// dynamics if we remove the randomness from both the sampling and adopting
/// steps and the rewards."
///
/// Replacing the stochastic signal R^t_j by its mean η_j turns eq. (1) into
/// the deterministic map
///
///   x_j ← ((1−μ)x_j + μ/m) · g_j / Z,     g_j = β·η_j + α·(1−η_j),
///
/// a mixed multiplicative-weights / Perron iteration whose fixed point is
/// the steady-state population split the stochastic dynamics fluctuates
/// around.  We provide the map, its fixed point (by iteration — the map is
/// a contraction for μ > 0), and the induced steady-state regret, which
/// benches use as the "theory prediction" column next to simulations.

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.h"

namespace sgl::core {

class mean_field_map {
 public:
  /// Throws std::invalid_argument on invalid params, eta size mismatch,
  /// etas outside [0,1], or an all-zero gain vector.
  mean_field_map(const dynamics_params& params, std::vector<double> etas);

  /// One application of the map to the internal state.
  void step();

  /// Current state x^t (a distribution; starts uniform).
  [[nodiscard]] std::span<const double> state() const noexcept { return state_; }

  /// Restarts from the uniform state.
  void reset();

  /// Restart from an arbitrary distribution.
  void reset(std::span<const double> start);

  /// Iterates to the fixed point (L1 change < tolerance); returns the
  /// number of iterations used.  Throws std::runtime_error if it fails to
  /// converge within max_iterations (cannot happen for μ > 0).
  std::uint64_t solve_fixed_point(double tolerance = 1e-13,
                                  std::uint64_t max_iterations = 1000000);

  /// The per-step multiplicative gain g_j = β η_j + α (1−η_j).
  [[nodiscard]] double gain(std::size_t option) const { return gains_.at(option); }

  /// Expected per-step group reward at the current state: Σ_j x_j η_j.
  [[nodiscard]] double expected_reward() const noexcept;

  /// Steady-state regret prediction: η_max − expected_reward() at the
  /// fixed point of a fresh copy (does not disturb this object).
  [[nodiscard]] double steady_state_regret() const;

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

 private:
  dynamics_params params_;
  std::vector<double> etas_;
  std::vector<double> gains_;
  std::vector<double> state_;
  std::uint64_t steps_ = 0;
};

}  // namespace sgl::core
