#include "core/grouped_dynamics.h"

#include <algorithm>
#include <stdexcept>

#include "support/distributions.h"

namespace sgl::core {

grouped_dynamics::grouped_dynamics(const dynamics_params& params,
                                   std::vector<rule_group> groups)
    : params_{params}, groups_{std::move(groups)} {
  params_.validate();
  if (groups_.empty()) throw std::invalid_argument{"grouped_dynamics: no groups"};
  for (const auto& group : groups_) {
    if (group.size == 0) throw std::invalid_argument{"grouped_dynamics: empty group"};
    if (!(group.rule.alpha >= 0.0 && group.rule.alpha <= group.rule.beta &&
          group.rule.beta <= 1.0)) {
      throw std::invalid_argument{"grouped_dynamics: need 0 <= alpha <= beta <= 1"};
    }
    num_agents_ += group.size;
  }
  popularity_.assign(params_.num_options, 0.0);
  stage_weights_.assign(params_.num_options, 0.0);
  stage_scratch_.assign(params_.num_options, 0);
  adopters_by_group_.assign(groups_.size(),
                            std::vector<std::uint64_t>(params_.num_options, 0));
  total_adopters_.assign(params_.num_options, 0);
  reset();
}

void grouped_dynamics::reset() {
  const double uniform = 1.0 / static_cast<double>(params_.num_options);
  std::fill(popularity_.begin(), popularity_.end(), uniform);
  for (auto& row : adopters_by_group_) std::fill(row.begin(), row.end(), 0);
  std::fill(total_adopters_.begin(), total_adopters_.end(), 0);
  committed_ = 0;
  empty_steps_ = 0;
  steps_ = 0;
}

std::span<const std::uint64_t> grouped_dynamics::group_adopters(std::size_t group) const {
  if (group >= groups_.size()) {
    throw std::out_of_range{"grouped_dynamics::group_adopters: bad group"};
  }
  return adopters_by_group_[group];
}

void grouped_dynamics::step(std::span<const std::uint8_t> rewards, rng& gen) {
  const std::size_t m = params_.num_options;
  if (rewards.size() != m) {
    throw std::invalid_argument{"grouped_dynamics::step: reward width mismatch"};
  }
  const double mu = params_.mu;
  for (std::size_t j = 0; j < m; ++j) {
    stage_weights_[j] = (1.0 - mu) * popularity_[j] + mu / static_cast<double>(m);
  }

  committed_ = 0;
  std::fill(total_adopters_.begin(), total_adopters_.end(), 0);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    // Stage 1 restricted to this group's members (they sample the *global*
    // popularity — heterogeneity only affects adoption).
    sample_multinomial(gen, groups_[g].size, stage_weights_, stage_scratch_);
    // Stage 2 with the group's rule.
    for (std::size_t j = 0; j < m; ++j) {
      const double adopt_p =
          rewards[j] != 0 ? groups_[g].rule.beta : groups_[g].rule.alpha;
      const std::uint64_t committed = sample_binomial(gen, stage_scratch_[j], adopt_p);
      adopters_by_group_[g][j] = committed;
      total_adopters_[j] += committed;
      committed_ += committed;
    }
  }

  if (committed_ == 0) {
    const double uniform = 1.0 / static_cast<double>(m);
    std::fill(popularity_.begin(), popularity_.end(), uniform);
    ++empty_steps_;
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      popularity_[j] = static_cast<double>(total_adopters_[j]) /
                       static_cast<double>(committed_);
    }
  }
  ++steps_;
}

}  // namespace sgl::core
