#pragma once

/// \file net_metrics.h
/// The narrow bridge between the probe layer and network-backed engines.
///
/// Protocol-grade measurements — message and byte cost, commit latency,
/// adoption under churn — only make sense for engines that run over a
/// simulated network (protocol/protocol_engine.h).  Instead of making the
/// core probe layer depend on the protocol layer, an engine that can
/// account for its network opts in by implementing net_instrumented; the
/// message_cost / commit_latency / adoption probes (core/probe.h) discover
/// the capability with a dynamic_cast and report nothing for engines
/// without it.

#include <cstdint>
#include <vector>

namespace sgl::core {

/// A cumulative snapshot of a replication's network activity, taken after
/// any step.  Counters restart from zero at every engine reset() (a fresh
/// replication), so end-of-replication snapshots cover exactly one
/// replication.
struct net_metrics {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  ///< lost in transit or dst down
  std::uint64_t timers_fired = 0;
  std::uint64_t bytes_sent = 0;

  std::uint64_t nodes = 0;      ///< population size N
  std::uint64_t alive = 0;      ///< nodes not crashed after the last step
  std::uint64_t committed = 0;  ///< alive nodes holding a choice

  /// Sum over commit events of the rounds the node spent uncommitted
  /// before that commit, and the number of such events.  Their ratio is
  /// the mean commit latency in rounds.
  double commit_latency_rounds = 0.0;
  std::uint64_t commit_events = 0;
};

/// Implemented by engines that can report net_metrics (the gossip protocol
/// engine).  Purely observational: calling it must not change engine state
/// or consume randomness.
class net_instrumented {
 public:
  virtual ~net_instrumented() = default;
  [[nodiscard]] virtual net_metrics sample_net() const = 0;
};

/// A per-side view of the population under (or after) a network partition,
/// taken after any step.  `has_sides` stays true after the cut heals — the
/// side assignment of the most recent partition persists so post-heal
/// re-convergence across the former cut is measurable.
struct partition_sample {
  bool partitioned = false;  ///< a cut is active right now
  bool has_sides = false;    ///< a side assignment exists (current or former)
  std::vector<double> side_a_popularity;  ///< empirical dist. among side-A adopters
  std::vector<double> side_b_popularity;  ///< likewise for the complement
  std::uint64_t side_a_committed = 0;     ///< alive committed nodes on side A
  std::uint64_t side_b_committed = 0;
};

/// Implemented by engines that can report per-partition-side state (the
/// gossip protocol engine under a fault schedule).  Discovered by the
/// partition_divergence probe via dynamic_cast, like net_instrumented.
/// Purely observational.
class partition_instrumented {
 public:
  virtual ~partition_instrumented() = default;
  [[nodiscard]] virtual partition_sample sample_partition() const = 0;
};

}  // namespace sgl::core
