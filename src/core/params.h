#pragma once

/// \file params.h
/// The model parameters of the distributed learning dynamics (§2.1):
/// m options, exploration weight μ, and the adoption probabilities
/// (α on a bad signal, β on a good one).  The paper's exposition fixes
/// α = 1 − β; we keep α explicit so heterogeneous and ablation settings
/// (pure copying β = α = 1, deterministic adoption α = 0) stay in-model.

#include <cstddef>

namespace sgl::core {

struct dynamics_params {
  /// Number of options m (>= 1).
  std::size_t num_options = 2;

  /// Exploration weight μ ∈ [0,1]: the probability an individual samples an
  /// option uniformly at random instead of copying.  The theorems require
  /// μ > 0 (and 6μ ≤ δ²); the simulators accept the full range.
  double mu = 0.05;

  /// Adoption probability on a good signal, β ∈ [0,1].  The theorems
  /// require ½ < β ≤ e/(e+1).
  double beta = 0.6;

  /// Adoption probability on a bad signal, α ∈ [0, β].  A negative value
  /// (the default) means "use the paper's convention α = 1 − β".
  double alpha = -1.0;

  /// α after resolving the 1 − β convention.
  [[nodiscard]] double resolved_alpha() const noexcept {
    return alpha < 0.0 ? 1.0 - beta : alpha;
  }

  /// δ = ln(β / (1 − β)), the paper's single knob: regret bounds are 3δ
  /// (infinite population) and 6δ (finite).  Requires 0 < β < 1.
  [[nodiscard]] double delta() const;

  /// True iff the parameters satisfy every hypothesis of Theorems 4.3/4.4:
  /// ½ < β ≤ e/(e+1), α = 1 − β, 6μ ≤ δ², μ > 0.
  [[nodiscard]] bool satisfies_theorem_conditions() const noexcept;

  /// Throws std::invalid_argument on structurally invalid parameters
  /// (m = 0, μ ∉ [0,1], or not 0 ≤ α ≤ β ≤ 1).
  void validate() const;
};

/// Convenience: parameters that satisfy the theorem hypotheses for a given
/// β (sets μ = δ²/6, α = 1 − β).
[[nodiscard]] dynamics_params theorem_params(std::size_t num_options, double beta);

}  // namespace sgl::core
