#pragma once

/// \file infinite_dynamics.h
/// The infinite-population distributed learning dynamics — equivalently the
/// stochastic multiplicative-weights process of §4.2, eq. (1):
///
///   W^{t+1}_j = ((1−μ) W^t_j + (μ/m) Σ_k W^t_k) · β^{R^{t+1}_j} α^{1−R^{t+1}_j},
///
/// with P^t_j = W^t_j / Σ_k W^t_k the fraction of the (infinite) population
/// on option j.  We evolve the *normalized* vector P directly — the update
/// for P is scale-free — and carry ln Φ^t (Φ^t = Σ_j W^t_j with W⁰_j = 1)
/// separately, since the potential is what the proof of Theorem 4.3 tracks.
/// This representation cannot underflow at any horizon.

#include <cstdint>
#include <span>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/params.h"

namespace sgl::core {

class infinite_dynamics final : public dynamics_engine {
 public:
  /// Starts from the uniform distribution (the paper's P⁰).
  /// Throws std::invalid_argument on invalid parameters.
  explicit infinite_dynamics(const dynamics_params& params);

  /// Back to the uniform start; steps() and log_potential() reset too.
  void reset() override;

  /// Restart from an arbitrary distribution (Theorem 4.6's nonuniform
  /// start).  Must be a probability vector of size m (validated).  An
  /// engine started this way stops reporting reusable(): the plain reset()
  /// returns to the uniform start, not to `start`.
  void reset(std::span<const double> start);

  /// reset() restores the constructed state exactly — unless a nonuniform
  /// start was installed via reset(span) (dynamics_engine.h contract).
  [[nodiscard]] bool reusable() const noexcept override { return !custom_start_; }

  /// Advances one step given the realized signal vector R^{t+1}
  /// (size m, entries 0/1).  The process is deterministic given the signals.
  void step(std::span<const std::uint8_t> rewards);

  /// dynamics_engine form; the generator is unused (deterministic update).
  void step(std::span<const std::uint8_t> rewards, rng& /*gen*/) override { step(rewards); }

  /// P^t.
  [[nodiscard]] std::span<const double> distribution() const noexcept { return p_; }

  /// P^t under the engine interface (the mean-field popularity).
  [[nodiscard]] std::span<const double> popularity() const noexcept override { return p_; }

  /// No individuals to count in the infinite population: always empty.
  [[nodiscard]] std::span<const std::uint64_t> adopter_counts() const noexcept override {
    return {};
  }

  /// Engine-interface alias for degenerate_steps(): the α = 0 annihilation
  /// steps are exactly the steps on which "nobody" adopted.
  [[nodiscard]] std::uint64_t empty_steps() const noexcept override {
    return degenerate_steps_;
  }

  /// ln Φ^t where Φ⁰ = m (uniform unit weights).  If a degenerate step ever
  /// occurred (see degenerate_steps()), the potential is no longer the
  /// paper's — that can only happen outside the theorem regime (α = 0).
  [[nodiscard]] double log_potential() const noexcept { return log_potential_; }

  /// Steps taken since the last reset.
  [[nodiscard]] std::uint64_t steps() const noexcept override { return steps_; }

  /// Number of steps where the update annihilated all mass (possible only
  /// when α = 0 and every signal was bad); the process restarts from
  /// uniform on such steps, mirroring the finite empty-population rule.
  [[nodiscard]] std::uint64_t degenerate_steps() const noexcept { return degenerate_steps_; }

  [[nodiscard]] const dynamics_params& params() const noexcept { return params_; }

 private:
  dynamics_params params_;
  std::vector<double> p_;
  std::vector<double> scratch_;
  double log_potential_ = 0.0;
  std::uint64_t steps_ = 0;
  std::uint64_t degenerate_steps_ = 0;
  bool custom_start_ = false;  // reset(start) was used: reset() != initial state
};

}  // namespace sgl::core
