#pragma once

/// \file probe.h
/// Composable measurement probes for the Monte-Carlo runner.
///
/// The paper's §2.2 measures (regret, best-option mass) used to be the
/// *only* reduction the harness could produce: run_scenario hard-coded one
/// result shape.  A probe decouples "what the run computes" from "how the
/// run is driven": the runner advances each replication through the horizon
/// and shows every step to every installed probe; the probe accumulates
/// whatever it wants, finalizes once per replication, and merges across
/// replications deterministically.
///
/// Contract (normative — see DESIGN.md "Probe contract"):
///   * probes never consume the process or reward RNG streams, so adding or
///     removing probes cannot change a trajectory;
///   * clone() produces an empty accumulator of the same configuration, one
///     per parallel shard;
///   * merge(other) folds a clone produced by the same prototype into this
///     one; the runner merges shards in fixed shard order, so results are
///     bit-identical for every thread count;
///   * report() is the machine-readable result: named scalars (optionally
///     with a 95% CI half-width) and named series.
///
/// Built-in probes:
///   regret            — the §2.2 scalar estimates (regret, average reward,
///                       best mass, final best mass, empty-step fraction);
///                       reproduces the historical regret_estimate exactly.
///   trajectory        — per-step running-regret / best-mass / min-popularity
///                       curves; reproduces trajectory_estimate exactly.
///   hitting_time(eps) — consensus: first t with Q^t_{best(t)} >= 1 - eps.
///   popularity_floor(floor)
///                     — min_{t,j} Q^t_j per replication and, when a floor is
///                       given, the per-step violation rate (§4.3.2 audit).
///   final_histogram   — per-option mean of the final popularity Q^T.
///   recovery(eps)     — steps from each best-option switch until
///                       Q^t_{best(t)} >= 1 - eps again (§6 "stocks").
///
/// Protocol probes (meaningful for engines implementing
/// core::net_instrumented — the netsim-backed gossip engine; they report
/// zero replications for everything else):
///   message_cost      — messages / bytes / timers per round, drop rate.
///   commit_latency    — mean rounds an uncommitted spell lasts before the
///                       node commits, and commit events per round.
///   adoption          — committed and alive fractions (mean over rounds
///                       and final) — the churn view of convergence.
///   partition_divergence(eps)
///                     — per-side disagreement while a scheduled partition
///                       is active, and steps from the heal until the sides
///                       agree to within eps again (re-convergence).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/dynamics_engine.h"
#include "core/net_metrics.h"
#include "env/reward_model.h"
#include "support/stats.h"

namespace sgl::core {

/// One named number in a probe report; `half_width` is a 95% CI when
/// `has_ci` is set.
struct probe_scalar {
  std::string key;
  double value = 0.0;
  double half_width = 0.0;
  bool has_ci = false;
};

/// One named per-index series in a probe report.
struct probe_series {
  std::string key;
  std::vector<double> values;
};

/// The machine-readable result of one probe after all merges.
struct probe_report {
  std::string probe;
  std::vector<probe_scalar> scalars;
  std::vector<probe_series> series;

  /// The scalar with the given key; nullptr when absent.
  [[nodiscard]] const probe_scalar* find_scalar(std::string_view key) const noexcept;
  /// The series with the given key; nullptr when absent.
  [[nodiscard]] const probe_series* find_series(std::string_view key) const noexcept;
};

/// What a probe sees each step.  All spans borrow the runner's buffers and
/// are only valid during the on_step call.
struct probe_step_view {
  std::uint64_t t = 0;                        ///< 1-based step index
  std::uint64_t horizon = 0;                  ///< T of this run
  std::span<const double> popularity_before;  ///< Q^{t-1}
  std::span<const std::uint8_t> rewards;      ///< R^t
  const dynamics_engine& engine;              ///< post-step state (Q^t, ...)
  const env::reward_model& environment;
};

class probe {
 public:
  virtual ~probe() = default;

  /// Stable name used in reports and by the probe spec grammar.
  [[nodiscard]] virtual std::string name() const = 0;

  /// An empty accumulator with this probe's configuration (one per shard).
  [[nodiscard]] virtual std::unique_ptr<probe> clone() const = 0;

  /// Called before the first step of every replication.
  virtual void begin_replication(std::uint64_t horizon) = 0;

  /// Called after every engine step.
  virtual void on_step(const probe_step_view& step) = 0;

  /// Called after the last step of a replication, with the engine in its
  /// final state.
  virtual void end_replication(const dynamics_engine& engine,
                               const env::reward_model& environment,
                               std::uint64_t horizon) = 0;

  /// Folds a sibling clone into this accumulator.  The runner calls this in
  /// fixed shard order; implementations must be deterministic functions of
  /// (this, other) so results are thread-count-independent.
  virtual void merge(const probe& other) = 0;

  [[nodiscard]] virtual probe_report report() const = 0;
};

using probe_list = std::vector<std::unique_ptr<probe>>;

// --- built-in probes --------------------------------------------------------

/// Cached (best option, best mean) of a *stationary* environment, filled on
/// the first step of each replication and reused for the rest of it.
/// best_option/best_mean walk all m options through virtual mean() calls —
/// per step that is pure overhead once the environment admits a constant
/// answer.  The cached values are the exact doubles the per-step lookup
/// would produce, so probe accumulations stay bit-identical;
/// non-stationary environments take the full lookup every step, as before.
struct best_option_cache {
  std::size_t best = 0;
  double best_mean = 0.0;
  bool cached = false;

  void refresh(const probe_step_view& step);
};

/// The historical §2.2 scalar reduction, bit-identical to the pre-probe
/// run_scenario (the accumulation order is pinned by tests/probe_test.cpp).
class regret_probe final : public probe {
 public:
  [[nodiscard]] std::string name() const override { return "regret"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& regret_stats() const noexcept { return regret_; }
  [[nodiscard]] const running_stats& average_reward_stats() const noexcept {
    return average_reward_;
  }
  [[nodiscard]] const running_stats& best_mass_stats() const noexcept { return best_mass_; }
  [[nodiscard]] const running_stats& final_best_mass_stats() const noexcept {
    return final_best_mass_;
  }
  [[nodiscard]] const running_stats& empty_fraction_stats() const noexcept {
    return empty_fraction_;
  }

 private:
  running_stats regret_;
  running_stats average_reward_;
  running_stats best_mass_;
  running_stats final_best_mass_;
  running_stats empty_fraction_;
  best_option_cache best_cache_;
  double reward_sum_ = 0.0;
  double best_mean_sum_ = 0.0;
  double best_mass_sum_ = 0.0;
};

/// The historical per-step curves (running regret, best mass, min
/// popularity), bit-identical to the pre-probe collect_* entry points.
class trajectory_probe final : public probe {
 public:
  [[nodiscard]] std::string name() const override { return "trajectory"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  /// Engaged once the first replication began; length = horizon.
  [[nodiscard]] const series_stats& running_regret() const { return running_regret_.value(); }
  [[nodiscard]] const series_stats& best_mass() const { return best_mass_.value(); }
  [[nodiscard]] const series_stats& min_popularity() const { return min_popularity_.value(); }

 private:
  void ensure_length(std::size_t horizon);

  std::optional<series_stats> running_regret_;
  std::optional<series_stats> best_mass_;
  std::optional<series_stats> min_popularity_;
  std::vector<double> regret_curve_;
  std::vector<double> best_curve_;
  std::vector<double> min_pop_curve_;
  best_option_cache best_cache_;
  double reward_sum_ = 0.0;
  double best_mean_sum_ = 0.0;
};

/// Consensus / hitting time: the first step t at which the post-step mass of
/// the current best option reaches 1 - eps.  Something the fixed reduction
/// could not express (cf. Su–Zubeldia–Lynch's convergence-time metrics).
class hitting_time_probe final : public probe {
 public:
  explicit hitting_time_probe(double eps);
  [[nodiscard]] std::string name() const override { return "hitting_time"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& hit_fraction_stats() const noexcept {
    return hit_fraction_;
  }
  [[nodiscard]] const running_stats& hitting_time_stats() const noexcept { return time_; }

 private:
  double threshold_;  // 1 - eps
  running_stats hit_fraction_;
  running_stats time_;
  best_option_cache best_cache_;
  std::uint64_t hit_at_ = 0;  // 0 = not yet hit this replication
};

/// The §4.3.2 popularity-floor audit: the worst min_j Q^t_j per replication
/// and, when `floor` > 0, the per-step rate at which min_j Q^t_j < floor
/// (the claim is that with zeta = mu(1-beta)/(4m) the rate is ~0).
class popularity_floor_probe final : public probe {
 public:
  explicit popularity_floor_probe(double floor);
  [[nodiscard]] std::string name() const override { return "popularity_floor"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& min_popularity_stats() const noexcept { return min_; }
  [[nodiscard]] const running_stats& violation_rate_stats() const noexcept {
    return violation_rate_;
  }

 private:
  double floor_;
  running_stats min_;             // per-replication worst min_j Q^t_j
  running_stats violation_rate_;  // per-replication fraction of violating steps
  double worst_ = 1.0;
  std::uint64_t violations_ = 0;
};

/// Per-option mean of the final popularity Q^T across replications.
class final_histogram_probe final : public probe {
 public:
  [[nodiscard]] std::string name() const override { return "final_histogram"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] std::span<const running_stats> per_option() const noexcept {
    return per_option_;
  }

 private:
  std::vector<running_stats> per_option_;
};

/// Recovery time in changing environments (§6; cf. Frongillo–Schoenebeck–
/// Tamuz): after every step where best_option(t) changes, the number of
/// steps until the post-step mass of the new best option reaches 1 - eps.
/// Switches that never recover before the horizon (or before the next
/// switch) are counted separately.
class recovery_probe final : public probe {
 public:
  explicit recovery_probe(double eps);
  [[nodiscard]] std::string name() const override { return "recovery"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& recovery_time_stats() const noexcept { return times_; }
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }
  [[nodiscard]] std::uint64_t unrecovered() const noexcept { return unrecovered_; }

 private:
  double threshold_;  // 1 - eps
  running_stats times_;
  best_option_cache best_cache_;
  std::uint64_t switches_ = 0;
  std::uint64_t unrecovered_ = 0;
  std::size_t prev_best_ = static_cast<std::size_t>(-1);
  std::uint64_t pending_since_ = 0;  // 0 = no outstanding switch
};

/// Wire-cost accounting for net-instrumented engines: per-round messages,
/// bytes, timers (normalized by the horizon) and the end-to-end drop rate.
/// The "appropriate for low-power devices" reading of §6 needs exactly
/// this: what does the distributed implementation cost on the air?
class message_cost_probe final : public probe {
 public:
  [[nodiscard]] std::string name() const override { return "message_cost"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& messages_per_round_stats() const noexcept {
    return messages_per_round_;
  }
  [[nodiscard]] const running_stats& drop_rate_stats() const noexcept { return drop_rate_; }

 private:
  running_stats messages_per_round_;
  running_stats messages_per_node_round_;
  running_stats bytes_per_round_;
  running_stats timers_per_round_;
  running_stats drop_rate_;
};

/// Commit latency for net-instrumented engines: the mean length, in
/// protocol rounds, of an uncommitted spell before the node commits, plus
/// commit events per round.  The protocol analogue of hitting-time-style
/// convergence metrics (cf. Su–Zubeldia–Lynch).
class commit_latency_probe final : public probe {
 public:
  [[nodiscard]] std::string name() const override { return "commit_latency"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& latency_stats() const noexcept { return latency_; }
  [[nodiscard]] const running_stats& commits_per_round_stats() const noexcept {
    return commits_per_round_;
  }

 private:
  running_stats latency_;  // per-replication mean latency (rounds); only
                           // replications with >= 1 commit event contribute
  running_stats commits_per_round_;
};

/// Adoption under churn for net-instrumented engines: the committed
/// fraction (of alive nodes) averaged over the horizon and at the end, and
/// the final alive fraction.
class adoption_probe final : public probe {
 public:
  [[nodiscard]] std::string name() const override { return "adoption"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& committed_fraction_stats() const noexcept {
    return committed_fraction_;
  }
  [[nodiscard]] const running_stats& final_alive_fraction_stats() const noexcept {
    return final_alive_fraction_;
  }

 private:
  running_stats committed_fraction_;        // mean over the horizon, per rep
  running_stats final_committed_fraction_;
  running_stats final_alive_fraction_;
  double committed_fraction_sum_ = 0.0;
  std::uint64_t observed_steps_ = 0;
};

/// Disagreement across a scheduled network cut, for partition-instrumented
/// engines (the protocol engine under a `faults.*` partition).  While the
/// cut is active it measures the per-side disagreement
/// div = ½ · Σ_j |p^A_j − p^B_j| over the two sides' committed-option
/// histograms (total variation distance); after the heal it measures the
/// number of steps until div first drops to `eps` (re-convergence — the §6
/// robustness question: does the dynamics re-mix after the network does?).
/// Steps where either side has no committed nodes yet are not measurable
/// and do not contribute.  Engines without a partition view, or runs whose
/// schedule never partitions, report zero replications.
class partition_divergence_probe final : public probe {
 public:
  explicit partition_divergence_probe(double eps);
  [[nodiscard]] std::string name() const override { return "partition_divergence"; }
  [[nodiscard]] std::unique_ptr<probe> clone() const override;
  void begin_replication(std::uint64_t horizon) override;
  void on_step(const probe_step_view& step) override;
  void end_replication(const dynamics_engine& engine,
                       const env::reward_model& environment,
                       std::uint64_t horizon) override;
  void merge(const probe& other) override;
  [[nodiscard]] probe_report report() const override;

  [[nodiscard]] const running_stats& divergence_stats() const noexcept {
    return divergence_;
  }
  [[nodiscard]] const running_stats& reconvergence_stats() const noexcept {
    return reconvergence_;
  }
  [[nodiscard]] std::uint64_t unrecovered() const noexcept { return unrecovered_; }

 private:
  double eps_;
  running_stats partition_steps_;  // steps spent partitioned, per rep
  running_stats divergence_;       // mean measurable in-cut divergence, per rep
  running_stats divergence_max_;   // worst in-cut divergence, per rep
  running_stats reconvergence_;    // steps from heal until div <= eps
  std::uint64_t unrecovered_ = 0;  // healed reps that never re-converged
  // per-replication accumulators
  std::uint64_t steps_partitioned_ = 0;
  double div_sum_ = 0.0;
  std::uint64_t div_steps_ = 0;
  double div_max_ = 0.0;
  bool was_partitioned_ = false;
  std::uint64_t heal_step_ = 0;       // first post-heal step (0 = none yet)
  std::uint64_t reconverge_at_ = 0;   // step where div first <= eps post-heal
  bool reconverged_ = false;
};

// --- probe spec grammar -----------------------------------------------------

/// Builds a probe from a spec string: `name` or `name(key=value, ...)`.
///   regret | trajectory | final_histogram
///   hitting_time(eps=0.1) | recovery(eps=0.5) | popularity_floor(floor=0)
///   message_cost | commit_latency | adoption | partition_divergence(eps=0.1)
/// Throws std::invalid_argument on unknown names (listing the known ones,
/// suggesting the nearest), unknown argument keys, or malformed values.
[[nodiscard]] std::unique_ptr<probe> make_probe(std::string_view spec);

/// Splits a comma-separated list of probe specs into its spec strings
/// (commas inside parentheses belong to the spec); blank items are dropped.
[[nodiscard]] std::vector<std::string> split_probe_specs(std::string_view text);

/// split_probe_specs + make_probe on each.  Throws as make_probe, and on an
/// empty list.
[[nodiscard]] probe_list parse_probe_list(std::string_view text);

/// Builds one probe per spec string.
[[nodiscard]] probe_list make_probes(std::span<const std::string> specs);

/// The names accepted by make_probe, in a stable order.
[[nodiscard]] std::span<const std::string_view> known_probe_names();

/// report() of every probe in the list, in order.
[[nodiscard]] std::vector<probe_report> collect_reports(const probe_list& probes);

}  // namespace sgl::core
