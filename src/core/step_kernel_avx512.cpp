/// \file step_kernel_avx512.cpp
/// AVX-512 build of the shared kernel implementation.  CMake compiles this
/// TU with -mavx512f -mavx512dq on x86 GNU/Clang builds; anywhere else it
/// degrades to a forwarder so the symbols always exist and the dispatcher
/// can key off avx512_kernels_compiled() instead of the preprocessor.
///
/// DQ matters as much as F here: it provides the native 64-bit lane
/// multiply (vpmullq) that the splitmix-style counter hash spends most of
/// its time in, where AVX2 has to emulate each product with three 32-bit
/// half multiplies.  Together with the doubled lane width this TU roughly
/// halves the per-agent hash cost relative to the AVX2 build — for
/// bit-identical output, like every other ISA variant.

#include "core/step_kernel.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include "core/step_kernel_impl.h"

namespace sgl::core::kernel {

void net2_step_avx512(const net2_args& args) { net2_body(args); }
void mixed_step_avx512(const mixed_args& args) { mixed_body(args); }
bool avx512_kernels_compiled() noexcept { return true; }

}  // namespace sgl::core::kernel

#else  // no AVX-512 target: keep the symbols, report not-compiled

namespace sgl::core::kernel {

void net2_step_avx512(const net2_args& args) { net2_step_generic(args); }
void mixed_step_avx512(const mixed_args& args) { mixed_step_generic(args); }
bool avx512_kernels_compiled() noexcept { return false; }

}  // namespace sgl::core::kernel

#endif
