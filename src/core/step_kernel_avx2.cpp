/// \file step_kernel_avx2.cpp
/// AVX2 build of the shared kernel implementation.  CMake compiles this TU
/// with -mavx2 on x86 GNU/Clang builds; anywhere else it degrades to a
/// forwarder so the symbols always exist and the dispatcher can key off
/// avx2_kernels_compiled() instead of the preprocessor.

#include "core/step_kernel.h"

#if defined(__AVX2__)

#include "core/step_kernel_impl.h"

namespace sgl::core::kernel {

void net2_step_avx2(const net2_args& args) { net2_body(args); }
void mixed_step_avx2(const mixed_args& args) { mixed_body(args); }
bool avx2_kernels_compiled() noexcept { return true; }

}  // namespace sgl::core::kernel

#else  // no AVX2 target: keep the symbols, report not-compiled

namespace sgl::core::kernel {

void net2_step_avx2(const net2_args& args) { net2_step_generic(args); }
void mixed_step_avx2(const mixed_args& args) { mixed_step_generic(args); }
bool avx2_kernels_compiled() noexcept { return false; }

}  // namespace sgl::core::kernel

#endif
