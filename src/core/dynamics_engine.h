#pragma once

/// \file dynamics_engine.h
/// The one interface behind every formulation of the adoption dynamics.
///
/// The paper's central observation is that a single process admits several
/// equivalent formulations — finite agent-based (§2.1), exact aggregate
/// (Propositions 4.1/4.2), and infinite mean-field (§4.2, eq. (1)) — all
/// inducing the same law on the popularity trajectory in the homogeneous,
/// fully mixed case.  The repo mirrors that: aggregate_dynamics,
/// finite_dynamics, infinite_dynamics, and grouped_dynamics are all
/// `dynamics_engine`s, and every harness (the Monte-Carlo runner in
/// experiment.h, the scenario registry in scenario/, the CLI, and the bench
/// drivers) drives them solely through this interface.
///
/// Contract (invariants tested in tests/dynamics_engine_test.cpp):
///   * popularity() is always a probability vector of size num_options()
///     (uniform before the first step and after empty steps — DESIGN.md);
///   * adopter_counts(), when non-empty, has size num_options() and the
///     entries sum to the number of committed individuals;
///   * empty_steps() counts the steps on which nobody adopted (for the
///     infinite engine: the degenerate α = 0 annihilation steps);
///   * step() consumes `gen` deterministically — engines that are
///     distribution-equal may share streams (see the identical-law test).

#include <cstdint>
#include <span>

#include "support/rng.h"

namespace sgl::core {

class dynamics_engine {
 public:
  virtual ~dynamics_engine() = default;

  /// Back to the initial state: nobody committed, uniform popularity,
  /// step/empty-step counters cleared.
  virtual void reset() = 0;

  /// True when reset() restores the engine to the exact state its factory
  /// delivered it in, so the Monte-Carlo harness may keep one instance per
  /// worker and reset() it between replications instead of reconstructing
  /// (core/experiment.h).  Configuration installed through setters
  /// (topology, per-agent rules, thread counts) survives reset() and stays
  /// reusable; an engine put into a state reset() does *not* restore — e.g.
  /// a nonuniform start installed via an overloaded reset(span) — must
  /// report false from then on.  Defaults to false: unknown engines are
  /// reconstructed every replication, which is always correct.
  [[nodiscard]] virtual bool reusable() const noexcept { return false; }

  /// Advances one step given the realized signals R^{t+1} (size must be
  /// num_options()).  Deterministic engines may ignore `gen`.
  virtual void step(std::span<const std::uint8_t> rewards, rng& gen) = 0;

  /// Q^t: the popularity distribution over options.
  [[nodiscard]] virtual std::span<const double> popularity() const noexcept = 0;

  /// D^t_j: committed individuals per option after the last step.  Empty for
  /// engines without individual counts (the infinite-population dynamics).
  [[nodiscard]] virtual std::span<const std::uint64_t> adopter_counts() const noexcept = 0;

  /// Steps on which nobody adopted (popularity reverted to uniform).
  [[nodiscard]] virtual std::uint64_t empty_steps() const noexcept = 0;

  /// Steps taken since the last reset.
  [[nodiscard]] virtual std::uint64_t steps() const noexcept = 0;

  /// m, read off the popularity vector.
  [[nodiscard]] std::size_t num_options() const noexcept { return popularity().size(); }
};

}  // namespace sgl::core
