#include "analysis/timeseries.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgl::analysis {

std::vector<double> autocorrelation(std::span<const double> series, std::size_t max_lag) {
  const std::size_t n = series.size();
  if (n < 2) throw std::invalid_argument{"autocorrelation: need >= 2 points"};
  if (max_lag >= n) throw std::invalid_argument{"autocorrelation: lag >= length"};

  double mean = 0.0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(n);
  double variance = 0.0;
  for (const double x : series) variance += (x - mean) * (x - mean);

  std::vector<double> rho(max_lag + 1, 0.0);
  rho[0] = 1.0;
  if (variance <= 0.0) return rho;  // constant series
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double cov = 0.0;
    for (std::size_t t = 0; t + k < n; ++t) {
      cov += (series[t] - mean) * (series[t + k] - mean);
    }
    rho[k] = cov / variance;
  }
  return rho;
}

double integrated_autocorrelation_time(std::span<const double> series) {
  const std::size_t n = series.size();
  if (n < 4) return 1.0;
  const std::size_t max_lag = std::min<std::size_t>(n / 2, 2000);
  const std::vector<double> rho = autocorrelation(series, max_lag);

  // Sokal's adaptive window: stop at the smallest W with W >= c * tau(W).
  constexpr double c = 5.0;
  double tau = 1.0;
  for (std::size_t w = 1; w <= max_lag; ++w) {
    tau += 2.0 * rho[w];
    if (static_cast<double>(w) >= c * std::max(tau, 1.0)) break;
  }
  return std::max(tau, 1.0);
}

double effective_sample_size(std::span<const double> series) {
  if (series.empty()) return 0.0;
  return static_cast<double>(series.size()) / integrated_autocorrelation_time(series);
}

mean_ci block_bootstrap_mean(std::span<const double> series, double confidence,
                             std::size_t block_length, std::size_t resamples,
                             std::uint64_t seed) {
  const std::size_t n = series.size();
  if (n < 2) throw std::invalid_argument{"block_bootstrap_mean: need >= 2 points"};
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument{"block_bootstrap_mean: confidence in (0,1)"};
  }
  if (resamples < 10) throw std::invalid_argument{"block_bootstrap_mean: resamples >= 10"};
  if (block_length == 0) {
    block_length = static_cast<std::size_t>(
        std::ceil(std::pow(static_cast<double>(n), 1.0 / 3.0)));
  }
  block_length = std::min(block_length, n);

  double true_mean = 0.0;
  for (const double x : series) true_mean += x;
  true_mean /= static_cast<double>(n);

  rng gen = rng::from_stream(seed, 0xb007ULL);
  const std::size_t blocks_per_resample = (n + block_length - 1) / block_length;
  const std::size_t start_range = n - block_length + 1;

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    std::size_t taken = 0;
    for (std::size_t b = 0; b < blocks_per_resample && taken < n; ++b) {
      const std::size_t start = static_cast<std::size_t>(gen.next_below(start_range));
      for (std::size_t i = 0; i < block_length && taken < n; ++i, ++taken) {
        total += series[start + i];
      }
    }
    means.push_back(total / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double tail = (1.0 - confidence) / 2.0;
  const double lo = quantile(means, tail);
  const double hi = quantile(means, 1.0 - tail);
  return {.mean = true_mean, .half_width = (hi - lo) / 2.0};
}

std::size_t hitting_time(std::span<const double> series, double threshold) {
  for (std::size_t t = 0; t < series.size(); ++t) {
    if (series[t] >= threshold) return t;
  }
  return series.size();
}

std::size_t burn_in(std::span<const double> series, double band) {
  const std::size_t n = series.size();
  if (n < 4) return 0;
  if (!(band > 0.0)) throw std::invalid_argument{"burn_in: band must be positive"};

  double tail_mean = 0.0;
  const std::size_t tail_start = n - n / 4;
  for (std::size_t t = tail_start; t < n; ++t) tail_mean += series[t];
  tail_mean /= static_cast<double>(n - tail_start);

  // Scan backwards for the last excursion outside the band.
  for (std::size_t t = n; t-- > 0;) {
    if (std::abs(series[t] - tail_mean) > band) {
      return t + 1 == n ? n : t + 1;
    }
  }
  return 0;
}

}  // namespace sgl::analysis
