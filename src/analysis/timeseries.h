#pragma once

/// \file timeseries.h
/// Time-series statistics for stochastic-process experiments.
///
/// The dynamics' popularity trajectory is a strongly autocorrelated
/// sequence, so naive "mean ± z·sd/√T" intervals on time averages are
/// wrong.  This module provides the standard corrections used throughout
/// the benches and tests:
///   * empirical autocorrelation function and the integrated
///     autocorrelation time τ_int (Sokal windowing),
///   * effective sample size T/τ_int,
///   * moving-block bootstrap confidence intervals for time averages,
///   * burn-in detection (first time the series enters and stays inside a
///     band around its tail mean),
///   * hitting times.

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"

namespace sgl::analysis {

/// Empirical autocorrelation ρ̂(k) for k = 0..max_lag (ρ̂(0) = 1).
/// Preconditions: series.size() >= 2, max_lag < series.size(); a constant
/// series returns ρ̂(k) = 0 for k >= 1.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> series,
                                                  std::size_t max_lag);

/// Integrated autocorrelation time τ_int = 1 + 2·Σ_{k≥1} ρ̂(k), truncated
/// with Sokal's adaptive window (smallest W with W >= c·τ_int(W), c = 5).
/// Always >= 1.
[[nodiscard]] double integrated_autocorrelation_time(std::span<const double> series);

/// Effective number of independent samples: T / τ_int.
[[nodiscard]] double effective_sample_size(std::span<const double> series);

/// Moving-block bootstrap CI for the mean of a stationary series.
/// `block_length` 0 picks ceil(T^{1/3}) (the standard rate); resampling is
/// deterministic under `seed`.
[[nodiscard]] mean_ci block_bootstrap_mean(std::span<const double> series,
                                           double confidence = 0.95,
                                           std::size_t block_length = 0,
                                           std::size_t resamples = 2000,
                                           std::uint64_t seed = 1);

/// First index t with series[t] >= threshold (rising) — or series.size()
/// when never hit.
[[nodiscard]] std::size_t hitting_time(std::span<const double> series, double threshold);

/// Burn-in estimate: the first index after which the series stays within
/// ±band of the mean of its final quarter.  Returns series.size() when the
/// series never settles.
[[nodiscard]] std::size_t burn_in(std::span<const double> series, double band);

}  // namespace sgl::analysis
