#include "analysis/decomposition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sgl::analysis {

regret_breakdown decompose_regret(std::span<const double> mass,
                                  std::span<const double> etas,
                                  const core::dynamics_params& params) {
  if (mass.size() != etas.size() || mass.empty()) {
    throw std::invalid_argument{"decompose_regret: size mismatch"};
  }
  double total_mass = 0.0;
  for (const double q : mass) {
    if (!(q >= -1e-12)) throw std::invalid_argument{"decompose_regret: negative mass"};
    total_mass += q;
  }
  if (std::abs(total_mass - 1.0) > 1e-6) {
    throw std::invalid_argument{"decompose_regret: mass must sum to 1"};
  }

  const std::size_t best = static_cast<std::size_t>(
      std::max_element(etas.begin(), etas.end()) - etas.begin());
  const double eta_best = etas[best];

  regret_breakdown breakdown;
  breakdown.per_option.assign(mass.size(), 0.0);
  double gap_sum = 0.0;
  for (std::size_t j = 0; j < mass.size(); ++j) {
    if (j == best) continue;
    const double contribution = mass[j] * (eta_best - etas[j]);
    breakdown.per_option[j] = contribution;
    breakdown.total += contribution;
    gap_sum += eta_best - etas[j];
  }
  breakdown.exploration_floor =
      params.mu * gap_sum / static_cast<double>(mass.size());
  breakdown.convergence_excess =
      std::max(0.0, breakdown.total - breakdown.exploration_floor);
  return breakdown;
}

}  // namespace sgl::analysis
