#pragma once

/// \file decomposition.h
/// Where does the regret actually come from?
///
/// For a stationary environment the per-step expected regret factors as
///
///   η₁ − Σ_j E[Q_j] η_j = Σ_{j≠1} E[Q_j] (η₁ − η_j),
///
/// i.e. a sum of per-option contributions.  On top of that, the dynamics'
/// steady state has a structural floor: a μ-fraction of considerations are
/// uniform exploration, so even a perfectly converged population keeps
/// ≈ μ·(m−1)/m of its stage-1 mass off the best option.  regret_breakdown
/// separates those pieces so benches can report "exploration tax" vs
/// "not-yet-converged" regret — the two knobs (μ, δ) the paper discusses.

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.h"

namespace sgl::analysis {

struct regret_breakdown {
  /// Total per-step expected regret  Σ_{j≠best} mass_j · (η_best − η_j).
  double total = 0.0;
  /// Per-option contribution (index best = 0 by construction).
  std::vector<double> per_option;
  /// The structural exploration floor implied by μ alone:
  /// μ·Σ_{j≠best}(η_best−η_j)/m — what an *ideally converged* population
  /// with the same μ would still pay in stage-1 consideration mass.
  double exploration_floor = 0.0;
  /// total − exploration_floor (clamped at 0): the convergence shortfall.
  double convergence_excess = 0.0;
};

/// Decomposes the regret of a (time-averaged or instantaneous) popularity
/// vector against stationary qualities.  `mass` and `etas` must have equal,
/// positive size; `mass` must be a distribution (validated loosely).
[[nodiscard]] regret_breakdown decompose_regret(std::span<const double> mass,
                                                std::span<const double> etas,
                                                const core::dynamics_params& params);

}  // namespace sgl::analysis
