#pragma once

/// \file trace_check.h
/// Offline protocol-invariant checking over structured netsim traces.
///
/// trace_hash() proves two runs dispatched identical events; it cannot say
/// whether either run was *correct*.  This module closes that gap: a
/// recorded trace (netsim/trace.h) plus its run metadata is replayed
/// offline against the protocol invariants §2.1 implies for the gossip
/// port, each phrased as a property of the record stream:
///
///   * commit_monotone        — a node's adopt/commit round stamps never go
///                              backwards within one crash epoch (state is
///                              a single integer; a restart wipes it, so
///                              crash records reset the baseline).
///   * adopt_posted           — every adopt/commit names an option some
///                              earlier signal-board post actually carried
///                              (nodes can only sense posted R^r_j; an
///                              adoption before any post, or of an option
///                              outside the posted range, is fabricated).
///   * deliver_to_crashed     — no message is delivered to a node between
///                              its crash and restart records.
///   * cross_partition_deliver— no delivery crosses the cut between a
///                              partition record group and its heal.
///   * retry_budget           — per node, SAMPLE_REQ sends stay within
///                              (rounds + 1 + restarts) · (1 + max_retries):
///                              each round wakeup starts at most one request
///                              chain of at most 1 + max_retries asks.
///   * conservation           — per ordered (src, dst) pair and globally,
///                              deliveries + drops never exceed sends (the
///                              remainder is in flight at the horizon).
///
/// Traces recorded into a ring that evicted records have lost their prefix;
/// the history-dependent invariants (adopt_posted, retry_budget,
/// conservation) are skipped for them — only full traces get the complete
/// verdict.
///
/// The JSONL format written here (one metadata header object, then one
/// compact object per record) is produced via support/json and read back by
/// a strict parser that accepts exactly that shape.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/trace.h"

namespace sgl::analysis {

/// The message kind of a gossip SAMPLE_REQ
/// (protocol::gossip_learner::k_sample_request), named here so the checker
/// does not depend on the protocol layer.
inline constexpr std::int32_t k_sample_request_kind = 1;

/// Everything the checker needs to know about the run that produced a
/// trace; written as the JSONL header line.
struct trace_metadata {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_options = 0;
  std::uint32_t max_retries = 0;
  double round_interval = 1.0;
  std::uint64_t rounds = 0;  ///< protocol rounds the run executed
  std::uint64_t seed = 0;
  std::uint64_t evicted = 0;  ///< records lost to a bounded ring (0 = full)

  friend bool operator==(const trace_metadata&, const trace_metadata&) = default;
};

/// One invariant violation, located in the trace.
struct trace_violation {
  std::string invariant;     ///< name from the list above
  double time = 0.0;         ///< record timestamp (horizon for conservation)
  std::uint32_t node = 0;    ///< primary node involved
  std::size_t record_index = 0;  ///< offending record's index in the trace
  std::string detail;        ///< human-readable specifics
};

struct trace_check_result {
  std::vector<trace_violation> violations;
  std::size_t records_checked = 0;
  /// Invariants skipped because the trace lost its prefix to a ring.
  std::vector<std::string> skipped;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Replays `records` (in recorded order) against every invariant.  Never
/// throws on bad traces — badness is the output.
[[nodiscard]] trace_check_result check_trace(const trace_metadata& meta,
                                             std::span<const netsim::trace_record> records);

/// Writes the JSONL form: a metadata header line, then one record per line.
void write_trace(std::ostream& os, const trace_metadata& meta,
                 std::span<const netsim::trace_record> records);

struct parsed_trace {
  trace_metadata meta;
  std::vector<netsim::trace_record> records;
};

/// Reads what write_trace wrote.  Throws std::runtime_error naming the line
/// number on anything malformed (missing header, unknown kind or key,
/// non-numeric field).
[[nodiscard]] parsed_trace read_trace(std::istream& is);

/// Diagnoses the one stdout collision the trace-capture CLI path can hit:
/// `--trace-out -` streams the recorded JSONL trace to stdout, and
/// `--check-trace` then writes its verdict document (JSON or table) to the
/// same stream — a consumer of either sees the two interleaved, and the
/// trace is no longer valid JSONL.  Returns the refusal message to print
/// (suggesting the working spellings), or an empty string when the
/// combination is fine.  Pure so the CLI's refusal is unit-testable.
[[nodiscard]] std::string stdout_trace_conflict(std::string_view trace_out,
                                                bool check_requested);

}  // namespace sgl::analysis
