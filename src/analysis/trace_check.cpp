#include "analysis/trace_check.h"

#include <charconv>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "support/json.h"

namespace sgl::analysis {
namespace {

using netsim::trace_kind;
using netsim::trace_record;

std::string node_str(std::uint32_t node) { return "node " + std::to_string(node); }

struct pair_counts {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

}  // namespace

trace_check_result check_trace(const trace_metadata& meta,
                               std::span<const trace_record> records) {
  trace_check_result result;
  result.records_checked = records.size();
  const bool prefix_complete = meta.evicted == 0;
  if (!prefix_complete) {
    result.skipped = {"adopt_posted", "retry_budget", "conservation"};
  }
  auto report = [&result](std::string invariant, double time, std::uint32_t node,
                          std::size_t index, std::string detail) {
    result.violations.push_back(
        {std::move(invariant), time, node, index, std::move(detail)});
  };

  const std::size_t n = meta.num_nodes;
  std::vector<std::uint8_t> crashed(n, 0);
  std::vector<std::uint64_t> restarts(n, 0);
  // Commit-round baseline per node; -1 = none yet this crash epoch.
  std::vector<std::int64_t> last_commit_round(n, -1);
  std::vector<std::uint64_t> requests_sent(n, 0);

  bool partition_active = false;
  std::unordered_set<std::uint32_t> side_a;
  double partition_time = 0.0;

  std::uint64_t posts_seen = 0;
  std::int64_t posted_options = 0;

  std::map<std::pair<std::uint32_t, std::uint32_t>, pair_counts> pairs;
  std::uint64_t total_sent = 0;
  std::uint64_t total_delivered = 0;
  std::uint64_t total_dropped = 0;
  double horizon = 0.0;
  std::size_t last_index = records.empty() ? 0 : records.size() - 1;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const trace_record& rec = records[i];
    horizon = rec.time;
    const bool node_known = rec.node < n;
    switch (rec.kind) {
      case trace_kind::send:
        ++total_sent;
        ++pairs[{rec.node, rec.peer}].sent;
        if (node_known && rec.detail == k_sample_request_kind) ++requests_sent[rec.node];
        break;
      case trace_kind::deliver: {
        ++total_delivered;
        ++pairs[{rec.peer, rec.node}].delivered;
        if (node_known && crashed[rec.node] != 0) {
          report("deliver_to_crashed", rec.time, rec.node, i,
                 node_str(rec.node) + " received a message from node " +
                     std::to_string(rec.peer) + " while crashed");
        }
        if (partition_active &&
            (side_a.contains(rec.node) != side_a.contains(rec.peer))) {
          report("cross_partition_deliver", rec.time, rec.node, i,
                 "delivery from node " + std::to_string(rec.peer) + " to " +
                     node_str(rec.node) + " crosses the cut opened at t=" +
                     std::to_string(partition_time));
        }
        break;
      }
      case trace_kind::drop:
        ++total_dropped;
        ++pairs[{rec.peer, rec.node}].dropped;
        break;
      case trace_kind::crash:
        if (node_known) {
          crashed[rec.node] = 1;
          last_commit_round[rec.node] = -1;  // restart rejoins uncommitted
        }
        break;
      case trace_kind::restart:
        if (node_known) {
          crashed[rec.node] = 0;
          ++restarts[rec.node];
        }
        break;
      case trace_kind::partition:
        if (!partition_active) {
          partition_active = true;
          partition_time = rec.time;
          side_a.clear();
        }
        side_a.insert(rec.node);
        break;
      case trace_kind::heal:
        partition_active = false;
        break;
      case trace_kind::degrade:
      case trace_kind::restore:
        break;
      case trace_kind::post:
        ++posts_seen;
        posted_options = rec.detail;
        break;
      case trace_kind::commit:
      case trace_kind::adopt: {
        if (prefix_complete) {
          if (posts_seen == 0) {
            report("adopt_posted", rec.time, rec.node, i,
                   node_str(rec.node) + " adopted option " + std::to_string(rec.a) +
                       " before any signal post");
          } else if (rec.a < 0 || rec.a >= posted_options) {
            report("adopt_posted", rec.time, rec.node, i,
                   node_str(rec.node) + " adopted option " + std::to_string(rec.a) +
                       " outside the posted range [0, " +
                       std::to_string(posted_options) + ")");
          }
        }
        if (node_known) {
          if (rec.b < last_commit_round[rec.node]) {
            report("commit_monotone", rec.time, rec.node, i,
                   node_str(rec.node) + " adopted at round " + std::to_string(rec.b) +
                       " after already reaching round " +
                       std::to_string(last_commit_round[rec.node]) +
                       " in the same crash epoch");
          }
          last_commit_round[rec.node] = rec.b;
        }
        break;
      }
    }
  }

  if (prefix_complete) {
    for (std::uint32_t id = 0; id < n; ++id) {
      const std::uint64_t allowed =
          (meta.rounds + 1 + restarts[id]) * (1ULL + meta.max_retries);
      if (requests_sent[id] > allowed) {
        report("retry_budget", horizon, id, last_index,
               node_str(id) + " sent " + std::to_string(requests_sent[id]) +
                   " sample requests; budget is " + std::to_string(allowed) + " (" +
                   std::to_string(meta.rounds) + " rounds, " +
                   std::to_string(restarts[id]) + " restarts, max_retries=" +
                   std::to_string(meta.max_retries) + ")");
      }
    }
    if (total_delivered + total_dropped > total_sent) {
      report("conservation", horizon, 0, last_index,
             "delivered (" + std::to_string(total_delivered) + ") + dropped (" +
                 std::to_string(total_dropped) + ") exceeds sent (" +
                 std::to_string(total_sent) + ")");
    }
    for (const auto& [pair, counts] : pairs) {
      if (counts.delivered + counts.dropped > counts.sent) {
        report("conservation", horizon, pair.first, last_index,
               "link " + std::to_string(pair.first) + " -> " +
                   std::to_string(pair.second) + ": delivered (" +
                   std::to_string(counts.delivered) + ") + dropped (" +
                   std::to_string(counts.dropped) + ") exceeds sent (" +
                   std::to_string(counts.sent) + ")");
      }
    }
  }

  return result;
}

// --- JSONL serialization ------------------------------------------------------

void write_trace(std::ostream& os, const trace_metadata& meta,
                 std::span<const trace_record> records) {
  {
    json_writer header{os, 0};
    header.begin_object()
        .key("sociolearn_trace").value(std::uint64_t{1})
        .key("num_nodes").value(meta.num_nodes)
        .key("num_options").value(meta.num_options)
        .key("max_retries").value(std::uint64_t{meta.max_retries})
        .key("round_interval").value(meta.round_interval)
        .key("rounds").value(meta.rounds)
        .key("seed").value(meta.seed)
        .key("evicted").value(meta.evicted)
        .end_object();
    os << '\n';
  }
  for (const trace_record& rec : records) {
    json_writer line{os, 0};
    line.begin_object()
        .key("t").value(rec.time)
        .key("kind").value(netsim::trace_kind_name(rec.kind))
        .key("node").value(std::uint64_t{rec.node})
        .key("peer").value(std::uint64_t{rec.peer})
        .key("detail").value(std::int64_t{rec.detail})
        .key("a").value(rec.a)
        .key("b").value(rec.b)
        .end_object();
    os << '\n';
  }
}

namespace {

/// A strict scanner for the one-line compact objects write_trace emits:
/// {"key":value,...} with string or numeric values and no nesting.
class line_parser {
 public:
  line_parser(std::string_view line, std::size_t line_no)
      : line_{line}, line_no_{line_no} {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"trace line " + std::to_string(line_no_) + ": " + what};
  }

  /// Parses the full object, invoking on_field(key, value_text, is_string).
  template <typename F>
  void parse(F&& on_field) {
    expect('{');
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        const std::string_view key = parse_string();
        expect(':');
        bool is_string = false;
        std::string_view value;
        if (peek() == '"') {
          value = parse_string();
          is_string = true;
        } else {
          const std::size_t start = pos_;
          while (pos_ < line_.size() && line_[pos_] != ',' && line_[pos_] != '}') ++pos_;
          value = trim(line_.substr(start, pos_ - start));
          if (value.empty()) fail("empty value for key '" + std::string{key} + "'");
        }
        on_field(key, value, is_string);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    skip_ws();
    if (pos_ != line_.size()) fail("trailing characters after object");
  }

 private:
  static std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
    return s;
  }

  void skip_ws() {
    while (pos_ < line_.size() && (line_[pos_] == ' ' || line_[pos_] == '\t')) ++pos_;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    if (pos_ >= line_.size()) fail("unexpected end of line");
    return line_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "', found '" + line_[pos_] + "'");
    ++pos_;
  }

  /// Keys and kind names never contain escapes; reject them rather than
  /// decode them.
  std::string_view parse_string() {
    expect('"');
    const std::size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != '"') {
      if (line_[pos_] == '\\') fail("escape sequences are not supported");
      ++pos_;
    }
    if (pos_ >= line_.size()) fail("unterminated string");
    const std::string_view out = line_.substr(start, pos_ - start);
    ++pos_;
    return out;
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

double parse_number(const line_parser& parser, std::string_view key,
                    std::string_view text) {
  double out = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    parser.fail("non-numeric value '" + std::string{text} + "' for key '" +
                std::string{key} + "'");
  }
  return out;
}

std::int64_t parse_integer(const line_parser& parser, std::string_view key,
                           std::string_view text) {
  std::int64_t out = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    parser.fail("non-integer value '" + std::string{text} + "' for key '" +
                std::string{key} + "'");
  }
  return out;
}

}  // namespace

parsed_trace read_trace(std::istream& is) {
  parsed_trace out;
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    line_parser parser{line, line_no};
    if (!have_header) {
      bool magic = false;
      parser.parse([&](std::string_view key, std::string_view value, bool is_string) {
        if (is_string) parser.fail("unexpected string value in header");
        if (key == "sociolearn_trace") {
          magic = parse_integer(parser, key, value) == 1;
        } else if (key == "num_nodes") {
          out.meta.num_nodes = static_cast<std::uint64_t>(parse_integer(parser, key, value));
        } else if (key == "num_options") {
          out.meta.num_options = static_cast<std::uint64_t>(parse_integer(parser, key, value));
        } else if (key == "max_retries") {
          out.meta.max_retries = static_cast<std::uint32_t>(parse_integer(parser, key, value));
        } else if (key == "round_interval") {
          out.meta.round_interval = parse_number(parser, key, value);
        } else if (key == "rounds") {
          out.meta.rounds = static_cast<std::uint64_t>(parse_integer(parser, key, value));
        } else if (key == "seed") {
          out.meta.seed = static_cast<std::uint64_t>(parse_integer(parser, key, value));
        } else if (key == "evicted") {
          out.meta.evicted = static_cast<std::uint64_t>(parse_integer(parser, key, value));
        } else {
          parser.fail("unknown header key '" + std::string{key} + "'");
        }
      });
      if (!magic) parser.fail("missing or bad 'sociolearn_trace' header marker");
      have_header = true;
      continue;
    }
    netsim::trace_record rec;
    parser.parse([&](std::string_view key, std::string_view value, bool is_string) {
      if (key == "kind") {
        if (!is_string) parser.fail("'kind' must be a string");
        if (!netsim::parse_trace_kind(value, rec.kind)) {
          parser.fail("unknown record kind '" + std::string{value} + "'");
        }
        return;
      }
      if (is_string) parser.fail("unexpected string value for key '" + std::string{key} + "'");
      if (key == "t") {
        rec.time = parse_number(parser, key, value);
      } else if (key == "node") {
        rec.node = static_cast<std::uint32_t>(parse_integer(parser, key, value));
      } else if (key == "peer") {
        rec.peer = static_cast<std::uint32_t>(parse_integer(parser, key, value));
      } else if (key == "detail") {
        rec.detail = static_cast<std::int32_t>(parse_integer(parser, key, value));
      } else if (key == "a") {
        rec.a = parse_integer(parser, key, value);
      } else if (key == "b") {
        rec.b = parse_integer(parser, key, value);
      } else {
        parser.fail("unknown record key '" + std::string{key} + "'");
      }
    });
    out.records.push_back(rec);
  }
  if (!have_header) throw std::runtime_error{"trace: empty input (no header line)"};
  return out;
}

std::string stdout_trace_conflict(std::string_view trace_out, bool check_requested) {
  if (trace_out != "-" || !check_requested) return {};
  return "--trace-out - and --check-trace both write to stdout, which would "
         "interleave the JSONL trace with the check report and corrupt both; "
         "write the trace to a file (--trace-out trace.jsonl --check-trace) "
         "or run the check separately (sociolearn_cli check-trace trace.jsonl)";
}

}  // namespace sgl::analysis
