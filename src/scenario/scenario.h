#pragma once

/// \file scenario.h
/// Declarative run descriptions: which engine, which environment, which
/// topology, which parameters.  A scenario_spec is a value — buildable in
/// code, overridable field by field — and the functions here turn it into
/// the factories the generic Monte-Carlo runner (core/experiment.h)
/// consumes.  The CLI, the bench drivers, and the examples all construct
/// their runs through this layer instead of hand-rolling engine/environment
/// setup; registry.h adds a catalog of named specs.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/grouped_dynamics.h"
#include "core/params.h"
#include "env/reward_model.h"
#include "graph/graph.h"

namespace sgl::scenario {

/// Which formulation of the dynamics to run.
enum class engine_kind {
  auto_select,  ///< grouped if groups set, agent-based if topology/rules set,
                ///< infinite if num_agents == 0, exact aggregate otherwise
  infinite,     ///< mean-field stochastic MWU (§4.2)
  aggregate,    ///< exact O(m) aggregate (Propositions 4.1/4.2)
  agent_based,  ///< explicit agents (§2.1); required for topology/rules
  grouped,      ///< exact O(G·m) aggregate of a rule mixture
  protocol,     ///< netsim-backed gossip protocol (§6 converse); never
                ///< auto-selected — set it explicitly
};

/// Social-network restriction for stage-1 sampling (§6, open problem 1).
struct topology_spec {
  enum class family_kind {
    none,            ///< fully mixed (the paper's setting)
    complete,        ///< K_N — sanity: equals fully mixed up to self-exclusion
    ring,            ///< C_N
    grid,            ///< rows × cols lattice
    torus,           ///< rows × cols lattice with wraparound
    star,            ///< hub-and-spokes
    erdos_renyi,     ///< G(N, p)
    watts_strogatz,  ///< small world: ring lattice, degree 2k, rewired
    barabasi_albert, ///< preferential attachment
    two_cliques,     ///< bottleneck: two cliques joined by bridge edges
  };

  family_kind family = family_kind::none;
  std::size_t rows = 0;              ///< grid/torus (0 = square-ish from N)
  std::size_t cols = 0;
  double edge_probability = 0.01;    ///< erdos_renyi
  std::size_t degree = 5;            ///< watts_strogatz k / barabasi_albert attach
  double rewire_probability = 0.1;   ///< watts_strogatz
  std::size_t bridges = 1;           ///< two_cliques
  std::uint64_t seed = 17;           ///< random-graph generation stream
};

/// Which signal generator to face (env/reward_model.h).
struct environment_spec {
  enum class family_kind {
    bernoulli,  ///< independent R_j ~ Bernoulli(η_j) — the base model
    exclusive,  ///< exactly one option good per step (Ellison–Fudenberg)
    switching,  ///< qualities rotate every `period` steps
    drifting,   ///< qualities interpolate etas → end_etas over `horizon`
  };

  family_kind family = family_kind::bernoulli;
  std::vector<double> etas;       ///< qualities / win probabilities / base
  std::vector<double> end_etas;   ///< drifting target
  std::uint64_t period = 100;     ///< switching rotation period
  std::uint64_t horizon = 1000;   ///< drifting ramp length
};

/// Gossip-protocol knobs (engine_kind::protocol only; the `protocol.*` key
/// family of the text format).  Mirrors protocol::engine_config minus the
/// dynamics parameters, which come from `params`.
struct protocol_spec {
  double round_interval = 1.0;    ///< simulated seconds per protocol round
  double base_latency = 0.05;     ///< per-message delivery latency
  double jitter_mean = 0.0;       ///< Exponential latency jitter (0 = none)
  double drop_probability = 0.0;  ///< i.i.d. Bernoulli packet loss
  std::uint64_t max_retries = 4;  ///< re-asks after an uncommitted reply
  double crash_rate = 0.0;        ///< per-node per-round crash probability
  double restart_rate = 0.0;      ///< per-node per-round restart probability
  bool sticky = false;    ///< keep the previous choice instead of sitting out
  bool lockstep = false;  ///< replies carry round-boundary choices (§2.1 sync)

  /// Field-wise equality; validate_spec compares against protocol_spec{}
  /// to catch non-default protocol knobs stranded on a non-protocol
  /// engine, so a new knob is covered here automatically.
  friend bool operator==(const protocol_spec&, const protocol_spec&) = default;
};

/// One scripted fault (engine_kind::protocol only; an indexed entry of the
/// `faults.*` key family).  Times are protocol ROUNDS (the scenario layer's
/// natural unit); the engine factory multiplies by protocol.round_interval
/// to get netsim's simulated seconds.  Mirrors netsim::fault_action.
struct fault_action_spec {
  enum class action_kind {
    partition,     ///< cut `targets` off from the rest during [at, until)
    crash_wave,    ///< crash `targets`, or each alive node w.p. `fraction`, at `at`
    restart_wave,  ///< restart `targets` / fraction of crashed / all crashed
    degrade,       ///< override the link model on a link class during [at, until)
  };

  /// Which links a degrade covers, relative to `targets` (see
  /// netsim::link_class).
  enum class link_class_kind { all, intra, cross, nodes };

  action_kind kind = action_kind::partition;
  double at = 0.0;     ///< activation round
  double until = -1.0; ///< end round; -1 = none (degrade: forever)
  std::vector<std::uint64_t> targets;
  double fraction = -1.0;  ///< wave probability; -1 = unset
  link_class_kind link_class = link_class_kind::all;  ///< degrade only
  double base_latency = 0.05;     ///< degrade override latency
  double jitter_mean = 0.0;       ///< degrade override jitter
  double drop_probability = 0.0;  ///< degrade override loss

  friend bool operator==(const fault_action_spec&, const fault_action_spec&) = default;
};

/// The `faults.*` family: a nemesis schedule plus trace-recording knobs.
/// Like protocol_spec, compared against a default-constructed value by
/// validate_spec to catch fault keys stranded on a non-protocol engine.
struct fault_schedule_spec {
  std::vector<fault_action_spec> actions;
  bool record = false;  ///< attach a trace recorder to every replication
  std::uint64_t record_capacity = 0;  ///< ring size; 0 keeps everything

  [[nodiscard]] bool empty() const noexcept { return actions.empty(); }

  friend bool operator==(const fault_schedule_spec&, const fault_schedule_spec&) = default;
};

/// A fully described run: engine + environment + topology + parameters.
struct scenario_spec {
  std::string name;
  std::string description;

  core::dynamics_params params;
  engine_kind engine = engine_kind::auto_select;
  std::uint64_t num_agents = 1000;  ///< population N; 0 = infinite dynamics

  /// Worker threads for the agent-based engine's sharded network step
  /// (0 = hardware concurrency, 1 = serial).  Trajectories are
  /// bit-identical for every setting (finite_dynamics::set_threads); large-N
  /// single-replication scenarios set 0 to use the whole machine.
  unsigned engine_threads = 1;

  /// Step kernel for the agent-based engine (key `kernel`): `auto` takes
  /// the SIMD v3 kernel when the host has a vector ISA, `scalar` pins the
  /// v2 scalar path (what every golden-hash scenario wants), `simd`
  /// demands v3 and is rejected by validate_spec on hosts without a
  /// vector ISA.  Unlike engine_threads this changes the trajectory (v3
  /// is a different, position-addressable stream derivation).
  core::kernel_kind engine_kernel = core::kernel_kind::auto_select;

  environment_spec environment;
  topology_spec topology;
  protocol_spec protocol;  ///< read only by the protocol engine
  fault_schedule_spec faults;  ///< read only by the protocol engine

  std::vector<double> start;                   ///< nonuniform P⁰ (infinite only)
  std::vector<core::rule_group> groups;        ///< grouped engine mixture
  std::vector<core::adoption_rule> agent_rules;///< per-agent rules (agent-based)

  /// Default probe specs for this scenario (core/probe.h grammar, e.g.
  /// "regret", "hitting_time(eps=0.25)").  Used by run_probes and the CLI
  /// when the caller does not choose probes; empty means just "regret".
  std::vector<std::string> probes;

  /// Optional pre-built topology, shared by every engine the factory
  /// creates.  When set it is used verbatim (the topology family/params are
  /// ignored for building, though family must not be `none`); when null,
  /// make_engine builds from the topology spec.  Lets callers that also
  /// inspect the graph (degree tables etc.) construct it exactly once.
  std::shared_ptr<const graph::graph> prebuilt_graph;
};

/// The engine kind a spec will actually run (resolves auto_select from the
/// spec's shape: groups → grouped, topology/rules → agent_based,
/// N = 0 → infinite, otherwise aggregate).
[[nodiscard]] engine_kind resolved_engine(const scenario_spec& spec) noexcept;

/// Materializes the topology for a population of `num_agents` vertices.
/// Throws std::invalid_argument for family none (nothing to build) or
/// inconsistent dimensions.
[[nodiscard]] graph::graph build_topology(const topology_spec& spec,
                                          std::size_t num_agents);

/// build_topology behind a small process-wide MRU cache, keyed by the
/// family, N, and only the spec fields that family actually reads (so two
/// sweep points that differ in, say, params.beta — or even in an unused
/// topology field — share one built graph).  Graph generation is the
/// dominant per-point cost of sweeps over large random topologies; the
/// cache is what makes a 16-point beta sweep on a 10^6-vertex graph pay
/// for one build instead of sixteen.  Thread-safe; holds at most three
/// graphs alive (MRU order), so memory stays bounded.
[[nodiscard]] std::shared_ptr<const graph::graph> shared_topology(
    const topology_spec& spec, std::size_t num_agents);

/// Cumulative shared_topology() hit/miss counters (diagnostics + tests).
struct topology_cache_stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
[[nodiscard]] topology_cache_stats shared_topology_stats() noexcept;

/// Environment factory for the runner (fresh instance per replication).
[[nodiscard]] core::env_factory make_environment(const environment_spec& spec);

/// Engine factory for the runner.  Resolves auto_select, owns any generated
/// topology (shared by the engines the factory builds), and validates the
/// combination (e.g. topology requires the agent-based engine).
[[nodiscard]] core::engine_factory make_engine(const scenario_spec& spec);

/// Validates the cross-field consistency a single factory cannot see:
/// params.validate(), environment.etas (and drifting end_etas) sized to
/// params.num_options, a `start` override sized to num_options, the
/// protocol knobs' ranges, and field families the resolved engine does not
/// read (a non-empty `start` needs the infinite engine, `groups` the
/// grouped engine, and the protocol engine takes neither — silently
/// ignoring them would misreport what ran).  Throws std::invalid_argument
/// with a message naming both sides — this is where an etas/num_options
/// mismatch is reported, instead of the late engine/environment mismatch
/// throw inside the runner.
void validate_spec(const scenario_spec& spec);

/// Non-throwing validate_spec: the validation error message, or an empty
/// string when the spec is valid.  This is the predicate generator-driven
/// tests (tests/property/) build on — a generator can ask "would this spec
/// run?" without paying an exception per rejected candidate, and a shrinker
/// can discard invalid shrink candidates the same way.
[[nodiscard]] std::string validate_spec_error(const scenario_spec& spec);

/// Non-throwing build_topology precondition check: the error message
/// build_topology would throw for this (spec, N) — family none, zero
/// vertices, lattice shape mismatch, family-specific bounds (watts_strogatz
/// needs N >= 3 and 0 < 2·degree < N, barabasi_albert N > degree >= 1,
/// two_cliques even N >= 4 with bridges in [1, N/2], probabilities in
/// [0, 1]) — or an empty string when the graph would build.  Checks the
/// preconditions only; never builds the graph, so it is O(1) regardless
/// of N.  validate_spec calls this for specs that would build a topology,
/// so "validate_spec passes" means the run cannot die inside the graph
/// factory later.
[[nodiscard]] std::string topology_build_error(const topology_spec& spec,
                                               std::size_t num_agents);

/// One-call convenience: run the scenario under the generic Monte-Carlo
/// harness.  Calls validate_spec first.
[[nodiscard]] core::run_result run(const scenario_spec& spec,
                                   const core::run_config& config);

/// Runs the scenario with an explicit probe set (core/probe.h spec
/// grammar).  Empty `probe_specs` falls back to the scenario's own
/// `probes` list, and failing that to {"regret"}.  Calls validate_spec.
/// Returns the merged probes in spec order.
[[nodiscard]] core::probe_list run_probes(const scenario_spec& spec,
                                          const core::run_config& config,
                                          std::span<const std::string> probe_specs = {});

}  // namespace sgl::scenario
