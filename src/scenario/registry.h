#pragma once

/// \file registry.h
/// The catalog of named scenarios.  Each entry is a complete scenario_spec
/// keyed by a stable name; callers fetch a spec, override whatever fields
/// their sweep varies (horizon, N, β, …), and hand it to scenario::run.
/// The CLI lists and runs these by name; the bench drivers and examples
/// start from them instead of hand-rolling setup.

#include <span>
#include <string_view>

#include "scenario/scenario.h"

namespace sgl::scenario {

/// Every registered scenario, in a stable, documented order.
[[nodiscard]] std::span<const scenario_spec> all_scenarios();

/// Looks a scenario up by name; nullptr when unknown.
[[nodiscard]] const scenario_spec* find_scenario(std::string_view name) noexcept;

/// Looks a scenario up by name; throws std::invalid_argument (listing the
/// known names) when unknown.  Returns a copy, ready to override.
[[nodiscard]] scenario_spec get_scenario(std::string_view name);

}  // namespace sgl::scenario
