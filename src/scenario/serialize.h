#pragma once

/// \file serialize.h
/// The canonical text form of a scenario_spec (DESIGN.md "Scenario text
/// format v1"): one `key = value` line per field, flat dotted keys
/// (`params.beta`, `topology.family`, `groups.0.size`), JSON-compatible
/// values (numbers, "quoted strings", [arrays], with `#` comments).  The
/// same key/value grammar powers three surfaces:
///
///   * files        — `parse_scenario(text)` builds a spec from a partial
///                    or complete field list (missing keys keep defaults);
///   * overrides    — `apply_override(spec, "params.beta=0.7")` is the
///                    CLI's `--set`, applied on top of any base spec;
///   * sweeps       — `parse_sweep_axis("params.beta=0.55:0.75:0.05")`
///                    expands one key over a value grid, and
///                    `expand_sweep` takes the cartesian product.
///
/// serialize_scenario emits every field in a canonical order with exact
/// round-trip number formatting, so `parse_scenario(serialize_scenario(s))`
/// runs bit-identically to `s` (tested over the whole registry).  The only
/// field outside the format is `prebuilt_graph` (a runtime-only handle).

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "scenario/scenario.h"

namespace sgl::scenario {

/// The spec as flat (key, value) pairs in canonical order.  Values use the
/// text format's JSON-compatible syntax verbatim, so they can be embedded
/// in a JSON document without re-encoding (the CLI's spec echo).
[[nodiscard]] std::vector<std::pair<std::string, std::string>> scenario_fields(
    const scenario_spec& spec);

/// Canonical text form: a `key = value` line per scenario_fields entry.
[[nodiscard]] std::string serialize_scenario(const scenario_spec& spec);

/// Parses the text form into a spec.  Keys may appear in any order and be
/// any subset (unset fields keep their defaults); later lines win.  Throws
/// std::invalid_argument with the 1-based line number on malformed lines,
/// unknown keys (suggesting the nearest known key), or bad values.
[[nodiscard]] scenario_spec parse_scenario(std::string_view text);

/// Applies one dotted-key override.  Same keys and value syntax as the
/// file format; `groups.N.*` / `agent_rules.N.*` may address one past the
/// end to append an entry.  Throws std::invalid_argument on unknown keys
/// (with a suggestion) or bad values.
void apply_override(scenario_spec& spec, std::string_view key, std::string_view value);

/// `--set` form: "key=value".
void apply_override(scenario_spec& spec, std::string_view assignment);

/// One sweep axis: a key and the value texts it takes, in order.
struct sweep_axis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses `key=lo:hi:step` (inclusive numeric range; values are rounded to
/// 12 significant digits) or `key=v1,v2,...` (explicit list, any value
/// syntax).  Throws std::invalid_argument on malformed axes, step <= 0,
/// lo > hi, or absurd grids (> 10000 points per axis).
[[nodiscard]] sweep_axis parse_sweep_axis(std::string_view text);

/// The cartesian product of the axes, in deterministic order: the last
/// axis varies fastest.  Each grid point lists (key, value) assignments to
/// apply_override on a copy of the base spec.
[[nodiscard]] std::vector<std::vector<std::pair<std::string, std::string>>> expand_sweep(
    std::span<const sweep_axis> axes);

}  // namespace sgl::scenario
