#include "scenario/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "scenario/serialize.h"
#include "support/parallel.h"

namespace sgl::scenario {
namespace {

/// Everything one grid point needs while its shards are in flight.
struct point_state {
  scenario_spec spec;
  std::vector<std::pair<std::string, std::string>> assignments;
  core::engine_factory make_engine;
  core::env_factory make_env;
  core::probe_list prototypes;
  std::unique_ptr<core::context_pool> contexts;
  std::vector<core::probe_list> shard_probes;  // merged in index order at the end
  shard_layout layout;  // parallel_reduce's decomposition (support/parallel.h)
  std::atomic<std::size_t> shards_left{0};
  std::atomic<bool> skipped{false};  // a shard was cancelled: never merge/emit
  std::atomic<std::int64_t> first_start_ns{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> last_end_ns{std::numeric_limits<std::int64_t>::min()};

  /// Drops the engines, factories and (through them) this point's graph
  /// reference as soon as the point's last shard completes, so a sweep
  /// whose points each carry O(N) state — e.g. a topology.seed sweep over
  /// 10^6-vertex graphs — peaks at the *in-flight* points, not the whole
  /// grid.  Only the shard probes (needed for the merge) survive.
  void release_run_state() {
    contexts.reset();
    make_engine = nullptr;
    make_env = nullptr;
    prototypes.clear();
  }
};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void fetch_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void fetch_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

/// Merges a completed point's shards in fixed shard order and packages the
/// result — the exact fold the batch collector used to run in its phase 3,
/// now executed by whichever worker finished the point's last shard.
sweep_point_result package_point(point_state& state) {
  core::probe_list merged = std::move(state.shard_probes[0]);
  for (std::size_t s = 1; s < state.shard_probes.size(); ++s) {
    for (std::size_t i = 0; i < merged.size(); ++i) {
      merged[i]->merge(*state.shard_probes[s][i]);
    }
  }
  sweep_point_result result;
  result.spec = std::move(state.spec);
  result.assignments = std::move(state.assignments);
  result.probes = std::move(merged);
  const std::int64_t start = state.first_start_ns.load(std::memory_order_relaxed);
  const std::int64_t end = state.last_end_ns.load(std::memory_order_relaxed);
  result.seconds = end > start ? static_cast<double>(end - start) * 1e-9 : 0.0;
  return result;
}

}  // namespace

std::size_t run_sweep_streaming(
    const scenario_spec& base,
    std::span<const std::vector<std::pair<std::string, std::string>>> grid,
    const core::run_config& config, std::span<const std::string> probe_specs,
    const sweep_stream_hooks& hooks) {
  static const std::vector<std::pair<std::string, std::string>> k_no_assignments;
  static const std::vector<std::string> k_default_probes{"regret"};

  core::check_run_config(config);
  const std::size_t points = grid.empty() ? 1 : grid.size();

  // Phase 1 — resolve and validate every point before any work runs:
  // overrides applied, cross-field validation, factories built (this is
  // where bad engine/topology combinations throw, and where topology
  // sharing happens: identical keys resolve to one cached graph).
  std::vector<std::unique_ptr<point_state>> states;
  states.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    auto state = std::make_unique<point_state>();
    state->spec = base;
    state->assignments = grid.empty() ? k_no_assignments : grid[p];
    for (const auto& [key, value] : state->assignments) {
      apply_override(state->spec, key, value);
    }
    validate_spec(state->spec);
    state->make_engine = make_engine(state->spec);
    state->make_env = make_environment(state->spec.environment);
    const std::span<const std::string> specs =
        !probe_specs.empty()       ? probe_specs
        : !state->spec.probes.empty() ? std::span<const std::string>{state->spec.probes}
                                      : std::span<const std::string>{k_default_probes};
    state->prototypes = core::make_probes(specs);
    state->layout = reduce_layout(static_cast<std::size_t>(config.replications));
    states.push_back(std::move(state));
  }

  // Phase 2 — flatten the grid into (point, shard) work items and drain
  // them over the shared pool.  The per-point shard decomposition, per-
  // replication streams, and shard-order merge are exactly
  // run_with_probes'; the scheduler only changes *when* each shard runs.
  std::vector<std::pair<std::size_t, std::size_t>> items;  // (point, shard)
  for (std::size_t p = 0; p < points; ++p) {
    auto& state = *states[p];
    state.shard_probes.resize(state.layout.shard_count);
    std::size_t live_shards = 0;
    for (std::size_t s = 0; s < state.layout.shard_count; ++s) {
      // Every shard gets its accumulator clones (the merge below walks all
      // of them, exactly as run_with_probes merges its empty shards), but
      // only shards with a non-empty replication range become work items —
      // an empty shard must not borrow (and possibly construct) an engine.
      core::probe_list clones;
      clones.reserve(state.prototypes.size());
      for (const auto& prototype : state.prototypes) clones.push_back(prototype->clone());
      state.shard_probes[s] = std::move(clones);
      if (s * state.layout.chunk < config.replications) {
        items.emplace_back(p, s);
        ++live_shards;
      }
    }
    state.shards_left.store(live_shards, std::memory_order_relaxed);
  }

  const unsigned workers = std::min<unsigned>(
      config.threads == 0 ? default_thread_count() : config.threads,
      static_cast<unsigned>(std::min<std::size_t>(
          items.size(), std::numeric_limits<unsigned>::max())));
  const bool clamp_engine_threads = workers > 1;
  for (auto& state : states) {
    state->contexts = std::make_unique<core::context_pool>(
        state->make_engine, state->make_env, clamp_engine_threads);
  }

  std::mutex emit_mutex;  // serializes on_point across finishing workers
  std::atomic<std::size_t> completed{0};

  parallel_tasks(
      items.size(),
      [&](std::size_t item) {
        const auto [p, s] = items[item];
        auto& state = *states[p];
        const bool cancelled =
            hooks.cancel != nullptr && hooks.cancel->load(std::memory_order_acquire);
        if (!cancelled) {
          fetch_min(state.first_start_ns, now_ns());
          const std::size_t lo = s * state.layout.chunk;
          const std::size_t hi = std::min(static_cast<std::size_t>(config.replications),
                                          lo + state.layout.chunk);
          {
            auto context = state.contexts->borrow();
            for (std::size_t replication = lo; replication < hi; ++replication) {
              context->run(config, replication, state.shard_probes[s]);
            }
          }
          fetch_max(state.last_end_ns, now_ns());
        } else {
          // A skipped shard poisons the point: its accumulators are empty,
          // so a merge would misreport a partial run as the real result.
          state.skipped.store(true, std::memory_order_release);
        }
        // Last shard of the point: free its engines and graph reference now
        // (no other task of this point can be running — its lease above was
        // returned before the decrement), then merge and deliver unless a
        // sibling shard was cancelled.
        if (state.shards_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          state.release_run_state();
          if (!state.skipped.load(std::memory_order_acquire)) {
            sweep_point_result result = package_point(state);
            completed.fetch_add(1, std::memory_order_relaxed);
            if (hooks.on_point) {
              const std::lock_guard<std::mutex> lock{emit_mutex};
              hooks.on_point(p, std::move(result));
            }
          }
        }
      },
      config.threads);

  return completed.load(std::memory_order_relaxed);
}

std::vector<sweep_point_result> run_sweep(
    const scenario_spec& base,
    std::span<const std::vector<std::pair<std::string, std::string>>> grid,
    const core::run_config& config, std::span<const std::string> probe_specs) {
  const std::size_t points = grid.empty() ? 1 : grid.size();
  std::vector<sweep_point_result> results(points);

  sweep_stream_hooks hooks;
  hooks.on_point = [&results](std::size_t index, sweep_point_result&& result) {
    results[index] = std::move(result);
  };
  run_sweep_streaming(base, grid, config, probe_specs, hooks);
  return results;
}

}  // namespace sgl::scenario
